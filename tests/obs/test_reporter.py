"""Tests for the serialized progress reporter."""

import io
import threading

from repro.obs import Reporter, reporter, set_reporter


class TestReporter:
    def test_emit_writes_whole_line(self):
        buf = io.StringIO()
        Reporter(stream=buf).emit("hello")
        assert buf.getvalue() == "hello\n"

    def test_stream_resolved_at_emit_time(self, capsys):
        """A default reporter built before capsys swaps stderr still lands
        in the captured stream."""
        reporter().emit("captured-line")
        assert "captured-line" in capsys.readouterr().err

    def test_concurrent_emits_never_interleave(self):
        buf = io.StringIO()
        rep = Reporter(stream=buf)
        n, width = 50, 200

        def worker(tag):
            for _ in range(n):
                rep.emit(str(tag) * width)

        threads = [threading.Thread(target=worker, args=(t,)) for t in "abcd"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        lines = buf.getvalue().splitlines()
        assert len(lines) == 4 * n
        assert all(line == line[0] * width for line in lines)

    def test_set_reporter_round_trip(self):
        buf = io.StringIO()
        replacement = Reporter(stream=buf)
        previous = set_reporter(replacement)
        try:
            assert reporter() is replacement
        finally:
            set_reporter(previous)
        assert reporter() is previous

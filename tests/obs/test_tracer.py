"""Tests for repro.obs.tracer: nesting, shipping, and the disabled path."""

import sys
import threading

import pytest

from repro import obs
from repro.obs.tracer import NULL_SPAN, NULL_TRACER, Tracer


@pytest.fixture
def tracer():
    """A fresh tracer installed as the process-global one."""
    t = Tracer()
    previous = obs.set_tracer(t)
    yield t
    obs.set_tracer(previous)


def by_name(spans, name):
    return [s for s in spans if s["name"] == name]


class TestNesting:
    def test_parent_child_ids(self, tracer):
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        spans = tracer.finished()
        assert [s["name"] for s in spans] == ["inner", "outer"]
        inner_d, outer_d = spans
        assert inner_d["parent_id"] == outer_d["span_id"]
        assert outer_d["parent_id"] is None

    def test_siblings_share_parent(self, tracer):
        with obs.span("root"):
            with obs.span("a"):
                pass
            with obs.span("b"):
                pass
        spans = tracer.finished()
        root = by_name(spans, "root")[0]
        assert by_name(spans, "a")[0]["parent_id"] == root["span_id"]
        assert by_name(spans, "b")[0]["parent_id"] == root["span_id"]

    def test_attrs_and_set(self, tracer):
        with obs.span("work", points=3) as sp:
            sp.set("hits", 2)
        (span,) = tracer.finished()
        assert span["attrs"] == {"points": 3, "hits": 2}

    def test_timings_nonnegative_and_nested(self, tracer):
        with obs.span("outer"):
            with obs.span("inner"):
                sum(range(10_000))
        inner, outer = tracer.finished()
        assert 0.0 <= inner["wall_s"] <= outer["wall_s"]
        assert inner["cpu_s"] >= 0.0

    def test_span_ids_unique_and_pid_tagged(self, tracer):
        import os

        for _ in range(5):
            with obs.span("x"):
                pass
        spans = tracer.finished()
        ids = [s["span_id"] for s in spans]
        assert len(set(ids)) == len(ids)
        assert all(s["pid"] == os.getpid() for s in spans)
        assert all(i.startswith(f"{os.getpid():x}-") for i in ids)

    def test_exception_still_records_span(self, tracer):
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        assert [s["name"] for s in tracer.finished()] == ["doomed"]

    def test_current_span_id_tracks_stack(self, tracer):
        assert obs.current_span_id() is None
        with obs.span("outer") as outer:
            assert obs.current_span_id() == outer.span_id
            with obs.span("inner") as inner:
                assert obs.current_span_id() == inner.span_id
            assert obs.current_span_id() == outer.span_id
        assert obs.current_span_id() is None


class TestThreads:
    def test_threads_have_independent_stacks(self, tracer):
        """Spans opened on different threads parent within their thread."""
        errors = []

        def work(tag):
            try:
                with obs.span(f"thread.{tag}") as outer:
                    with obs.span(f"thread.{tag}.child") as child:
                        assert child.parent_id == outer.span_id
            except AssertionError as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        with obs.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        spans = tracer.finished()
        for i in range(4):
            outer = by_name(spans, f"thread.{i}")[0]
            child = by_name(spans, f"thread.{i}.child")[0]
            assert child["parent_id"] == outer["span_id"]
            # A fresh thread has no active span: its root is a tree root,
            # not a child of the main thread's span.
            assert outer["parent_id"] is None


class TestShipping:
    def test_capture_and_adopt_reparents_roots(self, tracer):
        with obs.capture_spans() as shipped:
            with obs.span("worker"):
                with obs.span("worker.child"):
                    pass
        assert tracer.finished() == []  # captured, not recorded globally
        with obs.span("dispatch") as dispatch:
            obs.adopt_spans(shipped)
        spans = tracer.finished()
        worker = by_name(spans, "worker")[0]
        child = by_name(spans, "worker.child")[0]
        assert worker["parent_id"] == dispatch.span_id
        assert child["parent_id"] == worker["span_id"]  # interior edge kept

    def test_adopt_explicit_parent(self, tracer):
        with obs.capture_spans() as shipped:
            with obs.span("w"):
                pass
        with obs.span("root") as root:
            pass
        obs.adopt_spans(shipped, parent_id=root.span_id)
        assert by_name(tracer.finished(), "w")[0]["parent_id"] == root.span_id

    def test_capture_restores_previous_tracer(self, tracer):
        with obs.capture_spans():
            assert obs.current_tracer() is not tracer
        assert obs.current_tracer() is tracer

    def test_adopt_noop_when_disabled(self):
        assert not obs.tracing_active()
        obs.adopt_spans([{"span_id": "x-1", "parent_id": None, "name": "n"}])


class TestDisabled:
    def test_null_span_singleton(self):
        """Disabled spans return the one shared no-op object."""
        assert not obs.tracing_active()
        a = obs.span("anything", k=1)
        b = obs.span("other")
        assert a is NULL_SPAN
        assert b is NULL_SPAN
        with a as sp:
            sp.set("ignored", 1)
        assert obs.current_tracer() is NULL_TRACER

    def test_disabled_path_does_not_accumulate_allocations(self):
        """Steady-state disabled tracing retains no per-span memory."""
        assert not obs.tracing_active()

        def burst(n):
            for _ in range(n):
                with obs.span("hot", i=1):
                    pass

        burst(1000)  # warm up caches / code objects
        before = sys.getallocatedblocks()
        burst(50_000)
        after = sys.getallocatedblocks()
        # Not strictly zero (interpreter internals churn) but far below
        # one retained block per span.
        assert after - before < 1000

    def test_set_tracer_none_means_disabled(self):
        previous = obs.set_tracer(None)
        try:
            assert not obs.tracing_active()
        finally:
            obs.set_tracer(previous)

"""Unit tests for the live-telemetry layer (repro.obs.live)."""

import json
import os
import random
import threading

import pytest

from repro import obs
from repro.obs.export import validate_trace, write_trace
from repro.obs.live import (
    NULL_LIVE,
    FlightRecorder,
    LiveTelemetry,
    RotatingTraceWriter,
    SloTracker,
    TraceCollector,
    TraceSampler,
)
from repro.obs.metrics import (
    LogLinearHistogram,
    Metrics,
    WindowedHistogram,
)


def _span(span_id, parent_id=None, name="work", pid=1):
    return {
        "type": "span",
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start_unix": 1000.0,
        "wall_s": 0.01,
        "cpu_s": 0.0,
        "pid": pid,
        "attrs": {},
    }


# --------------------------------------------------------------------- #
# log-linear histogram
# --------------------------------------------------------------------- #


class TestLogLinearHistogram:
    def test_quantiles_within_bucket_error(self):
        rng = random.Random(42)
        values = [rng.lognormvariate(-5.0, 1.0) for _ in range(20_000)]
        hist = LogLinearHistogram.from_values(values)
        ordered = sorted(values)
        for q in (0.5, 0.95, 0.99, 0.999):
            true = ordered[min(len(ordered) - 1, int(q * len(ordered)))]
            est = hist.quantile(q)
            # Bucket upper edges bound relative error by 1/16.
            assert true <= est * (1 + 1e-12)
            assert est <= true * (1 + 1.0 / 16 + 0.01)

    def test_merge_is_bucket_exact(self):
        rng = random.Random(7)
        a_vals = [rng.expovariate(100.0) for _ in range(500)]
        b_vals = [rng.expovariate(10.0) for _ in range(500)]
        merged = LogLinearHistogram.from_values(a_vals)
        merged.merge(LogLinearHistogram.from_values(b_vals))
        direct = LogLinearHistogram.from_values(a_vals + b_vals)
        assert merged.buckets == direct.buckets
        assert merged.count == direct.count
        assert merged.total == pytest.approx(direct.total)
        for q in (0.5, 0.99):
            assert merged.quantile(q) == direct.quantile(q)

    def test_extreme_values_clamp(self):
        hist = LogLinearHistogram.from_values([0.0, 1e-12, 1e12])
        assert hist.count == 3
        assert hist.quantile(0.999) > 0

    def test_empty_quantile_zero(self):
        assert LogLinearHistogram().quantile(0.5) == 0.0


# --------------------------------------------------------------------- #
# windowed histogram decay
# --------------------------------------------------------------------- #


class TestWindowedHistogram:
    def test_windows_decay_with_clock(self):
        now = [1000.0]
        hist = WindowedHistogram("w")
        hist._clock = lambda: now[0]
        for _ in range(100):
            hist.observe(0.005)
        w1 = hist.window(1.0)
        assert w1.count == 100
        # 30 seconds later the 1s and 10s windows are empty, 60s keeps it.
        now[0] += 30.0
        assert hist.window(1.0).count == 0
        assert hist.window(10.0).count == 0
        assert hist.window(60.0).count == 100
        now[0] += 60.0
        assert hist.window(60.0).count == 0
        # Cumulative count never decays.
        assert hist.count == 100

    def test_rate_is_per_second(self):
        now = [2000.0]
        hist = WindowedHistogram("w")
        hist._clock = lambda: now[0]
        for _ in range(50):
            hist.observe(0.001)
        assert hist.window(10.0).rate == pytest.approx(5.0)

    def test_state_merge_roundtrip(self):
        now = [3000.0]
        a = WindowedHistogram("w")
        b = WindowedHistogram("w")
        a._clock = b._clock = lambda: now[0]
        for i in range(40):
            a.observe(0.001 * (i + 1))
            b.observe(0.002 * (i + 1))
        merged = WindowedHistogram("w")
        merged._clock = lambda: now[0]
        merged.merge_state(a.state())
        merged.merge_state(b.state())
        assert merged.count == 80
        assert merged.window(10.0).count == 80


# --------------------------------------------------------------------- #
# SLO tracker
# --------------------------------------------------------------------- #


class TestSloTracker:
    def test_classification(self):
        classify = SloTracker.classify
        assert classify(200, 0.01, None) is True
        assert classify(200, 0.01, 50.0) is True
        assert classify(200, 0.10, 50.0) is False  # deadline blown
        assert classify(500, 0.01, None) is False
        assert classify(503, 0.01, 50.0) is False
        assert classify(429, 0.0, None) is False
        assert classify(400, 0.01, None) is None  # client error excluded
        assert classify(404, 0.01, None) is None

    def test_burn_rate_math(self):
        now = [5000.0]
        slo = SloTracker(0.99)
        slo._clock = lambda: now[0]
        for _ in range(99):
            slo.record(200, 0.01)
        slo.record(503, 0.01)
        window = slo.window(10.0)
        assert window["good"] == 99
        assert window["bad"] == 1
        # 1% bad over a 1% budget: burning exactly as provisioned.
        assert window["burn_rate"] == pytest.approx(1.0)

    def test_windows_decay(self):
        now = [6000.0]
        slo = SloTracker(0.999)
        slo._clock = lambda: now[0]
        slo.record(500, 0.0)
        assert slo.window(1.0)["bad"] == 1
        now[0] += 30.0
        assert slo.window(1.0)["bad"] == 0
        assert slo.window(60.0)["bad"] == 1
        assert slo.bad == 1  # cumulative survives

    def test_target_validation(self):
        with pytest.raises(ValueError):
            SloTracker(0.0)
        with pytest.raises(ValueError):
            SloTracker(1.0)

    def test_to_dict_shape(self):
        d = SloTracker(0.99).to_dict()
        assert d["target"] == 0.99
        assert set(d["windows"]) == {"1s", "10s", "60s"}


# --------------------------------------------------------------------- #
# sampler
# --------------------------------------------------------------------- #


class TestTraceSampler:
    def test_deterministic_for_seed(self):
        a = TraceSampler(0.3, seed=11)
        b = TraceSampler(0.3, seed=11)
        decisions_a = [a.sample() is not None for _ in range(500)]
        decisions_b = [b.sample() is not None for _ in range(500)]
        assert decisions_a == decisions_b
        kept = sum(decisions_a)
        assert 100 < kept < 200  # ~150 expected

    def test_zero_rate_never_keeps_force_always_does(self):
        sampler = TraceSampler(0.0, seed=0)
        assert all(sampler.sample() is None for _ in range(100))
        forced = sampler.sample(force=True)
        assert forced is not None and "-r" in forced

    def test_ids_unique(self):
        sampler = TraceSampler(1.0)
        ids = {sampler.sample() for _ in range(100)}
        assert len(ids) == 100

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            TraceSampler(1.5)


# --------------------------------------------------------------------- #
# collector stitching
# --------------------------------------------------------------------- #


class TestTraceCollector:
    def test_stitch_produces_valid_tree(self, tmp_path):
        collector = TraceCollector()
        # A worker-side batch: a root batch span with one child.
        collector.add("t1", [_span("w-1"), _span("w-2", parent_id="w-1")])
        root = _span("p-1", name="serve.request", pid=2)
        tree = collector.finish("t1", root)
        assert len(tree) == 3
        assert tree[0]["attrs"]["trace_id"] == "t1"
        path = str(tmp_path / "stitched.jsonl")
        write_trace(tree, path)
        spans = validate_trace(path)
        roots = [s for s in spans if s["parent_id"] is None]
        assert len(roots) == 1

    def test_shared_batch_spans_get_fresh_ids(self):
        collector = TraceCollector()
        batch = [_span("w-1"), _span("w-2", parent_id="w-1")]
        collector.add("t1", batch)
        collector.add("t2", batch)
        tree1 = collector.finish("t1", _span("p-1"))
        tree2 = collector.finish("t2", _span("p-2"))
        ids1 = {s["span_id"] for s in tree1}
        ids2 = {s["span_id"] for s in tree2}
        assert not ids1 & ids2

    def test_eviction_bounds_memory(self):
        collector = TraceCollector(max_traces=4)
        for i in range(10):
            collector.add(f"t{i}", [_span(f"w-{i}")])
        assert collector.pending() == 4
        assert collector.dropped == 6

    def test_finish_unknown_trace_is_root_only(self):
        tree = TraceCollector().finish("missing", _span("p-1"))
        assert len(tree) == 1


# --------------------------------------------------------------------- #
# rotating writer
# --------------------------------------------------------------------- #


class TestRotatingTraceWriter:
    def test_each_file_validates(self, tmp_path):
        path = str(tmp_path / "samples.jsonl")
        writer = RotatingTraceWriter(path, max_bytes=2000, backups=2)
        for i in range(30):
            writer.write(
                [_span(f"r-{i}"), _span(f"c-{i}", parent_id=f"r-{i}")]
            )
        assert writer.trees == 30
        files = [path] + [
            f"{path}.{n}"
            for n in range(1, 3)
            if os.path.exists(f"{path}.{n}")
        ]
        assert len(files) >= 2, "rotation never triggered"
        for f in files:
            spans = validate_trace(f)
            assert spans

    def test_backups_bounded(self, tmp_path):
        path = str(tmp_path / "samples.jsonl")
        writer = RotatingTraceWriter(path, max_bytes=500, backups=2)
        for i in range(200):
            writer.write([_span(f"r-{i}")])
        assert not os.path.exists(f"{path}.3")


# --------------------------------------------------------------------- #
# flight recorder
# --------------------------------------------------------------------- #


class TestFlightRecorder:
    def test_ring_bounded_and_dump(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path), capacity=8)
        for i in range(20):
            recorder.record("request", status=200, seq=i)
        assert recorder.last()["seq"] == 19
        path = recorder.dump("test-reason")
        assert path is not None and os.path.exists(path)
        with open(path) as fh:
            dump = json.load(fh)
        assert dump["reason"] == "test-reason"
        assert len(dump["records"]) == 8
        assert dump["records"][-1]["seq"] == 19

    def test_throttle_is_per_reason(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path), min_interval_s=60.0)
        recorder.record("request", status=503)
        assert recorder.dump("http-503") is not None
        assert recorder.dump("http-503") is None  # same reason throttled
        assert recorder.dump("worker-crash-shard0") is not None

    def test_no_directory_no_dump(self):
        recorder = FlightRecorder(None)
        recorder.record("request", status=200)
        assert recorder.dump("whatever") is None

    def test_reason_sanitized(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path))
        path = recorder.dump("weird/../reason !")
        assert path is not None
        assert "/.." not in os.path.basename(path)


# --------------------------------------------------------------------- #
# the bundle
# --------------------------------------------------------------------- #


class TestLiveTelemetry:
    def test_record_request_feeds_windowed_and_slo(self):
        metrics = Metrics()
        live = LiveTelemetry(metrics, windowed=True)
        live.record_request(200, 0.01, 50.0, method="POST", path="/v1/evaluate")
        live.record_request(503, 0.01, 50.0, method="POST", path="/v1/evaluate")
        assert metrics.value("serve.live.slo.good") == 1
        assert metrics.value("serve.live.slo.bad") == 1
        assert metrics.value("serve.live.request_s") == 2
        health = live.health()
        assert health["slo"]["good"] == 1
        assert health["slo"]["bad"] == 1

    def test_windowed_off_still_tracks_slo(self):
        metrics = Metrics()
        live = LiveTelemetry(metrics, windowed=False)
        live.record_request(200, 0.01)
        live.record_queue_wait(0.001)
        live.record_batch(0, 4, 0.002)
        assert "serve.live.request_s" not in metrics.to_dict()
        assert live.health()["slo"]["good"] == 1

    def test_shard_instruments_lazy(self):
        metrics = Metrics()
        live = LiveTelemetry(metrics)
        live.record_batch(1, 8, 0.004)
        live.record_batch(None, 2, 0.001)
        flat = metrics.to_dict()
        assert "serve.live.shard.1.batch_size.count" in flat
        assert "serve.live.shard.solver.batch_size.count" in flat

    def test_finish_trace_counts_and_writes(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        metrics = Metrics()
        live = LiveTelemetry(metrics, sample_rate=1.0, trace_path=path)
        trace_id = live.sample()
        live.collect(trace_id, [_span("w-1")])
        tree = live.finish_trace(trace_id, _span("p-1"))
        assert len(tree) == 2
        assert metrics.value("serve.live.traces.sampled") == 1
        assert validate_trace(path)

    def test_thread_safety_smoke(self):
        live = LiveTelemetry(Metrics(), sample_rate=0.5)

        def hammer(seed):
            for i in range(200):
                trace_id = live.sample()
                live.record_request(200, 0.001, 10.0)
                live.record_batch(seed % 3, 2, 0.001)
                if trace_id:
                    live.collect(trace_id, [_span(f"{seed}-{i}")])
                    live.finish_trace(trace_id, _span(f"{seed}-root-{i}"))

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert live.slo.good == 800

    def test_null_live_is_inert(self):
        assert NULL_LIVE.enabled is False
        assert NULL_LIVE.sample(force=True) is None
        NULL_LIVE.record_request(500, 1.0)
        NULL_LIVE.record_batch(0, 1, 0.1)
        NULL_LIVE.on_worker_crash(0, 1)
        assert NULL_LIVE.dump_flight("x") is None
        assert NULL_LIVE.finish_trace("t", {}) == []
        assert NULL_LIVE.health() == {}


# --------------------------------------------------------------------- #
# exports
# --------------------------------------------------------------------- #


def test_obs_exports_live_names():
    for name in (
        "LiveTelemetry",
        "NULL_LIVE",
        "SloTracker",
        "TraceSampler",
        "TraceCollector",
        "RotatingTraceWriter",
        "FlightRecorder",
        "render_prom",
        "validate_prom_text",
        "PROM_CONTENT_TYPE",
        "PromFormatError",
        "WindowedHistogram",
        "LogLinearHistogram",
    ):
        assert hasattr(obs, name), name

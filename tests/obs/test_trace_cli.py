"""Tests for the repro-trace CLI (repro.obs.trace_cli)."""

import json

import pytest

from repro.obs.export import write_trace
from repro.obs.trace_cli import main, summarize


def _span(span_id, parent_id=None, name="work", pid=1, trace_id=None):
    attrs = {"trace_id": trace_id} if trace_id else {}
    return {
        "type": "span",
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start_unix": 1000.0,
        "wall_s": 0.02,
        "cpu_s": 0.01,
        "pid": pid,
        "attrs": attrs,
    }


@pytest.fixture
def trace_file(tmp_path):
    path = str(tmp_path / "run.jsonl")
    write_trace(
        [
            _span("a-1", name="serve.request", trace_id="t-1"),
            _span("a-2", parent_id="a-1", name="serve.batch", pid=2),
            _span("a-3", parent_id="a-2", name="serve.batch.solve", pid=2),
        ],
        path,
    )
    return path


def test_valid_trace_exits_zero(trace_file, capsys):
    assert main([trace_file]) == 0
    out = capsys.readouterr().out
    assert "valid trace" in out
    assert "3 spans" in out
    assert "sampled traces: 1" in out


def test_json_summary(trace_file, capsys):
    assert main([trace_file, "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["valid"] is True
    assert summary["spans"] == 3
    assert summary["roots"] == 1
    assert summary["processes"] == 2
    assert summary["sampled_traces"] == 1
    assert summary["names"]["serve.batch"] == 1


def test_malformed_trace_exits_two(tmp_path, capsys):
    path = str(tmp_path / "bad.jsonl")
    with open(path, "w") as fh:
        fh.write('{"type": "span"}\n')  # no header
    assert main([path]) == 2
    assert "invalid trace" in capsys.readouterr().err


def test_missing_file_exits_one(tmp_path, capsys):
    assert main([str(tmp_path / "nope.jsonl")]) == 1


def test_require_failure_exits_three(trace_file, capsys):
    assert main([trace_file, "--quiet", "--require", "not.there"]) == 3
    assert "not.there" in capsys.readouterr().err


def test_require_success(trace_file):
    assert (
        main(
            [
                trace_file,
                "--quiet",
                "--require",
                "serve.request",
                "--require",
                "serve.batch",
            ]
        )
        == 0
    )


def test_min_spans_and_coverage(trace_file):
    assert main([trace_file, "--quiet", "--min-spans", "10"]) == 3
    assert main([trace_file, "--quiet", "--min-coverage", "1.01"]) == 3
    assert main([trace_file, "--quiet", "--min-spans", "3"]) == 0


def test_summarize_counts():
    spans = [
        _span("a-1", name="root"),
        _span("a-2", parent_id="a-1", trace_id="x"),
        _span("b-1", name="root", pid=3, trace_id="y"),
    ]
    summary = summarize(spans)
    assert summary["roots"] == 2
    assert summary["processes"] == 2
    assert summary["sampled_traces"] == 2
    assert summary["names"]["root"] == 2

"""Concurrency tests for the metrics registry (windowed + classic).

The registry's merge algebra must hold under the two kinds of
concurrency the serving stack actually produces:

* many threads hammering one registry (the HTTP event loop, the
  batcher's dispatch task, and the topology's reader threads all write
  into the service registry);
* snapshots from forked workers merged into the parent in whatever
  order the pipe delivers them (merge must be order-independent).
"""

import multiprocessing
import random
import threading

from repro.obs.metrics import Metrics

THREADS = 8
OPS = 2_000


def test_thread_hammer_counts_exact():
    """N threads x M observes each: nothing lost, nothing doubled."""
    metrics = Metrics()
    barrier = threading.Barrier(THREADS)

    def hammer(seed):
        rng = random.Random(seed)
        counter = metrics.counter("hammer.count")
        hist = metrics.histogram("hammer.lat_s")
        windowed = metrics.windowed("hammer.win_s")
        barrier.wait()
        for _ in range(OPS):
            counter.inc()
            value = rng.expovariate(1000.0)
            hist.observe(value)
            windowed.observe(value)

    threads = [
        threading.Thread(target=hammer, args=(t,)) for t in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert metrics.value("hammer.count") == THREADS * OPS
    assert metrics.histogram("hammer.lat_s").count == THREADS * OPS
    assert metrics.windowed("hammer.win_s").count == THREADS * OPS


def test_thread_hammer_instrument_creation_race():
    """Concurrent first-touch of the same instrument name must yield
    one shared instrument, not last-writer-wins copies."""
    metrics = Metrics()
    barrier = threading.Barrier(THREADS)

    def create_and_count(_):
        barrier.wait()
        for i in range(200):
            metrics.counter(f"race.c{i % 10}").inc()
            metrics.windowed(f"race.w{i % 10}").observe(0.001)

    threads = [
        threading.Thread(target=create_and_count, args=(t,))
        for t in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for i in range(10):
        assert metrics.value(f"race.c{i}") == THREADS * 20
        assert metrics.windowed(f"race.w{i}").count == THREADS * 20


def _worker_snapshot(seed: int):
    """One forked worker's registry snapshot (runs in a child process)."""
    rng = random.Random(seed)
    metrics = Metrics()
    counter = metrics.counter("fleet.requests")
    hist = metrics.histogram("fleet.lat_s")
    windowed = metrics.windowed("fleet.win_s")
    for _ in range(500):
        counter.inc()
        value = rng.expovariate(500.0)
        hist.observe(value)
        windowed.observe(value)
    return metrics.snapshot()


def _snapshot_in_child(seed: int, queue) -> None:
    queue.put(_worker_snapshot(seed))


def test_forked_worker_snapshots_merge_order_independent():
    """Snapshots from real forked processes merge to the same registry
    in any order — the associativity/commutativity the sharded serving
    topology relies on when folding worker stats."""
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=_snapshot_in_child, args=(seed, queue))
        for seed in range(4)
    ]
    for p in procs:
        p.start()
    snapshots = [queue.get(timeout=30) for _ in procs]
    for p in procs:
        p.join(timeout=30)
        assert p.exitcode == 0

    orders = [
        snapshots,
        list(reversed(snapshots)),
        [snapshots[2], snapshots[0], snapshots[3], snapshots[1]],
    ]
    merged_snaps = []
    for order in orders:
        merged = Metrics()
        for snap in order:
            merged.merge_snapshot(snap)
        merged_snaps.append(merged.snapshot())

    def _structure(snap):
        """The order-exact parts: counts and bucket maps (float *totals*
        are sums, associative only up to rounding — compared separately)."""
        return {
            "counters": snap.get("counters"),
            "hist_counts": {
                k: v[0] for k, v in snap.get("histograms", {}).items()
            },
            "windowed": {
                k: (v[0], {slot: dict(s[2]) for slot, s in v[2].items()})
                for k, v in snap.get("windowed", {}).items()
            },
        }

    assert (
        _structure(merged_snaps[0])
        == _structure(merged_snaps[1])
        == _structure(merged_snaps[2])
    )
    totals = [s["windowed"]["fleet.win_s"][1] for s in merged_snaps]
    assert max(totals) - min(totals) < 1e-9 * max(1.0, abs(totals[0]))

    merged = Metrics()
    for snap in snapshots:
        merged.merge_snapshot(snap)
    assert merged.value("fleet.requests") == 4 * 500
    assert merged.histogram("fleet.lat_s").count == 4 * 500
    assert merged.windowed("fleet.win_s").count == 4 * 500


def test_concurrent_merge_and_write():
    """Merging snapshots while other threads keep writing must neither
    crash nor lose the writes."""
    metrics = Metrics()
    donor = Metrics()
    donor.counter("mix.count").inc(10)
    donor.windowed("mix.win_s").observe(0.001)
    snap = donor.snapshot()
    stop = threading.Event()

    def writer():
        counter = metrics.counter("mix.count")
        windowed = metrics.windowed("mix.win_s")
        while not stop.is_set():
            counter.inc()
            windowed.observe(0.002)

    threads = [threading.Thread(target=writer) for _ in range(4)]
    for t in threads:
        t.start()
    merges = 50
    for _ in range(merges):
        metrics.merge_snapshot(snap)
    stop.set()
    for t in threads:
        t.join()
    # Exactly merges*10 merged increments on top of whatever the
    # writers got in.
    total = metrics.value("mix.count")
    assert total >= merges * 10
    assert (
        metrics.windowed("mix.win_s").count
        >= merges
    )

"""Tests for repro.obs.metrics: instruments, merging, export."""

import itertools
import pickle

import pytest

from repro.obs import Metrics


def make_registry(counter=0, gauge=None, observations=()):
    m = Metrics()
    if counter:
        m.counter("c").inc(counter)
    if gauge is not None:
        m.gauge("g").set(gauge)
    for value in observations:
        m.histogram("h").observe(value)
    return m


class TestInstruments:
    def test_counter(self):
        m = Metrics()
        c = m.counter("engine.points")
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert m.counter("engine.points") is c  # get-or-create

    def test_gauge(self):
        m = Metrics()
        g = m.gauge("obs.spans")
        g.set(3)
        g.set(7)
        assert g.value == 7
        assert g.version == 2

    def test_histogram(self):
        m = Metrics()
        h = m.histogram("sim.loss_hours")
        for v in (2.0, 8.0, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 15.0
        assert h.min == 2.0
        assert h.max == 8.0
        assert h.mean == 5.0

    def test_kind_conflict_raises(self):
        m = Metrics()
        m.counter("x")
        with pytest.raises(TypeError):
            m.gauge("x")

    def test_value_lookup(self):
        m = make_registry(counter=4, gauge=9, observations=[1.0, 3.0])
        assert m.value("c") == 4
        assert m.value("g") == 9
        assert m.value("h") == 2.0  # histogram -> mean
        assert m.value("missing", default=-1) == -1

    def test_counters_are_picklable(self):
        """Counter-holding components cross the pool boundary."""
        m = make_registry(counter=3)
        clone = pickle.loads(pickle.dumps(m))
        assert clone.value("c") == 3


class TestMerge:
    def test_counters_add(self):
        a = make_registry(counter=2)
        b = make_registry(counter=5)
        assert a.merge(b).value("c") == 7

    def test_histograms_combine(self):
        a = make_registry(observations=[1.0, 9.0])
        b = make_registry(observations=[4.0])
        h = a.merge(b).histogram("h")
        assert (h.count, h.total, h.min, h.max) == (3, 14.0, 1.0, 9.0)

    def test_gauge_keeps_latest_version(self):
        a = Metrics()
        a.gauge("g").set(1)
        a.gauge("g").set(2)  # version 2
        b = Metrics()
        b.gauge("g").set(99)  # version 1
        assert a.merge(b).value("g") == 2  # higher version wins

    def test_merge_associative_and_commutative(self):
        """Worker registries fold identically in any order/grouping."""
        registries = [
            make_registry(counter=1, observations=[2.0]),
            make_registry(counter=10, gauge=5, observations=[7.0, 0.5]),
            make_registry(counter=100, observations=[]),
        ]
        flats = set()
        for perm in itertools.permutations(range(3)):
            # ((a + b) + c)
            left = Metrics.merged([registries[i] for i in perm])
            # (a + (b + c))
            right = Metrics()
            tail = Metrics()
            tail.merge(registries[perm[1]]).merge(registries[perm[2]])
            right.merge(registries[perm[0]]).merge(tail)
            flats.add(str(sorted(left.to_dict().items())))
            flats.add(str(sorted(right.to_dict().items())))
        assert len(flats) == 1

    def test_snapshot_round_trip(self):
        a = make_registry(counter=3, gauge=4, observations=[1.0, 2.0])
        clone = Metrics().merge_snapshot(a.snapshot())
        assert clone.to_dict() == a.to_dict()

    def test_merged_empty(self):
        assert Metrics.merged([]).to_dict() == {}


class TestExport:
    def test_flat_dict_shape(self):
        m = make_registry(counter=2, gauge=3, observations=[4.0, 6.0])
        flat = m.to_dict()
        assert flat == {
            "c": 2,
            "g": 3,
            "h.count": 2,
            "h.sum": 10.0,
            "h.min": 4.0,
            "h.max": 6.0,
            "h.mean": 5.0,
        }

    def test_empty_histogram_omits_stats(self):
        m = Metrics()
        m.histogram("h")
        assert m.to_dict() == {"h.count": 0, "h.sum": 0.0}

    def test_names_and_contains(self):
        m = make_registry(counter=1, gauge=1)
        assert m.names() == ["c", "g"]
        assert "c" in m
        assert "nope" not in m
        assert len(m) == 2

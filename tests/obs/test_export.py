"""Tests for repro.obs.export: trace schema, metrics file, run report."""

import json

import pytest

from repro import obs
from repro.obs import (
    Metrics,
    TraceFormatError,
    render_report,
    tree_coverage,
    validate_trace,
    write_metrics,
    write_trace,
)
from repro.obs.tracer import Tracer


def record_tree():
    """A real three-span tree recorded through a tracer."""
    tracer = Tracer()
    with obs.use_tracer(tracer):
        with obs.span("root", run=1):
            with obs.span("phase.a"):
                pass
            with obs.span("phase.b"):
                pass
    return tracer.finished()


class TestTraceRoundTrip:
    def test_write_then_validate(self, tmp_path):
        spans = record_tree()
        path = str(tmp_path / "trace.jsonl")
        write_trace(spans, path)
        loaded = validate_trace(path)
        assert {s["span_id"] for s in loaded} == {s["span_id"] for s in spans}
        assert all(s["type"] == "span" for s in loaded)

    def test_header_line(self, tmp_path):
        spans = record_tree()
        path = str(tmp_path / "trace.jsonl")
        write_trace(spans, path, generator="unit-test")
        header = json.loads(open(path).readline())
        assert header == {
            "type": "trace",
            "version": obs.TRACE_FORMAT_VERSION,
            "generator": "unit-test",
            "spans": 3,
        }

    def test_non_jsonable_attrs_coerced(self, tmp_path):
        spans = record_tree()
        spans[0]["attrs"]["weird"] = object()
        path = str(tmp_path / "trace.jsonl")
        write_trace(spans, path)
        loaded = validate_trace(path)
        weird = [s for s in loaded if "weird" in s["attrs"]][0]
        assert isinstance(weird["attrs"]["weird"], str)


class TestValidateRejects:
    def write_lines(self, tmp_path, lines):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        return path

    def header(self, n=1):
        return json.dumps(
            {"type": "trace", "version": obs.TRACE_FORMAT_VERSION, "spans": n}
        )

    def span_line(self, **overrides):
        span = {
            "type": "span",
            "span_id": "a-1",
            "parent_id": None,
            "name": "x",
            "start_unix": 0.0,
            "wall_s": 0.1,
            "cpu_s": 0.1,
            "pid": 1,
            "attrs": {},
        }
        span.update(overrides)
        return json.dumps(span)

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        with pytest.raises(TraceFormatError, match="empty"):
            validate_trace(path)

    def test_invalid_json(self, tmp_path):
        path = self.write_lines(tmp_path, [self.header(), "{not json"])
        with pytest.raises(TraceFormatError, match="invalid JSON"):
            validate_trace(path)

    def test_missing_header(self, tmp_path):
        path = self.write_lines(tmp_path, [self.span_line()])
        with pytest.raises(TraceFormatError, match="header"):
            validate_trace(path)

    def test_wrong_version(self, tmp_path):
        bad = json.dumps({"type": "trace", "version": 999})
        path = self.write_lines(tmp_path, [bad, self.span_line()])
        with pytest.raises(TraceFormatError, match="version"):
            validate_trace(path)

    def test_bad_field_type(self, tmp_path):
        path = self.write_lines(
            tmp_path, [self.header(), self.span_line(wall_s="fast")]
        )
        with pytest.raises(TraceFormatError, match="wall_s"):
            validate_trace(path)

    def test_negative_duration(self, tmp_path):
        path = self.write_lines(
            tmp_path, [self.header(), self.span_line(wall_s=-1.0)]
        )
        with pytest.raises(TraceFormatError, match="negative"):
            validate_trace(path)

    def test_duplicate_ids(self, tmp_path):
        path = self.write_lines(
            tmp_path, [self.header(2), self.span_line(), self.span_line()]
        )
        with pytest.raises(TraceFormatError, match="duplicate"):
            validate_trace(path)

    def test_dangling_parent(self, tmp_path):
        path = self.write_lines(
            tmp_path, [self.header(), self.span_line(parent_id="ghost-9")]
        )
        with pytest.raises(TraceFormatError, match="missing parent"):
            validate_trace(path)

    def test_parent_cycle(self, tmp_path):
        a = self.span_line(span_id="a-1", parent_id="a-2")
        b = self.span_line(span_id="a-2", parent_id="a-1")
        path = self.write_lines(tmp_path, [self.header(2), a, b])
        with pytest.raises(TraceFormatError, match="cycle"):
            validate_trace(path)


class TestMetricsFile:
    def test_write_metrics(self, tmp_path):
        m = Metrics()
        m.counter("a.b").inc(3)
        m.histogram("h").observe(2.0)
        path = str(tmp_path / "metrics.json")
        write_metrics(m, path)
        loaded = json.load(open(path))
        assert loaded["a.b"] == 3
        assert loaded["h.count"] == 1


class TestReport:
    def test_tree_coverage(self):
        spans = record_tree()
        root = [s for s in spans if s["name"] == "root"][0]
        # Children of a trivially fast root still cover nearly all of it;
        # force exact numbers instead of relying on timing.
        for s in spans:
            s["wall_s"] = 1.0 if s["name"] == "root" else 0.4
        assert tree_coverage(spans) == pytest.approx(0.8)
        # overlapping (pooled) children clamp at 1.0
        for s in spans:
            if s["name"] != "root":
                s["wall_s"] = 0.9
        assert tree_coverage(spans) == 1.0
        assert root["span_id"]  # root survived the edits

    def test_tree_coverage_empty(self):
        assert tree_coverage([]) == 0.0

    def test_render_report_contents(self):
        spans = record_tree()
        text = render_report(spans)
        assert "run report" in text
        assert "span tree" in text
        assert "root" in text
        assert "phase.a" in text
        assert "hot spans" in text
        assert "coverage:" in text

    def test_render_report_aggregates_same_name(self):
        tracer = Tracer()
        with obs.use_tracer(tracer):
            with obs.span("root"):
                for _ in range(5):
                    with obs.span("solve"):
                        pass
        text = render_report(tracer.finished())
        assert "×5" in text

    def test_render_report_no_spans(self):
        assert "no spans" in render_report([])

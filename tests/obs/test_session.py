"""Tests for TraceSession / trace() / session_from_env."""

import io
import json

from repro import obs
from repro.obs import Metrics, session_from_env, validate_trace


class TestTraceSession:
    def test_exports_trace_and_metrics(self, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        metrics_path = str(tmp_path / "m.json")
        with obs.trace(
            trace_path, metrics_path=metrics_path, root="unit"
        ) as session:
            with obs.span("work"):
                pass
        spans = validate_trace(trace_path)
        assert {s["name"] for s in spans} == {"unit", "work"}
        root = [s for s in spans if s["name"] == "unit"][0]
        work = [s for s in spans if s["name"] == "work"][0]
        assert work["parent_id"] == root["span_id"]
        flat = json.load(open(metrics_path))
        assert flat["obs.spans"] == 2
        assert session.spans == spans

    def test_restores_previous_tracer(self):
        assert not obs.tracing_active()
        with obs.trace(root="r"):
            assert obs.tracing_active()
        assert not obs.tracing_active()

    def test_report_rendered_to_stream(self):
        buf = io.StringIO()
        with obs.trace(report=True, report_stream=buf, root="r"):
            with obs.span("inner"):
                pass
        text = buf.getvalue()
        assert "run report" in text
        assert "inner" in text

    def test_metrics_sources_folded(self, tmp_path):
        path = str(tmp_path / "m.json")
        extra = Metrics()
        extra.counter("component.hits").inc(7)
        with obs.trace(metrics_path=path) as session:
            session.add_metrics_source(lambda: extra)
        assert json.load(open(path))["component.hits"] == 7

    def test_exception_still_exports(self, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        try:
            with obs.trace(trace_path, root="r"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert validate_trace(trace_path)


class TestSessionFromEnv:
    def test_none_without_env(self):
        assert session_from_env({}) is None

    def test_configured_from_env(self, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        env = {"REPRO_TRACE": trace_path, "REPRO_TRACE_ROOT": "bench"}
        session = session_from_env(env)
        assert session is not None
        with session:
            with obs.span("inside"):
                pass
        spans = validate_trace(trace_path)
        assert {s["name"] for s in spans} == {"bench", "inside"}

    def test_report_only(self):
        session = session_from_env({"REPRO_REPORT": "1"})
        assert session is not None
        assert session.report
        assert session.trace_path is None

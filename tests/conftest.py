"""Shared fixtures for the test suite."""

import pytest

from repro.models import Parameters


@pytest.fixture
def baseline() -> Parameters:
    """The paper's Section 6 baseline."""
    return Parameters.baseline()


@pytest.fixture
def small_params() -> Parameters:
    """A small cluster for combinatorial / byte-level tests."""
    return Parameters.baseline().replace(node_set_size=10, redundancy_set_size=5)


@pytest.fixture
def gentle_params() -> Parameters:
    """Parameters in the regime where the paper's approximations are tight:
    mu >> N * lambda and all h-probabilities << 1."""
    return Parameters.baseline().replace(
        node_mttf_hours=2_000_000.0,
        drive_mttf_hours=1_500_000.0,
        hard_error_rate_per_bit=1e-16,
        node_set_size=32,
        redundancy_set_size=8,
    )

"""Tests for the Pareto search (repro.advise.search) and the request
contract (repro.advise.request)."""

import json

import numpy as np
import pytest

import repro
from repro.advise import (
    AdviseError,
    AdviseRequest,
    CostModel,
    MAX_ADVISE_CANDIDATES,
    advise,
    dominates,
    pareto_indices,
)
from repro.engine.sweep import SweepEngine
from repro.models import (
    ConfigSpace,
    InternalRaid,
    ParamAxis,
    Parameters,
    SearchSpace,
)

pytestmark = pytest.mark.advise

BASE = Parameters.baseline()

SMALL_SPACE = SearchSpace(
    configs=ConfigSpace(
        internal_levels=(InternalRaid.NONE, InternalRaid.RAID5),
        fault_tolerances=(1, 2),
    ),
    axes=(ParamAxis("redundancy_set_size", (6, 8)),),
)


def brute_force_front(vectors):
    """Reference non-dominated set: index i survives iff nothing
    dominates it and no equal vector appears at a smaller index."""
    return [
        i
        for i, a in enumerate(vectors)
        if not any(dominates(b, a) for b in vectors)
        and not any(vectors[j] == a for j in range(i))
    ]


class TestDominance:
    def test_dominates(self):
        assert dominates((1, 1, 1), (2, 2, 2))
        assert dominates((1, 2, 3), (1, 2, 4))
        assert not dominates((1, 2, 3), (1, 2, 3))
        assert not dominates((1, 3, 1), (2, 2, 2))

    @pytest.mark.parametrize("seed", range(8))
    def test_pareto_indices_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        # Draw from a tiny grid so equal vectors and ties actually occur.
        vectors = [
            tuple(float(v) for v in rng.integers(0, 4, size=3))
            for _ in range(60)
        ]
        ranks = [f"{rng.integers(0, 10 ** 9):09d}" for _ in vectors]
        front = pareto_indices(vectors, ranks)
        assert sorted(vectors[i] for i in front) == sorted(
            vectors[i] for i in brute_force_front(vectors)
        )
        # Returned ascending by objective vector, no duplicates.
        chosen = [vectors[i] for i in front]
        assert chosen == sorted(chosen)
        assert len(set(chosen)) == len(chosen)

    def test_equal_vectors_deduped_by_rank(self):
        vectors = [(1.0, 1.0, 1.0), (1.0, 1.0, 1.0), (2.0, 2.0, 2.0)]
        assert pareto_indices(vectors, ["b", "a", "c"]) == [1]
        assert pareto_indices(vectors, ["a", "b", "c"]) == [0]


class TestRequest:
    def test_defaults(self):
        request = AdviseRequest()
        assert request.space.size() == 27
        assert request.method == "analytic"
        assert request.seed == 0

    def test_method_aliases(self):
        assert AdviseRequest(method="exact").method == "analytic"
        assert AdviseRequest(method="approx").method == "closed_form"
        with pytest.raises(AdviseError, match="method"):
            AdviseRequest(method="monte-carlo")

    def test_bounds_validated(self):
        with pytest.raises(AdviseError, match="target_events_per_pb_year"):
            AdviseRequest(target_events_per_pb_year=0)
        with pytest.raises(AdviseError, match="max_annual_cost"):
            AdviseRequest(max_annual_cost=-5)
        with pytest.raises(AdviseError, match="seed"):
            AdviseRequest(seed="zero")

    def test_candidate_cap(self):
        big = SearchSpace(
            axes=(
                ParamAxis(
                    "node_set_size",
                    tuple(range(32, 32 + MAX_ADVISE_CANDIDATES // 9 + 1)),
                ),
            )
        )
        with pytest.raises(AdviseError, match="limit"):
            AdviseRequest(space=big)

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(AdviseError, match="budget"):
            AdviseRequest.from_dict({"budget": 100})

    def test_json_round_trip(self):
        request = AdviseRequest(
            space=SMALL_SPACE,
            cost_model=CostModel(fixed_cost_per_year=10.0),
            max_annual_cost=1e6,
            seed=7,
        )
        payload = json.loads(json.dumps(request.to_dict()))
        parsed = AdviseRequest.from_dict(payload)
        assert parsed.to_dict() == request.to_dict()


class TestAdvise:
    def test_search_accounting(self):
        result = advise(AdviseRequest(space=SMALL_SPACE))
        assert result.evaluated == SMALL_SPACE.size()
        assert result.skipped == 0
        assert result.feasible_count <= result.evaluated
        assert (
            result.dominated_count
            == result.feasible_count - len(result.frontier)
        )

    def test_frontier_reliability_bitwise_equals_evaluate(self):
        result = advise(AdviseRequest(space=SMALL_SPACE))
        assert result.frontier
        for candidate in result.frontier:
            direct = repro.evaluate(candidate.config, candidate.params)
            assert candidate.result.mttdl_hours == direct.mttdl_hours
            assert (
                candidate.result.events_per_pb_year
                == direct.events_per_pb_year
            )

    def test_frontier_members_feasible_and_nondominated(self):
        result = advise(AdviseRequest(space=SMALL_SPACE))
        feasible = [c.objectives for c in result.frontier]
        assert all(c.feasible for c in result.frontier)
        for a in feasible:
            assert not any(dominates(b, a) for b in feasible)

    def test_infeasible_candidates_name_violations(self):
        # An impossible budget makes everything infeasible on that axis.
        result = advise(
            AdviseRequest(space=SMALL_SPACE, max_annual_cost=1e-6)
        )
        assert result.feasible_count == 0
        assert result.frontier == ()
        assert result.recommended is None

    def test_capacity_constraint(self):
        result = advise(AdviseRequest(space=SMALL_SPACE, min_usable_pb=1e9))
        assert result.feasible_count == 0

    def test_drive_guard_skips_degenerate_internal_raid(self):
        space = SearchSpace(
            configs=ConfigSpace(
                internal_levels=(InternalRaid.RAID5, InternalRaid.RAID6),
                fault_tolerances=(1,),
            ),
        )
        result = advise(
            AdviseRequest(space=space),
            base_params=BASE.replace(drives_per_node=2),
        )
        # RAID 5 keeps d=2; RAID 6 needs three drives and is skipped.
        assert result.evaluated == 1
        assert result.skipped == 1

    def test_recommended_is_minimum_feasible(self):
        result = advise(AdviseRequest(space=SMALL_SPACE))
        feasible_objectives = sorted(
            c.to_dict()["objectives"]
            for c in result.frontier
        )
        assert list(result.recommended.objectives) == feasible_objectives[0]

    def test_shared_engine_matches_fresh_engine(self):
        request = AdviseRequest(space=SMALL_SPACE)
        engine = SweepEngine(base_params=BASE, jobs=1, cache=False)
        warm = advise(request, engine=engine)
        warm2 = advise(request, engine=engine)
        cold = advise(request)
        for a, b in zip(warm.frontier, cold.frontier):
            assert a.objectives == b.objectives
            assert a.key == b.key
        assert [c.key for c in warm2.frontier] == [
            c.key for c in warm.frontier
        ]
        prov = warm2.provenance
        assert prov.spec_hits > 0

    def test_result_serializes(self):
        result = advise(AdviseRequest(space=SMALL_SPACE))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["kind"] == "repro-advise-result"
        assert payload["evaluated"] == result.evaluated
        assert len(payload["frontier"]) == len(result.frontier)
        assert 0.0 <= payload["provenance"]["spec_hit_rate"] <= 1.0

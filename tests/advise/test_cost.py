"""Tests for the optimizer's cost model (repro.advise.cost)."""

import json

import pytest

from repro.advise import CostError, CostModel
from repro.models import Configuration, InternalRaid, Parameters
from repro.models.parameters import HOURS_PER_YEAR
from repro.models.space import storage_overhead

pytestmark = pytest.mark.advise

BASE = Parameters.baseline()


class TestValidation:
    def test_defaults_are_valid(self):
        model = CostModel()
        assert model.drive_cost_per_year == 90.0
        assert model.fixed_cost_per_year == 0.0

    @pytest.mark.parametrize("bad", [-1.0, "ninety", True, None])
    def test_bad_values_name_the_field(self, bad):
        with pytest.raises(CostError) as excinfo:
            CostModel(node_cost_per_year=bad)
        assert excinfo.value.field == "node_cost_per_year"
        assert "node_cost_per_year" in str(excinfo.value)

    def test_values_coerced_to_float(self):
        model = CostModel(drive_cost_per_year=100)
        assert model.drive_cost_per_year == 100.0
        assert isinstance(model.drive_cost_per_year, float)

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(CostError) as excinfo:
            CostModel.from_dict({"drive_cost": 10})
        assert excinfo.value.field == "drive_cost"

    def test_json_round_trip(self):
        model = CostModel(fixed_cost_per_year=123.0)
        payload = json.loads(json.dumps(model.to_dict()))
        assert CostModel.from_dict(payload) == model


class TestBreakdown:
    def test_terms_and_total(self):
        model = CostModel(
            drive_cost_per_year=10.0,
            node_cost_per_year=100.0,
            network_cost_per_gbps_year=5.0,
            repair_traffic_cost_per_tb=1.0,
            fixed_cost_per_year=7.0,
        )
        config = Configuration(InternalRaid.RAID5, 2)
        cost = model.breakdown(config, BASE)
        n, d = BASE.node_set_size, BASE.drives_per_node
        assert cost.drives == 10.0 * n * d
        assert cost.nodes == 100.0 * n
        assert cost.network == 5.0 * n * BASE.link_speed_bps / 1e9
        assert cost.repair == cost.repair_traffic_tb_per_year
        assert cost.total == (
            cost.drives + cost.nodes + cost.network + cost.repair + 7.0
        )
        assert cost.fixed == 7.0

    def test_overhead_and_usable_capacity(self):
        config = Configuration(InternalRaid.RAID6, 2)
        cost = CostModel().breakdown(config, BASE)
        overhead = storage_overhead(
            config, BASE.redundancy_set_size, BASE.drives_per_node
        )
        assert cost.storage_overhead == overhead
        assert cost.usable_pb == BASE.system_raw_bytes / overhead / 1e15

    def test_repair_traffic_node_term(self):
        model = CostModel()
        config = Configuration(InternalRaid.RAID5, 2)
        traffic = model.repair_traffic_bytes_per_year(config, BASE)
        span = BASE.redundancy_set_size - 2 + 1
        node_failures = (
            BASE.node_set_size * HOURS_PER_YEAR / BASE.node_mttf_hours
        )
        assert traffic == node_failures * span * BASE.node_data_bytes

    def test_no_internal_raid_adds_drive_escalations(self):
        model = CostModel()
        raid = Configuration(InternalRaid.RAID5, 2)
        noraid = Configuration(InternalRaid.NONE, 2)
        absorbed = model.repair_traffic_bytes_per_year(raid, BASE)
        escalated = model.repair_traffic_bytes_per_year(noraid, BASE)
        assert escalated > absorbed
        span = BASE.redundancy_set_size - 2 + 1
        drive_failures = (
            BASE.node_set_size
            * BASE.drives_per_node
            * HOURS_PER_YEAR
            / BASE.drive_mttf_hours
        )
        assert escalated == absorbed + (
            drive_failures * span * BASE.drive_data_bytes
        )

    def test_breakdown_serializes(self):
        cost = CostModel().breakdown(Configuration(InternalRaid.NONE, 1), BASE)
        payload = json.loads(json.dumps(cost.to_dict()))
        assert payload["total"] == cost.total

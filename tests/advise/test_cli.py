"""Tests for the ``repro-advise`` CLI."""

import json

import pytest

import repro
from repro.advise.cli import main

pytestmark = pytest.mark.advise

SMALL = ["--internal", "none,raid5", "--ft", "1,2"]


def test_default_search_renders_table(capsys):
    assert main(SMALL) == 0
    out = capsys.readouterr().out
    assert "Pareto frontier" in out
    assert "events/PB-yr" in out
    assert "recommended (*)" in out


def test_json_stdout_is_the_full_result(capsys):
    assert main(SMALL + ["--json", "-", "--quiet"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "repro-advise-result"
    assert payload["evaluated"] == 12
    assert payload["frontier"]
    assert payload["recommended"] is not None


def test_json_file_and_table_agree(tmp_path, capsys):
    path = tmp_path / "advise.json"
    assert main(SMALL + ["--json", str(path)]) == 0
    out = capsys.readouterr().out
    payload = json.loads(path.read_text())
    for point in payload["frontier"]:
        assert point["config"] in out


def test_frontier_bitwise_matches_library(capsys):
    assert main(SMALL + ["--seed", "3", "--json", "-", "--quiet"]) == 0
    payload = json.loads(capsys.readouterr().out)
    request = repro.AdviseRequest.from_dict(payload["request"])
    direct = repro.advise(request).to_dict()
    assert direct["frontier"] == payload["frontier"]
    assert direct["recommended"] == payload["recommended"]


def test_axis_and_cost_overrides(capsys):
    args = SMALL + [
        "--axis",
        "redundancy_set_size=8,12",
        "--axis",
        "scrub_interval_hours=168,730",
        "--cost",
        "drive_cost_per_year=120",
        "--json",
        "-",
        "--quiet",
    ]
    assert main(args) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["evaluated"] == 2 * 2 * 2 * 2
    request = payload["request"]
    assert request["cost_model"]["drive_cost_per_year"] == 120.0
    assert request["space"]["axes"]["scrub_interval_hours"] == [168, 730]


def test_no_feasible_candidate_exits_one(capsys):
    assert main(SMALL + ["--budget", "1", "--quiet"]) == 1


def test_bad_axis_named_in_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(SMALL + ["--axis", "no_such_field=1,2"])
    assert excinfo.value.code == 2
    assert "no_such_field" in capsys.readouterr().err


def test_bad_internal_level_rejected(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--internal", "raid7"])
    assert excinfo.value.code == 2
    assert "raid7" in capsys.readouterr().err


def test_trace_contains_advise_spans(tmp_path):
    trace = tmp_path / "trace.jsonl"
    assert main(SMALL + ["--quiet", "--trace", str(trace)]) == 0
    spans = repro.obs.validate_trace(str(trace))
    names = {s["name"] for s in spans}
    for required in (
        "repro-advise",
        "advise.search",
        "advise.enumerate",
        "advise.evaluate",
        "advise.cost",
        "advise.frontier",
    ):
        assert required in names

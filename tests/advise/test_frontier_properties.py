"""Hypothesis property tests for the Pareto frontier.

Three properties the optimizer promises, checked over generated inputs:

* **soundness** — no returned point is dominated by any candidate;
* **order invariance** — the frontier is a function of the candidate
  *set*, not the enumeration order (seeded tie ranks break equal-vector
  ties deterministically);
* **determinism** — a fixed-seed search is bitwise reproducible
  end-to-end, including through JSON.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.advise import AdviseRequest, advise, dominates, pareto_indices
from repro.models import ConfigSpace, InternalRaid, ParamAxis, SearchSpace

pytestmark = pytest.mark.advise

# A tiny value grid makes duplicate vectors and ties common, which is
# exactly where a frontier implementation goes wrong.
objective = st.integers(min_value=0, max_value=3).map(float)
vectors = st.lists(
    st.tuples(objective, objective, objective), min_size=1, max_size=40
)


def rank_of(index: int) -> str:
    return f"{index:08d}"


@settings(max_examples=200, deadline=None)
@given(vectors=vectors)
def test_no_returned_point_is_dominated(vectors):
    ranks = [rank_of(i) for i in range(len(vectors))]
    front = pareto_indices(vectors, ranks)
    assert front, "a non-empty candidate set always has a frontier"
    for i in front:
        assert not any(dominates(v, vectors[i]) for v in vectors)
    # Completeness: every non-dominated vector value is represented.
    expected = {
        v for v in vectors if not any(dominates(w, v) for w in vectors)
    }
    assert {vectors[i] for i in front} == expected


@settings(max_examples=200, deadline=None)
@given(vectors=vectors, data=st.data())
def test_front_invariant_under_permutation(vectors, data):
    ranks = [rank_of(i) for i in range(len(vectors))]
    baseline = pareto_indices(vectors, ranks)
    order = data.draw(st.permutations(list(range(len(vectors)))))
    shuffled_front = pareto_indices(
        [vectors[i] for i in order], [ranks[i] for i in order]
    )
    # Mapping the shuffled indices back must give exactly the same
    # candidates (not merely the same vectors): the seeded rank picks
    # the same winner among equal vectors regardless of input order.
    assert sorted(order[j] for j in shuffled_front) == sorted(baseline)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    set_sizes=st.lists(
        st.sampled_from([6, 8, 10, 12]), min_size=1, max_size=3, unique=True
    ),
)
def test_fixed_seed_search_is_bitwise_deterministic(seed, set_sizes):
    def run():
        request = AdviseRequest(
            space=SearchSpace(
                configs=ConfigSpace(
                    internal_levels=(InternalRaid.NONE, InternalRaid.RAID5),
                    fault_tolerances=(1, 2),
                ),
                axes=(ParamAxis("redundancy_set_size", tuple(set_sizes)),),
            ),
            seed=seed,
        )
        payload = advise(request).to_dict()
        # Wall-clock is the one legitimately nondeterministic field.
        payload.pop("elapsed_s")
        return json.dumps(payload, sort_keys=True)

    assert run() == run()

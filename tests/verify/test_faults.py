"""Engine fault injection: damage must degrade to recomputation.

The acceptance bar: corrupted cache entries and killed pool workers must
yield results **bitwise identical** to a cold serial run.
"""

import pytest

from repro.engine import DiskCache, SweepEngine, faultpoints, point_payload_valid
from repro.models import Parameters
from repro.models.configurations import ALL_CONFIGURATIONS, all_configurations
from repro.verify import (
    corrupt_cache_dir,
    fault_drill,
    kill_worker_action,
    poison_chain_memo,
    poison_spec_cache,
)
from repro.verify.faults import CACHE_CORRUPTION_MODES

pytestmark = pytest.mark.verify


def _mttdls(engine, pairs):
    return [r.mttdl_hours for r in engine.evaluate_many(pairs)]


@pytest.fixture(scope="module")
def pairs():
    params = Parameters.baseline()
    return [(config, params) for config in ALL_CONFIGURATIONS]


@pytest.fixture(scope="module")
def reference(pairs):
    """The cold, serial, cache-less truth."""
    return _mttdls(SweepEngine(pairs[0][1], jobs=1), pairs)


class TestFaultpoints:
    def test_fire_without_action_is_a_no_op(self):
        assert faultpoints.fire("nobody-listens") is None

    def test_install_fire_uninstall(self):
        calls = []
        faultpoints.install("unit-test-point", calls.append)
        try:
            assert "unit-test-point" in faultpoints.active()
            faultpoints.fire("unit-test-point", 42)
            assert calls == [42]
        finally:
            faultpoints.uninstall("unit-test-point")
        faultpoints.fire("unit-test-point", 43)
        assert calls == [42]

    def test_injected_context_restores(self):
        with faultpoints.injected("scoped-point", lambda: None):
            assert "scoped-point" in faultpoints.active()
        assert "scoped-point" not in faultpoints.active()

    def test_kill_worker_action_is_deferred(self):
        # Constructing the action must not exit the process.
        action = kill_worker_action(exit_code=3)
        assert callable(action)


class TestCacheCorruption:
    @pytest.mark.parametrize("mode", CACHE_CORRUPTION_MODES)
    def test_corrupt_cache_recomputes_bitwise(
        self, tmp_path, pairs, reference, mode
    ):
        """Warm a disk cache, vandalise every entry, re-read: identical
        numbers, damage counted, entries overwritten with good values."""
        cache = DiskCache(tmp_path, validator=point_payload_valid)
        engine = SweepEngine(pairs[0][1], jobs=1, cache=cache)
        assert _mttdls(engine, pairs) == reference  # warm
        damaged = corrupt_cache_dir(tmp_path, mode)
        assert damaged == len(pairs)
        assert _mttdls(engine, pairs) == reference
        assert cache.rejected == damaged
        # Third pass: the overwritten entries are pure hits, still exact.
        hits_before = cache.hits
        assert _mttdls(engine, pairs) == reference
        assert cache.hits - hits_before == len(pairs)

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            corrupt_cache_dir(tmp_path, "arson")


class TestKilledWorkers:
    def test_pool_falls_back_to_in_process(self, pairs, reference):
        """Killing every worker at startup must not change a digit: the
        engine recomputes in-process after the pool breaks."""
        with faultpoints.injected(
            faultpoints.POOL_WORKER_START, kill_worker_action()
        ):
            observed = _mttdls(SweepEngine(pairs[0][1], jobs=4), pairs)
        assert observed == reference

    def test_pool_unaffected_without_injection(self, pairs, reference):
        assert _mttdls(SweepEngine(pairs[0][1], jobs=4), pairs) == reference


class TestPoisonedSpecCache:
    def test_poisoned_entries_are_recompiled(self, pairs, reference):
        engine = SweepEngine(pairs[0][1], jobs=1)
        assert _mttdls(engine, pairs) == reference
        poisoned = poison_spec_cache(engine._ctx.specs)
        assert poisoned > 0
        assert _mttdls(engine, pairs) == reference
        # The mismatches were detected, not silently trusted.
        assert engine._ctx.specs.structure_rebuilds == poisoned

    def test_poisoned_memo_templates_are_rebuilt(self):
        """The template memo keeps the same guarantee (its per-hit
        structure check), independent of the engine path."""
        from repro.core import ChainBuilder, ChainStructureMemo

        def builder():
            b = ChainBuilder()
            b.add_rate("up", "down", 2.0)
            b.add_rate("down", "up", 50.0)
            b.add_rate("down", "lost", 0.25)
            return b

        memo = ChainStructureMemo()
        reference = memo.build("k", builder(), "up").mean_time_to_absorption()
        assert poison_chain_memo(memo) == 1
        with pytest.warns(RuntimeWarning, match="rebuilt its topology"):
            again = memo.build("k", builder(), "up").mean_time_to_absorption()
        assert again == reference


class TestFaultDrill:
    def test_full_drill_is_clean(self):
        checked, violations = fault_drill(all_configurations(3), jobs=2)
        assert violations == []
        # 4 corruption modes x 2 passes + killed workers + poisoned specs.
        assert checked == 10

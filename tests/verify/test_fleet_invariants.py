"""The fleet-* invariants: registered, smoke-tagged, green on main,
and loud when a collapse law is deliberately broken."""

import pytest

from repro.fleet import PhaseType
from repro.models import Parameters
from repro.verify import REGISTRY, VerifyContext
from repro.verify.fleet import FLEET_REL_TOL, fleet_scenarios

pytestmark = [pytest.mark.verify, pytest.mark.fleet]

FLEET_INVARIANTS = [
    "fleet-homogeneous-collapse",
    "fleet-exponential-collapse",
    "fleet-time-rescaling",
    "fleet-dominance",
    "fleet-sparse-dense-agreement",
    "fleet-phase-type-certification",
]


@pytest.fixture(scope="module")
def ctx():
    base = Parameters.baseline()
    return VerifyContext(points=[base], base=base)


class TestRegistration:
    @pytest.mark.parametrize("name", FLEET_INVARIANTS)
    def test_registered_and_smoke_tagged(self, name):
        inv = REGISTRY.get(name)
        assert "fleet" in inv.tags
        assert "smoke" in inv.tags  # repro-verify --smoke runs them

    def test_selectable_by_fleet_tag(self):
        names = {inv.name for inv in REGISTRY.select(tags=["fleet"])}
        assert set(FLEET_INVARIANTS) <= names


class TestInvariantsHoldOnMain:
    @pytest.mark.parametrize("name", FLEET_INVARIANTS)
    def test_invariant_passes_at_baseline(self, ctx, name):
        check = REGISTRY.get(name).run(ctx)
        assert check.ok, [v.to_dict() for v in check.violations]
        assert check.checked > 0

    def test_scenario_slice_is_deterministic(self, ctx):
        a = [f.cache_key() for f in fleet_scenarios(ctx)]
        b = [f.cache_key() for f in fleet_scenarios(ctx)]
        assert a == b


class TestDeliberateViolationIsCaught:
    def test_broken_exponential_twin_is_flagged(self, ctx, monkeypatch):
        # Sabotage the collapse: make "exponential" phase-types carry a
        # slightly wrong rate.  The bitwise oracle must catch it.
        true_exponential = PhaseType.exponential.__func__

        def skewed(cls, rate):
            return true_exponential(cls, rate * (1.0 + 1e-6))

        monkeypatch.setattr(
            PhaseType, "exponential", classmethod(skewed)
        )
        check = REGISTRY.get("fleet-exponential-collapse").run(ctx)
        assert not check.ok
        assert all(
            not v.details["env_equal"] for v in check.violations
        )

    def test_tolerance_is_the_corpus_bound(self):
        assert FLEET_REL_TOL == 1e-9

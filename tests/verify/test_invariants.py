"""The paper-derived invariants: they hold on main, and a deliberately
broken model is caught loudly."""

import pytest

from repro.models import NoRaidNodeModel, Parameters
from repro.models.configurations import ALL_CONFIGURATIONS, all_configurations
from repro.verify import REGISTRY, VerifyContext, closed_form_bound
from repro.verify.invariants import CLOSED_FORM_REL_ERROR_BOUNDS

pytestmark = pytest.mark.verify


@pytest.fixture(scope="module")
def ctx():
    """All nine configurations at the baseline point only (fast)."""
    base = Parameters.baseline()
    return VerifyContext(configs=ALL_CONFIGURATIONS, points=[base], base=base)


class TestInvariantsHoldOnMain:
    @pytest.mark.parametrize(
        "name",
        [
            "generator-conservation",
            "mttdl-monotone-nft",
            "raid-level-dominance",
            "critical-set-fractions",
            "closed-form-envelope",
            "time-rescaling-metamorphic",
        ],
    )
    def test_invariant_passes_at_baseline(self, ctx, name):
        check = REGISTRY.get(name).run(ctx)
        assert check.ok, [v.to_dict() for v in check.violations]
        assert check.checked > 0

    def test_every_configuration_has_a_declared_bound(self):
        for config in ALL_CONFIGURATIONS:
            bound = closed_form_bound(config)
            assert 0.0 < bound <= 1.0

    def test_bounds_tighten_with_internal_raid(self):
        for nft in (1, 2, 3):
            assert (
                CLOSED_FORM_REL_ERROR_BOUNDS[True][nft]
                <= CLOSED_FORM_REL_ERROR_BOUNDS[False][nft]
            )


class TestDeliberateViolationIsCaught:
    """The acceptance gate: breaking monotonicity on purpose must flip the
    registry (and the CLI) to a non-zero verdict."""

    @pytest.fixture
    def flipped_chain(self, monkeypatch):
        """Swap the no-RAID chains for NFT 1 and 3: MTTDL then *decreases*
        as the fault tolerance rises, violating mttdl-monotone-nft.  The
        engine evaluates models through spec()/chain_env(), so both are
        redirected (chain() follows automatically — it binds the spec)."""
        original_spec = NoRaidNodeModel.spec
        original_env = NoRaidNodeModel.chain_env

        def swapped(self):
            return NoRaidNodeModel(self.params, 4 - self.fault_tolerance)

        monkeypatch.setattr(
            NoRaidNodeModel, "spec", lambda self: original_spec(swapped(self))
        )
        monkeypatch.setattr(
            NoRaidNodeModel,
            "chain_env",
            lambda self: original_env(swapped(self)),
        )

    def test_registry_reports_the_violation(self, flipped_chain):
        base = Parameters.baseline()
        ctx = VerifyContext(
            configs=all_configurations(3), points=[base], base=base
        )
        report = REGISTRY.run(ctx, names=["mttdl-monotone-nft"])
        assert not report.ok
        assert report.exit_code == 1
        assert any(
            v.invariant == "mttdl-monotone-nft" and v.config.endswith("noraid")
            for v in report.violations
        )

    def test_cli_exits_non_zero(self, flipped_chain):
        from repro.verify.cli import main

        assert main(["--smoke", "--jobs", "1", "--quiet"]) != 0

    def test_unbroken_control(self):
        """Same selection, no patch: the invariant holds (guards against
        the violation test passing for an unrelated reason)."""
        base = Parameters.baseline()
        ctx = VerifyContext(
            configs=all_configurations(3), points=[base], base=base
        )
        report = REGISTRY.run(ctx, names=["mttdl-monotone-nft"])
        assert report.ok

"""Registry mechanics: registration, selection, context memoization."""

import pytest

from repro.models import Parameters
from repro.models.configurations import all_configurations
from repro.verify import REGISTRY, VerifyContext
from repro.verify.registry import Invariant, InvariantRegistry, Violation

pytestmark = pytest.mark.verify


def _noop_check(ctx):
    return 1, []


def _failing_check(ctx):
    return 1, [Violation(invariant="always-fails", message="by design")]


def _inv(name, tags=(), check=_noop_check):
    return Invariant(name=name, description=name, tags=tuple(tags), check=check)


class TestRegistry:
    def test_register_and_get(self):
        reg = InvariantRegistry()
        inv = reg.register(_inv("a"))
        assert reg.get("a") is inv
        assert reg.names() == ["a"]
        assert len(reg) == 1

    def test_duplicate_name_rejected(self):
        reg = InvariantRegistry()
        reg.register(_inv("a"))
        with pytest.raises(ValueError, match="already registered"):
            reg.register(_inv("a"))

    def test_unknown_name_lists_known(self):
        reg = InvariantRegistry()
        reg.register(_inv("known"))
        with pytest.raises(KeyError, match="known"):
            reg.get("missing")

    def test_decorator_registers_and_returns_function(self):
        reg = InvariantRegistry()

        @reg.invariant("decorated", "a decorated check", tags=("x",))
        def check(ctx):
            return 0, []

        assert reg.get("decorated").check is check
        assert check(None) == (0, [])

    def test_select_by_name_and_tag(self):
        reg = InvariantRegistry()
        reg.register(_inv("a", tags=("fast",)))
        reg.register(_inv("b", tags=("slow",)))
        reg.register(_inv("c", tags=("fast", "slow")))
        assert [i.name for i in reg.select(names=["b", "a"])] == ["b", "a"]
        assert [i.name for i in reg.select(tags=["fast"])] == ["a", "c"]
        assert [i.name for i in reg.select(names=["a", "b"], tags=["slow"])] == ["b"]

    def test_run_collects_report(self):
        reg = InvariantRegistry()
        reg.register(_inv("ok"))
        reg.register(_inv("always-fails", check=_failing_check))
        ctx = VerifyContext(configs=all_configurations(1))
        report = reg.run(ctx)
        assert not report.ok
        assert report.exit_code == 1
        assert [c.name for c in report.checks] == ["ok", "always-fails"]
        assert [v.invariant for v in report.violations] == ["always-fails"]

    def test_skipped_means_nothing_checked(self):
        reg = InvariantRegistry()
        reg.register(_inv("idle", check=lambda ctx: (0, [])))
        ctx = VerifyContext(configs=all_configurations(1))
        report = reg.run(ctx)
        assert report.checks[0].skipped
        assert report.checks[0].ok
        assert report.ok


class TestBuiltinRegistry:
    def test_paper_invariants_are_registered(self):
        names = REGISTRY.names()
        for expected in (
            "generator-conservation",
            "mttdl-monotone-nft",
            "raid-level-dominance",
            "critical-set-fractions",
            "closed-form-envelope",
            "time-rescaling-metamorphic",
            "cross-method-agreement",
            "engine-fault-degradation",
        ):
            assert expected in names


class TestVerifyContext:
    def test_mttdl_table_covers_grid_and_memoizes(self, baseline):
        configs = all_configurations(2)
        points = [baseline, baseline.replace(drive_mttf_hours=600_000.0)]
        ctx = VerifyContext(configs=configs, points=points, base=baseline)
        table = ctx.mttdl_table("analytic")
        assert len(table) == len(configs) * len(points)
        assert set(table) == {
            (c.key, i) for c in configs for i in range(len(points))
        }
        assert all(v > 0 for v in table.values())
        # Memoized: the same dict object comes back.
        assert ctx.mttdl_table("analytic") is table

    def test_tables_per_method_differ(self, baseline):
        configs = all_configurations(1)
        ctx = VerifyContext(configs=configs, base=baseline)
        exact = ctx.mttdl_table("analytic")
        approx = ctx.mttdl_table("closed_form")
        assert exact != approx

    def test_point_label_diffs_against_base(self, baseline):
        points = [baseline, baseline.replace(node_mttf_hours=123_456.0)]
        ctx = VerifyContext(
            configs=all_configurations(1), points=points, base=baseline
        )
        assert ctx.point_label(0) == {"point": 0}
        assert ctx.point_label(1) == {"node_mttf_hours": 123_456.0}

    def test_total_points(self, baseline):
        ctx = VerifyContext(
            configs=all_configurations(2),
            points=[baseline, baseline, baseline],
        )
        assert ctx.total_points == 6 * 3

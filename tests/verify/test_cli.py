"""The repro-verify command: exit codes, reports, selection flags."""

import json

import pytest

from repro.verify.cli import main
from repro.verify.report import REPORT_SCHEMA_VERSION

pytestmark = pytest.mark.verify

FAST = ["--only", "critical-set-fractions", "--quiet"]


class TestExitCodes:
    def test_smoke_run_is_clean(self, capsys):
        """The acceptance criterion: all nine configurations across the
        27-point lattice, every invariant, zero violations, exit 0."""
        assert main(["--smoke"]) == 0
        out = capsys.readouterr().out
        assert "9 configurations x 27 lattice points" in out
        assert "all invariants held" in out
        assert "VIOLATION" not in out

    def test_single_fast_invariant(self):
        assert main(["--smoke"] + FAST) == 0


class TestSelection:
    def test_list_names_every_invariant(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "generator-conservation",
            "mttdl-monotone-nft",
            "raid-level-dominance",
            "closed-form-envelope",
            "time-rescaling-metamorphic",
            "cross-method-agreement",
            "engine-fault-degradation",
        ):
            assert name in out

    def test_unknown_invariant_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--smoke", "--only", "no-such-invariant"])
        assert excinfo.value.code == 2
        assert "no-such-invariant" in capsys.readouterr().err

    def test_tag_selection(self, capsys):
        assert main(["--smoke", "--tag", "combinatorics"]) == 0
        out = capsys.readouterr().out
        assert "critical-set-fractions" in out
        assert "generator-conservation" not in out


class TestJsonReport:
    def test_json_to_stdout(self, capsys):
        assert main(["--smoke", "--json", "-"] + FAST) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == REPORT_SCHEMA_VERSION
        assert payload["ok"] is True
        assert payload["violation_count"] == 0
        assert payload["lattice_points"] == 27
        assert len(payload["configurations"]) == 9
        names = [inv["name"] for inv in payload["invariants"]]
        assert names == ["critical-set-fractions"]

    def test_json_to_file(self, tmp_path):
        target = tmp_path / "report.json"
        assert main(["--smoke", "--json", str(target)] + FAST) == 0
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["ok"] is True
        assert payload["invariants"][0]["checked"] > 0


class TestObservability:
    def test_smoke_trace_is_well_formed(self, capsys, tmp_path):
        """The CI leg: --smoke --trace emits a schema-valid trace whose
        tree hangs off one repro-verify root with per-invariant spans."""
        from repro.obs import validate_trace

        trace_path = str(tmp_path / "verify.jsonl")
        assert main(
            ["--smoke", "--trace", trace_path, "--quiet",
             "--only", "generator-conservation",
             "--only", "critical-set-fractions"]
        ) == 0
        capsys.readouterr()
        spans = validate_trace(trace_path)
        names = {s["name"] for s in spans}
        assert "repro-verify" in names
        assert "verify.invariant" in names
        invariants = {
            s["attrs"]["invariant"]
            for s in spans
            if s["name"] == "verify.invariant"
        }
        assert invariants == {
            "generator-conservation", "critical-set-fractions"
        }
        roots = [s for s in spans if s["parent_id"] is None]
        assert [r["name"] for r in roots] == ["repro-verify"]

    def test_metrics_export_counts_checks(self, capsys, tmp_path):
        metrics_path = str(tmp_path / "metrics.json")
        assert main(
            ["--smoke", "--metrics", metrics_path] + FAST
        ) == 0
        capsys.readouterr()
        flat = json.loads(open(metrics_path).read())
        assert flat["verify.checks"] > 0
        assert flat["verify.violations"] == 0

    def test_report_flag_prints_tree(self, capsys):
        assert main(["--smoke", "--report"] + FAST) == 0
        err = capsys.readouterr().err
        assert "run report" in err
        assert "repro-verify" in err


class TestParameterOverrides:
    def test_set_overrides_the_base_point(self):
        assert main(["--smoke", "--set", "node_set_size=32"] + FAST) == 0

    def test_bad_override_is_a_usage_error(self):
        with pytest.raises(SystemExit):
            main(["--smoke", "--set", "not-an-assignment"] + FAST)
        with pytest.raises(SystemExit):
            main(["--smoke", "--set", "no_such_field=3"] + FAST)

    def test_restricted_fault_tolerance(self, capsys):
        assert main(["--smoke", "--max-fault-tolerance", "2", "--json", "-",
                     "--quiet", "--only", "raid-level-dominance"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["configurations"]) == 6

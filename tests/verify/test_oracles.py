"""Metamorphic and cross-method oracles."""

import pytest

from repro.models import Configuration, InternalRaid, Parameters
from repro.sim import accelerated_parameters
from repro.verify import (
    cross_method_check,
    mc_reference_mttdl,
    rescaled_parameters,
)
from repro.verify.oracles import MC_SYSTEM_OVERRIDES, mc_bias_envelope

pytestmark = pytest.mark.verify


class TestRescaledParameters:
    def test_scales_rates_both_ways(self, baseline):
        scaled = rescaled_parameters(baseline, 4.0)
        assert scaled.node_mttf_hours == baseline.node_mttf_hours / 4
        assert scaled.drive_mttf_hours == baseline.drive_mttf_hours / 4
        assert scaled.drive_max_iops == baseline.drive_max_iops * 4
        assert scaled.drive_sustained_bps == baseline.drive_sustained_bps * 4
        assert scaled.link_speed_bps == baseline.link_speed_bps * 4

    def test_rejects_non_positive_scale(self, baseline):
        with pytest.raises(ValueError):
            rescaled_parameters(baseline, 0.0)
        with pytest.raises(ValueError):
            rescaled_parameters(baseline, -1.0)

    @pytest.mark.parametrize("config", [
        Configuration(InternalRaid.NONE, 2),
        Configuration(InternalRaid.RAID5, 1),
        Configuration(InternalRaid.RAID6, 3),
    ], ids=lambda c: c.key)
    def test_mttdl_scales_exactly(self, baseline, config):
        """The metamorphic law itself: MTTDL(s * rates) == MTTDL / s."""
        scale = 16.0
        base_v = config.mttdl_hours(baseline)
        scaled_v = config.mttdl_hours(rescaled_parameters(baseline, scale))
        assert scaled_v == pytest.approx(base_v / scale, rel=1e-9)


class TestMcReference:
    def test_no_raid_matches_chain(self, baseline):
        config = Configuration(InternalRaid.NONE, 2)
        assert mc_reference_mttdl(config, baseline) == config.mttdl_hours(baseline)

    def test_raid_uses_exact_rates_under_acceleration(self, baseline):
        """At heavy acceleration the exact-rates reference must part ways
        with the approximate chain the engine solves by default."""
        config = Configuration(InternalRaid.RAID5, 1)
        acc = accelerated_parameters(
            baseline.replace(**MC_SYSTEM_OVERRIDES), 200.0
        )
        exact_ref = mc_reference_mttdl(config, acc)
        approx_chain = config.mttdl_hours(acc)
        assert exact_ref > 0
        assert exact_ref != approx_chain

    def test_bias_envelope_widens_with_depth(self):
        raid5 = [
            mc_bias_envelope(Configuration(InternalRaid.RAID5, t))
            for t in (1, 2, 3)
        ]
        assert raid5 == sorted(raid5)
        none = mc_bias_envelope(Configuration(InternalRaid.NONE, 1))
        assert none <= raid5[0] or none < 1.0


class TestCrossMethodCheck:
    def test_smoke_mode_skips_simulation(self, baseline):
        report = cross_method_check(
            Configuration(InternalRaid.RAID5, 2), baseline, replicas=0
        )
        assert report.ok
        assert report.monte_carlo is None
        assert report.mc_analytic_hours is None
        assert report.closed_form_rel_error <= report.closed_form_bound

    def test_simulation_leg_agrees(self, baseline):
        small = baseline.replace(**MC_SYSTEM_OVERRIDES)
        report = cross_method_check(
            Configuration(InternalRaid.NONE, 1),
            small,
            replicas=60,
            seed=0,
            acceleration=200.0,
        )
        assert report.ok, [v.to_dict() for v in report.violations]
        assert report.monte_carlo is not None
        assert report.monte_carlo.replicas == 60
        lo, hi = report.monte_carlo.ci_hours(0.95)
        assert lo < report.monte_carlo.mean_hours < hi

    def test_zero_band_is_violated(self, baseline):
        """With the agreement band squeezed to (essentially) nothing the
        seeded estimate cannot match the chain solve exactly: the oracle
        must report a simulation violation, proving it can fire."""
        small = baseline.replace(**MC_SYSTEM_OVERRIDES)
        report = cross_method_check(
            Configuration(InternalRaid.NONE, 1),
            small,
            replicas=40,
            seed=0,
            sigmas=1e-9,
            mc_bias_rel=0.0,
            acceleration=200.0,
        )
        assert not report.ok
        assert any("simulation" in v.message for v in report.violations)

    def test_closed_form_violation_with_tight_tolerance(self, baseline):
        report = cross_method_check(
            Configuration(InternalRaid.NONE, 1),
            baseline,
            closed_form_rel_tol=1e-12,
            replicas=0,
        )
        assert not report.ok
        assert any("closed form" in v.message for v in report.violations)


class TestConfidenceIntervals:
    def test_ci_hours_width_grows_with_confidence(self, baseline):
        small = baseline.replace(**MC_SYSTEM_OVERRIDES)
        report = cross_method_check(
            Configuration(InternalRaid.NONE, 1),
            small,
            replicas=40,
            seed=0,
            acceleration=200.0,
        )
        mc = report.monte_carlo
        lo90, hi90 = mc.ci_hours(0.90)
        lo99, hi99 = mc.ci_hours(0.99)
        assert hi99 - lo99 > hi90 - lo90
        # 95% matches the classic 1.96-sigma interval.
        lo95, hi95 = mc.ci_hours(0.95)
        classic_lo, classic_hi = mc.ci95_hours
        assert lo95 == pytest.approx(classic_lo, rel=1e-3)
        assert hi95 == pytest.approx(classic_hi, rel=1e-3)

"""Contract tests for the worker topologies.

Every topology must honor the same surface: start/submit/stop lifecycle,
shard pinning, per-worker state built by ``worker_state(index)``,
exceptions travelling through futures, and (for processes) crash
detection with clean :class:`WorkerCrashed` failures plus optional
restart.
"""

import asyncio
import os
import time

import pytest

from repro import obs
from repro.obs.tracer import Tracer
from repro.runtime import (
    InlineTopology,
    ProcessTopology,
    ThreadTopology,
    WorkerCrashed,
)


def _echo(state, payload):
    return (state, payload)


def _add(state, payload):
    return state + payload


def _pid_of(state, payload):
    return os.getpid()


def _raise(state, payload):
    raise ValueError(f"boom: {payload}")


def _maybe_exit(state, payload):
    if payload == "die":
        os._exit(11)
    return payload


def _traced(state, payload):
    with obs.span("runtime.test.work", payload=payload):
        return payload * 2


def _state_index(index):
    return index * 10


TOPOLOGIES = [
    lambda handler, **kw: InlineTopology(handler, **kw),
    lambda handler, **kw: ThreadTopology(handler, size=1, **kw),
]


class TestCommonContract:
    @pytest.mark.parametrize("make", TOPOLOGIES)
    def test_submit_before_start_raises(self, make):
        topology = make(_echo)
        with pytest.raises(RuntimeError):
            topology.submit("x")

    @pytest.mark.parametrize("make", TOPOLOGIES)
    def test_roundtrip_and_state(self, make):
        with make(_echo, worker_state=_state_index) as topology:
            assert topology.submit("payload").result() == (0, "payload")

    @pytest.mark.parametrize("make", TOPOLOGIES)
    def test_exceptions_travel_through_future(self, make):
        with make(_raise) as topology:
            future = topology.submit("x")
            with pytest.raises(ValueError, match="boom: x"):
                future.result()

    def test_process_roundtrip_and_state(self):
        with ProcessTopology(_add, size=2, worker_state=_state_index) as topology:
            assert topology.submit(5, shard=0).result() == 5
            assert topology.submit(5, shard=1).result() == 15

    def test_process_exceptions_travel_through_future(self):
        with ProcessTopology(_raise, size=1) as topology:
            future = topology.submit("y")
            with pytest.raises(ValueError, match="boom: y"):
                future.result()

    def test_asubmit_bridges_to_asyncio(self):
        async def drive():
            with ThreadTopology(_add, size=2, worker_state=_state_index) as topology:
                return await topology.asubmit(1, shard=1)

        assert asyncio.run(drive()) == 11


class TestShardPinning:
    def test_thread_shard_pins_to_slot_state(self):
        with ThreadTopology(_echo, size=4, worker_state=_state_index) as topology:
            for shard in range(8):
                state, _ = topology.submit("p", shard=shard).result()
                assert state == (shard % 4) * 10

    def test_process_shard_pins_to_worker(self):
        with ProcessTopology(_pid_of, size=2) as topology:
            pids = {
                shard: topology.submit(None, shard=shard).result()
                for shard in range(4)
            }
        assert pids[0] == pids[2]
        assert pids[1] == pids[3]
        assert pids[0] != pids[1]
        assert pids[0] != os.getpid()


class TestHealth:
    def test_health_reports_slots(self):
        with ProcessTopology(_echo, size=2) as topology:
            infos = topology.health()
            assert [w.index for w in infos] == [0, 1]
            assert all(w.alive for w in infos)
            assert all(w.pid not in (None, os.getpid()) for w in infos)
            assert all(w.restarts == 0 for w in infos)


class TestCrashSemantics:
    def test_crash_fails_inflight_with_worker_crashed(self):
        with ProcessTopology(_maybe_exit, size=1) as topology:
            future = topology.submit("die")
            with pytest.raises(WorkerCrashed) as excinfo:
                future.result(timeout=10)
            assert excinfo.value.exit_code == 11

    def test_no_restart_by_default(self):
        with ProcessTopology(_maybe_exit, size=1) as topology:
            with pytest.raises(WorkerCrashed):
                topology.submit("die").result(timeout=10)
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if not topology.health()[0].alive:
                    break
                time.sleep(0.01)
            with pytest.raises(WorkerCrashed):
                topology.submit("after").result(timeout=10)

    def test_restart_respawns_and_recovers(self):
        with ProcessTopology(_maybe_exit, size=1, restart=True) as topology:
            first_pid = topology.health()[0].pid
            with pytest.raises(WorkerCrashed):
                topology.submit("die").result(timeout=10)
            # wait for the replacement slot to come up
            deadline = time.monotonic() + 10
            value = None
            while time.monotonic() < deadline:
                try:
                    value = topology.submit("ok").result(timeout=10)
                    break
                except WorkerCrashed:
                    time.sleep(0.02)
            assert value == "ok"
            info = topology.health()[0]
            assert info.restarts >= 1
            assert info.pid != first_pid
            assert topology.restart_count() >= 1


class TestSpanAdoption:
    def test_worker_spans_adopt_under_submitting_span(self):
        tracer = Tracer()
        with obs.use_tracer(tracer):
            with ProcessTopology(_traced, size=1) as topology:
                with obs.span("runtime.test.parent"):
                    assert topology.submit(21).result() == 42
        spans = tracer.finished()
        by_name = {s["name"]: s for s in spans}
        assert "runtime.test.work" in by_name
        work = by_name["runtime.test.work"]
        assert work["parent_id"] == by_name["runtime.test.parent"]["span_id"]
        assert work["pid"] != by_name["runtime.test.parent"]["pid"]

    def test_untraced_submission_ships_no_spans(self):
        with ProcessTopology(_traced, size=1) as topology:
            assert topology.submit(3).result() == 6


class TestUnpicklableReplies:
    def test_unpicklable_result_becomes_runtime_error(self):
        with ProcessTopology(_make_unpicklable, size=1) as topology:
            future = topology.submit(None)
            with pytest.raises(RuntimeError, match="could not be serialized"):
                future.result(timeout=10)
            # the worker survived the bad reply
            assert topology.submit(None) is not None


def _make_unpicklable(state, payload):
    return lambda: None

"""Chunking and pool-gating logic of the runtime fan-out layer."""

import os

from repro.runtime import (
    MIN_TASKS_FOR_POOL,
    default_jobs,
    run_chunks,
    should_pool,
    split_chunks,
)


def _double_chunk(chunk):
    return [2 * x for x in chunk]


class TestSplitChunks:
    def test_even_split(self):
        assert split_chunks(list(range(8)), 4) == [
            [0, 1],
            [2, 3],
            [4, 5],
            [6, 7],
        ]

    def test_remainder_goes_to_leading_chunks(self):
        assert split_chunks(list(range(7)), 3) == [[0, 1, 2], [3, 4], [5, 6]]

    def test_more_parts_than_items(self):
        assert split_chunks([1, 2], 5) == [[1], [2]]

    def test_order_preserved(self):
        items = list(range(23))
        chunks = split_chunks(items, 4)
        assert [x for c in chunks for x in c] == items

    def test_empty(self):
        assert split_chunks([], 3) == [[]]


class TestShouldPool:
    def test_one_job_never_pools(self):
        assert not should_pool(1, 1000)

    def test_tiny_batch_never_pools(self):
        assert not should_pool(8, MIN_TASKS_FOR_POOL - 1)

    def test_single_cpu_never_pools(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert not should_pool(8, 1000)

    def test_pools_with_work_and_cpus(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        assert should_pool(2, MIN_TASKS_FOR_POOL)

    def test_default_jobs_is_at_least_one(self):
        assert default_jobs() >= 1


class TestRunChunks:
    def test_serial_fallback_preserves_order(self):
        chunks = split_chunks(list(range(10)), 3)
        outputs = run_chunks(_double_chunk, chunks, jobs=1)
        assert [x for out in outputs for x in out] == [2 * x for x in range(10)]

    def test_pooled_run_matches_serial(self, monkeypatch):
        """Force the real process pool (the gate would decline it on a
        single-CPU host) and check it returns the serial answer in order."""
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        chunks = split_chunks(list(range(16)), 4)
        serial = run_chunks(_double_chunk, chunks, jobs=1)
        pooled = run_chunks(_double_chunk, chunks, jobs=4)
        assert pooled == serial

    def test_crashed_chunks_recomputed_in_process(self, monkeypatch):
        """Workers killed on startup (fork-inherited faultpoint) must not
        change results: every crashed chunk is recomputed in-process."""
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        from repro.runtime import faultpoints

        chunks = split_chunks(list(range(16)), 4)
        serial = run_chunks(_double_chunk, chunks, jobs=1)

        def die():
            os._exit(23)

        with faultpoints.injected(faultpoints.POOL_WORKER_START, die):
            recovered = run_chunks(_double_chunk, chunks, jobs=4)
        assert recovered == serial

"""Regenerate tests/data/golden_baseline.json after a *deliberate* model
change.  Run from the repository root::

    PYTHONPATH=src python tests/data/regen_golden.py

Review the diff before committing: every changed digit is a changed
headline number in README.md / EXPERIMENTS.md.
"""

import json
from pathlib import Path

from repro import evaluate
from repro.core.solvers import SolveOptions
from repro.fleet import FleetModel, canonical_fleets
from repro.models import Parameters
from repro.models.configurations import ALL_CONFIGURATIONS

TARGET = Path(__file__).with_name("golden_baseline.json")


def main() -> None:
    base = Parameters.baseline()
    data = {
        "comment": (
            "Pinned 9-configuration baseline at the paper's Section 6 "
            "parameters. These numbers are documented in README.md and "
            "EXPERIMENTS.md; regenerate them only when a model change is "
            "deliberate, via: PYTHONPATH=src python tests/data/regen_golden.py"
        ),
        "parameters": "Parameters.baseline()",
        "tolerances": {"mttdl_rel": 1e-9, "events_rel": 1e-9},
        "configurations": {},
    }
    for config in ALL_CONFIGURATIONS:
        exact = evaluate(config, base)
        approx = evaluate(
            config, base, options=SolveOptions(backend="closed_form")
        )
        data["configurations"][config.key] = {
            "mttdl_hours_analytic": exact.mttdl_hours,
            "mttdl_hours_closed_form": approx.mttdl_hours,
            "events_per_pb_year": exact.events_per_pb_year,
        }
    data["fleets"] = {}
    for name, fleet in canonical_fleets(base).items():
        model = FleetModel(fleet)
        data["fleets"][name] = {
            "mttdl_hours_analytic": model.mttdl_hours(),
            "num_states": model.num_states,
            "expected_repairs_per_year": fleet.expected_repairs_per_year(),
        }
    TARGET.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    print(
        f"wrote {TARGET} ({len(data['configurations'])} configurations, "
        f"{len(data['fleets'])} fleets)"
    )


if __name__ == "__main__":
    main()

"""Tests for the mesh flow-level rebuild simulation."""

import pytest

from repro.cluster import (
    Flow,
    MeshTopology,
    max_min_allocate,
    rebuild_flow_study,
)
from repro.cluster.flows import flow_links


@pytest.fixture
def mesh():
    return MeshTopology(3, 3, 3, link_bandwidth_bps=8e9)  # 1 GB/s links


class TestFlow:
    def test_validation(self):
        with pytest.raises(ValueError):
            Flow((0, 0, 0), (0, 0, 0))
        with pytest.raises(ValueError):
            Flow((0, 0, 0), (1, 0, 0), volume_bytes=0)

    def test_flow_links_are_route_edges(self, mesh):
        links = flow_links(mesh, Flow((0, 0, 0), (2, 1, 0)))
        assert len(links) == 3  # manhattan distance
        # Each link is canonical (sorted endpoints).
        for a, b in links:
            assert a <= b


class TestMaxMin:
    def test_single_flow_gets_full_link(self, mesh):
        alloc = max_min_allocate(mesh, [Flow((0, 0, 0), (1, 0, 0))])
        assert alloc.rates[0] == pytest.approx(1e9)

    def test_two_flows_share_a_link(self, mesh):
        flows = [Flow((0, 0, 0), (1, 0, 0)), Flow((0, 0, 0), (1, 0, 0))]
        alloc = max_min_allocate(mesh, flows)
        assert alloc.rates[0] == pytest.approx(0.5e9)
        assert alloc.rates[1] == pytest.approx(0.5e9)

    def test_disjoint_flows_dont_interfere(self, mesh):
        flows = [
            Flow((0, 0, 0), (1, 0, 0)),
            Flow((0, 2, 2), (1, 2, 2)),
        ]
        alloc = max_min_allocate(mesh, flows)
        assert alloc.rates[0] == pytest.approx(1e9)
        assert alloc.rates[1] == pytest.approx(1e9)

    def test_max_min_fairness_property(self, mesh):
        """A short local flow sharing no saturated link with the long flows
        keeps a higher rate."""
        flows = [
            Flow((0, 0, 0), (2, 2, 2)),
            Flow((0, 0, 0), (2, 2, 2)),
            Flow((0, 2, 0), (0, 2, 1)),
        ]
        alloc = max_min_allocate(mesh, flows)
        assert alloc.rates[2] >= alloc.rates[0]

    def test_no_link_oversubscribed(self, mesh):
        """Feasibility: per-link load never exceeds capacity."""
        flows = [
            Flow(mesh.coordinate_of(i), mesh.coordinate_of((i + 7) % 27))
            for i in range(20)
        ]
        alloc = max_min_allocate(mesh, flows)
        loads = {}
        for f, r in zip(flows, alloc.rates):
            for link in flow_links(mesh, f):
                loads[link] = loads.get(link, 0.0) + r
        for load in loads.values():
            assert load <= 1e9 * (1 + 1e-9)

    def test_custom_capacity(self, mesh):
        alloc = max_min_allocate(
            mesh, [Flow((0, 0, 0), (1, 0, 0))], link_capacity_bps=4e9
        )
        assert alloc.rates[0] == pytest.approx(0.5e9)

    def test_completion_time(self, mesh):
        flows = [Flow((0, 0, 0), (1, 0, 0), volume_bytes=2e9)]
        alloc = max_min_allocate(mesh, flows)
        assert alloc.completion_time_seconds(flows) == pytest.approx(2.0)

    def test_empty_flows_rejected(self, mesh):
        with pytest.raises(ValueError):
            max_min_allocate(mesh, [])


class TestRebuildStudy:
    def test_study_structure(self):
        mesh = MeshTopology(4, 4, 4, 10e9)
        study = rebuild_flow_study(mesh, failed_node=21, source_count=6)
        assert study.aggregate_rate_bytes_per_sec > 0
        assert study.slowest_flow_rate > 0
        assert study.per_destination_rate <= study.aggregate_rate_bytes_per_sec

    def test_abstraction_ratio_near_one(self):
        """The single-link reduction the reliability model uses is within
        ~2x of the mesh's actual per-destination rebuild throughput — the
        justification for Section 6's simplification."""
        mesh = MeshTopology(4, 4, 4, 10e9)
        study = rebuild_flow_study(mesh, failed_node=21, source_count=6)
        assert 0.3 < study.abstraction_ratio < 2.0

    def test_fewer_sources_less_contention(self):
        mesh = MeshTopology(4, 4, 4, 10e9)
        narrow = rebuild_flow_study(mesh, 21, source_count=2)
        wide = rebuild_flow_study(mesh, 21, source_count=8)
        # Per-flow rates drop as fan-in widens.
        assert narrow.slowest_flow_rate >= wide.slowest_flow_rate

    def test_validation(self):
        mesh = MeshTopology(2, 2, 2, 1e9)
        with pytest.raises(ValueError):
            rebuild_flow_study(mesh, failed_node=99, source_count=2)
        with pytest.raises(ValueError):
            rebuild_flow_study(mesh, failed_node=0, source_count=7)

"""Tests for the drive-granular brick store (both redundancy dimensions)."""

import pytest

from repro.cluster import BrickStore, Cluster, ClusterError, DataLossError
from repro.models import InternalRaid, Parameters


def make_store(internal=InternalRaid.RAID5, t=2, n=10, r=5, d=6):
    params = Parameters.baseline().replace(
        node_set_size=n, redundancy_set_size=r, drives_per_node=d
    )
    return BrickStore(Cluster(params), fault_tolerance=t, internal=internal)


def fill(store, count=20):
    payloads = {}
    for i in range(count):
        key = f"obj-{i}"
        payload = bytes((i * 7 + j) % 256 for j in range(200 + i))
        store.put(key, payload)
        payloads[key] = payload
    return payloads


class TestDataPath:
    @pytest.mark.parametrize(
        "internal", [InternalRaid.NONE, InternalRaid.RAID5, InternalRaid.RAID6]
    )
    def test_roundtrip_all_internal_levels(self, internal):
        store = make_store(internal=internal)
        payloads = fill(store)
        for key, payload in payloads.items():
            assert store.get(key) == payload

    def test_duplicate_key_rejected(self):
        store = make_store()
        store.put("x", b"data")
        with pytest.raises(KeyError):
            store.put("x", b"data")

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError):
            make_store().put("x", b"")

    def test_invalid_tolerance(self):
        params = Parameters.baseline().replace(node_set_size=10, redundancy_set_size=5)
        with pytest.raises(ValueError):
            BrickStore(Cluster(params), fault_tolerance=5)


class TestDriveFailures:
    def test_raid5_survives_one_drive_per_node(self):
        store = make_store(internal=InternalRaid.RAID5)
        payloads = fill(store)
        preserved = store.fail_drive(0, 2)
        assert preserved > 0  # internal re-stripe saved the shards
        for key, payload in payloads.items():
            assert store.get(key) == payload
        status = store.brick_status(0)
        assert status.active_drives == 5
        assert status.lost_shards == 0

    def test_raid5_sequential_drive_failures_fail_in_place(self):
        """Fail-in-place: repeated single-drive failures with re-stripes in
        between shrink the array but never lose data (until the minimum
        spindle count)."""
        store = make_store(internal=InternalRaid.RAID5, d=8)
        payloads = fill(store)
        for drive in (0, 1, 2):
            store.fail_drive(3, drive)
        for key, payload in payloads.items():
            assert store.get(key) == payload

    def test_raid6_survives_double_drive_failure_without_restripe(self):
        """RAID 6 tolerates two strips missing at once (the restripe after
        the first failure happens inside fail_drive; to exercise the 2-loss
        decode we drop two drives from the brick directly)."""
        store = make_store(internal=InternalRaid.RAID6, d=8)
        payloads = fill(store)
        brick = store._bricks[1]
        brick.drop_drive(0)
        brick.drop_drive(1)
        for key, payload in payloads.items():
            assert store.get(key) == payload

    def test_no_internal_raid_drive_failure_needs_peers(self):
        """Without internal RAID a dead drive's shards are gone from the
        node, but the cross-node code repairs them."""
        store = make_store(internal=InternalRaid.NONE, t=2)
        payloads = fill(store, count=30)
        store.fail_drive(2, 1)
        # Everything still readable through the cross-node code.
        for key, payload in payloads.items():
            assert store.get(key) == payload
        repaired, lost = store.scrub_and_repair()
        assert lost == []
        # After repair, full redundancy again: another two node failures ok.
        store.fail_node(0)
        store.fail_node(5)
        for key, payload in payloads.items():
            assert store.get(key) == payload

    def test_internal_raid_shields_cross_node_budget(self):
        """The Section 3 point of internal RAID: a drive failure does not
        consume cross-node tolerance.  RAID 5 + one drive failure + two
        node failures (t = 2) still loses nothing."""
        store = make_store(internal=InternalRaid.RAID5, t=2)
        payloads = fill(store)
        store.fail_drive(1, 0)
        store.fail_node(3)
        store.fail_node(7)
        for key, payload in payloads.items():
            assert store.get(key) == payload


class TestNodeFailures:
    def test_rebuild_restores_everything(self):
        store = make_store()
        payloads = fill(store)
        store.fail_node(4)
        rebuilt = store.rebuild_node(4)
        assert rebuilt > 0
        repaired, lost = store.scrub_and_repair()
        assert lost == []
        for key, payload in payloads.items():
            assert store.get(key) == payload

    def test_beyond_tolerance_loses_critical_stripes(self):
        store = make_store(t=2)
        payloads = fill(store, count=40)
        for node in (0, 3, 7):
            store.fail_node(node)
        lost = 0
        for key in payloads:
            try:
                store.get(key)
            except DataLossError:
                lost += 1
        assert lost == len(store.data_loss_events)
        # Exactly the stripes containing all three failed nodes die.
        for key in store.data_loss_events:
            info = store._objects[key]
            assert {0, 3, 7} <= set(info.redundancy_set.nodes)

    def test_unknown_brick(self):
        with pytest.raises(ClusterError):
            make_store().brick_status(99)

"""Tests for cluster entities and fail-in-place accounting."""

import pytest

from repro.cluster import Cluster, ClusterError, Drive, DriveState, Node, NodeState
from repro.models import GB, Parameters


@pytest.fixture
def params():
    return Parameters.baseline().replace(node_set_size=4, redundancy_set_size=3)


class TestDrive:
    def test_lifecycle(self):
        drive = Drive(0, 300 * GB)
        assert drive.is_healthy
        drive.fail()
        assert drive.state is DriveState.FAILED
        drive.retire()
        assert drive.state is DriveState.RETIRED

    def test_double_fail_rejected(self):
        drive = Drive(0, 300 * GB)
        drive.fail()
        with pytest.raises(ClusterError):
            drive.fail()

    def test_retire_requires_failed(self):
        with pytest.raises(ClusterError):
            Drive(0, 300 * GB).retire()


class TestNode:
    def test_build(self):
        node = Node.build(3, 12, 300 * GB)
        assert node.node_id == 3
        assert node.healthy_drive_count == 12
        assert node.raw_capacity_bytes == pytest.approx(12 * 300 * GB)

    def test_fail_drive_shrinks_capacity(self):
        node = Node.build(0, 4, 100.0)
        node.fail_drive(2)
        assert node.healthy_drive_count == 3
        assert node.raw_capacity_bytes == pytest.approx(300.0)

    def test_restripe_retires(self):
        node = Node.build(0, 4, 100.0)
        node.fail_drive(1)
        node.restripe(1)
        assert node.drives[1].state is DriveState.RETIRED

    def test_fail_node(self):
        node = Node.build(0, 2, 100.0)
        node.fail()
        assert not node.is_available
        with pytest.raises(ClusterError):
            node.fail()
        with pytest.raises(ClusterError):
            node.fail_drive(0)

    def test_fail_unknown_drive(self):
        with pytest.raises(ClusterError):
            Node.build(0, 2, 100.0).fail_drive(5)

    def test_zero_drives_rejected(self):
        with pytest.raises(ClusterError):
            Node.build(0, 0, 100.0)


class TestCluster:
    def test_initial_population(self, params):
        cluster = Cluster(params)
        assert cluster.size == 4
        assert cluster.available_count == 4
        assert len(list(cluster)) == 4

    def test_unknown_node(self, params):
        with pytest.raises(ClusterError):
            Cluster(params).node(99)

    def test_capacity_accounting(self, params):
        cluster = Cluster(params)
        raw0 = cluster.raw_capacity_bytes
        assert raw0 == pytest.approx(4 * 12 * 300 * GB)
        assert cluster.utilization == pytest.approx(0.75)
        cluster.node(0).fail()
        assert cluster.raw_capacity_bytes == pytest.approx(raw0 * 3 / 4)
        assert cluster.utilization == pytest.approx(1.0)

    def test_logical_capacity_fixed(self, params):
        cluster = Cluster(params)
        before = cluster.logical_capacity_bytes
        cluster.node(1).fail()
        assert cluster.logical_capacity_bytes == before

    def test_spare_capacity_check(self, params):
        cluster = Cluster(params)
        assert cluster.has_spare_capacity
        cluster.node(0).fail()
        # 75% of 4 nodes = 3 nodes of data; 3 survivors leave no headroom.
        assert not cluster.has_spare_capacity

    def test_add_node(self, params):
        cluster = Cluster(params)
        node = cluster.add_node()
        assert node.node_id == 4
        assert cluster.size == 5
        another = cluster.add_node()
        assert another.node_id == 5

    def test_drive_failure_shrinks_utilization_denominator(self, params):
        cluster = Cluster(params)
        cluster.node(0).fail_drive(0)
        assert cluster.utilization > 0.75

    def test_health_summary(self, params):
        cluster = Cluster(params)
        cluster.node(0).fail()
        cluster.node(1).fail_drive(3)
        summary = cluster.health_summary()
        assert summary["nodes_failed"] == 1
        assert summary["nodes_available"] == 3
        assert summary["drives_failed"] == 1
        assert summary["drives_healthy"] == 4 * 12 - 1

"""Tests for redundancy-set placement."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    RandomPlacement,
    RedundancySet,
    RotatingPlacement,
    all_redundancy_sets,
    count_redundancy_sets,
)
from repro.models import k2_factor, k3_factor


class TestRedundancySet:
    def test_basic_properties(self):
        rset = RedundancySet((3, 1, 4))
        assert rset.size == 3
        assert rset.contains(1)
        assert not rset.contains(2)
        assert rset.shard_position(4) == 2

    def test_repeated_nodes_rejected(self):
        with pytest.raises(ValueError):
            RedundancySet((1, 1, 2))

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            RedundancySet((1,))

    def test_shard_position_missing_node(self):
        with pytest.raises(KeyError):
            RedundancySet((1, 2)).shard_position(3)

    def test_erasures(self):
        rset = RedundancySet((3, 1, 4, 7))
        assert rset.erasures([1, 7, 99]) == [1, 3]

    def test_criticality(self):
        rset = RedundancySet((0, 1, 2, 3))
        assert not rset.is_critical([0], fault_tolerance=2)
        assert rset.is_critical([0, 2], fault_tolerance=2)
        assert not rset.has_lost_data([0, 2], fault_tolerance=2)
        assert rset.has_lost_data([0, 2, 3], fault_tolerance=2)


class TestCounting:
    def test_count(self):
        assert count_redundancy_sets(64, 8) == math.comb(64, 8)

    def test_enumeration_matches_count(self):
        sets = list(all_redundancy_sets(7, 3))
        assert len(sets) == math.comb(7, 3)
        assert len(set(sets)) == len(sets)

    def test_enumeration_guard(self):
        with pytest.raises(ValueError):
            all_redundancy_sets(64, 32)


class TestRotatingPlacement:
    def test_deterministic(self):
        p = RotatingPlacement(12, 4, seed=3)
        assert p.place(17).nodes == p.place(17).nodes

    def test_set_size_respected(self):
        p = RotatingPlacement(12, 4)
        for s in range(50):
            assert p.place(s).size == 4

    def test_balance_over_full_rotation(self):
        """Over N consecutive stripes of one stride every node appears
        exactly R times total / N."""
        n, r = 10, 4
        p = RotatingPlacement(n, r)
        counts = p.shard_counts(n)
        assert all(c == r for c in counts)

    def test_long_run_balance(self):
        n, r = 16, 5
        p = RotatingPlacement(n, r)
        counts = p.shard_counts(1600)
        expected = 1600 * r / n
        assert all(abs(c - expected) / expected < 0.05 for c in counts)

    def test_different_seeds_differ(self):
        a = RotatingPlacement(12, 4, seed=0).place(5).nodes
        b = RotatingPlacement(12, 4, seed=99).place(5).nodes
        assert a != b

    def test_negative_stripe_rejected(self):
        with pytest.raises(ValueError):
            RotatingPlacement(12, 4).place(-1)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            RotatingPlacement(4, 5)


class TestRandomPlacement:
    def test_deterministic_per_stripe(self):
        p = RandomPlacement(20, 6, seed=1)
        assert p.place(3).nodes == p.place(3).nodes

    def test_critical_fraction_matches_k2(self):
        """Measured fraction of critical sets under two failures converges
        to the paper's k2 = (R-1)/(N-1)."""
        n, r = 20, 6
        p = RandomPlacement(n, r, seed=5)
        measured = p.critical_fraction_empirical([2, 9], 20_000, fault_tolerance=2)
        assert measured == pytest.approx(k2_factor(n, r), rel=0.15)

    def test_critical_fraction_matches_k3(self):
        n, r = 12, 6
        p = RandomPlacement(n, r, seed=6)
        measured = p.critical_fraction_empirical(
            [0, 4, 7], 40_000, fault_tolerance=3
        )
        assert measured == pytest.approx(k3_factor(n, r), rel=0.25)

    def test_sets_containing(self):
        p = RandomPlacement(10, 4, seed=2)
        stripes = list(range(200))
        mine = p.sets_containing(3, stripes)
        assert all(p.place(s).contains(3) for s in mine)
        expected = 200 * 4 / 10
        assert abs(len(mine) - expected) < expected * 0.5

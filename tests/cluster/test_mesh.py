"""Tests for the 3-D mesh interconnect model."""

import itertools

import pytest

from repro.cluster import MeshTopology, route_xyz


@pytest.fixture
def cube():
    return MeshTopology(4, 4, 4, link_bandwidth_bps=10e9)


class TestStructure:
    def test_node_count(self, cube):
        assert cube.node_count == 64

    def test_cube_for(self):
        mesh = MeshTopology.cube_for(64, 1e9)
        assert mesh.node_count >= 64
        assert (mesh.nx, mesh.ny, mesh.nz) == (4, 4, 4)
        bigger = MeshTopology.cube_for(65, 1e9)
        assert bigger.node_count >= 65

    def test_index_coordinate_roundtrip(self, cube):
        for i in range(cube.node_count):
            assert cube.index_of(cube.coordinate_of(i)) == i

    def test_coordinate_out_of_range(self, cube):
        with pytest.raises(ValueError):
            cube.index_of((4, 0, 0))
        with pytest.raises(ValueError):
            cube.coordinate_of(64)

    def test_interior_degree_six(self, cube):
        assert cube.degree((1, 1, 1)) == 6

    def test_corner_degree_three(self, cube):
        assert cube.degree((0, 0, 0)) == 3

    def test_neighbors_are_distance_one(self, cube):
        for n in cube.neighbors((2, 1, 3)):
            assert cube.distance((2, 1, 3), n) == 1

    def test_diameter(self, cube):
        assert cube.diameter == 9

    def test_link_count(self, cube):
        # 3 * 3 planes of 16 links per axis = 3 * 48.
        assert cube.link_count == 3 * 3 * 16

    def test_bisection(self, cube):
        assert cube.bisection_links == 16

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MeshTopology(0, 4, 4, 1e9)
        with pytest.raises(ValueError):
            MeshTopology(4, 4, 4, 0.0)


class TestDistances:
    def test_average_distance_matches_bruteforce(self):
        mesh = MeshTopology(3, 2, 2, 1e9)
        coords = list(mesh.coordinates())
        total, pairs = 0, 0
        for a, b in itertools.product(coords, coords):
            if a == b:
                continue
            total += mesh.distance(a, b)
            pairs += 1
        assert mesh.average_distance() == pytest.approx(total / pairs)

    def test_single_node_mesh(self):
        mesh = MeshTopology(1, 1, 1, 1e9)
        assert mesh.average_distance() == 0.0
        assert mesh.diameter == 0


class TestAgainstNetworkx:
    """Cross-validation against an independent graph library."""

    @pytest.fixture(scope="class")
    def graph_and_mesh(self):
        import networkx as nx

        mesh = MeshTopology(3, 4, 2, 1e9)
        graph = nx.Graph()
        for coord in mesh.coordinates():
            for neighbor in mesh.neighbors(coord):
                graph.add_edge(coord, neighbor)
        return graph, mesh

    def test_distances_match_shortest_paths(self, graph_and_mesh):
        import networkx as nx

        graph, mesh = graph_and_mesh
        coords = list(mesh.coordinates())
        for a in coords[::3]:
            lengths = nx.single_source_shortest_path_length(graph, a)
            for b in coords[::5]:
                assert mesh.distance(a, b) == lengths[b]

    def test_diameter_matches(self, graph_and_mesh):
        import networkx as nx

        graph, mesh = graph_and_mesh
        assert nx.diameter(graph) == mesh.diameter

    def test_link_count_matches_edges(self, graph_and_mesh):
        graph, mesh = graph_and_mesh
        assert graph.number_of_edges() == mesh.link_count

    def test_route_lengths_are_shortest(self, graph_and_mesh):
        import networkx as nx

        graph, mesh = graph_and_mesh
        src, dst = (0, 0, 0), (2, 3, 1)
        path = route_xyz(src, dst)
        assert len(path) - 1 == nx.shortest_path_length(graph, src, dst)


class TestRouting:
    def test_route_endpoints(self):
        path = route_xyz((0, 0, 0), (2, 1, 3))
        assert path[0] == (0, 0, 0)
        assert path[-1] == (2, 1, 3)

    def test_route_is_minimal(self):
        src, dst = (0, 2, 1), (3, 0, 2)
        path = route_xyz(src, dst)
        manhattan = sum(abs(a - b) for a, b in zip(src, dst))
        assert len(path) == manhattan + 1

    def test_route_steps_are_unit(self):
        path = route_xyz((1, 1, 1), (3, 3, 0))
        for a, b in zip(path, path[1:]):
            assert sum(abs(x - y) for x, y in zip(a, b)) == 1

    def test_route_to_self(self):
        assert route_xyz((1, 1, 1), (1, 1, 1)) == [(1, 1, 1)]


class TestEffectiveBandwidth:
    def test_effective_bandwidth_positive(self, cube):
        assert cube.effective_node_bandwidth_bps() > 0

    def test_effective_bandwidth_in_plausible_range(self, cube):
        """The reliability model reduces the mesh to ~one link's worth of
        sustained per-node bandwidth; the all-to-all estimate should be
        the same order of magnitude."""
        eff = cube.effective_node_bandwidth_bps()
        assert 0.1 * cube.link_bandwidth_bps < eff < 6 * cube.link_bandwidth_bps

    def test_link_loads_cover_all_links(self):
        mesh = MeshTopology(2, 2, 2, 1e9)
        loads = mesh.link_loads_all_to_all()
        assert len(loads) == mesh.link_count
        assert all(v > 0 for v in loads.values())

    def test_link_loads_guard(self):
        with pytest.raises(ValueError):
            MeshTopology(10, 10, 10, 1e9).link_loads_all_to_all()

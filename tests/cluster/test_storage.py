"""Tests for the erasure-coded stripe store."""

import os

import pytest

from repro.cluster import (
    Cluster,
    ClusterError,
    DataLossError,
    StripeStore,
)
from repro.models import Parameters


@pytest.fixture
def store():
    params = Parameters.baseline().replace(node_set_size=10, redundancy_set_size=5)
    return StripeStore(Cluster(params), fault_tolerance=2)


def fill(store, count=25, seed=0):
    payloads = {}
    for i in range(count):
        key = f"obj-{i}"
        payload = bytes((seed + i + j) % 256 for j in range(100 + i))
        store.put(key, payload)
        payloads[key] = payload
    return payloads


class TestDataPath:
    def test_put_get_roundtrip(self, store):
        payloads = fill(store)
        for key, payload in payloads.items():
            assert store.get(key) == payload

    def test_put_duplicate_rejected(self, store):
        store.put("x", b"data")
        with pytest.raises(KeyError):
            store.put("x", b"data")

    def test_empty_payload_rejected(self, store):
        with pytest.raises(ValueError):
            store.put("x", b"")

    def test_get_unknown_key(self, store):
        with pytest.raises(KeyError):
            store.get("nope")

    def test_delete(self, store):
        store.put("x", b"some data here")
        store.delete("x")
        assert store.object_count == 0
        with pytest.raises(KeyError):
            store.get("x")

    def test_info(self, store):
        info = store.put("x", b"hello world")
        assert info.size == 11
        assert info.redundancy_set.size == 5
        assert store.info("x") == info

    def test_keys_sorted(self, store):
        fill(store, count=3)
        assert store.keys() == ["obj-0", "obj-1", "obj-2"]

    def test_invalid_fault_tolerance(self):
        params = Parameters.baseline().replace(node_set_size=10, redundancy_set_size=5)
        with pytest.raises(ValueError):
            StripeStore(Cluster(params), fault_tolerance=5)
        with pytest.raises(ValueError):
            StripeStore(Cluster(params), fault_tolerance=0)


class TestUpdate:
    def test_same_size_update_roundtrip(self, store):
        store.put("x", bytes(range(100)))
        new = bytes(reversed(range(100)))
        store.update("x", new)
        assert store.get("x") == new

    def test_update_survives_failures(self, store):
        """Incrementally-patched parity must still decode after erasures."""
        store.put("x", bytes(100))
        new = bytes((i * 3) % 256 for i in range(100))
        store.update("x", new)
        info = store.info("x")
        store.fail_node(info.redundancy_set.nodes[0])
        store.fail_node(info.redundancy_set.nodes[3])
        assert store.get("x") == new

    def test_different_size_update_reencodes(self, store):
        store.put("x", b"short")
        big = bytes(5000)
        store.update("x", big)
        assert store.get("x") == big
        assert store.info("x").size == 5000

    def test_update_degraded_rejected(self, store):
        store.put("x", bytes(100))
        info = store.info("x")
        store.fail_node(info.redundancy_set.nodes[0])
        with pytest.raises(ClusterError, match="degraded"):
            store.update("x", bytes(100))

    def test_update_unknown_key(self, store):
        with pytest.raises(KeyError):
            store.update("nope", b"data")

    def test_update_empty_rejected(self, store):
        store.put("x", b"data")
        with pytest.raises(ValueError):
            store.update("x", b"")

    def test_partial_change_patches_minimally(self, store):
        """Only shards of changed blocks move; unchanged data shards keep
        their object identity."""
        payload = bytearray(1000)
        store.put("x", bytes(payload))
        info = store.info("x")
        k = store.codec.data_blocks
        node0 = info.redundancy_set.nodes[0]
        before = store._shards[node0][(info.stripe_id, 0)]
        # Change only the tail (last block).
        payload[-1] = 0xFF
        store.update("x", bytes(payload))
        after = store._shards[node0][(info.stripe_id, 0)]
        assert before == after  # first block untouched
        assert store.get("x") == bytes(payload)


class TestFailuresWithinTolerance:
    def test_single_failure_still_readable(self, store):
        payloads = fill(store)
        store.fail_node(1)
        for key, payload in payloads.items():
            assert store.get(key) == payload

    def test_double_failure_still_readable(self, store):
        payloads = fill(store)
        store.fail_node(1)
        store.fail_node(6)
        for key, payload in payloads.items():
            assert store.get(key) == payload

    def test_rebuild_restores_full_redundancy(self, store):
        payloads = fill(store)
        store.fail_node(2)
        store.rebuild_node(2)
        report = store.scrub(repair=False)
        assert report.degraded == 0
        assert not report.has_data_loss
        # Rebuilt shards must not live on the failed node.
        for key in payloads:
            assert 2 not in store.info(key).redundancy_set.nodes

    def test_rebuild_then_more_failures(self, store):
        payloads = fill(store)
        store.fail_node(2)
        store.rebuild_node(2)
        store.fail_node(0)
        store.fail_node(5)
        for key, payload in payloads.items():
            assert store.get(key) == payload

    def test_put_on_degraded_placement_rejected(self, store):
        store.fail_node(0)
        with pytest.raises(ClusterError):
            # Some placement will eventually include node 0.
            for i in range(50):
                store.put(f"k{i}", b"payload")


class TestDataLoss:
    def test_beyond_tolerance_loses_some_objects(self, store):
        payloads = fill(store, count=60)
        for node in (0, 3, 7):
            store.fail_node(node)
        lost = []
        for key in payloads:
            try:
                store.get(key)
            except DataLossError:
                lost.append(key)
        # Only stripes whose redundancy set contains all three nodes die.
        expected = [
            key
            for key, info in ((k, store.info(k)) for k in payloads)
            if {0, 3, 7} <= set(info.redundancy_set.nodes)
        ]
        assert sorted(lost) == sorted(expected)
        assert sorted(store.data_loss_events) == sorted(expected)

    def test_scrub_reports_losses(self, store):
        fill(store, count=40)
        for node in (0, 3, 7):
            store.fail_node(node)
        report = store.scrub(repair=True)
        assert report.objects_checked == 40
        assert report.intact + report.degraded + len(report.lost) == 40
        # Repair fixed the degraded ones.
        second = store.scrub(repair=False)
        assert second.degraded == 0
        assert len(second.lost) == len(report.lost)

    def test_rebuild_skips_lost_objects(self, store):
        fill(store, count=40)
        for node in (0, 3, 7):
            store.fail_node(node)
        before = len(store.data_loss_events)
        store.rebuild_node(0)
        assert len(store.data_loss_events) >= before

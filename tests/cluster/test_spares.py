"""Tests for fail-in-place spare provisioning."""

import math

import pytest

from repro.cluster import Cluster, SparePolicy
from repro.models import HOURS_PER_YEAR, Parameters


@pytest.fixture
def params():
    return Parameters.baseline().replace(node_set_size=8, redundancy_set_size=4)


class TestProvisioningPlan:
    def test_expected_failures_hand_computed(self, params):
        policy = SparePolicy(params)
        horizon = 2 * HOURS_PER_YEAR
        plan = policy.provisioning_plan(horizon)
        node_p = 1 - math.exp(-horizon / params.node_mttf_hours)
        assert plan.expected_node_failures == pytest.approx(8 * node_p)
        surviving = 8 - plan.expected_node_failures
        drive_p = 1 - math.exp(-horizon / params.drive_mttf_hours)
        assert plan.expected_drive_failures == pytest.approx(
            surviving * 12 * drive_p
        )

    def test_loss_and_required_utilization(self, params):
        plan = SparePolicy(params).provisioning_plan(HOURS_PER_YEAR)
        expected_loss = (
            plan.expected_node_failures * 12 + plan.expected_drive_failures
        ) * params.drive_capacity_bytes
        assert plan.expected_capacity_loss_bytes == pytest.approx(expected_loss)
        raw = params.system_raw_bytes
        assert plan.required_utilization == pytest.approx((raw - expected_loss) / raw)

    def test_longer_horizon_needs_more_spare(self, params):
        policy = SparePolicy(params)
        one = policy.provisioning_plan(HOURS_PER_YEAR)
        five = policy.provisioning_plan(5 * HOURS_PER_YEAR)
        assert five.required_utilization < one.required_utilization

    def test_invalid_horizon(self, params):
        with pytest.raises(ValueError):
            SparePolicy(params).provisioning_plan(0)

    def test_maintenance_free_life_consistent(self, params):
        policy = SparePolicy(params)
        life = policy.maintenance_free_life_hours()
        at_life = policy.provisioning_plan(life).required_utilization
        assert at_life == pytest.approx(params.capacity_utilization, rel=1e-3)


class TestPolicy:
    def test_invalid_threshold(self, params):
        with pytest.raises(ValueError):
            SparePolicy(params, utilization_threshold=0.0)
        with pytest.raises(ValueError):
            SparePolicy(params, utilization_threshold=1.5)

    def test_no_add_when_healthy(self, params):
        cluster = Cluster(params)
        assert SparePolicy(params, 0.9).nodes_to_add(cluster) == 0

    def test_adds_after_node_failure(self, params):
        cluster = Cluster(params)
        cluster.node(0).fail()
        cluster.node(1).fail()
        # 6 nodes left, utilization = 0.75 * 8/6 = 1.0 > 0.9.
        policy = SparePolicy(params, 0.9)
        needed = policy.nodes_to_add(cluster)
        assert needed >= 1
        added = policy.apply(cluster)
        assert added == needed
        assert cluster.utilization <= 0.9 + 1e-9

    def test_apply_idempotent_when_under_threshold(self, params):
        cluster = Cluster(params)
        policy = SparePolicy(params, 0.9)
        assert policy.apply(cluster) == 0
        assert cluster.size == 8

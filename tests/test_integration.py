"""Cross-package integration tests: the library's pieces agree with each
other end-to-end."""

import math

import pytest

from repro import (
    Configuration,
    InternalRaid,
    PAPER_TARGET_EVENTS_PER_PB_YEAR,
    Parameters,
    evaluate_all,
)
from repro.analysis import run_baseline, sweep
from repro.cluster import BrickStore, Cluster, DataLossError, StripeStore
from repro.core import sample_absorption_times
from repro.models import (
    HOURS_PER_YEAR,
    RecursiveNoRaidModel,
    mission_survival_probability,
)
from repro.sim import accelerated_parameters, estimate_mttdl


class TestAnalyticStackConsistency:
    def test_configuration_api_matches_analysis_api(self, baseline):
        """The Configuration facade and the baseline report must agree."""
        report = run_baseline(baseline)
        for config, result in evaluate_all(baseline):
            assert report.result_for(config.key).mttdl_hours == pytest.approx(
                result.mttdl_hours
            )

    def test_sweep_at_baseline_matches_direct_evaluation(self, baseline):
        config = Configuration(InternalRaid.RAID5, 2)
        points = sweep(
            [config],
            baseline,
            [baseline.drive_mttf_hours],
            lambda p, x: p.replace(drive_mttf_hours=float(x)),
        )
        assert points[0].events_per_pb_year == pytest.approx(
            config.reliability(baseline).events_per_pb_year
        )

    def test_mission_survival_consistent_with_mttdl(self, baseline):
        """Transient solve and absorption solve describe the same chain."""
        config = Configuration(InternalRaid.NONE, 2)
        chain = config.chain(baseline)
        mttdl = config.mttdl_hours(baseline)
        t = HOURS_PER_YEAR
        survival = mission_survival_probability(chain, t)
        assert survival == pytest.approx(math.exp(-t / mttdl), abs=1e-4)


class TestChainVsSampling:
    def test_gillespie_agrees_with_solver_on_paper_chain(self, baseline):
        """Direct trajectory sampling of the Figure 9 chain reproduces the
        linear-algebra MTTDL (accelerated so paths absorb quickly)."""
        acc = accelerated_parameters(
            baseline.replace(node_set_size=12), failure_scale=300.0
        )
        model = RecursiveNoRaidModel(acc, 2)
        chain = model.chain()
        analytic = chain.mean_time_to_absorption()
        summary = sample_absorption_times(chain, n=400, seed=9)
        assert summary.contains(analytic, sigmas=4.0)

    def test_physical_simulation_agrees_with_chain(self, baseline):
        """The full stack: event-driven physical simulation ==
        recursively-constructed chain == closed-form ballpark."""
        acc = accelerated_parameters(
            baseline.replace(node_set_size=12), failure_scale=300.0
        )
        config = Configuration(InternalRaid.NONE, 2)
        mc = estimate_mttdl(config, acc, replicas=100, seed=21)
        assert mc.consistent_with(config.mttdl_hours(acc), sigmas=4.0)


class TestBytesAgreeWithModels:
    def test_store_loses_data_exactly_when_model_says_possible(self, baseline):
        """At fault tolerance t, any t node failures are always survivable
        at the byte level; t+1 failures lose exactly the stripes whose
        redundancy sets contain all failed nodes."""
        params = baseline.replace(node_set_size=9, redundancy_set_size=4)
        t = 2
        store = StripeStore(Cluster(params), fault_tolerance=t)
        payloads = {}
        for i in range(40):
            payloads[f"k{i}"] = bytes((i + j) % 251 for j in range(64))
            store.put(f"k{i}", payloads[f"k{i}"])
        store.fail_node(0)
        store.fail_node(1)
        for key, payload in payloads.items():
            assert store.get(key) == payload
        store.fail_node(2)
        for key in payloads:
            critical = {0, 1, 2} <= set(store.info(key).redundancy_set.nodes)
            if critical:
                with pytest.raises(DataLossError):
                    store.get(key)
            else:
                assert store.get(key) == payloads[key]

    def test_brick_store_matrix_matches_configuration_semantics(self, baseline):
        """Internal RAID 5 absorbs one drive failure per brick without
        consuming cross-node tolerance — the load-bearing premise of the
        hierarchical models."""
        params = baseline.replace(
            node_set_size=8, redundancy_set_size=4, drives_per_node=6
        )
        store = BrickStore(
            Cluster(params), fault_tolerance=2, internal=InternalRaid.RAID5
        )
        payloads = {}
        for i in range(20):
            payloads[f"k{i}"] = bytes((3 * i + j) % 256 for j in range(128))
            store.put(f"k{i}", payloads[f"k{i}"])
        # One drive failure in every single brick...
        for node in range(8):
            store.fail_drive(node, node % 6)
        # ...plus two whole-node failures: still zero loss.
        store.fail_node(1)
        store.fail_node(5)
        for key, payload in payloads.items():
            assert store.get(key) == payload
        assert store.data_loss_events == []


class TestTargetSemantics:
    def test_target_equivalence_events_vs_fleet(self, baseline):
        """The 2e-3 events/PB-year threshold and the '100 PB-systems, 5
        years, <1 event' statement are the same criterion."""
        from repro.models import fleet_expected_events, mttdl_hours_for_target

        mttdl_at_target = mttdl_hours_for_target(baseline)
        # A 1-PB system at the same per-PB rate has proportionally more
        # events per system-year, i.e. a shorter MTTDL by the capacity
        # ratio.
        mttdl_1pb = mttdl_at_target * baseline.system_logical_pb
        fleet_events = fleet_expected_events(mttdl_1pb, 100, 5 * HOURS_PER_YEAR)
        assert fleet_events == pytest.approx(1.0, rel=1e-6)

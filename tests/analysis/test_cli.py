"""Tests for the repro-figures command-line entry point."""

import pytest

from repro.analysis.cli import main


class TestCli:
    def test_single_figure(self, capsys):
        assert main(["17"]) == 0
        out = capsys.readouterr().out
        assert "Figure 17" in out
        assert "link speed" in out

    def test_baseline_figure(self, capsys):
        assert main(["13"]) == 0
        out = capsys.readouterr().out
        assert "Baseline Comparison" in out
        assert "Internal RAID 5" in out

    def test_multiple_figures(self, capsys):
        assert main(["13", "20"]) == 0
        out = capsys.readouterr().out
        assert "Figure 13" in out
        assert "Figure 20" in out

    def test_approx_flag(self, capsys):
        assert main(["--approx", "17"]) == 0
        assert "Figure 17" in capsys.readouterr().out

    def test_unknown_figure_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["99"])

    def test_csv_format(self, capsys):
        assert main(["--format", "csv", "17"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("link speed (Gb/s),")
        assert out.count("\n") >= 4

    def test_json_format(self, capsys):
        import json

        assert main(["--format", "json", "17"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["title"].startswith("Figure 17")
        assert len(data[0]["series"]) == 3

    def test_set_override(self, capsys):
        assert main(["--format", "json", "--set", "node_set_size=32", "13"]) == 0
        import json

        data = json.loads(capsys.readouterr().out)
        assert data[0]["title"].startswith("Figure 13")

    def test_set_override_changes_results(self, capsys):
        main(["--format", "csv", "17"])
        base = capsys.readouterr().out
        main(["--format", "csv", "--set", "drive_mttf_hours=750000", "17"])
        changed = capsys.readouterr().out
        assert base != changed

    def test_bad_set_syntax_rejected(self):
        with pytest.raises(SystemExit):
            main(["--set", "node_set_size", "13"])

    def test_unknown_set_field_rejected(self):
        with pytest.raises(SystemExit):
            main(["--set", "warp_core=9", "13"])

"""Engine-accelerated analysis must reproduce the plain paths bitwise."""

import pytest

from repro import Parameters, SweepEngine, SweepResult
from repro.analysis.cli import main
from repro.analysis.design_space import enumerate_designs
from repro.analysis.elasticity import elasticity_profile
from repro.analysis.figures import figure17_link_speed, figure20_drives_per_node
from repro.analysis.sensitivity import sweep, sweep_to_figure
from repro.models.configurations import (
    Configuration,
    sensitivity_configurations,
)
from repro.models.raid import InternalRaid


def _assert_same_figure(plain, fast):
    assert plain.title == fast.title
    assert plain.x_values == fast.x_values
    assert len(plain.series) == len(fast.series)
    for a, b in zip(plain.series, fast.series):
        assert a.label == b.label
        assert a.values == b.values


class TestFigureParity:
    def test_figure17_bitwise(self, baseline):
        plain = figure17_link_speed(baseline)
        fast = figure17_link_speed(baseline, engine=SweepEngine(baseline, jobs=4))
        _assert_same_figure(plain, fast)
        assert plain.provenance is None
        assert fast.provenance is not None

    def test_figure20_bitwise(self, baseline):
        plain = figure20_drives_per_node(baseline)
        fast = figure20_drives_per_node(
            baseline, engine=SweepEngine(baseline, jobs=4)
        )
        _assert_same_figure(plain, fast)

    def test_figures_return_sweep_results(self, baseline):
        assert isinstance(figure17_link_speed(baseline), SweepResult)


class TestSweepParity:
    def test_sweep_engine_kwarg_bitwise(self, baseline):
        configs = sensitivity_configurations()
        xs = (100_000.0, 400_000.0)
        transform = lambda p, x: p.replace(node_mttf_hours=x)
        plain = sweep(configs, baseline, xs, transform)
        fast = sweep(configs, baseline, xs, transform, engine=SweepEngine(jobs=4))
        assert plain == fast

    def test_sweep_to_figure_is_sweep_result(self, baseline):
        configs = sensitivity_configurations()
        points = sweep(
            configs,
            baseline,
            (16, 64),
            lambda p, x: p.replace(node_set_size=int(x)),
        )
        fig = sweep_to_figure("t", "N", points, axis_name="node_set_size")
        assert isinstance(fig, SweepResult)
        assert fig.axis_name == "node_set_size"
        assert fig.axis_values == (16, 64)
        assert fig.points == tuple(points)


class TestDesignSpaceParity:
    def test_bitwise(self, baseline):
        plain = enumerate_designs(baseline)
        fast = enumerate_designs(baseline, engine=SweepEngine(baseline, jobs=4))
        assert plain == fast


class TestElasticityParity:
    def test_bitwise(self, baseline):
        config = Configuration(InternalRaid.RAID5, 2)
        plain = elasticity_profile(config, baseline)
        fast = elasticity_profile(
            config, baseline, engine=SweepEngine(baseline)
        )
        assert plain == fast


class TestCliFlags:
    def test_jobs_and_no_cache(self, capsys):
        rc = main(["17", "--jobs", "2", "--no-cache"])
        assert rc == 0
        assert "Figure 17" in capsys.readouterr().out

    def test_verbose_reports_engine_stats(self, capsys):
        rc = main(["17", "--no-cache", "--verbose"])
        assert rc == 0
        assert "[repro.engine]" in capsys.readouterr().err

    def test_cache_round_trip_same_output(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["17"]) == 0
        first = capsys.readouterr().out
        assert (tmp_path / ".repro_cache").is_dir()
        assert main(["17"]) == 0
        assert capsys.readouterr().out == first

    def test_output_matches_pre_engine_flags(self, capsys):
        """--jobs/--no-cache must not change the rendered tables."""
        assert main(["17", "--no-cache"]) == 0
        plain = capsys.readouterr().out
        assert main(["17", "--no-cache", "--jobs", "3"]) == 0
        assert capsys.readouterr().out == plain

"""Figure 13 baseline — the paper's headline observations as assertions."""

import pytest

from repro.analysis import baseline_figure, run_baseline
from repro.models import PAPER_TARGET_EVENTS_PER_PB_YEAR, Parameters


@pytest.fixture(scope="module")
def report():
    return run_baseline()


class TestPaperObservations:
    def test_observation1_ft1_misses_target(self, report):
        """'Configurations with node fault tolerance of 1 do not meet our
        reliability target.'"""
        assert report.ft1_all_miss_target()
        for key in ("ft1_noraid", "ft1_raid5", "ft1_raid6"):
            assert not report.result_for(key).meets_target

    def test_observation2_raid5_equals_raid6_at_ft2_plus(self, report):
        """'There is no significant difference between internal RAID 5 and
        internal RAID 6 especially for fault tolerance 2 or higher.'"""
        assert report.raid5_raid6_gap_orders(2) < 0.5
        assert report.raid5_raid6_gap_orders(3) < 0.5

    def test_observation2_contrast_ft1_gap_is_larger(self, report):
        """At FT 1 the internal level still matters (the paper's 'especially'
        carries information: the FT1 gap is visibly bigger)."""
        assert report.raid5_raid6_gap_orders(1) > report.raid5_raid6_gap_orders(2)

    def test_observation3_ft3_internal_raid_overshoots(self, report):
        """'At fault tolerance 3, the internal RAID configurations exceed
        the target by 5 orders of magnitude' (we accept 4-8)."""
        margin = report.ft3_internal_raid_margin_orders()
        assert 4.0 < margin < 8.0

    def test_survivor_set_matches_section7(self, report):
        """The target-meeting configurations include the three the paper
        carries into the sensitivity analyses (FT2 no-RAID is borderline
        by construction — see EXPERIMENTS.md)."""
        keys = {c.key for c in report.survivors()}
        assert {"ft2_raid5", "ft2_raid6", "ft3_noraid", "ft3_raid5", "ft3_raid6"} <= keys

    def test_ft2_noraid_is_marginal(self, report):
        """The FT2 no-internal-RAID point sits within a factor of ~3 of the
        target line — 'marginal' in the paper's reading of Figure 13."""
        rate = report.result_for("ft2_noraid").events_per_pb_year
        assert PAPER_TARGET_EVENTS_PER_PB_YEAR / 3 < rate < PAPER_TARGET_EVENTS_PER_PB_YEAR * 3

    def test_reliability_spans_many_orders(self, report):
        """Figure 13's log axis spans ~10 orders of magnitude."""
        rates = [r.events_per_pb_year for _, r in report.results]
        import math

        assert math.log10(max(rates) / min(rates)) > 8


class TestReportMechanics:
    def test_result_for_unknown_key(self, report):
        with pytest.raises(KeyError):
            report.result_for("ft9_raid0")

    def test_custom_parameters(self):
        params = Parameters.baseline().replace(node_set_size=32)
        report = run_baseline(params)
        assert report.params.node_set_size == 32

    def test_approx_method(self, gentle_params):
        exact = run_baseline(gentle_params, method="exact")
        approx = run_baseline(gentle_params, method="approx")
        for (c1, r1), (c2, r2) in zip(exact.results, approx.results):
            assert r2.mttdl_hours == pytest.approx(r1.mttdl_hours, rel=0.05)

    def test_figure_structure(self, report):
        figure = baseline_figure(report)
        assert figure.x_values == (1.0, 2.0, 3.0)
        assert {s.label for s in figure.series} == {
            "No Internal RAID",
            "Internal RAID 5",
            "Internal RAID 6",
        }
        assert figure.target == PAPER_TARGET_EVENTS_PER_PB_YEAR

    def test_figure_series_lookup(self, report):
        figure = baseline_figure(report)
        series = figure.series_by_label("Internal RAID 5")
        assert len(series.values) == 3
        with pytest.raises(KeyError):
            figure.series_by_label("RAID 10")

"""Tests for the approximation-validity map."""

import pytest

from repro.analysis import separation_ratio, validity_map
from repro.models import Parameters


class TestSeparationRatio:
    def test_baseline_is_well_separated(self, baseline):
        # The paper's operating point satisfies the theorem's hypothesis.
        assert separation_ratio(baseline, 2) > 10.0

    def test_acceleration_destroys_separation(self, baseline):
        fast = baseline.replace(node_mttf_hours=400.0, drive_mttf_hours=300.0)
        assert separation_ratio(fast, 2) < separation_ratio(baseline, 2) / 100


class TestValidityMap:
    @pytest.fixture(scope="class")
    def points(self):
        return validity_map(fault_tolerance=2)

    def test_error_shrinks_with_separation(self, points):
        """More separation (larger MTTF scale) means smaller error; check
        the two ends of the map."""
        assert points[-1].relative_error < points[0].relative_error

    def test_baseline_point_is_accurate(self, points):
        assert points[-1].relative_error < 0.02
        assert points[-1].trustworthy

    def test_breakdown_point_is_flagged(self, points):
        """At 0.3% of baseline MTTFs the hypothesis fails and the map says
        so: big error, not trustworthy."""
        assert points[0].relative_error > 0.1
        assert not points[0].trustworthy

    def test_separation_monotone_in_scale(self, points):
        separations = [p.separation for p in points]
        assert separations == sorted(separations)

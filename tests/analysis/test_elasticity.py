"""Tests for local elasticity analysis."""

import pytest

from repro.analysis import elasticity, elasticity_profile
from repro.models import Configuration, InternalRaid, Parameters


@pytest.fixture
def config():
    return Configuration(InternalRaid.RAID5, 2)


class TestElasticity:
    def test_node_mttf_elasticity_matches_closed_form(self, gentle_params, config):
        """In the asymptotic regime the NFT-2 internal-RAID loss rate goes
        like (lam_N + lam_D)^2 * (lam_N + lam_D + k2 lam_S); with lambda_N
        dominating, elasticity in node MTTF is about -3."""
        result = elasticity(config, gentle_params, "node_mttf_hours")
        assert -3.2 < result.value < -2.3

    def test_rebuild_block_is_negative(self, baseline, config):
        """Bigger rebuild blocks reduce loss events (Figure 16)."""
        result = elasticity(config, baseline, "rebuild_command_bytes")
        assert result.value < -0.5

    def test_link_speed_zero_when_disk_bound(self, baseline, config):
        """At 10 Gb/s the rebuild is disk-bound: link speed has no local
        effect (Figure 17's plateau, differentially)."""
        result = elasticity(config, baseline, "link_speed_bps")
        assert result.value == pytest.approx(0.0, abs=1e-6)

    def test_link_speed_matters_when_network_bound(self, baseline, config):
        slow = baseline.with_link_speed_gbps(1.0)
        result = elasticity(config, slow, "link_speed_bps")
        assert result.value < -0.5

    def test_her_elasticity_positive(self, baseline, config):
        """More hard errors, more loss events."""
        result = elasticity(config, baseline, "hard_error_rate_per_bit")
        assert result.value > 0.1

    def test_validation(self, baseline, config):
        with pytest.raises(ValueError):
            elasticity(config, baseline, "not_a_field")
        with pytest.raises(ValueError):
            elasticity(config, baseline, "node_mttf_hours", step=0.0)


class TestProfile:
    def test_sorted_by_magnitude(self, baseline, config):
        profile = elasticity_profile(config, baseline)
        magnitudes = [e.magnitude for e in profile]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_mttfs_dominate_at_baseline(self, baseline, config):
        """For the internal-RAID configuration the MTTFs are the dominant
        local drivers at the baseline (matching Figures 14/15)."""
        profile = elasticity_profile(config, baseline)
        top_two = {profile[0].parameter, profile[1].parameter}
        assert "node_mttf_hours" in top_two

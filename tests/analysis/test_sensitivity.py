"""Tests for the generic sweep / tornado machinery."""

import pytest

from repro.analysis import sweep, sweep_to_figure, tornado
from repro.analysis.sensitivity import SweepPoint
from repro.models import (
    Configuration,
    InternalRaid,
    Parameters,
    sensitivity_configurations,
)


@pytest.fixture
def configs():
    return [Configuration(InternalRaid.RAID5, 2)]


class TestSweep:
    def test_point_grid(self, baseline, configs):
        points = sweep(
            configs,
            baseline,
            [100_000, 500_000],
            lambda p, x: p.replace(drive_mttf_hours=float(x)),
        )
        assert len(points) == 2
        assert points[0].x == 100_000
        assert points[0].config == configs[0]
        assert points[0].events_per_pb_year > points[1].events_per_pb_year

    def test_meets_target_flag(self, baseline, configs):
        points = sweep(
            configs, baseline, [400_000], lambda p, x: p.replace(node_mttf_hours=float(x))
        )
        assert points[0].meets_target

    def test_multi_config_ordering(self, baseline):
        trio = sensitivity_configurations()
        points = sweep(trio, baseline, [1.0, 5.0], lambda p, x: p.with_link_speed_gbps(x))
        assert len(points) == 6
        assert [p.config for p in points[:3]] == trio

    def test_approx_method_propagates(self, gentle_params, configs):
        exact = sweep(
            configs, gentle_params, [500_000],
            lambda p, x: p.replace(drive_mttf_hours=float(x)), method="exact",
        )
        approx = sweep(
            configs, gentle_params, [500_000],
            lambda p, x: p.replace(drive_mttf_hours=float(x)), method="approx",
        )
        assert approx[0].mttdl_hours == pytest.approx(exact[0].mttdl_hours, rel=0.05)


class TestSweepToFigure:
    def test_groups_by_config_label(self, baseline):
        trio = sensitivity_configurations()
        points = sweep(trio, baseline, [1.0, 5.0, 10.0], lambda p, x: p.with_link_speed_gbps(x))
        fig = sweep_to_figure("t", "x", points)
        assert len(fig.series) == 3
        assert fig.x_values == (1.0, 5.0, 10.0)
        for series in fig.series:
            assert len(series.values) == 3

    def test_custom_label_fn(self, baseline, configs):
        points = sweep(configs, baseline, [1.0, 2.0], lambda p, x: p.with_link_speed_gbps(x))
        fig = sweep_to_figure("t", "x", points, label_fn=lambda p: "custom")
        assert [s.label for s in fig.series] == ["custom"]


class TestTornado:
    def test_rebuild_block_size_has_most_leverage(self, baseline):
        """Section 8: 'the rebuild block size is a controllable parameter
        with the most significant impact on reliability' — among the
        configurable knobs, it tops the tornado."""
        configs = [Configuration(InternalRaid.RAID5, 2)]
        ranges = {
            "rebuild block size": (
                [16, 64, 256],
                lambda p, x: p.with_rebuild_command_kb(x),
            ),
            "node set size": ([16, 64, 256], lambda p, x: p.replace(node_set_size=int(x))),
            "drives per node": ([4, 12, 24], lambda p, x: p.replace(drives_per_node=int(x))),
            "redundancy set size": (
                [4, 8, 16],
                lambda p, x: p.replace(redundancy_set_size=int(x)),
            ),
        }
        entries = tornado(configs, baseline, ranges)
        assert entries[0].parameter == "rebuild block size"
        assert entries[0].leverage_orders > 1.0

    def test_entries_sorted_descending(self, baseline):
        configs = [Configuration(InternalRaid.NONE, 2)]
        ranges = {
            "link": ([1.0, 10.0], lambda p, x: p.with_link_speed_gbps(x)),
            "drive mttf": (
                [100_000, 750_000],
                lambda p, x: p.replace(drive_mttf_hours=float(x)),
            ),
        }
        entries = tornado(configs, baseline, ranges)
        orders = [e.leverage_orders for e in entries]
        assert orders == sorted(orders, reverse=True)

    def test_low_high_are_extremes(self, baseline):
        configs = [Configuration(InternalRaid.NONE, 2)]
        entries = tornado(
            configs,
            baseline,
            {"link": ([1.0, 5.0, 10.0], lambda p, x: p.with_link_speed_gbps(x))},
        )
        entry = entries[0]
        assert entry.low <= entry.high

"""Golden-value regression tests.

The qualitative figure tests check shapes; these pin the *exact* baseline
numbers the repository documents in README.md and EXPERIMENTS.md, so any
change to the models, the rebuild calibration or the solver that moves a
headline number is caught immediately and the docs can be updated
deliberately.
"""

import pytest

from repro.analysis import run_baseline
from repro.models import Parameters, RebuildModel

#: events/PB-year at the Section 6 baseline, as documented in EXPERIMENTS.md.
GOLDEN_BASELINE = {
    "ft1_noraid": 3.001e01,
    "ft1_raid5": 2.744e-02,
    "ft1_raid6": 5.177e-03,
    "ft2_noraid": 2.462e-03,
    "ft2_raid5": 3.808e-06,
    "ft2_raid6": 2.471e-06,
    "ft3_noraid": 2.608e-07,
    "ft3_raid5": 9.410e-10,
    "ft3_raid6": 8.379e-10,
}


class TestGoldenBaseline:
    @pytest.fixture(scope="class")
    def report(self):
        return run_baseline()

    @pytest.mark.parametrize("key", sorted(GOLDEN_BASELINE))
    def test_figure13_values(self, report, key):
        assert report.result_for(key).events_per_pb_year == pytest.approx(
            GOLDEN_BASELINE[key], rel=1e-3
        )


class TestGoldenRebuild:
    def test_documented_transport_numbers(self, baseline):
        model = RebuildModel(baseline)
        # 150 IOPS x 128 KiB x 10%.
        assert model.drive_rebuild_bandwidth() == pytest.approx(1.966e6, rel=1e-3)
        # Node rebuild at FT 2: 3.53 h, disk-bound.
        breakdown = model.node_rebuild(2)
        assert breakdown.total_hours == pytest.approx(3.532, rel=1e-3)
        assert breakdown.bottleneck == "disk"
        # Re-stripe: 31.25 h.
        assert model.array_restripe().total_hours == pytest.approx(31.25, rel=1e-3)
        # Network/disk crossover: 2.53 Gb/s.
        assert model.network_bound_below_gbps(2) == pytest.approx(2.53, rel=5e-3)

    def test_documented_capacity(self, baseline):
        assert baseline.system_logical_pb == pytest.approx(0.1728)
        assert baseline.hard_error_per_drive_read == pytest.approx(0.024)

"""Golden-value regression tests.

The qualitative figure tests check shapes; these pin the *exact* baseline
numbers to the stored expected results in ``tests/data/golden_baseline.json``
(the same numbers README.md and EXPERIMENTS.md document), so any change to
the models, the rebuild calibration or the solver that moves a headline
number is caught immediately and the docs can be updated deliberately.

To update after a deliberate model change::

    PYTHONPATH=src python tests/data/regen_golden.py
"""

import json
from pathlib import Path

import pytest

from repro import evaluate
from repro.core.solvers import SolveOptions
from repro.analysis import run_baseline
from repro.models import Configuration, Parameters, RebuildModel

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_baseline.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
MTTDL_REL = GOLDEN["tolerances"]["mttdl_rel"]
EVENTS_REL = GOLDEN["tolerances"]["events_rel"]


class TestGoldenBaseline:
    @pytest.fixture(scope="class")
    def report(self):
        return run_baseline()

    def test_covers_all_nine_configurations(self, report):
        assert sorted(GOLDEN["configurations"]) == sorted(
            config.key for config, _ in report.results
        )

    @pytest.mark.parametrize("key", sorted(GOLDEN["configurations"]))
    def test_events_per_pb_year(self, report, key):
        expected = GOLDEN["configurations"][key]["events_per_pb_year"]
        assert report.result_for(key).events_per_pb_year == pytest.approx(
            expected, rel=EVENTS_REL
        )

    @pytest.mark.parametrize("key", sorted(GOLDEN["configurations"]))
    def test_mttdl_analytic(self, report, key):
        expected = GOLDEN["configurations"][key]["mttdl_hours_analytic"]
        assert report.result_for(key).mttdl_hours == pytest.approx(
            expected, rel=MTTDL_REL
        )

    @pytest.mark.parametrize("key", sorted(GOLDEN["configurations"]))
    def test_mttdl_closed_form(self, baseline, key):
        expected = GOLDEN["configurations"][key]["mttdl_hours_closed_form"]
        config = Configuration.from_key(key)
        observed = evaluate(
            config, baseline, options=SolveOptions(backend="closed_form")
        ).mttdl_hours
        assert observed == pytest.approx(expected, rel=MTTDL_REL)


class TestGoldenRebuild:
    def test_documented_transport_numbers(self, baseline):
        model = RebuildModel(baseline)
        # 150 IOPS x 128 KiB x 10%.
        assert model.drive_rebuild_bandwidth() == pytest.approx(1.966e6, rel=1e-3)
        # Node rebuild at FT 2: 3.53 h, disk-bound.
        breakdown = model.node_rebuild(2)
        assert breakdown.total_hours == pytest.approx(3.532, rel=1e-3)
        assert breakdown.bottleneck == "disk"
        # Re-stripe: 31.25 h.
        assert model.array_restripe().total_hours == pytest.approx(31.25, rel=1e-3)
        # Network/disk crossover: 2.53 Gb/s.
        assert model.network_bound_below_gbps(2) == pytest.approx(2.53, rel=5e-3)

    def test_documented_capacity(self, baseline):
        assert baseline.system_logical_pb == pytest.approx(0.1728)
        assert baseline.hard_error_per_drive_read == pytest.approx(0.024)

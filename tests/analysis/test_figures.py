"""Sensitivity figures 14-20 — the paper's qualitative claims as assertions."""

import math

import pytest

from repro.analysis import (
    figure14_drive_mttf,
    figure15_node_mttf,
    figure16_rebuild_block_size,
    figure17_link_speed,
    figure18_node_set_size,
    figure19_redundancy_set_size,
    figure20_drives_per_node,
)
from repro.models import PAPER_TARGET_EVENTS_PER_PB_YEAR

TARGET = PAPER_TARGET_EVENTS_PER_PB_YEAR


class TestFigure14:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure14_drive_mttf()

    def test_six_series(self, fig):
        assert len(fig.series) == 6

    def test_ft2_noraid_misses_at_low_node_mttf(self, fig):
        """'the configuration at FT2, no internal RAID does not meet the
        target at all for low node MTTF'"""
        series = fig.series_by_label("FT 2, No Internal RAID (node MTTF low)")
        assert all(v > TARGET for v in series.values)

    def test_ft2_noraid_marginal_at_high_node_mttf(self, fig):
        """'...and marginally meets it for high node MTTF': the high-node-
        MTTF curve crosses or touches the target within the drive range."""
        series = fig.series_by_label("FT 2, No Internal RAID (node MTTF high)")
        assert min(series.values) < TARGET * 2
        assert max(series.values) > TARGET / 2

    def test_other_configs_meet_target_everywhere(self, fig):
        """'The other two configurations exceed the target ... over the
        entire range.'"""
        for label in (
            "FT 2, Internal RAID 5 (node MTTF low)",
            "FT 2, Internal RAID 5 (node MTTF high)",
            "FT 3, No Internal RAID (node MTTF low)",
            "FT 3, No Internal RAID (node MTTF high)",
        ):
            assert all(v < TARGET for v in fig.series_by_label(label).values)

    def test_ft2_raid5_insensitive_at_low_node_mttf(self, fig):
        """'FT 2, Internal RAID 5 appears to be relatively insensitive to
        drive MTTF, especially for low node MTTF' — node failures dominate,
        which is also why RAID 6 adds nothing (Section 8)."""
        series = fig.series_by_label("FT 2, Internal RAID 5 (node MTTF low)")
        spread = max(series.values) / min(series.values)
        assert spread < 2.0

    def test_reliability_improves_with_drive_mttf(self, fig):
        for series in fig.series:
            values = series.values
            assert all(a >= b - 1e-15 for a, b in zip(values, values[1:]))


class TestFigure15:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure15_node_mttf()

    def test_ft2_raid5_most_sensitive_to_node_mttf(self, fig):
        """'FT 2, Internal RAID 5 shows the most sensitivity to node MTTF.'"""
        spreads = {}
        for series in fig.series:
            spreads[series.label] = max(series.values) / min(series.values)
        raid5_spreads = [v for k, v in spreads.items() if "RAID 5" in k]
        other_spreads = [v for k, v in spreads.items() if "RAID 5" not in k]
        assert max(raid5_spreads) >= max(other_spreads)

    def test_reliability_improves_with_node_mttf(self, fig):
        for series in fig.series:
            values = series.values
            assert all(a >= b - 1e-15 for a, b in zip(values, values[1:]))


class TestFigure16:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure16_rebuild_block_size()

    def test_block_size_has_large_leverage(self, fig):
        """'the rebuild block size affects the reliability significantly'
        — more than an order of magnitude for every configuration across
        16..512 KB, and 2+ orders where two rebuild rates compound."""
        for series in fig.series:
            assert series.values[0] / series.values[-1] > 20
        assert any(s.values[0] / s.values[-1] > 100 for s in fig.series)

    def test_64kb_recommendation(self, fig):
        """'The other two configurations meet the target if the rebuild
        block size is 64 KB or larger' (baseline MTTFs)."""
        idx64 = fig.x_values.index(64.0)
        for label in (
            "FT 2, Internal RAID 5 (baseline MTTF)",
            "FT 3, No Internal RAID (baseline MTTF)",
        ):
            series = fig.series_by_label(label)
            assert all(v < TARGET for v in series.values[idx64:])

    def test_ft2_noraid_misses_for_low_mttf(self, fig):
        series = fig.series_by_label("FT 2, No Internal RAID (low MTTF)")
        assert all(v > TARGET for v in series.values)

    def test_monotone_improvement(self, fig):
        for series in fig.series:
            values = series.values
            assert all(a >= b - 1e-15 for a, b in zip(values, values[1:]))


class TestFigure17:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure17_link_speed()

    def test_5_and_10_gbps_identical(self, fig):
        """'There is no difference in reliability between the last two
        points' — disk-bound above the ~3 Gb/s crossover."""
        i5 = fig.x_values.index(5.0)
        i10 = fig.x_values.index(10.0)
        for series in fig.series:
            assert series.values[i5] == pytest.approx(series.values[i10], rel=1e-9)

    def test_1_gbps_is_worse(self, fig):
        i1 = fig.x_values.index(1.0)
        i10 = fig.x_values.index(10.0)
        for series in fig.series:
            assert series.values[i1] > 1.5 * series.values[i10]


class TestFigure18:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure18_node_set_size()

    def test_noraid_ft2_shows_some_sensitivity(self, fig):
        """'FT 2, No Internal RAID shows some sensitivity to the node set
        size, but the other two configurations are relatively insensitive.'"""
        spread = {}
        for series in fig.series:
            spread[series.label] = max(series.values) / min(series.values)
        assert spread["FT 2, No Internal RAID"] > spread["FT 2, Internal RAID 5"] * 0.9

    def test_all_relatively_insensitive(self, fig):
        """Over a 16x range in N, no configuration moves more than ~1.5
        orders of magnitude (per-PB normalization cancellation)."""
        for series in fig.series:
            assert max(series.values) / min(series.values) < 30


class TestFigure19:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure19_redundancy_set_size()

    def test_less_reliable_with_larger_r(self, fig):
        """'all configurations appear to become less reliable as the
        redundancy set size increases'"""
        for series in fig.series:
            values = series.values
            assert all(b >= a for a, b in zip(values, values[1:]))

    def test_about_an_order_or_two_across_range(self, fig):
        """'about an order of magnitude difference between the extremes'
        (we accept 0.5-3 orders across our slightly wider R range)."""
        for series in fig.series:
            orders = math.log10(series.values[-1] / series.values[0])
            assert 0.5 < orders < 3.5


class TestFigure20:
    @pytest.fixture(scope="class")
    def fig(self):
        return figure20_drives_per_node()

    def test_very_little_sensitivity(self, fig):
        """'there is very little sensitivity to the number of drives per
        node' — the per-PB cancellation effect."""
        for series in fig.series:
            assert max(series.values) / min(series.values) < 3.0

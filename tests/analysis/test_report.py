"""Tests for report formatting."""

import pytest

from repro.analysis import FigureData, Series, format_figure, format_table


@pytest.fixture
def figure():
    return FigureData(
        title="Figure X: Test",
        x_label="x",
        x_values=(1.0, 2.0),
        series=(
            Series("alpha", (0.5, 1e-6)),
            Series("beta", (2.0, 3.0)),
        ),
        target=2e-3,
    )


class TestTable:
    def test_empty(self):
        assert format_table([]) == ""

    def test_alignment(self):
        text = format_table([["a", "bb"], ["ccc", "d"]])
        lines = text.splitlines()
        assert len(lines) == 3  # header, rule, one row
        assert lines[0].startswith("a")
        assert "---" in lines[1]

    def test_figure_rows(self, figure):
        rows = figure.to_rows()
        assert rows[0] == ["x", "alpha", "beta"]
        assert rows[1][0] == "1"
        assert len(rows) == 3


class TestFigureFormatting:
    def test_contains_title_and_target(self, figure):
        text = format_figure(figure)
        assert "Figure X: Test" in text
        assert "2.0e-03" in text

    def test_scientific_for_small_numbers(self, figure):
        text = format_figure(figure)
        assert "1.000e-06" in text

    def test_series_lookup(self, figure):
        assert figure.series_by_label("alpha").values == (0.5, 1e-6)
        with pytest.raises(KeyError):
            figure.series_by_label("gamma")


class TestExport:
    def test_csv_roundtrips_values(self, figure):
        import csv
        import io

        rows = list(csv.reader(io.StringIO(figure.to_csv())))
        assert rows[0] == ["x", "alpha", "beta"]
        assert float(rows[1][1]) == 0.5
        assert float(rows[2][1]) == 1e-6  # full precision preserved

    def test_to_dict_is_json_serializable(self, figure):
        import json

        data = json.loads(json.dumps(figure.to_dict()))
        assert data["title"] == "Figure X: Test"
        assert data["x_values"] == [1.0, 2.0]
        assert data["series"][0]["label"] == "alpha"
        assert data["target"] == 2e-3

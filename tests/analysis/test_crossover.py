"""Tests for the target-crossover / headroom analysis."""

import pytest

from repro.analysis import Crossover, find_crossover, headroom_orders
from repro.models import Configuration, InternalRaid, PAPER_TARGET_EVENTS_PER_PB_YEAR


def block_size_transform(p, x):
    return p.replace(rebuild_command_bytes=float(x) * 1024)


def drive_mttf_transform(p, x):
    return p.replace(drive_mttf_hours=float(x))


class TestFindCrossover:
    def test_rebuild_block_crossover_for_ft2_raid5(self, baseline):
        """FT2+RAID5 needs only a few KB of rebuild block at baseline
        MTTFs (it has lots of headroom); at the low-MTTF corner the
        required block size grows well past it — the Figure 16 story as a
        crossover computation."""
        config = Configuration(InternalRaid.RAID5, 2)
        result = find_crossover(
            config, baseline, block_size_transform, low=2.0, high=512.0
        )
        assert not result.meets_at_low
        assert result.meets_at_high
        assert 2.0 < result.value < 16.0

        harsh = baseline.replace(
            drive_mttf_hours=100_000.0, node_mttf_hours=100_000.0
        )
        harsh_result = find_crossover(
            config, harsh, block_size_transform, low=2.0, high=512.0
        )
        assert harsh_result.value > 4 * result.value

    def test_crossover_is_actually_on_the_line(self, baseline):
        config = Configuration(InternalRaid.RAID5, 2)
        result = find_crossover(
            config, baseline, block_size_transform, low=4.0, high=512.0
        )
        rate = config.reliability(
            block_size_transform(baseline, result.value)
        ).events_per_pb_year
        assert rate == pytest.approx(PAPER_TARGET_EVENTS_PER_PB_YEAR, rel=0.05)

    def test_always_meets(self, baseline):
        config = Configuration(InternalRaid.RAID5, 3)
        result = find_crossover(
            config, baseline, drive_mttf_transform, low=100_000, high=750_000
        )
        assert result.always_meets
        assert result.value is None

    def test_never_meets(self, baseline):
        config = Configuration(InternalRaid.NONE, 1)
        result = find_crossover(
            config, baseline, drive_mttf_transform, low=100_000, high=750_000
        )
        assert result.never_meets

    def test_linear_scale_agrees_with_log_scale(self, baseline):
        config = Configuration(InternalRaid.RAID5, 2)
        log = find_crossover(
            config, baseline, block_size_transform, 4.0, 512.0, log_scale=True
        )
        lin = find_crossover(
            config, baseline, block_size_transform, 4.0, 512.0, log_scale=False
        )
        assert lin.value == pytest.approx(log.value, rel=0.02)

    def test_invalid_range(self, baseline):
        with pytest.raises(ValueError):
            find_crossover(
                Configuration(InternalRaid.RAID5, 2),
                baseline,
                block_size_transform,
                low=10.0,
                high=10.0,
            )


class TestHeadroom:
    def test_positive_for_strong_config(self, baseline):
        assert headroom_orders(Configuration(InternalRaid.RAID5, 3), baseline) > 4

    def test_negative_for_weak_config(self, baseline):
        assert headroom_orders(Configuration(InternalRaid.NONE, 1), baseline) < 0

    def test_marginal_config_near_zero(self, baseline):
        value = headroom_orders(Configuration(InternalRaid.NONE, 2), baseline)
        assert -0.5 < value < 0.5

"""Tests for design-space enumeration."""

import pytest

from repro.analysis import (
    cheapest_meeting,
    enumerate_designs,
    pareto_front,
)
from repro.analysis.design_space import storage_overhead
from repro.models import Configuration, InternalRaid, Parameters


@pytest.fixture(scope="module")
def candidates():
    return enumerate_designs(Parameters.baseline())


class TestOverhead:
    def test_cross_node_only(self):
        config = Configuration(InternalRaid.NONE, 2)
        assert storage_overhead(config, 8, 12) == pytest.approx(8 / 6)

    def test_raid5_compounds(self):
        config = Configuration(InternalRaid.RAID5, 2)
        assert storage_overhead(config, 8, 12) == pytest.approx(8 / 6 * 12 / 11)

    def test_raid6_compounds(self):
        config = Configuration(InternalRaid.RAID6, 1)
        assert storage_overhead(config, 8, 12) == pytest.approx(8 / 7 * 12 / 10)

    def test_invalid_r(self):
        with pytest.raises(ValueError):
            storage_overhead(Configuration(InternalRaid.NONE, 3), 3, 12)


class TestEnumeration:
    def test_grid_size(self, candidates):
        # 3 internal x 3 tolerances x 3 sizes x 3 blocks, minus R <= t skips.
        assert len(candidates) == 81

    def test_invalid_combinations_skipped(self):
        designs = enumerate_designs(
            Parameters.baseline(), fault_tolerances=(6,), set_sizes=(6, 8)
        )
        # R = 6 <= t = 6 is skipped; only R = 8 survives.
        assert all(d.redundancy_set_size == 8 for d in designs)

    def test_each_candidate_evaluated(self, candidates):
        assert all(c.events_per_pb_year > 0 for c in candidates)
        assert all(c.storage_overhead > 1.0 for c in candidates)


class TestSelection:
    def test_cheapest_meets_target(self, candidates):
        best = cheapest_meeting(candidates, target=2e-3)
        assert best is not None
        assert best.meets(2e-3)
        meeting = [c for c in candidates if c.meets(2e-3)]
        assert all(best.storage_overhead <= c.storage_overhead for c in meeting)

    def test_stricter_target_costs_at_least_as_much(self, candidates):
        loose = cheapest_meeting(candidates, 1e-2)
        strict = cheapest_meeting(candidates, 1e-8)
        assert loose is not None and strict is not None
        assert strict.storage_overhead >= loose.storage_overhead

    def test_unreachable_target(self, candidates):
        assert cheapest_meeting(candidates, 1e-30) is None

    def test_pareto_front_is_nondominated(self, candidates):
        front = pareto_front(candidates)
        assert front
        overheads = [c.storage_overhead for c in front]
        rates = [c.events_per_pb_year for c in front]
        assert overheads == sorted(overheads)
        assert rates == sorted(rates, reverse=True)
        # Every candidate is dominated by (or on) the front.
        for c in candidates:
            assert any(
                f.storage_overhead <= c.storage_overhead
                and f.events_per_pb_year <= c.events_per_pb_year
                for f in front
            )

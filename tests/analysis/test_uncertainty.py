"""Tests for parameter-uncertainty propagation."""

import pytest

from repro.analysis import LogUniform, UncertaintyStudy
from repro.models import Configuration, InternalRaid, Parameters


@pytest.fixture
def study(baseline):
    return UncertaintyStudy(
        baseline,
        {
            "drive_mttf_hours": LogUniform(100_000, 750_000),
            "node_mttf_hours": LogUniform(100_000, 1_000_000),
        },
    )


class TestLogUniform:
    def test_bounds(self):
        dist = LogUniform(10.0, 1000.0)
        assert dist.sample(0.0) == pytest.approx(10.0)
        assert dist.sample(0.5) == pytest.approx(100.0)  # geometric midpoint

    def test_validation(self):
        with pytest.raises(ValueError):
            LogUniform(0.0, 1.0)
        with pytest.raises(ValueError):
            LogUniform(10.0, 1.0)
        with pytest.raises(ValueError):
            LogUniform(1.0, 2.0).sample(1.0)


class TestSampling:
    def test_samples_within_bounds(self, study):
        for params in study.sample_parameters(32, seed=1):
            assert 100_000 <= params.drive_mttf_hours <= 750_000
            assert 100_000 <= params.node_mttf_hours <= 1_000_000

    def test_lhs_stratification(self, study):
        """Latin hypercube: each decile of the log-range gets ~1/10 of the
        samples per dimension."""
        import math

        draws = study.sample_parameters(100, seed=2)
        values = sorted(math.log(p.drive_mttf_hours) for p in draws)
        lo, hi = math.log(100_000), math.log(750_000)
        deciles = [0] * 10
        for v in values:
            deciles[min(9, int(10 * (v - lo) / (hi - lo)))] += 1
        assert all(c == 10 for c in deciles)

    def test_reproducible(self, study):
        a = study.sample_parameters(8, seed=3)
        b = study.sample_parameters(8, seed=3)
        assert a == b

    def test_unvaried_fields_stay_at_baseline(self, study, baseline):
        for params in study.sample_parameters(4, seed=0):
            assert params.drives_per_node == baseline.drives_per_node

    def test_validation(self, baseline):
        with pytest.raises(ValueError):
            UncertaintyStudy(baseline, {})
        with pytest.raises(ValueError):
            UncertaintyStudy(baseline, {"warp_factor": LogUniform(1, 2)})
        with pytest.raises(ValueError):
            UncertaintyStudy(
                baseline, {"drive_mttf_hours": LogUniform(1, 2)}
            ).sample_parameters(0)


class TestPropagation:
    def test_percentiles_ordered(self, study):
        result = study.run(Configuration(InternalRaid.RAID5, 2), samples=24, seed=0)
        assert result.percentile(5) <= result.median <= result.p95

    def test_strong_config_usually_meets_target(self, study):
        result = study.run(Configuration(InternalRaid.RAID5, 3), samples=24, seed=0)
        assert result.probability_meets_target() == 1.0

    def test_weak_config_never_meets_target(self, study):
        result = study.run(Configuration(InternalRaid.NONE, 1), samples=16, seed=0)
        assert result.probability_meets_target() == 0.0

    def test_run_many_shares_draws(self, study):
        configs = [
            Configuration(InternalRaid.RAID5, 2),
            Configuration(InternalRaid.NONE, 2),
        ]
        results = study.run_many(configs, samples=16, seed=5)
        assert len(results) == 2
        # With shared draws the stronger configuration dominates pointwise
        # in distribution: every percentile is lower.
        for q in (10, 50, 90):
            assert results[0].percentile(q) < results[1].percentile(q)

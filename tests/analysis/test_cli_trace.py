"""Acceptance: ``repro-figures --fig 13 --trace out.jsonl --report``.

The ISSUE-level contract: the command emits a well-formed JSONL trace, a
run report whose span tree covers >= 95% of root wall time, and stdout
that is bitwise identical with tracing on and off.
"""

import json

from repro.analysis.cli import main
from repro.obs import tree_coverage, validate_trace


class TestFiguresTraceFlag:
    def test_fig13_trace_and_report(self, capsys, tmp_path):
        trace_path = str(tmp_path / "out.jsonl")
        rc = main(
            [
                "--fig", "13", "--no-cache", "--format", "json",
                "--trace", trace_path, "--report",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout stays pure JSON
        assert "run report" in captured.err
        assert "span tree" in captured.err

        spans = validate_trace(trace_path)
        names = {s["name"] for s in spans}
        assert "repro-figures" in names
        assert "figure.13" in names
        assert "ctmc.solve" in names
        assert tree_coverage(spans) >= 0.95

    def test_fig_flag_merges_with_positional(self, capsys):
        rc = main(["17", "--fig", "13", "--no-cache", "--format", "json"])
        assert rc == 0
        figures = json.loads(capsys.readouterr().out)
        assert len(figures) == 2

    def test_fig_flag_rejects_unknown(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["--fig", "99"])

    def test_stdout_bitwise_identical_with_and_without_tracing(
        self, capsys, tmp_path
    ):
        base_args = ["--fig", "13", "17", "--no-cache", "--format", "json"]
        assert main(base_args) == 0
        plain = capsys.readouterr().out
        trace_path = str(tmp_path / "out.jsonl")
        assert main(base_args + ["--trace", trace_path]) == 0
        traced = capsys.readouterr().out
        assert traced == plain

    def test_metrics_export(self, capsys, tmp_path):
        metrics_path = str(tmp_path / "metrics.json")
        rc = main(
            [
                "--fig", "17", "--no-cache", "--format", "json",
                "--metrics", metrics_path,
            ]
        )
        assert rc == 0
        capsys.readouterr()
        flat = json.load(open(metrics_path))
        assert flat["engine.points"] > 0
        assert flat["obs.spans"] > 0
        assert "core.spec_cache.misses" in flat

    def test_verbose_still_reports_engine_line(self, capsys):
        rc = main(["17", "--no-cache", "--verbose"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "[repro.engine]" in err

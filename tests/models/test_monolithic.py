"""Tests for the monolithic 'big iron' comparator."""

import pytest

from repro.models import (
    Configuration,
    InternalRaid,
    MonolithicSystem,
    Parameters,
)


class TestGeometry:
    def test_logical_capacity(self):
        system = MonolithicSystem(array_groups=10, drives_per_group=14)
        # 12 data drives per group x 300 GB.
        assert system.logical_bytes == pytest.approx(10 * 12 * 300e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            MonolithicSystem(array_groups=0)
        with pytest.raises(ValueError):
            MonolithicSystem(drives_per_group=3)
        with pytest.raises(ValueError):
            MonolithicSystem(rebuild_hours=0.0)


class TestReliability:
    def test_system_rate_scales_with_groups(self):
        one = MonolithicSystem(array_groups=1)
        many = MonolithicSystem(array_groups=50)
        assert many.system_mttdl_hours() == pytest.approx(
            one.system_mttdl_hours() / 50
        )

    def test_slow_rebuild_hurts(self):
        fast = MonolithicSystem(rebuild_hours=4.0)
        slow = MonolithicSystem(rebuild_hours=48.0)
        assert slow.events_per_pb_year() > fast.events_per_pb_year()

    def test_enterprise_monolith_is_very_reliable(self):
        """A dual-parity monolith on enterprise drives meets the paper's
        target easily — the point of 'big iron'."""
        assert MonolithicSystem().events_per_pb_year() < 2e-3

    def test_bricks_can_match_big_iron(self, baseline):
        """The paper's thesis: commodity bricks with cross-node redundancy
        reach the same reliability class as the monolith — within two
        orders of magnitude of a system built from 3x-better drives."""
        import math

        brick = Configuration(InternalRaid.RAID5, 2).reliability(baseline)
        monolith = MonolithicSystem().reliability()
        gap = abs(
            math.log10(brick.events_per_pb_year / monolith.events_per_pb_year)
        )
        assert gap < 3.0
        assert brick.meets_target and monolith.meets_target

    def test_desktop_drives_in_monolith_struggle(self):
        """The same frame on desktop drives at desktop HER is orders worse
        — the drive class, not the architecture, buys the monolith its
        headline number."""
        desktop = MonolithicSystem(
            drive_mttf_hours=300_000.0, hard_error_rate_per_bit=1e-14
        )
        enterprise = MonolithicSystem()
        assert (
            desktop.events_per_pb_year()
            > 20 * enterprise.events_per_pb_year()
        )

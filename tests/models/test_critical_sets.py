"""Tests for the Section 5.2 critical-redundancy-set combinatorics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    Parameters,
    critical_fraction,
    h_parameter,
    h_parameters,
    hard_error_probability_full_drive,
    k2_factor,
    k3_factor,
    redundancy_sets_per_node,
    redundancy_sets_total,
)


class TestCounting:
    def test_total_sets(self):
        assert redundancy_sets_total(64, 8) == math.comb(64, 8)

    def test_sets_per_node(self):
        assert redundancy_sets_per_node(64, 8) == math.comb(63, 7)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            redundancy_sets_total(1, 1)
        with pytest.raises(ValueError):
            redundancy_sets_per_node(4, 5)


class TestCriticalFractions:
    def test_k2_closed_form(self):
        # k2 = (R-1)/(N-1)
        assert k2_factor(64, 8) == pytest.approx(7 / 63)

    def test_k3_closed_form(self):
        # k3 = (R-1)(R-2)/((N-1)(N-2))
        assert k3_factor(64, 8) == pytest.approx(7 * 6 / (63 * 62))

    def test_single_failure_fraction_is_one(self):
        assert critical_fraction(64, 8, 1) == pytest.approx(1.0)

    def test_more_failures_than_set_size(self):
        assert critical_fraction(10, 3, 4) == 0.0

    def test_failures_must_be_positive(self):
        with pytest.raises(ValueError):
            critical_fraction(10, 4, 0)

    def test_full_overlap_when_r_equals_n(self):
        # With R = N every redundancy set spans all nodes: always critical.
        for j in (1, 2, 3):
            assert critical_fraction(8, 8, j) == pytest.approx(1.0)

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=4, max_value=128),
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=1, max_value=4),
    )
    def test_fraction_is_probability_and_decreasing(self, n, r, j):
        r = min(r, n)
        frac = critical_fraction(n, r, j)
        assert 0.0 <= frac <= 1.0
        if j > 1:
            assert frac <= critical_fraction(n, r, j - 1) + 1e-12


class TestHParameters:
    def test_k1_matches_paper(self, baseline):
        # h_N = d (R-1) C HER, h_d = (R-1) C HER (Figure 8 parameters).
        che = baseline.hard_error_per_drive_read
        assert h_parameter(baseline, "N") == pytest.approx(12 * 7 * che)
        assert h_parameter(baseline, "d") == pytest.approx(7 * che)

    def test_k2_table_matches_paper(self, baseline):
        # Section 5.2.2: h = (R-1)(R-2)/(N-1) C HER; h_NN = d h,
        # h_Nd = h_dN = h, h_dd = h/d.
        che = baseline.hard_error_per_drive_read
        h = 7 * 6 / 63 * che
        d = baseline.drives_per_node
        table = h_parameters(baseline, 2)
        assert table["NN"] == pytest.approx(d * h)
        assert table["Nd"] == pytest.approx(h)
        assert table["dN"] == pytest.approx(h)
        assert table["dd"] == pytest.approx(h / d)

    def test_k3_table_matches_paper(self, baseline):
        che = baseline.hard_error_per_drive_read
        h = 7 * 6 * 5 / (63 * 62) * che
        d = baseline.drives_per_node
        table = h_parameters(baseline, 3)
        assert table["NNN"] == pytest.approx(d * h)
        for word in ("NNd", "NdN", "dNN"):
            assert table[word] == pytest.approx(h)
        for word in ("Ndd", "dNd", "ddN"):
            assert table[word] == pytest.approx(h / d)
        assert table["ddd"] == pytest.approx(h / d**2)

    def test_table_size(self, baseline):
        for k in (1, 2, 3, 4, 5):
            assert len(h_parameters(baseline, k)) == 2**k

    def test_word_validation(self, baseline):
        with pytest.raises(ValueError):
            h_parameter(baseline, "")
        with pytest.raises(ValueError):
            h_parameter(baseline, "Nx")

    def test_fault_tolerance_validation(self, baseline):
        with pytest.raises(ValueError):
            h_parameters(baseline, 0)

    def test_r_smaller_than_k_gives_zero(self):
        # With R = 3 and k = 3 there is no surviving element to read:
        # (R - 3) = 0 so every h vanishes.
        params = Parameters.baseline().replace(redundancy_set_size=3)
        assert all(v == 0.0 for v in h_parameters(params, 3).values())

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=10**6))
    def test_more_drive_letters_means_smaller_h(self, k, seed):
        """Each N -> d substitution divides h by d (less critical data)."""
        params = Parameters.baseline()
        table = h_parameters(params, k)
        d = params.drives_per_node
        words = sorted(table)
        for word in words:
            if "N" in word:
                swapped = word.replace("N", "d", 1)
                if table[word] > 0:
                    assert table[swapped] == pytest.approx(table[word] / d)

    def test_full_drive_probability(self, baseline):
        che = baseline.hard_error_per_drive_read
        assert hard_error_probability_full_drive(baseline, 1) == pytest.approx(7 * che)
        assert hard_error_probability_full_drive(baseline, 2) == pytest.approx(6 * che)
        with pytest.raises(ValueError):
            hard_error_probability_full_drive(baseline, 0)

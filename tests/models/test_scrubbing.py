"""Tests for the disk-scrubbing extension."""

import pytest

from repro.models import (
    Configuration,
    InternalRaid,
    Parameters,
    SECTOR_BYTES,
    ScrubbingModel,
)


class TestCalibration:
    def test_no_scrub_reproduces_baseline_her(self, baseline):
        """With the scrub interval at the calibration exposure, the
        effective HER equals the paper's baseline."""
        model = ScrubbingModel(transient_fraction=0.5)
        her = model.effective_her_per_bit(
            baseline, model.calibration_exposure_hours
        )
        assert her == pytest.approx(baseline.hard_error_rate_per_bit)

    def test_instant_scrub_leaves_only_transient(self, baseline):
        model = ScrubbingModel(transient_fraction=0.3)
        her = model.effective_her_per_bit(baseline, 0.0)
        assert her == pytest.approx(0.3 * baseline.hard_error_rate_per_bit)

    def test_interval_capped_at_calibration(self, baseline):
        model = ScrubbingModel()
        capped = model.effective_her_per_bit(baseline, 1e12)
        at_cal = model.effective_her_per_bit(
            baseline, model.calibration_exposure_hours
        )
        assert capped == pytest.approx(at_cal)

    def test_monotone_in_interval(self, baseline):
        model = ScrubbingModel()
        values = [
            model.effective_her_per_bit(baseline, h)
            for h in (0.0, 24.0, 168.0, 720.0, 8766.0)
        ]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_all_transient_means_scrubbing_is_useless(self, baseline):
        model = ScrubbingModel(transient_fraction=1.0)
        assert model.effective_her_per_bit(baseline, 0.0) == pytest.approx(
            model.effective_her_per_bit(baseline, 8766.0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ScrubbingModel(transient_fraction=1.5)
        with pytest.raises(ValueError):
            ScrubbingModel(calibration_exposure_hours=0)
        with pytest.raises(ValueError):
            ScrubbingModel().effective_her_per_bit(Parameters.baseline(), -1.0)


class TestSystemEffect:
    def test_weekly_scrub_improves_reliability(self, baseline):
        model = ScrubbingModel()
        config = Configuration(InternalRaid.RAID5, 2)
        unscrubbed = config.reliability(
            model.scrubbed_parameters(baseline, model.calibration_exposure_hours)
        )
        weekly = config.reliability(model.scrubbed_parameters(baseline, 168.0))
        assert weekly.events_per_pb_year < unscrubbed.events_per_pb_year

    def test_scrubbed_parameters_only_touch_her(self, baseline):
        model = ScrubbingModel()
        scrubbed = model.scrubbed_parameters(baseline, 168.0)
        assert scrubbed.node_mttf_hours == baseline.node_mttf_hours
        assert scrubbed.hard_error_rate_per_bit < baseline.hard_error_rate_per_bit

    def test_scrub_bandwidth_cost(self, baseline):
        model = ScrubbingModel()
        # Reading 300 GB at 40 MB/s = 7500 s; weekly = 7500/(168*3600).
        cost = model.scrub_bandwidth_fraction(baseline, 168.0)
        assert cost == pytest.approx(7500.0 / (168 * 3600))
        with pytest.raises(ValueError):
            model.scrub_bandwidth_fraction(baseline, 0.0)

    def test_faster_scrub_costs_more_bandwidth(self, baseline):
        model = ScrubbingModel()
        daily = model.scrub_bandwidth_fraction(baseline, 24.0)
        monthly = model.scrub_bandwidth_fraction(baseline, 720.0)
        assert daily > monthly

"""Tests for the appendix's recursive construction and Figure A1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    NoRaidNodeModel,
    Parameters,
    RecursiveNoRaidModel,
    build_no_raid_chain_ft1,
    build_no_raid_chain_ft2,
    build_no_raid_chain_ft3,
    build_recursive_chain,
    h_parameters,
    l_k,
    l_value,
    mttdl_general_approx,
)

ARGS = dict(
    n=16,
    d=4,
    node_failure_rate=1e-6,
    drive_failure_rate=2e-6,
    node_rebuild_rate=0.3,
    drive_rebuild_rate=3.0,
)


def generator_as_dict(chain):
    """Rates keyed by (source, target) for structural comparison."""
    out = {}
    for s in chain.states:
        if s in chain.absorbing_states():
            continue
        for t, r in chain.successors(s).items():
            out[(s, t)] = r
    return out


class TestMatchesExplicitFigures:
    def test_k1_equals_figure8(self, baseline):
        h = h_parameters(baseline, 1)
        explicit = build_no_raid_chain_ft1(
            baseline.node_set_size,
            baseline.drives_per_node,
            baseline.node_failure_rate,
            baseline.drive_failure_rate,
            0.3,
            3.0,
            h_n=h["N"],
            h_d=h["d"],
        )
        recursive = build_recursive_chain(
            1,
            baseline.node_set_size,
            baseline.drives_per_node,
            baseline.node_failure_rate,
            baseline.drive_failure_rate,
            0.3,
            3.0,
            h,
        )
        left = generator_as_dict(explicit)
        right = generator_as_dict(recursive)
        assert set(left) == set(right)
        for key in left:
            assert left[key] == pytest.approx(right[key], rel=1e-12)

    @pytest.mark.parametrize("k,builder", [(2, build_no_raid_chain_ft2), (3, build_no_raid_chain_ft3)])
    def test_k23_equal_figures(self, baseline, k, builder):
        h = h_parameters(baseline, k)
        explicit = builder(
            baseline.node_set_size,
            baseline.drives_per_node,
            baseline.node_failure_rate,
            baseline.drive_failure_rate,
            0.3,
            3.0,
            h=h,
        )
        recursive = build_recursive_chain(
            k,
            baseline.node_set_size,
            baseline.drives_per_node,
            baseline.node_failure_rate,
            baseline.drive_failure_rate,
            0.3,
            3.0,
            h,
        )
        left = generator_as_dict(explicit)
        right = generator_as_dict(recursive)
        assert set(left) == set(right)
        for key in left:
            assert left[key] == pytest.approx(right[key], rel=1e-12)


class TestStructure:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
    def test_state_count_is_2k1_minus_1(self, k):
        h = {w: 0.0 for w in h_parameters(Parameters.baseline().replace(node_set_size=32), k)}
        chain = build_recursive_chain(k, 32, 4, 1e-6, 2e-6, 0.3, 3.0, h)
        assert chain.num_states == 2 ** (k + 1)  # transient + loss

    def test_missing_h_rejected(self):
        with pytest.raises(ValueError, match="missing h-parameters"):
            build_recursive_chain(2, 16, 4, 1e-6, 2e-6, 0.3, 3.0, {"NN": 0.0})

    def test_node_set_too_small(self):
        h = {w: 0.0 for w in ("NN", "Nd", "dN", "dd")}
        with pytest.raises(ValueError):
            build_recursive_chain(2, 2, 4, 1e-6, 2e-6, 0.3, 3.0, h)


class TestLRecursion:
    def test_l_value(self):
        assert l_value(2.0, 3.0, 1e-6, 2e-6, 4) == pytest.approx(
            2.0 * 1e-6 + 3.0 * 4 * 2e-6
        )

    def test_l1(self):
        # L_1(H) = L(H_1, H_2)
        got = l_k([0.5, 0.25], 1e-6, 2e-6, 4, 0.3, 3.0)
        assert got == pytest.approx(l_value(0.5, 0.25, 1e-6, 2e-6, 4))

    def test_l2_hand_derivation(self, baseline):
        """L_2(h^(2)) = d h (lam_N + lam_d)(mu_d lam_N + mu_N lam_d) for the
        Section 5.2.2 h-values (derived in DESIGN.md)."""
        lam_n = baseline.node_failure_rate
        lam_d = baseline.drive_failure_rate
        mu_n, mu_d = 0.3, 3.0
        d = baseline.drives_per_node
        n, r = baseline.node_set_size, baseline.redundancy_set_size
        che = baseline.hard_error_per_drive_read
        h = (r - 1) * (r - 2) / (n - 1) * che
        table = h_parameters(baseline, 2)
        ordered = [table[w] for w in ("NN", "Nd", "dN", "dd")]
        got = l_k(ordered, lam_n, lam_d, d, mu_n, mu_d)
        expected = d * h * (lam_n + lam_d) * (mu_d * lam_n + mu_n * lam_d)
        assert got == pytest.approx(expected, rel=1e-12)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            l_k([0.1, 0.2, 0.3], 1e-6, 2e-6, 4, 0.3, 3.0)


class TestFigureA1:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_approx_tracks_exact_in_valid_regime(self, gentle_params, k):
        model = RecursiveNoRaidModel(gentle_params, k)
        exact = model.mttdl_exact()
        approx = model.mttdl_approx()
        assert approx == pytest.approx(exact, rel=0.05)

    def test_explicit_models_match_recursive_solve(self, baseline):
        for t in (1, 2, 3):
            explicit = NoRaidNodeModel(baseline, t).mttdl_exact()
            recursive = RecursiveNoRaidModel(baseline, t).mttdl_exact()
            assert recursive == pytest.approx(explicit, rel=1e-9)

    def test_stiff_chain_solves_cleanly(self):
        """The GTH path keeps k = 6 (127 states, cond ~ 1e17) accurate."""
        params = Parameters.baseline().replace(
            node_set_size=128, redundancy_set_size=16
        )
        model = RecursiveNoRaidModel(params, 6)
        exact = model.mttdl_exact()
        approx = model.mttdl_approx()
        assert exact > 0
        assert approx == pytest.approx(exact, rel=0.1)

    def test_invalid_inputs(self, baseline):
        with pytest.raises(ValueError):
            RecursiveNoRaidModel(baseline, 0)
        with pytest.raises(ValueError):
            RecursiveNoRaidModel(baseline.replace(node_set_size=3, redundancy_set_size=3), 3)
        with pytest.raises(ValueError):
            mttdl_general_approx(0, 16, 4, 1e-6, 2e-6, 0.3, 3.0, {})


@settings(max_examples=25, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=4),
    n=st.integers(min_value=8, max_value=64),
    d=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_approx_agrees_with_exact_property(k, n, d, seed):
    """Property: wherever the theorem's hypothesis holds (rates well
    separated, h small), Figure A1 agrees with the numeric solve."""
    rng = np.random.default_rng(seed)
    lam_n = 10.0 ** rng.uniform(-9, -7)
    lam_d = 10.0 ** rng.uniform(-9, -7)
    mu_n = 10.0 ** rng.uniform(-1, 1)
    mu_d = 10.0 ** rng.uniform(-1, 1)
    if n <= k:
        return
    words = [""]
    for _ in range(k):
        words = [w + c for w in words for c in "Nd"]
    h = {w: float(10.0 ** rng.uniform(-8, -4)) for w in words}
    chain = build_recursive_chain(k, n, d, lam_n, lam_d, mu_n, mu_d, h)
    exact = chain.mean_time_to_absorption()
    approx = mttdl_general_approx(k, n, d, lam_n, lam_d, mu_n, mu_d, h)
    assert approx == pytest.approx(exact, rel=0.05)

"""Tests for the Section 5.1 rebuild-time model."""

import pytest

from repro.models import KB, MB, Parameters, RebuildModel


@pytest.fixture
def model(baseline) -> RebuildModel:
    return RebuildModel(baseline)


class TestTransportBandwidths:
    def test_rebuild_bandwidth_is_iops_bound_at_baseline(self, model):
        # 150 IOPS x 128 KiB = 19.66 MB/s < 40 MB/s sustained, then 10%.
        expected = 150 * 128 * 1024 * 0.10
        assert model.drive_rebuild_bandwidth() == pytest.approx(expected)

    def test_rebuild_bandwidth_caps_at_sustained(self, baseline):
        big = RebuildModel(baseline.with_rebuild_command_kb(4096))
        assert big.drive_rebuild_bandwidth() == pytest.approx(40 * MB * 0.10)

    def test_restripe_bandwidth_is_sustained_bound(self, model):
        # 150 IOPS x 1 MiB >> 40 MB/s, so the sustained rate governs.
        assert model.drive_restripe_bandwidth() == pytest.approx(40 * MB * 0.10)

    def test_network_bandwidth(self, model, baseline):
        expected = baseline.link_sustained_bytes_per_sec * 0.10
        assert model.node_network_bandwidth() == pytest.approx(expected)


class TestNodeRebuild:
    def test_hand_computed_disk_time(self, model, baseline):
        # Per-node disk traffic: (R - t + 1)/(N - 1) node-datas at t = 2.
        breakdown = model.node_rebuild(fault_tolerance=2)
        node_data = baseline.node_data_bytes
        disk_bw = 12 * model.drive_rebuild_bandwidth()
        expected = (7 / 63) * node_data / disk_bw
        assert breakdown.disk_seconds == pytest.approx(expected)

    def test_hand_computed_network_time(self, model, baseline):
        breakdown = model.node_rebuild(fault_tolerance=2)
        node_data = baseline.node_data_bytes
        expected = (6 / 63) * node_data / model.node_network_bandwidth()
        assert breakdown.network_seconds == pytest.approx(expected)

    def test_disk_bound_at_baseline(self, model):
        assert model.node_rebuild(2).bottleneck == "disk"

    def test_network_bound_at_1gbps(self, baseline):
        slow = RebuildModel(baseline.with_link_speed_gbps(1))
        assert slow.node_rebuild(2).bottleneck == "network"

    def test_crossover_between_2_and_3_gbps(self, model):
        # The paper reports the rebuild is link-constrained "up to around
        # 3 Gb/s".
        crossover = model.network_bound_below_gbps(2)
        assert 2.0 < crossover < 3.5

    def test_higher_tolerance_rebuilds_faster(self, model):
        # Fewer surviving elements to read: R - t shrinks with t.
        t2 = model.node_rebuild(2).total_seconds
        t3 = model.node_rebuild(3).total_seconds
        assert t3 < t2

    def test_invalid_fault_tolerance(self, model):
        with pytest.raises(ValueError):
            model.node_rebuild(0)


class TestDriveRebuildAndRestripe:
    def test_drive_rebuild_scales_with_drive_data(self, model, baseline):
        node = model.node_rebuild(2)
        drive = model.drive_rebuild(2)
        # One drive's data instead of d drives' worth: d times faster.
        assert drive.total_seconds == pytest.approx(
            node.total_seconds / baseline.drives_per_node
        )

    def test_restripe_hand_computed(self, model, baseline):
        # Read + write the node's data through d drives at sustained x 10%.
        breakdown = model.array_restripe()
        expected = 2 * baseline.node_data_bytes / (12 * 40 * MB * 0.10)
        assert breakdown.disk_seconds == pytest.approx(expected)
        assert breakdown.network_seconds == 0.0
        assert breakdown.bottleneck == "disk"

    def test_restripe_rate_at_baseline(self, model):
        # 5.4 TB moved at 48 MB/s -> 31.25 hours.
        assert 1.0 / model.restripe_rate() == pytest.approx(31.25, rel=1e-3)


class TestRates:
    def test_rates_are_reciprocal_hours(self, model):
        for t in (1, 2, 3):
            assert model.node_rebuild_rate(t) == pytest.approx(
                1.0 / model.node_rebuild(t).total_hours
            )
            assert model.drive_rebuild_rate(t) == pytest.approx(
                1.0 / model.drive_rebuild(t).total_hours
            )

    def test_block_size_monotonicity(self, baseline):
        """Larger rebuild commands never slow a rebuild (Figure 16's lever)."""
        previous = None
        for kb in (16, 32, 64, 128, 256, 512):
            rate = RebuildModel(
                baseline.with_rebuild_command_kb(kb)
            ).node_rebuild_rate(2)
            if previous is not None:
                assert rate >= previous - 1e-12
            previous = rate

    def test_block_size_saturates(self, baseline):
        """Beyond the sustained-rate cap, bigger commands stop helping."""
        r512 = RebuildModel(baseline.with_rebuild_command_kb(512)).node_rebuild_rate(2)
        r2048 = RebuildModel(baseline.with_rebuild_command_kb(2048)).node_rebuild_rate(2)
        assert r512 == pytest.approx(r2048)

    def test_link_speed_saturates(self, baseline):
        """Figure 17: 5 and 10 Gb/s are equivalent (disk-bound regime)."""
        r5 = RebuildModel(baseline.with_link_speed_gbps(5)).node_rebuild_rate(2)
        r10 = RebuildModel(baseline.with_link_speed_gbps(10)).node_rebuild_rate(2)
        r1 = RebuildModel(baseline.with_link_speed_gbps(1)).node_rebuild_rate(2)
        assert r5 == pytest.approx(r10)
        assert r1 < r5

    def test_larger_node_set_spreads_rebuild(self, baseline):
        """More survivors share the work: rebuild rate grows with N."""
        small = RebuildModel(baseline.replace(node_set_size=16)).node_rebuild_rate(2)
        large = RebuildModel(baseline.replace(node_set_size=128)).node_rebuild_rate(2)
        assert large > small

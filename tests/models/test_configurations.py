"""Tests for the nine-configuration grid."""

import pytest

from repro.models import (
    ALL_CONFIGURATIONS,
    Configuration,
    InternalRaid,
    InternalRaidNodeModel,
    NoRaidNodeModel,
    Parameters,
    RecursiveNoRaidModel,
    all_configurations,
    evaluate,
    evaluate_all,
    sensitivity_configurations,
)


class TestGrid:
    def test_nine_configurations(self):
        assert len(ALL_CONFIGURATIONS) == 9
        keys = {c.key for c in ALL_CONFIGURATIONS}
        assert len(keys) == 9

    def test_labels_match_paper_style(self):
        config = Configuration(InternalRaid.RAID5, 2)
        assert config.label == "FT 2, Internal RAID 5"
        assert config.key == "ft2_raid5"
        assert Configuration(InternalRaid.NONE, 3).label == "FT 3, No Internal RAID"

    def test_all_configurations_custom_depth(self):
        grid = all_configurations(max_fault_tolerance=2)
        assert len(grid) == 6

    def test_sensitivity_trio(self):
        trio = sensitivity_configurations()
        assert [c.key for c in trio] == ["ft2_noraid", "ft2_raid5", "ft3_noraid"]

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            Configuration(InternalRaid.RAID5, 0)

    def test_from_key_round_trips(self):
        for config in all_configurations(max_fault_tolerance=5):
            assert Configuration.from_key(config.key) == config

    @pytest.mark.parametrize(
        "bad",
        ["", "ft2", "ft2_", "raid5", "ft_raid5", "ftx_raid5", "ft2_raid7", "ft-1_raid5"],
    )
    def test_from_key_rejects_garbage(self, bad):
        with pytest.raises(ValueError, match="configuration key"):
            Configuration.from_key(bad)


class TestModelDispatch:
    def test_no_raid_low_tolerance_uses_explicit(self, baseline):
        model = Configuration(InternalRaid.NONE, 2).model(baseline)
        assert isinstance(model, NoRaidNodeModel)

    def test_no_raid_high_tolerance_uses_recursive(self, baseline):
        model = Configuration(InternalRaid.NONE, 4).model(baseline)
        assert isinstance(model, RecursiveNoRaidModel)

    def test_internal_raid_dispatch(self, baseline):
        model = Configuration(InternalRaid.RAID6, 2).model(baseline)
        assert isinstance(model, InternalRaidNodeModel)
        assert model.raid_level is InternalRaid.RAID6

    def test_chain_accessible(self, baseline):
        chain = Configuration(InternalRaid.NONE, 2).chain(baseline)
        assert chain.absorbing_states() == ("loss",)


class TestEvaluation:
    def test_exact_and_approx_methods(self, gentle_params):
        config = Configuration(InternalRaid.RAID5, 2)
        exact = config.mttdl_hours(gentle_params, "exact")
        approx = config.mttdl_hours(gentle_params, "approx")
        assert approx == pytest.approx(exact, rel=0.05)

    def test_approx_for_explicit_no_raid_uses_figure_a1(self, gentle_params):
        config = Configuration(InternalRaid.NONE, 2)
        approx = config.mttdl_hours(gentle_params, "approx")
        via_a1 = RecursiveNoRaidModel(gentle_params, 2).mttdl_approx()
        assert approx == pytest.approx(via_a1)

    def test_unknown_method(self, baseline):
        with pytest.raises(ValueError):
            Configuration(InternalRaid.NONE, 2).mttdl_hours(baseline, "guess")

    def test_evaluate_all_covers_grid(self, baseline):
        results = evaluate_all(baseline)
        assert len(results) == 9
        assert all(r.mttdl_hours > 0 for _, r in results)

    def test_evaluate_single(self, baseline):
        config = Configuration(InternalRaid.RAID5, 2)
        result = evaluate(config, baseline)
        assert result.meets_target

    def test_reliability_improves_with_tolerance(self, baseline):
        """Within each internal level, more cross-node tolerance always
        means fewer loss events."""
        for internal in (InternalRaid.NONE, InternalRaid.RAID5, InternalRaid.RAID6):
            rates = [
                Configuration(internal, t).reliability(baseline).events_per_pb_year
                for t in (1, 2, 3)
            ]
            assert rates[0] > rates[1] > rates[2]

    def test_internal_raid_always_helps(self, baseline):
        """Adding internal RAID 5 never hurts at equal cross-node FT."""
        for t in (1, 2, 3):
            none = Configuration(InternalRaid.NONE, t).reliability(baseline)
            raid5 = Configuration(InternalRaid.RAID5, t).reliability(baseline)
            assert raid5.events_per_pb_year < none.events_per_pb_year

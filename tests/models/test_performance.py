"""Tests for the rebuild-bandwidth performance-impact model."""

import pytest

from repro.models import (
    Configuration,
    InternalRaid,
    PerformanceImpact,
    PerformanceImpactModel,
)


@pytest.fixture
def model(baseline):
    return PerformanceImpactModel(Configuration(InternalRaid.RAID5, 2), baseline)


class TestImpact:
    def test_average_throughput_formula(self):
        impact = PerformanceImpact(
            rebuild_time_fraction=0.10, throughput_during_rebuild=0.9
        )
        assert impact.average_throughput == pytest.approx(0.9 + 0.1 * 0.9)
        assert impact.degraded_hours_per_year == pytest.approx(0.10 * 8766)

    def test_baseline_is_barely_affected(self, model):
        """At the baseline MTTFs the system rebuilds < 0.1% of the time."""
        impact = model.evaluate()
        assert impact.rebuild_time_fraction < 1e-3
        assert impact.average_throughput > 0.999
        assert impact.throughput_during_rebuild == pytest.approx(0.90)

    def test_worse_hardware_means_more_degradation(self, baseline):
        config = Configuration(InternalRaid.RAID5, 2)
        good = PerformanceImpactModel(config, baseline).evaluate()
        bad = PerformanceImpactModel(
            config, baseline.replace(node_mttf_hours=50_000.0)
        ).evaluate()
        assert bad.rebuild_time_fraction > good.rebuild_time_fraction
        assert bad.average_throughput < good.average_throughput


class TestSweep:
    def test_tradeoff_directions(self, model):
        """More rebuild bandwidth: better reliability, deeper degradation
        during rebuilds."""
        rows = model.sweep_rebuild_fraction()
        fractions = [r[0] for r in rows]
        rates = [r[1] for r in rows]
        assert fractions == sorted(fractions)
        # Reliability improves (events drop) with more rebuild bandwidth.
        assert rates == sorted(rates, reverse=True)

    def test_average_throughput_stays_high(self, model):
        """Because rebuilds are rare, even a 40% reservation costs almost
        nothing on average — the knob is nearly free reliability at the
        baseline (its true cost appears under degraded-mode latency SLOs,
        outside this model's scope)."""
        rows = model.sweep_rebuild_fraction()
        for _, _, average in rows:
            assert average > 0.995

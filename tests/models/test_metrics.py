"""Tests for reliability metrics and the paper's target."""

import pytest

from repro.models import (
    HOURS_PER_YEAR,
    PAPER_TARGET_EVENTS_PER_PB_YEAR,
    Parameters,
    ReliabilityResult,
    events_per_pb_year,
    events_per_year_to_mttdl_hours,
    mttdl_hours_for_target,
    mttdl_hours_to_events_per_year,
)


class TestConversions:
    def test_target_value(self):
        # 100 systems x 1 PB x 5 years < 1 event  =>  2e-3 / PB-year.
        assert PAPER_TARGET_EVENTS_PER_PB_YEAR == pytest.approx(2e-3)

    def test_roundtrip(self):
        for mttdl in (1e3, 1e6, 1e12):
            events = mttdl_hours_to_events_per_year(mttdl)
            assert events_per_year_to_mttdl_hours(events) == pytest.approx(mttdl)

    def test_one_year_mttdl_is_one_event(self):
        assert mttdl_hours_to_events_per_year(HOURS_PER_YEAR) == pytest.approx(1.0)

    def test_pb_normalization(self, baseline):
        # Baseline logical capacity is 0.1728 PB.
        events = events_per_pb_year(HOURS_PER_YEAR, baseline)
        assert events == pytest.approx(1.0 / 0.1728)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mttdl_hours_to_events_per_year(0)
        with pytest.raises(ValueError):
            events_per_year_to_mttdl_hours(-1)
        with pytest.raises(ValueError):
            mttdl_hours_for_target(Parameters.baseline(), 0)

    def test_mttdl_for_target_consistency(self, baseline):
        needed = mttdl_hours_for_target(baseline)
        assert events_per_pb_year(needed, baseline) == pytest.approx(
            PAPER_TARGET_EVENTS_PER_PB_YEAR
        )


class TestReliabilityResult:
    def test_from_mttdl(self, baseline):
        result = ReliabilityResult.from_mttdl(1e9, baseline)
        assert result.mttdl_hours == 1e9
        assert result.mttdl_years == pytest.approx(1e9 / HOURS_PER_YEAR)
        assert result.events_per_pb_year == pytest.approx(
            HOURS_PER_YEAR / 1e9 / 0.1728
        )

    def test_meets_target_boundary(self, baseline):
        needed = mttdl_hours_for_target(baseline)
        assert ReliabilityResult.from_mttdl(needed * 1.01, baseline).meets_target
        assert not ReliabilityResult.from_mttdl(needed * 0.99, baseline).meets_target

    def test_margin_orders(self, baseline):
        needed = mttdl_hours_for_target(baseline)
        result = ReliabilityResult.from_mttdl(needed * 1000, baseline)
        assert result.margin_orders_of_magnitude() == pytest.approx(3.0, abs=0.01)

"""Property tests: the spec path is bitwise-identical to the legacy builders.

Every one of the nine configuration families is expressed twice — once as
a declarative :class:`~repro.core.spec.ModelSpec` and once as the original
imperative builder (kept as an oracle).  These tests assert the two paths
agree *bitwise* — same state order, same initial state, byte-for-byte
equal generator matrices and therefore identical MTTDLs — both on
hypothesis-randomized raw rate inputs (including the clamping regimes
``h > 1`` and ``h = 0``) and across the 27-point verification lattice.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.configurations import ALL_CONFIGURATIONS
from repro.models.internal_raid import (
    build_internal_raid_chain,
    legacy_build_internal_raid_chain,
)
from repro.models.no_raid import (
    build_no_raid_chain_ft1,
    build_no_raid_chain_ft2,
    build_no_raid_chain_ft3,
    legacy_build_no_raid_chain_ft1,
    legacy_build_no_raid_chain_ft2,
    legacy_build_no_raid_chain_ft3,
)
from repro.models.raid import (
    build_raid5_chain,
    build_raid6_chain,
    legacy_build_raid5_chain,
    legacy_build_raid6_chain,
)
from repro.models.recursive import (
    build_recursive_chain,
    legacy_build_recursive_chain,
)
from repro.verify.lattice import default_lattice


def assert_bitwise_equal(spec_chain, legacy_chain):
    assert spec_chain.states == legacy_chain.states
    assert spec_chain.initial_state == legacy_chain.initial_state
    assert np.array_equal(
        spec_chain.generator_matrix(), legacy_chain.generator_matrix()
    ), "generator matrices differ"
    assert (
        spec_chain.mean_time_to_absorption()
        == legacy_chain.mean_time_to_absorption()
    )


# Rates stay positive but span many decades, h-probabilities deliberately
# include 0 (edges vanish in the legacy builder) and values past 1 (the
# clamp regime).
rate = st.floats(min_value=1e-9, max_value=1e-2, allow_nan=False)
repair = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)
h_prob = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.0, max_value=1.5, allow_nan=False),
)


def _h_words(k, values):
    words = [""]
    for _ in range(k):
        words = [w + letter for w in words for letter in "Nd"]
    words = sorted(words, key=lambda w: [0 if c == "N" else 1 for c in w])
    return dict(zip(words, values))


class TestNoRaidFamilies:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=128),
        d=st.integers(min_value=1, max_value=24),
        lam_n=rate,
        lam_d=rate,
        mu_n=repair,
        mu_d=repair,
        h_n=h_prob,
        h_d=h_prob,
    )
    def test_ft1(self, n, d, lam_n, lam_d, mu_n, mu_d, h_n, h_d):
        spec = build_no_raid_chain_ft1(n, d, lam_n, lam_d, mu_n, mu_d, h_n, h_d)
        legacy = legacy_build_no_raid_chain_ft1(
            n, d, lam_n, lam_d, mu_n, mu_d, h_n, h_d
        )
        assert_bitwise_equal(spec, legacy)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=128),
        d=st.integers(min_value=1, max_value=24),
        lam_n=rate,
        lam_d=rate,
        mu_n=repair,
        mu_d=repair,
        hs=st.lists(h_prob, min_size=4, max_size=4),
    )
    def test_ft2(self, n, d, lam_n, lam_d, mu_n, mu_d, hs):
        h = _h_words(2, hs)
        spec = build_no_raid_chain_ft2(n, d, lam_n, lam_d, mu_n, mu_d, h)
        legacy = legacy_build_no_raid_chain_ft2(
            n, d, lam_n, lam_d, mu_n, mu_d, h
        )
        assert_bitwise_equal(spec, legacy)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=128),
        d=st.integers(min_value=1, max_value=24),
        lam_n=rate,
        lam_d=rate,
        mu_n=repair,
        mu_d=repair,
        hs=st.lists(h_prob, min_size=8, max_size=8),
    )
    def test_ft3(self, n, d, lam_n, lam_d, mu_n, mu_d, hs):
        h = _h_words(3, hs)
        spec = build_no_raid_chain_ft3(n, d, lam_n, lam_d, mu_n, mu_d, h)
        legacy = legacy_build_no_raid_chain_ft3(
            n, d, lam_n, lam_d, mu_n, mu_d, h
        )
        assert_bitwise_equal(spec, legacy)


class TestRecursiveFamily:
    @settings(max_examples=20, deadline=None)
    @given(
        k=st.integers(min_value=1, max_value=5),
        extra_n=st.integers(min_value=1, max_value=64),
        d=st.integers(min_value=1, max_value=24),
        lam_n=rate,
        lam_d=rate,
        mu_n=repair,
        mu_d=repair,
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_arbitrary_k(self, k, extra_n, d, lam_n, lam_d, mu_n, mu_d, seed):
        n = k + extra_n
        rng = np.random.default_rng(seed)
        h = _h_words(k, [float(v) for v in rng.uniform(0.0, 1.5, 2**k)])
        spec = build_recursive_chain(k, n, d, lam_n, lam_d, mu_n, mu_d, h)
        legacy = legacy_build_recursive_chain(
            k, n, d, lam_n, lam_d, mu_n, mu_d, h
        )
        assert_bitwise_equal(spec, legacy)


class TestInternalRaidFamily:
    @settings(max_examples=25, deadline=None)
    @given(
        t=st.integers(min_value=1, max_value=3),
        extra_n=st.integers(min_value=1, max_value=64),
        lam_n=rate,
        lam_big_d=rate,
        lam_s=rate,
        mu_n=repair,
        k_t=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        parallel=st.booleans(),
    )
    def test_all_tolerances(
        self, t, extra_n, lam_n, lam_big_d, lam_s, mu_n, k_t, parallel
    ):
        n = t + extra_n
        spec = build_internal_raid_chain(
            t, n, lam_n, lam_big_d, lam_s, mu_n, k_t, parallel
        )
        legacy = legacy_build_internal_raid_chain(
            t, n, lam_n, lam_big_d, lam_s, mu_n, k_t, parallel
        )
        assert_bitwise_equal(spec, legacy)


class TestDriveLevelRaidFamilies:
    @settings(max_examples=25, deadline=None)
    @given(
        d=st.integers(min_value=2, max_value=24),
        lam=rate,
        mu=repair,
        h=h_prob,
        split=st.booleans(),
    )
    def test_raid5(self, d, lam, mu, h, split):
        assert_bitwise_equal(
            build_raid5_chain(d, lam, mu, h, split),
            legacy_build_raid5_chain(d, lam, mu, h, split),
        )

    @settings(max_examples=25, deadline=None)
    @given(
        d=st.integers(min_value=3, max_value=24),
        lam=rate,
        mu=repair,
        h=h_prob,
        split=st.booleans(),
    )
    def test_raid6(self, d, lam, mu, h, split):
        assert_bitwise_equal(
            build_raid6_chain(d, lam, mu, h, split),
            legacy_build_raid6_chain(d, lam, mu, h, split),
        )


class TestModelPathOnLattice:
    """All nine paper configurations, at every point of the 27-point
    verification lattice: model.chain() (the compiled-spec path) must be
    bitwise identical to model.legacy_chain() (the imperative oracle)."""

    @pytest.mark.parametrize(
        "config", ALL_CONFIGURATIONS, ids=lambda c: c.key
    )
    def test_all_configs_all_points(self, config):
        for params in default_lattice():
            model = config.model(params)
            assert_bitwise_equal(model.chain(), model.legacy_chain())

"""Tests for the failure-detection-latency extension."""

import pytest

from repro.models import (
    DetectionLatencyModel,
    InternalRaid,
    InternalRaidNodeModel,
    Parameters,
    build_detection_chain,
)


class TestChain:
    def test_state_count(self):
        # 1 + 2t transient states + loss.
        for t in (1, 2, 3):
            chain = build_detection_chain(t, 64, 1e-6, 0.0, 0.0, 0.3, 1.0, 10.0)
            assert chain.num_states == 2 + 2 * t

    def test_undetected_states_have_no_repair(self):
        chain = build_detection_chain(2, 64, 1e-6, 0.0, 0.0, 0.3, 1.0, 10.0)
        successors = chain.successors((1, "u"))
        assert (0, "r") not in successors
        assert successors[(1, "r")] == pytest.approx(10.0)

    def test_repair_edges_only_from_detected(self):
        chain = build_detection_chain(2, 64, 1e-6, 0.0, 0.0, 0.3, 1.0, 10.0)
        assert chain.rate((1, "r"), (0, "r")) == pytest.approx(0.3)
        assert chain.rate((2, "r"), (1, "r")) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            build_detection_chain(0, 64, 1e-6, 0.0, 0.0, 0.3, 1.0, 10.0)
        with pytest.raises(ValueError):
            build_detection_chain(2, 2, 1e-6, 0.0, 0.0, 0.3, 1.0, 10.0)
        with pytest.raises(ValueError):
            build_detection_chain(2, 64, 1e-6, 0.0, 0.0, 0.3, 1.0, 0.0)


class TestModel:
    def test_fast_detection_converges_to_paper(self, baseline):
        """With sub-second detection the chain reproduces the paper's
        zero-latency MTTDL."""
        paper = InternalRaidNodeModel(baseline, InternalRaid.RAID5, 2).mttdl_exact()
        fast = DetectionLatencyModel(
            baseline, InternalRaid.RAID5, 2, detection_hours=1e-4
        ).mttdl_exact()
        assert fast == pytest.approx(paper, rel=1e-3)

    def test_latency_monotonically_hurts(self, baseline):
        values = [
            DetectionLatencyModel(
                baseline, InternalRaid.RAID5, 2, detection_hours=h
            ).mttdl_exact()
            for h in (0.01, 0.1, 1.0, 10.0)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_penalty_definition(self, baseline):
        model = DetectionLatencyModel(
            baseline, InternalRaid.RAID5, 2, detection_hours=1.0
        )
        assert model.mttdl_penalty() >= 1.0

    def test_latency_comparable_to_rebuild_is_costly(self, baseline):
        """A detection window on the order of the rebuild time roughly
        doubles the exposure window, costing ~2-4x at fault tolerance 2."""
        rebuild_hours = 1.0 / InternalRaidNodeModel(
            baseline, InternalRaid.RAID5, 2
        ).node_rebuild_rate
        model = DetectionLatencyModel(
            baseline, InternalRaid.RAID5, 2, detection_hours=rebuild_hours
        )
        assert 1.5 < model.mttdl_penalty() < 6.0

    def test_validation(self, baseline):
        with pytest.raises(ValueError):
            DetectionLatencyModel(baseline, InternalRaid.RAID5, 2, 0.0)

"""Tests for the RAID 5 / RAID 6 drive-level Markov models (Figures 1, 4)."""

import pytest

from repro.models import (
    InternalRaid,
    Parameters,
    Raid5Model,
    Raid6Model,
    array_model,
    build_raid5_chain,
    build_raid6_chain,
    raid5_mttdl_approx,
    raid5_mttdl_exact_formula,
    raid6_mttdl_approx,
)


class TestRaid5Chain:
    def test_states(self):
        chain = build_raid5_chain(8, 1e-5, 0.1, 0.02)
        assert set(chain.states) == {0, 1, "loss"}
        assert chain.absorbing_states() == ("loss",)

    def test_transition_rates(self):
        d, lam, mu, h = 8, 1e-5, 0.1, 0.02
        chain = build_raid5_chain(d, lam, mu, h)
        assert chain.rate(0, 1) == pytest.approx(d * lam * (1 - h))
        assert chain.rate(0, "loss") == pytest.approx(d * lam * h)
        assert chain.rate(1, 0) == pytest.approx(mu)
        assert chain.rate(1, "loss") == pytest.approx((d - 1) * lam)

    def test_chain_solve_equals_paper_exact_formula(self):
        """The paper's RAID 5 closed form is exact — the chain must match
        it to machine precision."""
        for d, lam, mu, h in [
            (4, 1e-5, 0.5, 0.01),
            (12, 1 / 300_000, 0.032, 0.264),
            (24, 1e-4, 2.0, 0.0),
        ]:
            chain = build_raid5_chain(d, lam, mu, h)
            formula = raid5_mttdl_exact_formula(d, lam, mu, h)
            assert chain.mean_time_to_absorption() == pytest.approx(
                formula, rel=1e-12
            )

    def test_approx_close_when_mu_dominates(self):
        d, lam, mu = 8, 1e-7, 1.0
        che = 1e-4
        exact = build_raid5_chain(d, lam, mu, (d - 1) * che).mean_time_to_absorption()
        approx = raid5_mttdl_approx(d, lam, mu, che)
        assert approx == pytest.approx(exact, rel=0.01)

    def test_h_clamped_to_one(self):
        chain = build_raid5_chain(8, 1e-5, 0.1, 5.0)
        # With h = 1 every first failure is immediately fatal.
        assert chain.rate(0, 1) == 0.0

    def test_too_few_drives(self):
        with pytest.raises(ValueError):
            build_raid5_chain(1, 1e-5, 0.1, 0.0)

    def test_negative_h_rejected(self):
        with pytest.raises(ValueError):
            build_raid5_chain(4, 1e-5, 0.1, -0.1)


class TestRaid6Chain:
    def test_states(self):
        chain = build_raid6_chain(8, 1e-5, 0.1, 0.02)
        assert set(chain.states) == {0, 1, 2, "loss"}

    def test_transition_rates(self):
        d, lam, mu, h = 8, 1e-5, 0.1, 0.02
        chain = build_raid6_chain(d, lam, mu, h)
        assert chain.rate(0, 1) == pytest.approx(d * lam)
        assert chain.rate(1, 2) == pytest.approx((d - 1) * lam * (1 - h))
        assert chain.rate(1, "loss") == pytest.approx((d - 1) * lam * h)
        assert chain.rate(2, "loss") == pytest.approx((d - 2) * lam)
        assert chain.rate(2, 1) == pytest.approx(mu)

    def test_approx_close_when_mu_dominates(self):
        d, lam, mu = 8, 1e-7, 1.0
        che = 1e-4
        exact = build_raid6_chain(d, lam, mu, (d - 2) * che).mean_time_to_absorption()
        approx = raid6_mttdl_approx(d, lam, mu, che)
        assert approx == pytest.approx(exact, rel=0.01)

    def test_raid6_beats_raid5(self):
        d, lam, mu, che = 12, 1 / 300_000, 0.032, 0.024
        r5 = build_raid5_chain(d, lam, mu, (d - 1) * che).mean_time_to_absorption()
        r6 = build_raid6_chain(d, lam, mu, (d - 2) * che).mean_time_to_absorption()
        assert r6 > 100 * r5

    def test_too_few_drives(self):
        with pytest.raises(ValueError):
            build_raid6_chain(2, 1e-5, 0.1, 0.0)


class TestArrayRates:
    def test_raid5_approx_rates_formulas(self, baseline):
        model = Raid5Model(baseline)
        rates = model.rates()
        d, lam = 12, baseline.drive_failure_rate
        mu = model.restripe_rate
        assert rates.array_failure_rate == pytest.approx(d * 11 * lam**2 / mu)
        assert rates.restripe_sector_loss_rate == pytest.approx(
            d * 11 * lam * 0.024
        )

    def test_raid6_approx_rates_formulas(self, baseline):
        model = Raid6Model(baseline)
        rates = model.rates()
        d, lam = 12, baseline.drive_failure_rate
        mu = model.restripe_rate
        assert rates.array_failure_rate == pytest.approx(
            d * 11 * 10 * lam**3 / mu**2
        )
        assert rates.restripe_sector_loss_rate == pytest.approx(
            d * 11 * 10 * lam**2 * 0.024 / mu
        )

    def test_exact_rates_converge_to_approx(self, gentle_params):
        """In the mu >> lambda regime the exact split-state extraction
        reproduces the paper's approximations."""
        model = Raid5Model(gentle_params)
        approx = model.rates("approx")
        exact = model.rates("exact")
        assert exact.array_failure_rate == pytest.approx(
            approx.array_failure_rate, rel=0.02
        )
        assert exact.restripe_sector_loss_rate == pytest.approx(
            approx.restripe_sector_loss_rate, rel=0.02
        )

    def test_exact_rates_sum_to_renewal_rate(self, baseline):
        """lambda_D + lambda_S must equal 1 / MTTDL for the exact method."""
        for model in (Raid5Model(baseline), Raid6Model(baseline)):
            exact = model.rates("exact")
            total = exact.array_failure_rate + exact.restripe_sector_loss_rate
            assert total == pytest.approx(1.0 / exact.mttdl_hours, rel=1e-9)

    def test_unknown_method_rejected(self, baseline):
        with pytest.raises(ValueError):
            Raid5Model(baseline).rates("magic")

    def test_raid6_much_more_reliable_array(self, baseline):
        r5 = Raid5Model(baseline).rates()
        r6 = Raid6Model(baseline).rates()
        assert r6.array_failure_rate < r5.array_failure_rate / 100


class TestFactory:
    def test_dispatch(self, baseline):
        assert isinstance(array_model(baseline, InternalRaid.RAID5), Raid5Model)
        assert isinstance(array_model(baseline, InternalRaid.RAID6), Raid6Model)

    def test_none_rejected(self, baseline):
        with pytest.raises(ValueError):
            array_model(baseline, InternalRaid.NONE)

    def test_drive_fault_tolerance_property(self):
        assert InternalRaid.NONE.drive_fault_tolerance == 0
        assert InternalRaid.RAID5.drive_fault_tolerance == 1
        assert InternalRaid.RAID6.drive_fault_tolerance == 2

    def test_exact_formula_matches_model(self, baseline):
        model = Raid5Model(baseline)
        assert model.mttdl_exact() == pytest.approx(
            model.mttdl_exact_formula(), rel=1e-10
        )

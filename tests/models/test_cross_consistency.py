"""Cross-consistency property tests across the model stack.

These check relationships that must hold between independent pieces of
the library on hypothesis-generated operating points: exact rational
solves vs GTH, monotonicity of MTTDL in every rate, and the invariance
properties the per-PB normalization promises.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import exact_mttdl
from repro.models import (
    Configuration,
    InternalRaid,
    NoRaidNodeModel,
    Parameters,
    RecursiveNoRaidModel,
    build_internal_raid_chain,
)


def random_params(seed: int) -> Parameters:
    rng = np.random.default_rng(seed)
    n = int(rng.integers(6, 64))
    r = int(rng.integers(4, min(n, 16) + 1))
    return Parameters.baseline().replace(
        node_set_size=n,
        redundancy_set_size=r,
        drives_per_node=int(rng.integers(2, 24)),
        node_mttf_hours=float(10 ** rng.uniform(4.5, 6.5)),
        drive_mttf_hours=float(10 ** rng.uniform(4.5, 6.5)),
        hard_error_rate_per_bit=float(10 ** rng.uniform(-16, -14)),
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_gth_matches_rational_arithmetic(seed):
    """GTH vs exact Fractions on random paper chains: the float solver is
    trustworthy at every operating point hypothesis finds."""
    params = random_params(seed)
    chain = NoRaidNodeModel(params, 2).chain()
    numeric = chain.mean_time_to_absorption()
    exact = float(exact_mttdl(chain))
    assert numeric == pytest.approx(exact, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_mttdl_monotone_in_mttf(seed):
    """Better hardware never hurts: MTTDL is monotone in both MTTFs."""
    params = random_params(seed)
    config = Configuration(InternalRaid.NONE, 2)
    base = config.mttdl_hours(params)
    better_drives = config.mttdl_hours(
        params.replace(drive_mttf_hours=params.drive_mttf_hours * 2)
    )
    better_nodes = config.mttdl_hours(
        params.replace(node_mttf_hours=params.node_mttf_hours * 2)
    )
    assert better_drives >= base
    assert better_nodes >= base


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_mttdl_monotone_in_fault_tolerance(seed):
    """More cross-node tolerance never hurts (at any random point)."""
    params = random_params(seed)
    values = [
        RecursiveNoRaidModel(params, t).mttdl_exact() for t in (1, 2, 3)
    ]
    assert values[0] <= values[1] <= values[2]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    t=st.integers(min_value=1, max_value=3),
)
def test_internal_chain_monotone_in_repair_rate(seed, t):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(t + 2, 64))
    lam_n = 10.0 ** rng.uniform(-7, -5)
    mu = 10.0 ** rng.uniform(-1, 1)
    slow = build_internal_raid_chain(t, n, lam_n, 0.0, 1e-5, mu, 0.5)
    fast = build_internal_raid_chain(t, n, lam_n, 0.0, 1e-5, mu * 3, 0.5)
    assert fast.mean_time_to_absorption() >= slow.mean_time_to_absorption()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_events_per_pb_year_capacity_invariance(seed):
    """Doubling drive capacity at a fixed hard-error rate *per bit read
    during rebuild of the same data* would change physics; but doubling
    capacity with HER scaled to keep C*HER constant must leave the
    normalized metric nearly unchanged (the cancellation the paper's
    Figure 20 relies on, in its purest form)."""
    params = random_params(seed)
    config = Configuration(InternalRaid.NONE, 2)
    base = config.reliability(params).events_per_pb_year
    scaled = params.replace(
        drive_capacity_bytes=params.drive_capacity_bytes * 2,
        hard_error_rate_per_bit=params.hard_error_rate_per_bit / 2,
    )
    doubled = config.reliability(scaled).events_per_pb_year
    # Capacity doubles the data to rebuild (halving mu) but also doubles
    # the PB normalizer; the residual effect is the longer rebuild window,
    # bounded well within an order of magnitude.
    assert base / 10 < doubled < base * 10

"""Tests for the declarative search-space helper (repro.models.space).

The helper owns configuration/parameter grid enumeration for the
analysis layer, the fleet scenario generator and the design-space
optimizer, so these tests pin three things: the enumeration orders the
existing callers rely on, the silent-skip semantics for physically
infeasible points, and the contract that every validation failure names
the offending axis.
"""

import json

import pytest

from repro.models import (
    ALL_CONFIGURATIONS,
    ConfigSpace,
    Configuration,
    InternalRaid,
    ParamAxis,
    Parameters,
    SearchSpace,
    SpaceError,
    all_configurations,
    storage_overhead,
)
from repro.models.scrubbing import ScrubbingModel


BASE = Parameters.baseline()


class TestConfigSpace:
    def test_default_grid_matches_paper(self):
        space = ConfigSpace()
        assert space.size == 9
        assert space.configurations() == list(ALL_CONFIGURATIONS)

    def test_all_configurations_order_preserved(self):
        configs = all_configurations()
        assert len(configs) == 9
        assert configs[0].key == "ft1_noraid"
        assert [c.key for c in configs] == [c.key for c in ALL_CONFIGURATIONS]

    def test_major_orders(self):
        space = ConfigSpace(
            internal_levels=(InternalRaid.NONE, InternalRaid.RAID5),
            fault_tolerances=(1, 2),
        )
        ft_major = [c.key for c in space.configurations("fault_tolerance")]
        assert ft_major == ["ft1_noraid", "ft1_raid5", "ft2_noraid", "ft2_raid5"]
        internal_major = [c.key for c in space.configurations("internal")]
        assert internal_major == [
            "ft1_noraid", "ft2_noraid", "ft1_raid5", "ft2_raid5",
        ]
        with pytest.raises(ValueError, match="major"):
            space.configurations("bogus")

    @pytest.mark.parametrize(
        "kwargs, axis",
        [
            ({"internal_levels": ()}, "internal"),
            ({"internal_levels": ("raid5",)}, "internal"),
            (
                {
                    "internal_levels": (
                        InternalRaid.RAID5,
                        InternalRaid.RAID5,
                    )
                },
                "internal",
            ),
            ({"fault_tolerances": ()}, "fault_tolerance"),
            ({"fault_tolerances": (0,)}, "fault_tolerance"),
            ({"fault_tolerances": (1, 1)}, "fault_tolerance"),
            ({"fault_tolerances": (True,)}, "fault_tolerance"),
        ],
    )
    def test_validation_names_axis(self, kwargs, axis):
        with pytest.raises(SpaceError) as excinfo:
            ConfigSpace(**kwargs)
        assert excinfo.value.axis == axis
        assert f"axis {axis!r}" in str(excinfo.value)

    def test_dict_round_trip(self):
        space = ConfigSpace(
            internal_levels=(InternalRaid.RAID6,), fault_tolerances=(2, 3)
        )
        assert ConfigSpace.from_dict(space.to_dict()) == space

    def test_from_dict_rejects_unknown_raid_level(self):
        with pytest.raises(SpaceError) as excinfo:
            ConfigSpace.from_dict({"internal": ["raid7"]})
        assert excinfo.value.axis == "internal"
        assert "raid7" in str(excinfo.value)

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(SpaceError) as excinfo:
            ConfigSpace.from_dict({"raid": ["raid5"]})
        assert excinfo.value.axis == "raid"

    def test_noraid_alias_round_trips_config_keys(self):
        space = ConfigSpace.from_dict({"internal": ["noraid"]})
        assert space.internal_levels == (InternalRaid.NONE,)


class TestParamAxis:
    def test_apply_preserves_field_type(self):
        axis = ParamAxis("redundancy_set_size", (6, 8))
        out = axis.apply(BASE, 8.0)
        assert out.redundancy_set_size == 8
        assert isinstance(out.redundancy_set_size, int)

    def test_derived_scrub_axis_folds_into_error_rate(self):
        axis = ParamAxis("scrub_interval_hours", (168.0,))
        out = axis.apply(BASE, 168.0)
        expected = ScrubbingModel().scrubbed_parameters(BASE, 168.0)
        assert out.hard_error_rate_per_bit == expected.hard_error_rate_per_bit
        axis.validate(BASE)  # derived axes validate by applying

    @pytest.mark.parametrize(
        "name, values",
        [
            ("redundancy_set_size", ()),
            ("redundancy_set_size", ("six",)),
            ("redundancy_set_size", (6, 6)),
            ("redundancy_set_size", (True,)),
        ],
    )
    def test_validation_names_axis(self, name, values):
        with pytest.raises(SpaceError) as excinfo:
            ParamAxis(name, values)
        assert excinfo.value.axis == name

    def test_validate_rejects_unknown_field(self):
        axis = ParamAxis("no_such_field", (1, 2))
        with pytest.raises(SpaceError) as excinfo:
            axis.validate(BASE)
        assert excinfo.value.axis == "no_such_field"
        # The message lists the derived axes so the caller can self-serve.
        assert "scrub_interval_hours" in str(excinfo.value)


class TestSearchSpace:
    def test_size_is_cartesian_product(self):
        space = SearchSpace(
            configs=ConfigSpace(fault_tolerances=(1, 2)),
            axes=(
                ParamAxis("redundancy_set_size", (6, 8, 12)),
                ParamAxis("node_set_size", (32, 64)),
            ),
        )
        assert space.size() == 3 * 2 * 3 * 2

    def test_duplicate_axis_rejected(self):
        with pytest.raises(SpaceError) as excinfo:
            SearchSpace(
                axes=(
                    ParamAxis("redundancy_set_size", (6,)),
                    ParamAxis("redundancy_set_size", (8,)),
                )
            )
        assert excinfo.value.axis == "redundancy_set_size"

    def test_grid_skips_infeasible_combinations(self):
        # R=2 is infeasible against t=2 and t=3 (R <= t): one skip per
        # internal level per infeasible tolerance.
        space = SearchSpace(axes=(ParamAxis("redundancy_set_size", (2, 8)),))
        points, skipped = space.grid(BASE)
        assert skipped == 6
        assert len(points) == space.size() - skipped
        assert all(
            p.params.redundancy_set_size > p.config.node_fault_tolerance
            for p in points
        )

    def test_grid_skips_parameter_model_rejections(self):
        # R > N is rejected by the parameter model, not the R<=t guard.
        space = SearchSpace(
            configs=ConfigSpace(
                internal_levels=(InternalRaid.NONE,), fault_tolerances=(1,)
            ),
            axes=(
                ParamAxis("node_set_size", (8,)),
                ParamAxis("redundancy_set_size", (6, 16)),
            ),
        )
        points, skipped = space.grid(BASE)
        assert skipped == 1
        assert [p.params.redundancy_set_size for p in points] == [6]

    def test_points_carry_coords_and_plain_params(self):
        space = SearchSpace(
            configs=ConfigSpace(
                internal_levels=(InternalRaid.RAID5,), fault_tolerances=(2,)
            ),
            axes=(ParamAxis("redundancy_set_size", (8,)),),
        )
        (point,) = list(space.enumerate(BASE))
        assert point.config == Configuration(InternalRaid.RAID5, 2)
        assert point.coords == (("redundancy_set_size", 8),)
        assert point.params == BASE.replace(redundancy_set_size=8)

    def test_validate_names_offending_axis(self):
        space = SearchSpace(axes=(ParamAxis("not_a_field", (1,)),))
        with pytest.raises(SpaceError) as excinfo:
            space.validate(BASE)
        assert excinfo.value.axis == "not_a_field"

    def test_json_round_trip(self):
        space = SearchSpace(
            configs=ConfigSpace(
                internal_levels=(InternalRaid.NONE, InternalRaid.RAID6),
                fault_tolerances=(1, 3),
            ),
            axes=(ParamAxis("redundancy_set_size", (6, 12)),),
        )
        payload = json.loads(json.dumps(space.to_dict()))
        parsed = SearchSpace.from_dict(payload)
        assert parsed.configs == space.configs
        assert parsed.axes == space.axes
        base_points, _ = space.grid(BASE)
        parsed_points, _ = parsed.grid(BASE)
        assert base_points == parsed_points

    def test_from_dict_rejects_unknown_field(self):
        with pytest.raises(SpaceError) as excinfo:
            SearchSpace.from_dict({"axis": {}})
        assert excinfo.value.axis == "axis"


class TestStorageOverhead:
    def test_cross_node_only(self):
        config = Configuration(InternalRaid.NONE, 2)
        assert storage_overhead(config, 8, 12) == 8 / 6

    def test_internal_raid_multiplies(self):
        raid5 = Configuration(InternalRaid.RAID5, 2)
        raid6 = Configuration(InternalRaid.RAID6, 2)
        assert storage_overhead(raid5, 8, 12) == (8 / 6) * 12 / 11
        assert storage_overhead(raid6, 8, 12) == (8 / 6) * 12 / 10

    def test_rejects_r_not_exceeding_t(self):
        config = Configuration(InternalRaid.NONE, 3)
        with pytest.raises(ValueError):
            storage_overhead(config, 3, 12)

"""Tests for availability and mission-survival analysis."""

import math

import pytest

from repro.core import CTMC, CTMCError, Transition
from repro.models import (
    AvailabilityModel,
    Configuration,
    HOURS_PER_YEAR,
    InternalRaid,
    fleet_expected_events,
    fleet_loss_probability,
    mission_survival_probability,
)


@pytest.fixture
def config():
    return Configuration(InternalRaid.RAID5, 2)


class TestStationary:
    def test_two_state_birth_death(self):
        chain = CTMC(
            ["up", "down"],
            [Transition("up", "down", 2.0), Transition("down", "up", 6.0)],
        )
        pi = chain.stationary_distribution()
        assert pi["up"] == pytest.approx(0.75)
        assert pi["down"] == pytest.approx(0.25)

    def test_balance_equations(self):
        import numpy as np

        chain = CTMC(
            ["a", "b", "c"],
            [
                Transition("a", "b", 2.0),
                Transition("b", "c", 3.0),
                Transition("c", "a", 0.5),
                Transition("b", "a", 1.0),
            ],
        )
        pi = chain.stationary_distribution()
        vec = np.array([pi[s] for s in chain.states])
        assert np.allclose(vec @ chain.generator_matrix(), 0.0, atol=1e-12)
        assert vec.sum() == pytest.approx(1.0)

    def test_absorbing_chain_rejected(self):
        chain = CTMC(["a", "b"], [Transition("a", "b", 1.0)])
        with pytest.raises(CTMCError, match="absorbing"):
            chain.stationary_distribution()

    def test_stiff_chain_accurate(self):
        lam, mu = 1e-9, 1e3
        chain = CTMC(
            ["up", "down"],
            [Transition("up", "down", lam), Transition("down", "up", mu)],
        )
        pi = chain.stationary_distribution()
        assert pi["down"] == pytest.approx(lam / (lam + mu), rel=1e-12)


class TestRenewal:
    def test_renewal_closes_chain(self):
        chain = CTMC(
            ["up", "loss"], [Transition("up", "loss", 1.0)], initial_state="up"
        )
        closed = chain.with_renewal(4.0)
        assert closed.absorbing_states() == ()
        pi = closed.stationary_distribution()
        # Mean 1 h until failure, 0.25 h to renew: 20% of time in "loss".
        assert pi["loss"] == pytest.approx(0.2)
        assert pi["up"] == pytest.approx(0.8)

    def test_renewal_rate_validated(self):
        chain = CTMC(["up", "loss"], [Transition("up", "loss", 1.0)])
        with pytest.raises(CTMCError):
            chain.with_renewal(0.0)


class TestMissionSurvival:
    def test_matches_exponential_for_small_missions(self, baseline, config):
        chain = config.chain(baseline)
        mttdl = config.mttdl_hours(baseline)
        t = 5 * HOURS_PER_YEAR
        survival = mission_survival_probability(chain, t)
        assert survival == pytest.approx(math.exp(-t / mttdl), abs=1e-6)

    def test_zero_mission_is_certain(self, baseline, config):
        assert mission_survival_probability(config.chain(baseline), 0.0) == 1.0

    def test_monotone_decreasing(self, baseline, config):
        chain = config.chain(baseline)
        values = [
            mission_survival_probability(chain, t * HOURS_PER_YEAR)
            for t in (1, 5, 25)
        ]
        assert values[0] >= values[1] >= values[2]

    def test_negative_mission_rejected(self, baseline, config):
        with pytest.raises(ValueError):
            mission_survival_probability(config.chain(baseline), -1.0)

    def test_non_absorbing_chain_rejected(self):
        chain = CTMC(
            ["a", "b"],
            [Transition("a", "b", 1.0), Transition("b", "a", 1.0)],
        )
        with pytest.raises(ValueError):
            mission_survival_probability(chain, 1.0)


class TestFleet:
    def test_paper_target_statement_for_strong_config(self, baseline):
        """The paper's target in its original form: across 100 systems and
        5 years, under one expected event — comfortably true for
        [FT2, internal RAID 5] (note: target normalizes per PB; our system
        is 0.17 PB, so this is the raw per-system form)."""
        config = Configuration(InternalRaid.RAID5, 2)
        events = fleet_expected_events(
            config.mttdl_hours(baseline), 100, 5 * HOURS_PER_YEAR
        )
        assert events < 1.0

    def test_fleet_probability_vs_expected_events(self, baseline):
        """For rare events P(>=1) ~ E[N]."""
        config = Configuration(InternalRaid.RAID5, 2)
        chain = config.chain(baseline)
        survival = mission_survival_probability(chain, 5 * HOURS_PER_YEAR)
        p_loss = fleet_loss_probability(survival, 100)
        events = fleet_expected_events(
            config.mttdl_hours(baseline), 100, 5 * HOURS_PER_YEAR
        )
        assert p_loss == pytest.approx(events, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            fleet_loss_probability(1.5, 10)
        with pytest.raises(ValueError):
            fleet_loss_probability(0.5, 0)
        with pytest.raises(ValueError):
            fleet_expected_events(0.0, 10, 100.0)


class TestAvailabilityModel:
    def test_fractions_sum_to_one(self, baseline, config):
        result = AvailabilityModel(config, baseline).evaluate()
        total = (
            result.fully_operational_fraction
            + result.degraded_fraction
            + result.post_loss_fraction
        )
        assert total == pytest.approx(1.0)

    def test_mostly_fully_operational(self, baseline, config):
        result = AvailabilityModel(config, baseline).evaluate()
        assert result.fully_operational_fraction > 0.99
        assert result.post_loss_fraction < 1e-6

    def test_degraded_hours_scale(self, baseline, config):
        result = AvailabilityModel(config, baseline).evaluate()
        assert result.degraded_hours_per_year == pytest.approx(
            result.degraded_fraction * HOURS_PER_YEAR
        )

    def test_worse_nodes_mean_more_degraded_time(self, baseline, config):
        good = AvailabilityModel(config, baseline).evaluate()
        bad = AvailabilityModel(
            config, baseline.replace(node_mttf_hours=100_000.0)
        ).evaluate()
        assert bad.degraded_fraction > good.degraded_fraction

    def test_recovery_hours_validated(self, baseline, config):
        with pytest.raises(ValueError):
            AvailabilityModel(config, baseline, recovery_hours=0.0)

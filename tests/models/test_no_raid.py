"""Tests for the explicit no-internal-RAID chains (Figures 8-10)."""

import numpy as np
import pytest

from repro.models import (
    NoRaidNodeModel,
    Parameters,
    build_no_raid_chain_ft1,
    build_no_raid_chain_ft2,
    build_no_raid_chain_ft3,
    h_parameters,
)

ARGS = dict(
    n=16,
    d=4,
    node_failure_rate=1e-6,
    drive_failure_rate=2e-6,
    node_rebuild_rate=0.3,
    drive_rebuild_rate=3.0,
)


class TestFigure8:
    def test_states(self):
        chain = build_no_raid_chain_ft1(**ARGS, h_n=0.01, h_d=0.002)
        assert set(chain.states) == {"0", "N", "d", "loss"}

    def test_rates(self):
        h_n, h_d = 0.01, 0.002
        chain = build_no_raid_chain_ft1(**ARGS, h_n=h_n, h_d=h_d)
        n, d = ARGS["n"], ARGS["d"]
        lam_n, lam_d = ARGS["node_failure_rate"], ARGS["drive_failure_rate"]
        assert chain.rate("0", "N") == pytest.approx(n * lam_n * (1 - h_n))
        assert chain.rate("0", "d") == pytest.approx(n * d * lam_d * (1 - h_d))
        assert chain.rate("0", "loss") == pytest.approx(
            n * (lam_n * h_n + d * lam_d * h_d)
        )
        second = (n - 1) * (lam_n + d * lam_d)
        assert chain.rate("N", "loss") == pytest.approx(second)
        assert chain.rate("d", "loss") == pytest.approx(second)
        assert chain.rate("N", "0") == pytest.approx(ARGS["node_rebuild_rate"])
        assert chain.rate("d", "0") == pytest.approx(ARGS["drive_rebuild_rate"])


class TestFigure9:
    def test_states(self):
        h = {w: 0.001 for w in ("NN", "Nd", "dN", "dd")}
        chain = build_no_raid_chain_ft2(**ARGS, h=h)
        assert chain.num_states == 8  # 7 transient + loss

    def test_h_split_on_critical_transitions(self):
        h = {"NN": 0.4, "Nd": 0.3, "dN": 0.2, "dd": 0.1}
        chain = build_no_raid_chain_ft2(**ARGS, h=h)
        n, d = ARGS["n"], ARGS["d"]
        lam_n, lam_d = ARGS["node_failure_rate"], ARGS["drive_failure_rate"]
        assert chain.rate("N0", "NN") == pytest.approx((n - 1) * lam_n * 0.6)
        assert chain.rate("N0", "Nd") == pytest.approx((n - 1) * d * lam_d * 0.7)
        assert chain.rate("N0", "loss") == pytest.approx(
            (n - 1) * (lam_n * 0.4 + d * lam_d * 0.3)
        )
        assert chain.rate("d0", "loss") == pytest.approx(
            (n - 1) * (lam_n * 0.2 + d * lam_d * 0.1)
        )

    def test_leaf_loss_rates(self):
        h = {w: 0.0 for w in ("NN", "Nd", "dN", "dd")}
        chain = build_no_raid_chain_ft2(**ARGS, h=h)
        n, d = ARGS["n"], ARGS["d"]
        third = (n - 2) * (ARGS["node_failure_rate"] + d * ARGS["drive_failure_rate"])
        for leaf in ("NN", "Nd", "dN", "dd"):
            assert chain.rate(leaf, "loss") == pytest.approx(third)

    def test_lifo_repair_edges(self):
        h = {w: 0.0 for w in ("NN", "Nd", "dN", "dd")}
        chain = build_no_raid_chain_ft2(**ARGS, h=h)
        mu_n, mu_d = ARGS["node_rebuild_rate"], ARGS["drive_rebuild_rate"]
        # The most recent failure is repaired first.
        assert chain.rate("Nd", "N0") == pytest.approx(mu_d)
        assert chain.rate("dN", "d0") == pytest.approx(mu_n)

    def test_missing_h_rejected(self):
        with pytest.raises(ValueError):
            build_no_raid_chain_ft2(**ARGS, h={"NN": 0.1})


class TestFigure10:
    def test_states(self):
        h = {w: 0.0 for w in h_parameters(Parameters.baseline(), 3)}
        chain = build_no_raid_chain_ft3(**ARGS, h=h)
        assert chain.num_states == 16  # 15 transient + loss

    def test_fourth_failure_rate(self):
        h = {w: 0.0 for w in h_parameters(Parameters.baseline(), 3)}
        chain = build_no_raid_chain_ft3(**ARGS, h=h)
        n, d = ARGS["n"], ARGS["d"]
        fourth = (n - 3) * (ARGS["node_failure_rate"] + d * ARGS["drive_failure_rate"])
        for leaf in ("NNN", "NdN", "ddd", "dNd"):
            assert chain.rate(leaf, "loss") == pytest.approx(fourth)


class TestModel:
    def test_mttdl_ordering(self, baseline):
        values = [NoRaidNodeModel(baseline, t).mttdl_exact() for t in (1, 2, 3)]
        assert values[0] < values[1] < values[2]

    def test_invalid_tolerance(self, baseline):
        with pytest.raises(ValueError):
            NoRaidNodeModel(baseline, 4)
        with pytest.raises(ValueError):
            NoRaidNodeModel(baseline, 0)

    def test_h_parameters_passed_through(self, baseline):
        model = NoRaidNodeModel(baseline, 2)
        assert model.hard_error_parameters() == h_parameters(baseline, 2)

    def test_drive_repair_much_faster_than_node_repair(self, baseline):
        model = NoRaidNodeModel(baseline, 2)
        assert model.drive_rebuild_rate > model.node_rebuild_rate

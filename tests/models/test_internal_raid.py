"""Tests for the node-level internal-RAID models (Figures 5-7)."""

import pytest

from repro.models import (
    InternalRaid,
    InternalRaidNodeModel,
    Parameters,
    build_internal_raid_chain,
    mttdl_internal_raid_nft1,
    mttdl_internal_raid_nft2,
    mttdl_internal_raid_nft3,
)


class TestChainConstruction:
    def test_state_count(self):
        for t in (1, 2, 3, 5):
            chain = build_internal_raid_chain(t, 64, 1e-6, 1e-7, 1e-5, 0.5, 0.1)
            # states 0..t plus loss
            assert chain.num_states == t + 2

    def test_figure5_rates(self):
        n, lam_n, lam_d_arr, lam_s, mu, k = 64, 1e-6, 2e-7, 1e-5, 0.5, 1.0
        chain = build_internal_raid_chain(1, n, lam_n, lam_d_arr, lam_s, mu, k)
        lam = lam_n + lam_d_arr
        assert chain.rate(0, 1) == pytest.approx(n * lam)
        assert chain.rate(1, 0) == pytest.approx(mu)
        assert chain.rate(1, "loss") == pytest.approx((n - 1) * (lam + lam_s))

    def test_figure6_rates(self):
        n, lam_n, lam_d_arr, lam_s, mu, k2 = 64, 1e-6, 2e-7, 1e-5, 0.5, 7 / 63
        chain = build_internal_raid_chain(2, n, lam_n, lam_d_arr, lam_s, mu, k2)
        lam = lam_n + lam_d_arr
        assert chain.rate(0, 1) == pytest.approx(n * lam)
        assert chain.rate(1, 2) == pytest.approx((n - 1) * lam)
        assert chain.rate(2, 1) == pytest.approx(mu)
        assert chain.rate(2, "loss") == pytest.approx((n - 2) * (lam + k2 * lam_s))

    def test_figure7_final_transition(self):
        n, lam_s, k3 = 64, 1e-5, 7 * 6 / (63 * 62)
        chain = build_internal_raid_chain(3, n, 1e-6, 0.0, lam_s, 0.5, k3)
        assert chain.rate(3, "loss") == pytest.approx((n - 3) * (1e-6 + k3 * lam_s))

    def test_parallel_repair_multiplies_rates(self):
        serial = build_internal_raid_chain(3, 64, 1e-6, 0.0, 0.0, 0.5, 1.0)
        parallel = build_internal_raid_chain(
            3, 64, 1e-6, 0.0, 0.0, 0.5, 1.0, parallel_repair=True
        )
        assert serial.rate(2, 1) == pytest.approx(0.5)
        assert parallel.rate(2, 1) == pytest.approx(1.0)
        assert parallel.rate(3, 2) == pytest.approx(1.5)
        assert parallel.mean_time_to_absorption() > serial.mean_time_to_absorption()

    def test_node_set_must_exceed_tolerance(self):
        with pytest.raises(ValueError):
            build_internal_raid_chain(3, 3, 1e-6, 0.0, 0.0, 0.5, 1.0)

    def test_invalid_tolerance(self):
        with pytest.raises(ValueError):
            build_internal_raid_chain(0, 8, 1e-6, 0.0, 0.0, 0.5, 1.0)


class TestNft1ExactFormula:
    def test_paper_exact_formula_matches_chain(self):
        """The paper's NFT-1 formula (with numerator terms) is exact."""
        n, lam_n, lam_d_arr, lam_s, mu = 64, 1e-6, 3e-7, 1e-5, 0.5
        chain = build_internal_raid_chain(1, n, lam_n, lam_d_arr, lam_s, mu, 1.0)
        formula = mttdl_internal_raid_nft1(
            n, lam_n, lam_d_arr, lam_s, mu, exact=True
        )
        assert chain.mean_time_to_absorption() == pytest.approx(formula, rel=1e-12)

    def test_approx_drops_small_terms(self):
        n, lam_n, lam_d_arr, lam_s, mu = 64, 1e-7, 0.0, 0.0, 10.0
        exact = mttdl_internal_raid_nft1(n, lam_n, lam_d_arr, lam_s, mu, exact=True)
        approx = mttdl_internal_raid_nft1(n, lam_n, lam_d_arr, lam_s, mu)
        assert approx == pytest.approx(exact, rel=1e-3)


class TestModel:
    @pytest.mark.parametrize("level", [InternalRaid.RAID5, InternalRaid.RAID6])
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_approx_tracks_exact(self, baseline, level, t):
        model = InternalRaidNodeModel(baseline, level, t)
        assert model.mttdl_approx() == pytest.approx(model.mttdl_exact(), rel=0.02)

    def test_closed_forms_match_model_approx(self, baseline):
        rates5 = InternalRaidNodeModel(baseline, InternalRaid.RAID5, 2).array_rates
        n = baseline.node_set_size
        mu = InternalRaidNodeModel(baseline, InternalRaid.RAID5, 2).node_rebuild_rate
        via_function = mttdl_internal_raid_nft2(
            n,
            baseline.node_failure_rate,
            rates5.array_failure_rate,
            rates5.restripe_sector_loss_rate,
            mu,
            k2=7 / 63,
        )
        model = InternalRaidNodeModel(baseline, InternalRaid.RAID5, 2)
        assert model.mttdl_approx() == pytest.approx(via_function, rel=1e-12)

    def test_nft3_closed_form(self, baseline):
        model = InternalRaidNodeModel(baseline, InternalRaid.RAID5, 3)
        rates = model.array_rates
        via_function = mttdl_internal_raid_nft3(
            baseline.node_set_size,
            baseline.node_failure_rate,
            rates.array_failure_rate,
            rates.restripe_sector_loss_rate,
            model.node_rebuild_rate,
            k3=7 * 6 / (63 * 62),
        )
        assert model.mttdl_approx() == pytest.approx(via_function, rel=1e-12)

    def test_critical_fraction_values(self, baseline):
        assert (
            InternalRaidNodeModel(baseline, InternalRaid.RAID5, 1).critical_sector_fraction
            == 1.0
        )
        assert InternalRaidNodeModel(
            baseline, InternalRaid.RAID5, 2
        ).critical_sector_fraction == pytest.approx(7 / 63)
        assert InternalRaidNodeModel(
            baseline, InternalRaid.RAID5, 3
        ).critical_sector_fraction == pytest.approx(42 / (63 * 62))

    def test_higher_tolerance_is_more_reliable(self, baseline):
        values = [
            InternalRaidNodeModel(baseline, InternalRaid.RAID5, t).mttdl_exact()
            for t in (1, 2, 3)
        ]
        assert values[0] < values[1] < values[2]
        assert values[1] > 100 * values[0]

    def test_none_level_rejected(self, baseline):
        with pytest.raises(ValueError):
            InternalRaidNodeModel(baseline, InternalRaid.NONE, 2)

    def test_invalid_tolerance_rejected(self, baseline):
        with pytest.raises(ValueError):
            InternalRaidNodeModel(baseline, InternalRaid.RAID5, 0)

    def test_invalid_rates_method_rejected(self, baseline):
        with pytest.raises(ValueError):
            InternalRaidNodeModel(baseline, InternalRaid.RAID5, 2, rates_method="x")

    def test_exact_rates_method_close_at_baseline(self, baseline):
        approx = InternalRaidNodeModel(baseline, InternalRaid.RAID5, 2)
        exact = InternalRaidNodeModel(
            baseline, InternalRaid.RAID5, 2, rates_method="exact"
        )
        assert exact.mttdl_exact() == pytest.approx(approx.mttdl_exact(), rel=0.1)

"""Closed-form MTTDL formulas (Sections 4.2-4.3, Figure 12) vs the chains."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import (
    Parameters,
    RebuildModel,
    RecursiveNoRaidModel,
    h_parameters,
    mttdl_no_raid_nft1,
    mttdl_no_raid_nft2,
    mttdl_no_raid_nft3,
)


class TestFigure12AgainstFigureA1:
    """Figure 12's printed formulas (with the lambda_D -> lambda_d typo
    corrected) must equal Figure A1's general form specialized to the
    Section 5.2.2 h-values — the repo's reading of the paper in one test."""

    def test_nft1(self, baseline):
        p = baseline
        rebuild = RebuildModel(p)
        mu_n, mu_d = rebuild.node_rebuild_rate(1), rebuild.drive_rebuild_rate(1)
        h = (p.redundancy_set_size - 1) * p.hard_error_per_drive_read
        via_figure = mttdl_no_raid_nft1(
            p.node_set_size,
            p.drives_per_node,
            p.node_failure_rate,
            p.drive_failure_rate,
            mu_n,
            mu_d,
            h,
        )
        via_a1 = RecursiveNoRaidModel(p, 1).mttdl_approx()
        assert via_figure == pytest.approx(via_a1, rel=1e-12)

    def test_nft2(self, baseline):
        p = baseline
        rebuild = RebuildModel(p)
        via_figure = mttdl_no_raid_nft2(
            p.node_set_size,
            p.drives_per_node,
            p.redundancy_set_size,
            p.node_failure_rate,
            p.drive_failure_rate,
            rebuild.node_rebuild_rate(2),
            rebuild.drive_rebuild_rate(2),
            p.hard_error_per_drive_read,
        )
        via_a1 = RecursiveNoRaidModel(p, 2).mttdl_approx()
        assert via_figure == pytest.approx(via_a1, rel=1e-12)

    def test_nft3(self, baseline):
        p = baseline
        rebuild = RebuildModel(p)
        via_figure = mttdl_no_raid_nft3(
            p.node_set_size,
            p.drives_per_node,
            p.redundancy_set_size,
            p.node_failure_rate,
            p.drive_failure_rate,
            rebuild.node_rebuild_rate(3),
            rebuild.drive_rebuild_rate(3),
            p.hard_error_per_drive_read,
        )
        via_a1 = RecursiveNoRaidModel(p, 3).mttdl_approx()
        assert via_figure == pytest.approx(via_a1, rel=1e-12)


class TestAgainstChains:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_closed_forms_track_chain_in_gentle_regime(self, gentle_params, t):
        model = RecursiveNoRaidModel(gentle_params, t)
        assert model.mttdl_approx() == pytest.approx(model.mttdl_exact(), rel=0.05)

    def test_nft1_h_saturation_documented_gap(self, baseline):
        """At the baseline h_N = d(R-1)C*HER > 1: the chain clamps the
        probability, the closed form does not — the formula must
        *underestimate* the chain there (conservative direction)."""
        model = RecursiveNoRaidModel(baseline, 1)
        assert model.mttdl_approx() < model.mttdl_exact()


class TestValidation:
    def test_small_node_sets_rejected(self):
        with pytest.raises(ValueError):
            mttdl_no_raid_nft1(1, 4, 1e-6, 1e-6, 0.3, 3.0, 0.0)
        with pytest.raises(ValueError):
            mttdl_no_raid_nft2(2, 4, 8, 1e-6, 1e-6, 0.3, 3.0, 0.0)
        with pytest.raises(ValueError):
            mttdl_no_raid_nft3(3, 4, 8, 1e-6, 1e-6, 0.3, 3.0, 0.0)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_figure12_formulas_equal_a1_for_random_parameters(seed):
    """Property: the Figure 12 <-> Figure A1 identity holds across the
    whole parameter space, not just the baseline."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 128))
    r = int(rng.integers(4, min(n, 24) + 1))
    d = int(rng.integers(1, 24))
    params = Parameters.baseline().replace(
        node_set_size=n,
        redundancy_set_size=r,
        drives_per_node=d,
        node_mttf_hours=float(10 ** rng.uniform(4.5, 6.5)),
        drive_mttf_hours=float(10 ** rng.uniform(4.5, 6.5)),
        hard_error_rate_per_bit=float(10 ** rng.uniform(-16, -13)),
    )
    rebuild = RebuildModel(params)
    via_figure = mttdl_no_raid_nft2(
        n,
        d,
        r,
        params.node_failure_rate,
        params.drive_failure_rate,
        rebuild.node_rebuild_rate(2),
        rebuild.drive_rebuild_rate(2),
        params.hard_error_per_drive_read,
    )
    via_a1 = RecursiveNoRaidModel(params, 2).mttdl_approx()
    assert via_figure == pytest.approx(via_a1, rel=1e-9)

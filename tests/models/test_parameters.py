"""Tests for the system parameter set."""

import pytest

from repro.models import GB, KB, MB, ParameterError, Parameters


class TestBaseline:
    def test_section6_values(self, baseline):
        assert baseline.node_mttf_hours == 400_000
        assert baseline.drive_mttf_hours == 300_000
        assert baseline.hard_error_rate_per_bit == 1e-14
        assert baseline.drive_capacity_bytes == 300 * GB
        assert baseline.drive_max_iops == 150
        assert baseline.drive_sustained_bps == 40 * MB
        assert baseline.node_set_size == 64
        assert baseline.redundancy_set_size == 8
        assert baseline.drives_per_node == 12
        assert baseline.restripe_command_bytes == 1024 * KB
        assert baseline.rebuild_command_bytes == 128 * KB
        assert baseline.capacity_utilization == 0.75
        assert baseline.rebuild_bandwidth_fraction == 0.10

    def test_c_her_is_paper_value(self, baseline):
        # 300 GB * 8 bits * 1e-14 per bit = 0.024 hard errors per full read.
        assert baseline.hard_error_per_drive_read == pytest.approx(0.024)

    def test_link_sustained_matches_paper(self, baseline):
        # "10 Gbps (800 MB/sec sustained)"
        assert baseline.link_sustained_bytes_per_sec == pytest.approx(800e6)

    def test_failure_rates(self, baseline):
        assert baseline.node_failure_rate == pytest.approx(1 / 400_000)
        assert baseline.drive_failure_rate == pytest.approx(1 / 300_000)

    def test_capacities(self, baseline):
        assert baseline.node_data_bytes == pytest.approx(12 * 300 * GB * 0.75)
        assert baseline.system_raw_bytes == pytest.approx(64 * 12 * 300 * GB)
        assert baseline.system_logical_pb == pytest.approx(0.1728)


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "node_mttf_hours",
            "drive_mttf_hours",
            "drive_capacity_bytes",
            "drive_max_iops",
            "drive_sustained_bps",
            "restripe_command_bytes",
            "rebuild_command_bytes",
            "link_speed_bps",
        ],
    )
    def test_positive_fields(self, field):
        with pytest.raises(ParameterError):
            Parameters(**{field: 0})
        with pytest.raises(ParameterError):
            Parameters(**{field: -1})

    @pytest.mark.parametrize(
        "field",
        [
            "link_sustained_fraction",
            "capacity_utilization",
            "rebuild_bandwidth_fraction",
        ],
    )
    def test_fraction_fields(self, field):
        with pytest.raises(ParameterError):
            Parameters(**{field: 0.0})
        with pytest.raises(ParameterError):
            Parameters(**{field: 1.5})
        Parameters(**{field: 1.0})  # inclusive upper bound

    def test_negative_her_rejected(self):
        with pytest.raises(ParameterError):
            Parameters(hard_error_rate_per_bit=-1e-15)

    def test_zero_her_allowed(self):
        Parameters(hard_error_rate_per_bit=0.0)

    def test_node_set_too_small(self):
        with pytest.raises(ParameterError):
            Parameters(node_set_size=1, redundancy_set_size=2)

    def test_redundancy_set_exceeds_node_set(self):
        with pytest.raises(ParameterError):
            Parameters(node_set_size=4, redundancy_set_size=5)

    def test_drives_per_node_minimum(self):
        with pytest.raises(ParameterError):
            Parameters(drives_per_node=0)


class TestConstructors:
    def test_replace_is_validated(self, baseline):
        with pytest.raises(ParameterError):
            baseline.replace(node_set_size=0)

    def test_replace_does_not_mutate(self, baseline):
        changed = baseline.replace(node_set_size=32)
        assert baseline.node_set_size == 64
        assert changed.node_set_size == 32

    def test_with_link_speed_gbps(self, baseline):
        p = baseline.with_link_speed_gbps(5)
        assert p.link_speed_bps == pytest.approx(5e9)
        assert p.link_sustained_bytes_per_sec == pytest.approx(400e6)

    def test_with_rebuild_command_kb(self, baseline):
        p = baseline.with_rebuild_command_kb(64)
        assert p.rebuild_command_bytes == 64 * KB

    def test_to_dict_roundtrip(self, baseline):
        d = baseline.to_dict()
        assert Parameters(**d) == baseline

    def test_frozen(self, baseline):
        with pytest.raises(Exception):
            baseline.node_set_size = 10  # type: ignore[misc]


class TestKeywordOnlyConstruction:
    def test_with_overrides_equals_keyword_construction(self):
        assert Parameters.with_overrides(node_set_size=16) == Parameters(
            node_set_size=16
        )

    def test_with_overrides_defaults_to_baseline(self):
        assert Parameters.with_overrides() == Parameters.baseline()

    def test_with_overrides_validates(self):
        with pytest.raises(ParameterError):
            Parameters.with_overrides(drives_per_node=0)

    def test_positional_construction_raises(self):
        # kw_only dataclass: the interpreter itself rejects positionals
        # now that the hand-written shim finished its deprecation cycle.
        with pytest.raises(TypeError, match="positional"):
            Parameters(400_000.0)

    def test_multiple_positional_arguments_raise(self):
        with pytest.raises(TypeError, match="positional"):
            Parameters(123_456.0, 200_000.0)

    def test_keyword_construction_does_not_warn(self, recwarn):
        Parameters(node_mttf_hours=123_456.0)
        assert not any(
            isinstance(w.message, DeprecationWarning) for w in recwarn.list
        )

    def test_replace_does_not_warn(self, baseline, recwarn):
        baseline.replace(node_set_size=32)
        assert not any(
            isinstance(w.message, DeprecationWarning) for w in recwarn.list
        )

    def test_pickle_round_trip_does_not_warn(self, baseline, recwarn):
        import pickle

        assert pickle.loads(pickle.dumps(baseline)) == baseline
        assert not any(
            isinstance(w.message, DeprecationWarning) for w in recwarn.list
        )


class TestCacheKey:
    """cache_key() is the canonical parameter identity: one derivation,
    bitwise-sensitive, stable across processes."""

    def test_is_stable_digest_of_to_dict(self, baseline):
        from repro.engine.keys import stable_digest

        assert baseline.cache_key() == stable_digest(baseline.to_dict())

    def test_known_value_is_stable_across_processes(self, baseline):
        # A change here means every persisted cache entry silently
        # invalidates — bump engine.keys.CACHE_SCHEMA_VERSION instead.
        key = baseline.cache_key()
        assert len(key) == 64
        assert key == Parameters.baseline().cache_key()

    def test_bitwise_sensitive(self, baseline):
        nudged = baseline.replace(
            drive_mttf_hours=baseline.drive_mttf_hours * (1 + 2**-52)
        )
        assert nudged.drive_mttf_hours != baseline.drive_mttf_hours
        assert nudged.cache_key() != baseline.cache_key()

    def test_equal_params_equal_key(self, baseline):
        same = baseline.replace(drive_mttf_hours=baseline.drive_mttf_hours)
        assert same == baseline
        assert same.cache_key() == baseline.cache_key()

    def test_memo_does_not_leak_into_value_semantics(self, baseline):
        import pickle

        _ = baseline.cache_key()  # populate the memo
        clone = pickle.loads(pickle.dumps(baseline))
        assert clone == baseline
        assert clone.cache_key() == baseline.cache_key()
        assert baseline.to_dict() == clone.to_dict()
        assert "_cache_key_memo" not in baseline.to_dict()

"""Property-based differential tests over the scenario space.

Hypothesis drives the same machinery the corpus flywheel uses — random
moment targets through the phase-type fitter, random seeds through the
scenario generator, random cohort permutations through the chain — and
every property is one of the PR's differential oracles.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.solvers import SolveOptions
from repro.fleet import (
    FleetModel,
    ScenarioGenerator,
    fit_lifetime,
)

pytestmark = pytest.mark.fleet

# Scenario draws solve a small CTMC each; keep example counts modest so
# the property suite stays inside the tier-1 budget.
_EXAMPLES = 25


class TestPhaseTypeFitProperties:
    @given(
        mean=st.floats(min_value=1.0, max_value=1e7),
        cv2=st.floats(min_value=0.34, max_value=50.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_two_moment_fit_certifies_inside_envelope(self, mean, cv2):
        # cv2 >= 1/3 always fits in the 3-stage budget; the fit must
        # certify and its measured moments must match the targets.
        fit = fit_lifetime(mean, cv2)
        assert fit.certified(1e-9)
        assert fit.dist.mean() == pytest.approx(mean, rel=1e-9)
        assert fit.dist.cv2() == pytest.approx(cv2, rel=1e-6)

    @given(
        mean=st.floats(min_value=1.0, max_value=1e7),
        cv2=st.floats(min_value=0.05, max_value=0.33),
    )
    @settings(max_examples=30, deadline=None)
    def test_clamped_fits_never_self_certify(self, mean, cv2):
        fit = fit_lifetime(mean, cv2)
        assert fit.method == "erlang-clamped"
        assert not fit.certified(1e-9)
        assert fit.dist.mean() == pytest.approx(mean, rel=1e-12)

    @given(
        mean=st.floats(min_value=1.0, max_value=1e7),
        cv2=st.floats(min_value=0.34, max_value=50.0),
        scale=st.floats(min_value=1e-3, max_value=1e3),
    )
    @settings(max_examples=40, deadline=None)
    def test_scaling_commutes_with_fitting(self, mean, cv2, scale):
        direct = fit_lifetime(mean / scale, cv2).dist
        scaled = fit_lifetime(mean, cv2).dist.scaled(scale)
        assert scaled.mean() == pytest.approx(direct.mean(), rel=1e-9)
        assert scaled.cv2() == pytest.approx(direct.cv2(), rel=1e-9)


class TestGeneratorProperties:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=_EXAMPLES, deadline=None)
    def test_corpus_is_bitwise_deterministic(self, seed):
        a = [
            json.dumps(s.to_dict(), sort_keys=True)
            for s in ScenarioGenerator(seed=seed).generate(5)
        ]
        b = [
            json.dumps(s.to_dict(), sort_keys=True)
            for s in ScenarioGenerator(seed=seed).generate(5)
        ]
        assert a == b

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        index=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=_EXAMPLES, deadline=None)
    def test_scenarios_always_valid_and_solvable(self, seed, index):
        gen = ScenarioGenerator(seed=seed)
        family = gen.families[index % len(gen.families)]
        scenario = gen.scenario(family, index)
        fleet = scenario.fleet
        assert fleet.total_nodes > fleet.fault_tolerance
        assert fleet.total_nodes >= fleet.base.redundancy_set_size
        assert FleetModel(fleet).mttdl_hours() > 0.0


class TestChainProperties:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        data=st.data(),
    )
    @settings(max_examples=_EXAMPLES, deadline=None)
    def test_cohort_permutation_invariance(self, seed, data):
        gen = ScenarioGenerator(seed=seed)
        fleet = gen.scenario("non-uniform-peers", seed % 100).fleet
        order = data.draw(
            st.permutations(range(len(fleet.cohorts))), label="order"
        )
        original = FleetModel(fleet).mttdl_hours()
        permuted = FleetModel(fleet.permuted(order)).mttdl_hours()
        assert permuted == pytest.approx(original, rel=1e-9)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        index=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=_EXAMPLES, deadline=None)
    def test_sparse_dense_agree_on_any_scenario(self, seed, index):
        gen = ScenarioGenerator(seed=seed)
        family = gen.families[index % len(gen.families)]
        model = FleetModel(gen.scenario(family, index).fleet)
        if model.num_states > 2048:
            return  # dense backend out of reach; corpus covers via CI
        dense = model.mttdl_hours(SolveOptions(backend="dense_gth"))
        sparse = model.mttdl_hours(SolveOptions(backend="sparse_iterative"))
        assert sparse == pytest.approx(dense, rel=1e-9)

"""Heterogeneous-fleet test package."""

"""Phase-type lifetimes: constructors, moments, fits, certification."""

import math

import pytest

from repro.fleet import (
    DEFAULT_MAX_STAGES,
    PhaseType,
    PhaseTypeError,
    fit_lifetime,
    fit_weibull,
    weibull_moments,
)

pytestmark = pytest.mark.fleet


class TestPhaseTypeValidation:
    def test_needs_a_stage(self):
        with pytest.raises(PhaseTypeError, match="at least one stage"):
            PhaseType(rates=(), continues=())

    def test_length_mismatch(self):
        with pytest.raises(PhaseTypeError, match="same length"):
            PhaseType(rates=(1.0, 2.0), continues=(0.0,))

    def test_nonpositive_rate(self):
        with pytest.raises(PhaseTypeError, match="positive"):
            PhaseType(rates=(0.0,), continues=(0.0,))

    def test_final_stage_must_absorb(self):
        with pytest.raises(PhaseTypeError, match="final stage"):
            PhaseType(rates=(1.0,), continues=(0.5,))

    def test_intermediate_continue_in_unit_interval(self):
        with pytest.raises(PhaseTypeError, match="intermediate"):
            PhaseType(rates=(1.0, 1.0), continues=(0.0, 0.0))
        with pytest.raises(PhaseTypeError, match="intermediate"):
            PhaseType(rates=(1.0, 1.0), continues=(1.5, 0.0))


class TestConstructorsAndMoments:
    def test_exponential_is_bitwise_faithful(self):
        rate = 1.0 / 460_000.0
        dist = PhaseType.exponential(rate)
        assert dist.rates == (rate,)  # no 1/(1/rate) round trip
        assert dist.mean() == pytest.approx(1.0 / rate, rel=1e-15)
        assert dist.cv2() == pytest.approx(1.0, rel=1e-12)

    def test_erlang_moments(self):
        dist = PhaseType.erlang(3, 0.03)
        assert dist.mean() == pytest.approx(100.0, rel=1e-12)
        assert dist.cv2() == pytest.approx(1.0 / 3.0, rel=1e-12)

    def test_erlang_needs_positive_stages(self):
        with pytest.raises(PhaseTypeError, match=">= 1"):
            PhaseType.erlang(0, 1.0)

    def test_mixed_erlang_interpolates_cv2(self):
        # E_{k-1,k}: cv^2 between 1/k (pure E_k) and 1/(k-1).
        low = PhaseType.mixed_erlang(3, 1.0, 0.0).cv2()
        high = PhaseType.mixed_erlang(3, 1.0, 0.999).cv2()
        assert low == pytest.approx(1.0 / 3.0, rel=1e-9)
        assert high > low

    def test_coxian2_rejects_bad_probability(self):
        with pytest.raises(PhaseTypeError, match="in \\(0, 1\\]"):
            PhaseType.coxian2(1.0, 1.0, 0.0)

    def test_scaled_shrinks_mean_keeps_shape(self):
        dist = PhaseType.coxian2(2.0, 0.4, 0.2)
        fast = dist.scaled(8.0)
        assert fast.mean() == pytest.approx(dist.mean() / 8.0, rel=1e-12)
        assert fast.cv2() == pytest.approx(dist.cv2(), rel=1e-12)

    def test_roundtrip_dict(self):
        dist = PhaseType.mixed_erlang(3, 0.5, 0.25)
        assert PhaseType.from_dict(dist.to_dict()) == dist


class TestFitLifetime:
    def test_exponential_branch(self):
        fit = fit_lifetime(1000.0, 1.0)
        assert fit.method == "exponential"
        assert fit.dist.num_stages == 1
        assert fit.certified()

    @pytest.mark.parametrize("cv2", [1.5, 3.0, 10.0, 40.0])
    def test_coxian2_exact_for_high_variance(self, cv2):
        fit = fit_lifetime(250_000.0, cv2)
        assert fit.method == "coxian2"
        assert fit.certified(1e-9)
        assert fit.dist.mean() == pytest.approx(250_000.0, rel=1e-12)
        assert fit.dist.cv2() == pytest.approx(cv2, rel=1e-9)

    @pytest.mark.parametrize("cv2", [0.4, 0.55, 0.75, 0.95])
    def test_mixed_erlang_exact_within_budget(self, cv2):
        fit = fit_lifetime(250_000.0, cv2)
        assert fit.method == "mixed-erlang"
        assert fit.dist.num_stages <= DEFAULT_MAX_STAGES
        assert fit.certified(1e-9)

    def test_low_cv2_clamps_honestly(self):
        fit = fit_lifetime(1000.0, 0.2)  # needs 5 stages, budget is 3
        assert fit.method == "erlang-clamped"
        assert not fit.certified(1e-9)
        # The clamp still matches the mean exactly and says so.
        assert fit.rel_error_mean <= 1e-12
        assert fit.rel_error_cv2 > 1e-2

    def test_single_stage_budget_clamps_high_variance(self):
        fit = fit_lifetime(1000.0, 4.0, max_stages=1)
        assert fit.method == "exponential-clamped"
        assert not fit.certified(1e-9)

    def test_wider_budget_unclamps(self):
        assert fit_lifetime(1000.0, 0.2, max_stages=5).certified(1e-9)

    @pytest.mark.parametrize(
        "mean,cv2", [(0.0, 1.0), (-5.0, 1.0), (1.0, 0.0), (1.0, -2.0)]
    )
    def test_invalid_targets_rejected(self, mean, cv2):
        with pytest.raises(PhaseTypeError):
            fit_lifetime(mean, cv2)


class TestFitWeibull:
    def test_moments_formula(self):
        m1, m2, m3 = weibull_moments(2.0, 100.0)
        assert m1 == pytest.approx(100.0 * math.gamma(1.5), rel=1e-12)
        assert m2 == pytest.approx(100.0**2 * math.gamma(2.0), rel=1e-12)
        assert m3 == pytest.approx(100.0**3 * math.gamma(2.5), rel=1e-12)

    def test_mean_targeting(self):
        fit = fit_weibull(0.7, mean=460_000.0)
        assert fit.dist.mean() == pytest.approx(460_000.0, rel=1e-9)
        assert fit.certified(1e-9)
        assert fit.method == "coxian2"  # shape < 1: infant mortality

    def test_wear_out_uses_mixed_erlang(self):
        fit = fit_weibull(1.5, mean=460_000.0)
        assert fit.method == "mixed-erlang"
        assert fit.certified(1e-9)

    def test_shape_one_is_exponential(self):
        assert fit_weibull(1.0, mean=1000.0).method == "exponential"

    def test_third_moment_reported_not_matched(self):
        fit = fit_weibull(0.6, mean=1000.0)
        assert fit.target_third_moment is not None
        assert fit.rel_error_third_moment is not None
        assert fit.rel_error_third_moment >= 0.0

    def test_scale_and_mean_are_exclusive(self):
        with pytest.raises(PhaseTypeError, match="exactly one"):
            fit_weibull(0.6, scale=1.0, mean=1.0)
        with pytest.raises(PhaseTypeError, match="exactly one"):
            fit_weibull(0.6)

    def test_bad_shape_rejected(self):
        with pytest.raises(PhaseTypeError, match="shape"):
            fit_weibull(-1.0, mean=100.0)

"""Fleet chain construction: collapse laws, state counting, backends."""

import numpy as np
import pytest

from repro.core.solvers import SolveOptions
from repro.fleet import (
    Cohort,
    FleetError,
    FleetModel,
    FleetSpec,
    PhaseType,
    count_states,
    fit_weibull,
    fleet_structure,
    initial_state,
)
from repro.models import Parameters
from repro.models.raid import InternalRaid

pytestmark = pytest.mark.fleet


@pytest.fixture
def base() -> Parameters:
    return Parameters.baseline().replace(redundancy_set_size=6)


def uniform_fleet(base, t=1, nodes=8) -> FleetSpec:
    return FleetSpec(
        base=base,
        internal=InternalRaid.RAID5,
        fault_tolerance=t,
        cohorts=(Cohort.make("all", nodes),),
    )


def het_fleet(base, t=1) -> FleetSpec:
    fit = fit_weibull(0.6, mean=base.node_mttf_hours)
    return FleetSpec(
        base=base,
        internal=InternalRaid.RAID5,
        fault_tolerance=t,
        cohorts=(
            Cohort.make("burn-in", 4, lifetime=fit.dist),
            Cohort.make("mature", 4, node_mttf_hours=150_000.0),
        ),
    )


class TestSpecValidation:
    def test_rejects_no_raid(self, base):
        with pytest.raises(FleetError, match="future work"):
            FleetSpec(
                base=base,
                internal=InternalRaid.NONE,
                fault_tolerance=1,
                cohorts=(Cohort.make("a", 8),),
            )

    def test_rejects_duplicate_cohort_names(self, base):
        with pytest.raises(FleetError, match="unique"):
            FleetSpec(
                base=base,
                internal=InternalRaid.RAID5,
                fault_tolerance=1,
                cohorts=(Cohort.make("a", 4), Cohort.make("a", 4)),
            )

    def test_rejects_fleet_smaller_than_tolerance(self, base):
        with pytest.raises(FleetError):
            FleetSpec(
                base=base,
                internal=InternalRaid.RAID5,
                fault_tolerance=8,
                cohorts=(Cohort.make("a", 8),),
            )

    def test_rejects_fleet_global_override(self):
        with pytest.raises(FleetError, match="node_set_size"):
            Cohort.make("a", 4, node_set_size=10)

    def test_rejects_unknown_override(self):
        with pytest.raises(FleetError, match="unknown"):
            Cohort.make("a", 4, not_a_field=1.0)


class TestHomogeneousCollapse:
    def test_generator_bitwise_equals_uniform_reference(self, base):
        for t in (1, 2):
            model = FleetModel(uniform_fleet(base, t=t))
            chain = model.chain()
            reference = model.uniform_reference_chain()
            assert np.array_equal(
                chain.generator_matrix(), reference.generator_matrix()
            )
            assert (
                chain.mean_time_to_absorption()
                == reference.mean_time_to_absorption()
            )

    def test_multi_cohort_lumps_onto_reference(self, base):
        split = FleetSpec(
            base=base,
            internal=InternalRaid.RAID5,
            fault_tolerance=2,
            cohorts=(Cohort.make("a", 3), Cohort.make("b", 5)),
        )
        reference = FleetModel(split.merged()).uniform_reference_chain()
        assert FleetModel(split).mttdl_hours() == pytest.approx(
            reference.mean_time_to_absorption(), rel=1e-9
        )

    def test_explicit_exponential_lifetime_is_bitwise_noop(self, base):
        fleet = uniform_fleet(base)
        rate = fleet.cohort_rates(fleet.cohorts[0]).node_failure_rate
        explicit = fleet.with_cohorts(
            (
                Cohort(
                    name="all",
                    nodes=8,
                    overrides=(),
                    lifetime=PhaseType.exponential(rate),
                ),
            )
        )
        implicit_model = FleetModel(fleet)
        explicit_model = FleetModel(explicit)
        assert implicit_model.env() == explicit_model.env()
        assert implicit_model.mttdl_hours() == explicit_model.mttdl_hours()


class TestStateCounting:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_count_matches_enumeration(self, base, t):
        fit = fit_weibull(0.7, mean=base.node_mttf_hours)
        fleet = FleetSpec(
            base=base,
            internal=InternalRaid.RAID6,
            fault_tolerance=t,
            cohorts=(
                Cohort.make("ph", 3, lifetime=fit.dist),
                Cohort.make("exp", 4),
            ),
        )
        model = FleetModel(fleet)
        spec = model.spec()
        assert model.num_states == len(spec.states)
        assert model.num_states == count_states(
            fleet_structure(fleet), t
        )

    def test_initial_state_everyone_in_stage_one(self, base):
        fleet = het_fleet(base)
        start = initial_state(fleet_structure(fleet))
        assert start == ((4, 0, 0), (4, 0))

    def test_spec_state_cap_enforced(self, base):
        model = FleetModel(het_fleet(base, t=2), max_spec_states=5)
        with pytest.raises(FleetError, match="sparse"):
            model.spec()


class TestBackends:
    def test_sparse_offdiagonal_bitwise_equals_dense(self, base):
        model = FleetModel(het_fleet(base))
        dense = model.chain()
        sparse = model.sparse_chain()
        n = dense.num_states
        dense_q = dense.generator_matrix()
        sparse_q = np.zeros((n, n))
        for i in range(n):
            cols, vals = sparse.rates.row(i)
            sparse_q[i, cols] = vals
        off = ~np.eye(n, dtype=bool)
        assert np.array_equal(dense_q[off], sparse_q[off])

    def test_backends_agree_on_mttdl(self, base):
        model = FleetModel(het_fleet(base, t=2))
        dense = model.mttdl_hours(SolveOptions(backend="dense_gth"))
        sparse = model.mttdl_hours(SolveOptions(backend="sparse_iterative"))
        assert sparse == pytest.approx(dense, rel=1e-9)

    def test_auto_routes_large_fleets_to_sparse(self, base):
        model = FleetModel(het_fleet(base))
        request = model.solve_request(SolveOptions(dense_state_limit=4))
        assert request.sparse is not None


class TestTransforms:
    def test_permutation_invariance(self, base):
        fleet = het_fleet(base, t=2)
        original = FleetModel(fleet).mttdl_hours()
        permuted = FleetModel(fleet.permuted([1, 0])).mttdl_hours()
        assert permuted == pytest.approx(original, rel=1e-9)

    def test_time_rescaling_law(self, base):
        fleet = het_fleet(base)
        original = FleetModel(fleet).mttdl_hours()
        rescaled = FleetModel(fleet.scaled(8.0)).mttdl_hours()
        assert rescaled * 8.0 == pytest.approx(original, rel=1e-9)

    def test_split_degraded_never_helps(self, base):
        fleet = het_fleet(base)
        original = FleetModel(fleet).mttdl_hours()
        worse = FleetModel(fleet.split_degraded(1, 2, 0.5)).mttdl_hours()
        assert worse <= original * (1.0 + 1e-9)
        assert fleet.split_degraded(1, 2, 0.5).total_nodes == fleet.total_nodes

    def test_repair_delay_none_is_bitwise_noop(self, base):
        plain = uniform_fleet(base)
        delayed = plain.with_cohorts(
            (Cohort.make("all", 8, repair_delay_hours=0.0),)
        )
        assert (
            plain.cohort_rates(plain.cohorts[0]).repair_rate
            == delayed.cohort_rates(delayed.cohorts[0]).repair_rate
        )

    def test_repair_delay_slows_repair(self, base):
        plain = uniform_fleet(base)
        delayed = plain.with_cohorts(
            (Cohort.make("all", 8, repair_delay_hours=168.0),)
        )
        assert (
            delayed.cohort_rates(delayed.cohorts[0]).repair_rate
            < plain.cohort_rates(plain.cohorts[0]).repair_rate
        )
        assert (
            FleetModel(delayed).mttdl_hours()
            < FleetModel(plain).mttdl_hours()
        )

    def test_repair_cost_bookkeeping(self, base):
        fleet = het_fleet(base)
        pricey = fleet.with_cohorts(
            [
                fleet.cohorts[0],
                Cohort.make(
                    "mature",
                    4,
                    node_mttf_hours=150_000.0,
                    repair_cost=3.0,
                ),
            ]
        )
        assert fleet.expected_repairs_per_year() > 0.0
        assert (
            pricey.repair_cost_per_year() > fleet.repair_cost_per_year()
        )
        # Cost never perturbs the chain itself.
        assert (
            FleetModel(pricey).mttdl_hours()
            == FleetModel(fleet).mttdl_hours()
        )

    def test_roundtrip_dict_and_cache_key(self, base):
        fleet = het_fleet(base, t=2)
        clone = FleetSpec.from_dict(fleet.to_dict())
        assert clone == fleet
        assert clone.cache_key() == fleet.cache_key()
        assert fleet.cache_key() != uniform_fleet(base).cache_key()

"""Scenario generator, corpus runner, oracles and the CLI."""

import json

import pytest

from repro.engine import SweepEngine
from repro.fleet import (
    FAMILIES,
    FleetModel,
    Scenario,
    ScenarioGenerator,
    canonical_fleets,
    read_corpus,
    run_corpus,
    write_corpus,
)
from repro.fleet.cli import main as scenarios_main
from repro.fleet.scenarios import CORPUS_KIND
from repro.models import Parameters

pytestmark = pytest.mark.fleet


@pytest.fixture
def generator() -> ScenarioGenerator:
    return ScenarioGenerator(seed=7)


class TestGenerator:
    def test_round_robin_families(self, generator):
        scenarios = list(generator.generate(len(FAMILIES) * 2))
        assert [s.family for s in scenarios] == list(FAMILIES) * 2

    def test_bitwise_deterministic_across_instances(self, generator):
        twin = ScenarioGenerator(seed=7)
        a = [json.dumps(s.to_dict(), sort_keys=True) for s in generator.generate(15)]
        b = [json.dumps(s.to_dict(), sort_keys=True) for s in twin.generate(15)]
        assert a == b

    def test_different_seeds_differ(self):
        a = [s.to_dict() for s in ScenarioGenerator(seed=1).generate(5)]
        b = [s.to_dict() for s in ScenarioGenerator(seed=2).generate(5)]
        assert a != b

    def test_scenario_roundtrip(self, generator):
        for scenario in generator.generate(10):
            clone = Scenario.from_dict(scenario.to_dict())
            assert clone == scenario
            assert clone.fleet.cache_key() == scenario.fleet.cache_key()

    def test_scenarios_are_solvable(self, generator):
        for scenario in generator.generate(10):
            assert FleetModel(scenario.fleet).mttdl_hours() > 0.0

    def test_family_subset(self):
        gen = ScenarioGenerator(seed=0, families=("two-vintage",))
        assert {s.family for s in gen.generate(4)} == {"two-vintage"}

    def test_ids_are_stable(self, generator):
        scenario = generator.scenario("wear-out", 12)
        assert scenario.scenario_id == "wear-out-00012"


class TestCorpus:
    @pytest.fixture(scope="class")
    def run(self):
        scenarios = list(ScenarioGenerator(seed=3).generate(10))
        engine = SweepEngine(jobs=1, cache=False)
        return run_corpus(scenarios, engine=engine)

    def test_all_oracles_hold(self, run):
        assert run.ok
        assert run.violations == ()
        for result in run.results:
            assert result.ok
            assert all(result.oracles.values())

    def test_results_carry_both_backends(self, run):
        for result in run.results:
            if result.num_states <= 2048:
                assert result.backend == "dense_gth"
                assert result.dense_mttdl_hours is not None
                assert result.sparse_dense_rel_gap <= 1e-9
            else:
                assert result.backend == "sparse_iterative"

    def test_uniform_baseline_column(self, run):
        for result in run.results:
            assert result.uniform_mttdl_hours > 0.0
            assert result.heterogeneity_ratio > 0.0

    def test_header_provenance(self, run):
        assert run.header.solved
        assert run.header.count == 10
        assert "options" in run.header.provenance
        assert run.header.provenance["oracle_rel_tol"] == 1e-9

    def test_jsonl_roundtrip(self, run, tmp_path):
        path = tmp_path / "corpus.jsonl"
        scenarios = list(ScenarioGenerator(seed=3).generate(10))
        with open(path, "w", encoding="utf-8") as fh:
            write_corpus(fh, run.header, scenarios, run.results)
        header, entries = read_corpus(
            path.read_text(encoding="utf-8").splitlines()
        )
        assert header["kind"] == CORPUS_KIND
        assert len(entries) == len(scenarios)
        loaded, result_payload = entries[0]
        assert loaded.fleet == scenarios[0].fleet
        assert result_payload["mttdl_hours"] == run.results[0].mttdl_hours

    def test_read_corpus_rejects_wrong_kind(self):
        bogus = json.dumps({"kind": "not-a-corpus", "version": 1})
        with pytest.raises(ValueError, match="kind"):
            read_corpus([bogus])


class TestCanonicalFleets:
    def test_three_families_pinned(self):
        fleets = canonical_fleets(Parameters.baseline())
        assert sorted(fleets) == [
            "infant-mortality",
            "non-uniform-peers",
            "two-vintage",
        ]
        for fleet in fleets.values():
            assert FleetModel(fleet).mttdl_hours() > 0.0


class TestCli:
    def test_solve_run_writes_corpus(self, tmp_path, capsys):
        out = tmp_path / "corpus.jsonl"
        rc = scenarios_main(
            ["--count", "6", "--seed", "5", "--out", str(out)]
        )
        assert rc == 0
        header, entries = read_corpus(
            out.read_text(encoding="utf-8").splitlines()
        )
        assert header["solved"]
        assert len(entries) == 6
        assert all(result is not None for _, result in entries)
        err = capsys.readouterr().err
        assert "6 scenarios" in err
        assert "0 oracle violations" in err

    def test_no_solve_generates_only(self, tmp_path):
        out = tmp_path / "corpus.jsonl"
        rc = scenarios_main(
            ["--count", "4", "--no-solve", "--quiet", "--out", str(out)]
        )
        assert rc == 0
        header, entries = read_corpus(
            out.read_text(encoding="utf-8").splitlines()
        )
        assert not header["solved"]
        assert len(entries) == 4
        assert all(result is None for _, result in entries)

    def test_same_seed_same_bytes(self, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        for path in (a, b):
            assert (
                scenarios_main(
                    [
                        "--count",
                        "8",
                        "--seed",
                        "9",
                        "--no-solve",
                        "--quiet",
                        "--out",
                        str(path),
                    ]
                )
                == 0
            )
        assert a.read_bytes() == b.read_bytes()

    def test_param_override_flows_into_scenarios(self, tmp_path):
        out = tmp_path / "corpus.jsonl"
        rc = scenarios_main(
            [
                "--count",
                "2",
                "--no-solve",
                "--quiet",
                "--set",
                "node_mttf_hours=123456.0",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        _, entries = read_corpus(
            out.read_text(encoding="utf-8").splitlines()
        )
        assert entries[0][0].fleet.base.node_mttf_hours == 123456.0

    def test_rejects_bad_count(self):
        with pytest.raises(SystemExit):
            scenarios_main(["--count", "0"])

"""Monte-Carlo cross-validation of the fleet chain's stage expansion."""

import numpy as np
import pytest

from repro.fleet import (
    Cohort,
    FleetModel,
    FleetSpec,
    estimate_fleet_mttdl,
    fit_weibull,
)
from repro.models import Parameters
from repro.models.raid import InternalRaid
from repro.sim import phase_type

pytestmark = pytest.mark.fleet


@pytest.fixture
def base() -> Parameters:
    return Parameters.baseline().replace(redundancy_set_size=4)


class TestPhaseTypeSampler:
    def test_matches_analytic_moments(self):
        dist = fit_weibull(0.6, mean=10_000.0).dist
        rng = np.random.default_rng(5)
        draws = np.array(
            [phase_type(rng, dist.rates, dist.continues) for _ in range(50_000)]
        )
        stderr = draws.std(ddof=1) / np.sqrt(len(draws))
        assert abs(draws.mean() - dist.mean()) <= 4.0 * stderr

    def test_single_stage_reproduces_exponential(self):
        a = np.random.default_rng(1)
        b = np.random.default_rng(1)
        from repro.sim import exponential

        assert phase_type(a, (0.5,), (0.0,)) == exponential(b, 0.5)

    def test_rejects_mismatched_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            phase_type(rng, (), ())
        with pytest.raises(ValueError):
            phase_type(rng, (1.0, 2.0), (0.5,))


class TestEstimateFleetMttdl:
    def test_agrees_with_chain_heterogeneous(self, base):
        fit = fit_weibull(0.6, mean=base.node_mttf_hours)
        fleet = FleetSpec(
            base=base,
            internal=InternalRaid.RAID5,
            fault_tolerance=1,
            cohorts=(
                Cohort.make("burn-in", 2, lifetime=fit.dist),
                Cohort.make("mature", 2),
            ),
        ).scaled(2000.0)
        reference = FleetModel(fleet).mttdl_hours()
        estimate = estimate_fleet_mttdl(fleet, replicas=800, seed=3)
        assert estimate.contains(reference, sigmas=4.0)

    def test_agrees_with_chain_repair_delay(self, base):
        fleet = FleetSpec(
            base=base,
            internal=InternalRaid.RAID5,
            fault_tolerance=1,
            cohorts=(
                Cohort.make("slow", 2, repair_delay_hours=24.0),
                Cohort.make("fast", 2),
            ),
        ).scaled(2000.0)
        reference = FleetModel(fleet).mttdl_hours()
        estimate = estimate_fleet_mttdl(fleet, replicas=600, seed=7)
        assert estimate.contains(reference, sigmas=4.0)

    def test_seeded_reproducibility(self, base):
        fleet = FleetSpec(
            base=base,
            internal=InternalRaid.RAID5,
            fault_tolerance=1,
            cohorts=(Cohort.make("all", 4),),
        ).scaled(2000.0)
        a = estimate_fleet_mttdl(fleet, replicas=50, seed=11)
        b = estimate_fleet_mttdl(fleet, replicas=50, seed=11)
        c = estimate_fleet_mttdl(fleet, replicas=50, seed=12)
        assert a == b
        assert a.mean_hours != c.mean_hours

    def test_ci_helpers(self, base):
        fleet = FleetSpec(
            base=base,
            internal=InternalRaid.RAID5,
            fault_tolerance=1,
            cohorts=(Cohort.make("all", 4),),
        ).scaled(2000.0)
        est = estimate_fleet_mttdl(fleet, replicas=50, seed=0)
        lo, hi = est.ci95()
        assert lo < est.mean_hours < hi
        assert est.contains(est.mean_hours)
        assert not est.contains(est.mean_hours * 100.0)

    def test_needs_two_replicas(self, base):
        fleet = FleetSpec(
            base=base,
            internal=InternalRaid.RAID5,
            fault_tolerance=1,
            cohorts=(Cohort.make("all", 4),),
        )
        with pytest.raises(ValueError, match="replicas"):
            estimate_fleet_mttdl(fleet, replicas=1)

"""Golden-value regression for the canonical heterogeneous fleets.

Three hand-pinned fleets — two-vintage batches, an infant-mortality
phase-type cohort, tahoe-style non-uniform peers — solve to the exact
numbers stored in ``tests/data/golden_baseline.json``.  Regenerate after
a *deliberate* model change::

    PYTHONPATH=src python tests/data/regen_golden.py
"""

import json
from pathlib import Path

import pytest

from repro.fleet import FleetModel, canonical_fleets
from repro.models import Parameters

pytestmark = pytest.mark.fleet

GOLDEN_PATH = Path(__file__).parent.parent / "data" / "golden_baseline.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
MTTDL_REL = GOLDEN["tolerances"]["mttdl_rel"]


class TestGoldenFleets:
    @pytest.fixture(scope="class")
    def fleets(self):
        return canonical_fleets(Parameters.baseline())

    def test_covers_all_pinned_fleets(self, fleets):
        assert sorted(GOLDEN["fleets"]) == sorted(fleets)

    @pytest.mark.parametrize(
        "name", ["two-vintage", "infant-mortality", "non-uniform-peers"]
    )
    def test_mttdl_pinned(self, fleets, name):
        expected = GOLDEN["fleets"][name]["mttdl_hours_analytic"]
        assert FleetModel(fleets[name]).mttdl_hours() == pytest.approx(
            expected, rel=MTTDL_REL
        )

    @pytest.mark.parametrize(
        "name", ["two-vintage", "infant-mortality", "non-uniform-peers"]
    )
    def test_state_count_pinned(self, fleets, name):
        expected = GOLDEN["fleets"][name]["num_states"]
        assert FleetModel(fleets[name]).num_states == expected

    @pytest.mark.parametrize(
        "name", ["two-vintage", "infant-mortality", "non-uniform-peers"]
    )
    def test_repairs_per_year_pinned(self, fleets, name):
        expected = GOLDEN["fleets"][name]["expected_repairs_per_year"]
        assert fleets[name].expected_repairs_per_year() == pytest.approx(
            expected, rel=MTTDL_REL
        )

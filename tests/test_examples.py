"""Every example script must run cleanly end to end.

These are smoke tests at the user-facing surface: each example is run in
a subprocess exactly as the README instructs, and must exit 0 with
non-trivial output.  Slow examples get reduced workloads via environment
knobs where available; all finish in seconds.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    import os

    env = dict(os.environ)
    env["REPRO_VALIDATE_REPLICAS"] = "20"  # keep the Monte-Carlo one quick
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert len(result.stdout) > 100  # produced a real report


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 6

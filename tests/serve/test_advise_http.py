"""End-to-end tests for ``POST /v1/advise`` and the aux-lane health
surfaces it rides on."""

import asyncio
import json

import pytest

import repro
from repro.advise import AdviseRequest
from repro.serve import ServeConfig, serving
from repro.serve.top import render

pytestmark = [pytest.mark.serve, pytest.mark.advise]

SMALL_BODY = {
    "space": {
        "internal": ["none", "raid5"],
        "fault_tolerance": [1, 2],
        "axes": {"redundancy_set_size": [6, 8]},
    },
    "seed": 0,
}


async def _request(host, port, method, path, body=None):
    payload = json.dumps(body).encode("utf-8") if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1")
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(head + payload)
        await writer.drain()
        raw = await reader.read(-1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_blob) if body_blob else None


def test_advise_round_trip_matches_library_bitwise():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            return await _request(
                server.host, server.port, "POST", "/v1/advise", SMALL_BODY
            )

    status, _, payload = asyncio.run(drive())
    assert status == 200
    assert payload["kind"] == "repro-advise-result"
    direct = repro.advise(
        AdviseRequest.from_dict(SMALL_BODY),
        base_params=repro.Parameters.baseline(),
    ).to_dict()
    assert payload["frontier"] == direct["frontier"]
    assert payload["recommended"] == direct["recommended"]
    assert payload["evaluated"] == direct["evaluated"]


def test_frontier_reliability_bitwise_equals_evaluate():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            return await _request(
                server.host, server.port, "POST", "/v1/advise", SMALL_BODY
            )

    status, _, payload = asyncio.run(drive())
    assert status == 200
    assert payload["frontier"]
    for point in payload["frontier"]:
        direct = repro.evaluate(
            repro.Configuration.from_key(point["config"]),
            repro.Parameters(**point["params"]),
        )
        assert point["reliability"]["mttdl_hours"] == direct.mttdl_hours
        assert (
            point["reliability"]["events_per_pb_year"]
            == direct.events_per_pb_year
        )


def test_bad_axis_answers_400_naming_the_axis():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            return await _request(
                server.host,
                server.port,
                "POST",
                "/v1/advise",
                {"space": {"axes": {"no_such_field": [1, 2]}}},
            )

    status, _, payload = asyncio.run(drive())
    assert status == 400
    assert "no_such_field" in payload["error"]


def test_oversized_space_answers_400():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            return await _request(
                server.host,
                server.port,
                "POST",
                "/v1/advise",
                {
                    "space": {
                        "axes": {
                            "node_set_size": list(range(32, 32 + 400))
                        }
                    }
                },
            )

    status, _, payload = asyncio.run(drive())
    assert status == 400
    assert "repro-advise" in payload["error"]  # points at the CLI


def test_advise_depth_zero_sheds_with_429():
    async def drive():
        async with serving(ServeConfig(port=0, advise_depth=0)) as server:
            return await _request(
                server.host, server.port, "POST", "/v1/advise", SMALL_BODY
            )

    status, headers, payload = asyncio.run(drive())
    assert status == 429
    assert "retry-after" in headers
    assert payload["retry_after_s"] == pytest.approx(1.0)


def test_healthz_reports_aux_lane():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            await _request(
                server.host, server.port, "POST", "/v1/advise", SMALL_BODY
            )
            return await _request(server.host, server.port, "GET", "/healthz")

    status, _, health = asyncio.run(drive())
    assert status == 200
    aux = health["aux"]
    assert aux["depth"] == 8
    assert aux["pending"] == 0
    assert aux["inflight"] == 0
    assert aux["queued"] == 0
    assert aux["advise"] == {"depth": 2, "pending": 0, "shed": 0}


def test_metricsz_reports_advise_and_aux_gauges():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            await _request(
                server.host, server.port, "POST", "/v1/advise", SMALL_BODY
            )
            return await _request(
                server.host, server.port, "GET", "/metricsz"
            )

    status, _, metrics = asyncio.run(drive())
    assert status == 200
    assert metrics["serve.requests.advise"] == 1
    # advise.* counters live in the process-global registry, so earlier
    # searches in the same test process also show up here.
    assert metrics["advise.requests"] >= 1
    assert metrics["advise.frontier.points"] > 0
    assert metrics["serve.aux.inflight"] == 0
    assert metrics["serve.aux.queued"] == 0
    assert metrics["serve.advise.pending"] == 0


def test_top_renders_aux_line():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            await _request(
                server.host, server.port, "POST", "/v1/advise", SMALL_BODY
            )
            _, _, metrics = await _request(
                server.host, server.port, "GET", "/metricsz"
            )
            _, _, health = await _request(
                server.host, server.port, "GET", "/healthz"
            )
            return metrics, health

    metrics, health = asyncio.run(drive())
    frame = render(metrics, health)
    assert "aux" in frame
    assert "advise 0/2" in frame

"""Live-telemetry serving integration: SLO in /healthz, prom exposition,
cross-shard trace stitching, the flight recorder, and repro-top.

Everything here runs over real sockets against the real server, the
same way the smoke harness and CI drills do.
"""

import asyncio
import glob
import io
import json
import os
from contextlib import redirect_stdout

import pytest

from repro.obs import export
from repro.obs.metrics import Metrics
from repro.runtime import faultpoints
from repro.serve import ServeConfig, serving
from repro.serve import top

pytestmark = pytest.mark.serve


async def _request(host, port, method, path, body=None):
    """One HTTP exchange; returns (status, headers, raw body bytes)."""
    payload = json.dumps(body).encode("utf-8") if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1")
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(head + payload)
        await writer.drain()
        raw = await reader.read(-1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body_blob


async def _json_request(host, port, method, path, body=None):
    status, headers, blob = await _request(host, port, method, path, body)
    return status, headers, json.loads(blob) if blob else None


def _run(coro):
    return asyncio.run(coro)


# --------------------------------------------------------------------- #
# /healthz: SLO, identity, worker provenance
# --------------------------------------------------------------------- #


def test_healthz_carries_slo_and_identity():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            host, port = server.host, server.port
            for _ in range(3):
                status, _, _ = await _json_request(
                    host, port, "POST", "/v1/evaluate", {"config": "ft1_raid5"}
                )
                assert status == 200
            status, _, health = await _json_request(
                host, port, "GET", "/healthz"
            )
            return status, health

    status, health = _run(drive())
    assert status == 200
    import repro

    assert health["version"] == repro.__version__
    assert health["uptime_s"] >= 0
    slo = health["slo"]
    assert slo["target"] == 0.99
    window = slo["windows"]["60s"]
    assert window["good"] == 3
    assert window["bad"] == 0
    assert window["burn_rate"] == 0.0
    # Sampling and flight recorder are unconfigured, so their health
    # blocks stay out of the payload.
    assert "trace_sampling" not in health
    assert "flight_recorder" not in health


def test_healthz_worker_fields_sharded():
    async def drive():
        async with serving(ServeConfig(port=0, workers=2)) as server:
            status, _, health = await _json_request(
                server.host, server.port, "GET", "/healthz"
            )
            return status, health

    status, health = _run(drive())
    assert status == 200
    workers = health["workers"]
    assert len(workers) == 2
    for w in workers:
        assert w["alive"] is True
        assert w["restart_count"] == 0
        assert w["last_crash"] is None


def test_healthz_slo_absent_when_live_disabled():
    async def drive():
        async with serving(
            ServeConfig(port=0, live_metrics=False)
        ) as server:
            _, _, health = await _json_request(
                server.host, server.port, "GET", "/healthz"
            )
            _, _, metrics = await _json_request(
                server.host, server.port, "GET", "/metricsz"
            )
            return health, metrics

    health, metrics = _run(drive())
    assert "slo" not in health
    assert not any(k.startswith("serve.live.") for k in metrics)


# --------------------------------------------------------------------- #
# /metricsz?format=prom
# --------------------------------------------------------------------- #


def test_metricsz_prom_exposition():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            host, port = server.host, server.port
            await _json_request(
                host, port, "POST", "/v1/evaluate", {"config": "ft1_raid5"}
            )
            return await _request(
                host, port, "GET", "/metricsz?format=prom"
            )

    status, headers, blob = _run(drive())
    assert status == 200
    assert headers["content-type"] == export.PROM_CONTENT_TYPE
    text = blob.decode("utf-8")
    families = export.validate_prom_text(text)
    assert "repro_serve_http_requests" in families
    assert "repro_serve_live_request_s" in text


def test_metricsz_unknown_format_is_400():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            return await _json_request(
                server.host, server.port, "GET", "/metricsz?format=bogus"
            )

    status, _, body = _run(drive())
    assert status == 400
    assert "format" in body["error"]


def test_metricsz_json_unchanged_by_query_machinery():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            plain = await _json_request(
                server.host, server.port, "GET", "/metricsz"
            )
            explicit = await _json_request(
                server.host, server.port, "GET", "/metricsz?format=json"
            )
            return plain, explicit

    (s1, _, flat), (s2, _, flat2) = _run(drive())
    assert (s1, s2) == (200, 200)
    assert "serve.http.requests" in flat
    assert "serve.http.requests" in flat2


# --------------------------------------------------------------------- #
# trace sampling: one stitched tree across the shard pipe
# --------------------------------------------------------------------- #


def test_forced_trace_stitches_across_shards(tmp_path):
    trace_path = str(tmp_path / "samples.jsonl")

    async def drive():
        async with serving(
            ServeConfig(port=0, workers=2, trace_sample_path=trace_path)
        ) as server:
            host, port = server.host, server.port
            body = {
                "points": [
                    {"config": "ft1_raid5", "trace": True},
                    {"config": "ft2_raid6", "trace": True},
                ]
            }
            return await _json_request(host, port, "POST", "/v1/evaluate", body)

    status, headers, answer = _run(drive())
    assert status == 200
    trace_id = headers.get("x-repro-trace-id")
    assert trace_id
    assert len(answer["results"]) == 2

    spans = export.validate_trace(trace_path)
    roots = [s for s in spans if s.get("parent_id") is None]
    assert len(roots) == 1
    assert roots[0]["name"] == "serve.request"
    assert roots[0]["attrs"]["trace_id"] == trace_id
    # The tree genuinely crossed the worker pipe: spans from more than
    # one process, and the solve actually shows up under the request.
    assert len({s["pid"] for s in spans}) >= 2
    names = {s["name"] for s in spans}
    assert any("solve" in n for n in names)


def test_unsampled_request_has_no_trace_header(tmp_path):
    async def drive():
        async with serving(
            ServeConfig(
                port=0, trace_sample_path=str(tmp_path / "s.jsonl")
            )
        ) as server:
            return await _json_request(
                server.host,
                server.port,
                "POST",
                "/v1/evaluate",
                {"config": "ft1_raid5"},
            )

    status, headers, _ = _run(drive())
    assert status == 200
    assert "x-repro-trace-id" not in headers


# --------------------------------------------------------------------- #
# flight recorder: crash drill leaves a usable postmortem
# --------------------------------------------------------------------- #


def test_crash_drill_dumps_flight_recorder(tmp_path):
    flight_dir = str(tmp_path / "flight")
    trigger = tmp_path / "crash.trigger"

    def kill_if_armed(shard=None, **_kwargs):
        if os.path.exists(str(trigger)):
            os._exit(17)

    async def drive():
        async with serving(
            ServeConfig(port=0, workers=1, flight_dir=flight_dir)
        ) as server:
            host, port = server.host, server.port
            body = {"config": "ft2_raid5"}
            status, _, _ = await _json_request(
                host, port, "POST", "/v1/evaluate", body
            )
            assert status == 200
            trigger.write_text("armed")
            status, _, error = await _json_request(
                host, port, "POST", "/v1/evaluate", body
            )
            trigger.unlink()
            return status, error

    with faultpoints.injected(
        faultpoints.SERVE_WORKER_CRASH, kill_if_armed
    ):
        status, error = _run(drive())
    assert status == 503
    assert "worker" in error["error"].lower()

    dumps = glob.glob(os.path.join(flight_dir, "flight-*http-503*.json"))
    assert len(dumps) == 1
    with open(dumps[0], encoding="utf-8") as fh:
        dump = json.load(fh)
    assert dump["reason"] == "http-503"
    requests = [r for r in dump["records"] if r["kind"] == "request"]
    # The last request the recorder saw is the one that observed the 503.
    assert requests[-1]["status"] == 503
    assert requests[0]["status"] == 200
    # The worker crash left its own dump too (independent throttle).
    assert glob.glob(os.path.join(flight_dir, "flight-*worker-crash*"))


# --------------------------------------------------------------------- #
# repro-top
# --------------------------------------------------------------------- #


def test_top_render_from_canned_payloads():
    metrics = Metrics()
    win = metrics.windowed("serve.live.request_s")
    for _ in range(20):
        win.observe(0.004)
    metrics.counter("serve.cache.hits").inc(30)
    metrics.counter("serve.cache.misses").inc(10)
    health = {
        "version": "1.2.3",
        "uptime_s": 42.0,
        "status": "ok",
        "slo": {
            "target": 0.99,
            "windows": {
                "1s": {"good": 0, "bad": 0, "burn_rate": 0.0},
                "10s": {"good": 20, "bad": 0, "burn_rate": 0.0},
                "60s": {"good": 20, "bad": 0, "burn_rate": 0.0},
            },
        },
        "trace_sampling": {
            "rate": 0.01,
            "pending": 0,
            "dropped": 0,
            "written": 3,
        },
        "flight_recorder": {"directory": None, "capacity": 256, "dumps": 0},
        "workers": [
            {
                "index": 0,
                "pid": 123,
                "alive": True,
                "restart_count": 1,
                "last_crash": 1000.0,
                "pending": 0,
            }
        ],
    }
    frame = top.render(metrics.to_dict(), health, window="10s")
    assert "repro-top" in frame
    assert "1.2.3" in frame
    assert "slo" in frame.lower()
    assert "shard" not in frame or "workers" in frame.lower()


def test_top_once_against_live_server():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            host, port = server.host, server.port
            await _json_request(
                host, port, "POST", "/v1/evaluate", {"config": "ft1_raid5"}
            )
            loop = asyncio.get_running_loop()

            def once():
                buf = io.StringIO()
                with redirect_stdout(buf):
                    code = top.main(
                        ["--url", f"http://{host}:{port}", "--once"]
                    )
                return code, buf.getvalue()

            return await loop.run_in_executor(None, once)

    code, frame = _run(drive())
    assert code == 0
    assert "repro-top" in frame
    assert "requests" in frame

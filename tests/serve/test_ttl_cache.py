"""The TTL'd LRU result cache, driven by an injected clock."""

import pytest

from repro.obs import Metrics
from repro.serve.ttl_cache import TTLCache

pytestmark = pytest.mark.serve


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


def test_basic_hit_miss_counters(clock):
    cache = TTLCache(maxsize=4, ttl_s=10.0, clock=clock)
    assert cache.get("aa") is None
    cache.put("aa", {"v": 1})
    assert cache.get("aa") == {"v": 1}
    assert cache.hits == 1
    assert cache.misses == 1
    assert len(cache) == 1


def test_entries_expire_after_ttl(clock):
    cache = TTLCache(maxsize=4, ttl_s=10.0, clock=clock)
    cache.put("aa", 1)
    clock.advance(9.999)
    assert cache.get("aa") == 1
    clock.advance(0.001)  # exactly at expiry: dead
    assert cache.get("aa") is None
    assert cache.metrics.value("serve.cache.expired") == 1
    assert len(cache) == 0  # expired entries are dropped eagerly


def test_no_ttl_means_no_expiry(clock):
    cache = TTLCache(maxsize=4, ttl_s=None, clock=clock)
    cache.put("aa", 1)
    clock.advance(1e9)
    assert cache.get("aa") == 1


def test_lru_eviction_order(clock):
    cache = TTLCache(maxsize=2, ttl_s=None, clock=clock)
    cache.put("aa", 1)
    cache.put("bb", 2)
    assert cache.get("aa") == 1  # refresh aa: bb is now LRU
    cache.put("cc", 3)
    assert cache.get("bb") is None
    assert cache.get("aa") == 1
    assert cache.get("cc") == 3
    assert cache.metrics.value("serve.cache.evicted") == 1


def test_put_refreshes_recency_and_value(clock):
    cache = TTLCache(maxsize=2, ttl_s=None, clock=clock)
    cache.put("aa", 1)
    cache.put("bb", 2)
    cache.put("aa", 10)  # re-put refreshes both value and recency
    cache.put("cc", 3)
    assert cache.get("aa") == 10
    assert cache.get("bb") is None


def test_maxsize_zero_disables(clock):
    cache = TTLCache(maxsize=0, ttl_s=None, clock=clock)
    cache.put("aa", 1)
    assert cache.get("aa") is None
    assert len(cache) == 0


def test_clear_resets_size_gauge(clock):
    metrics = Metrics()
    cache = TTLCache(maxsize=4, ttl_s=None, metrics=metrics, clock=clock)
    cache.put("aa", 1)
    assert metrics.value("serve.cache.size") == 1
    cache.clear()
    assert len(cache) == 0
    assert metrics.value("serve.cache.size") == 0


def test_constructor_validation():
    with pytest.raises(ValueError):
        TTLCache(maxsize=-1)
    with pytest.raises(ValueError):
        TTLCache(ttl_s=0.0)
    with pytest.raises(ValueError):
        TTLCache(ttl_s=-5.0)

"""Request parsing, validation and response shaping for the serving layer."""

import pytest

from repro.core.solvers import DEFAULT_SOLVE_OPTIONS, SolveOptions
from repro.engine.keys import point_key
from repro.models.configurations import Configuration
from repro.models.metrics import ReliabilityResult
from repro.serve.protocol import (
    MAX_POINTS_PER_REQUEST,
    MAX_SWEEP_VALUES,
    PointQuery,
    ProtocolError,
    params_with_overrides,
    parse_evaluate_body,
    parse_sweep_body,
    point_response,
)

pytestmark = pytest.mark.serve


# --------------------------------------------------------------------- #
# params_with_overrides
# --------------------------------------------------------------------- #


class TestParamsWithOverrides:
    def test_none_returns_base(self, baseline):
        assert params_with_overrides(baseline, None) is baseline

    def test_override_applies(self, baseline):
        out = params_with_overrides(baseline, {"drive_mttf_hours": 2e5})
        assert out.drive_mttf_hours == 2e5
        assert out.node_set_size == baseline.node_set_size

    def test_int_fields_stay_int(self, baseline):
        out = params_with_overrides(baseline, {"node_set_size": 64.0})
        assert out.node_set_size == 64
        assert isinstance(out.node_set_size, int)

    def test_unknown_field_rejected(self, baseline):
        with pytest.raises(ProtocolError, match="unknown parameter field"):
            params_with_overrides(baseline, {"warp_factor": 9})

    def test_non_numeric_rejected(self, baseline):
        with pytest.raises(ProtocolError, match="must be a number"):
            params_with_overrides(baseline, {"drive_mttf_hours": "fast"})
        with pytest.raises(ProtocolError, match="must be a number"):
            params_with_overrides(baseline, {"drive_mttf_hours": True})

    def test_non_mapping_rejected(self, baseline):
        with pytest.raises(ProtocolError, match="must be an object"):
            params_with_overrides(baseline, [1, 2])

    def test_invalid_value_rejected(self, baseline):
        with pytest.raises(ProtocolError):
            params_with_overrides(baseline, {"drive_mttf_hours": -1.0})


# --------------------------------------------------------------------- #
# /v1/evaluate parsing
# --------------------------------------------------------------------- #


class TestParseEvaluateBody:
    def test_single_point(self, baseline):
        queries = parse_evaluate_body({"config": "ft2_raid5"}, baseline)
        assert len(queries) == 1
        q = queries[0]
        assert q.config.key == "ft2_raid5"
        assert q.method == "analytic"
        assert q.params == baseline

    def test_multi_point(self, baseline):
        body = {"points": [{"config": "ft1_noraid"}, {"config": "ft3_raid6"}]}
        queries = parse_evaluate_body(body, baseline)
        assert [q.config.key for q in queries] == ["ft1_noraid", "ft3_raid6"]

    def test_point_overrides(self, baseline):
        queries = parse_evaluate_body(
            {"config": "ft1_raid5", "params": {"node_set_size": 64}}, baseline
        )
        assert queries[0].params.node_set_size == 64

    def test_method_normalization(self, baseline):
        q = parse_evaluate_body(
            {"config": "ft1_raid5", "method": "approx"}, baseline
        )[0]
        assert q.method == "closed_form"

    def test_unknown_method(self, baseline):
        with pytest.raises(ProtocolError):
            parse_evaluate_body(
                {"config": "ft1_raid5", "method": "oracle"}, baseline
            )

    def test_unknown_config(self, baseline):
        with pytest.raises(ProtocolError):
            parse_evaluate_body({"config": "ft9_raid0"}, baseline)

    def test_missing_config(self, baseline):
        with pytest.raises(ProtocolError, match='"config"'):
            parse_evaluate_body({"method": "analytic"}, baseline)

    def test_unknown_point_field(self, baseline):
        with pytest.raises(ProtocolError, match="unknown point field"):
            parse_evaluate_body(
                {"config": "ft1_raid5", "sudo": True}, baseline
            )

    def test_non_object_body(self, baseline):
        with pytest.raises(ProtocolError):
            parse_evaluate_body([{"config": "ft1_raid5"}], baseline)

    def test_empty_points(self, baseline):
        with pytest.raises(ProtocolError, match="non-empty"):
            parse_evaluate_body({"points": []}, baseline)

    def test_points_cap(self, baseline):
        body = {
            "points": [{"config": "ft1_noraid"}] * (MAX_POINTS_PER_REQUEST + 1)
        }
        with pytest.raises(ProtocolError, match="at most"):
            parse_evaluate_body(body, baseline)

    def test_replicas_bounds(self, baseline):
        with pytest.raises(ProtocolError, match='"replicas"'):
            parse_evaluate_body(
                {"config": "ft1_raid5", "replicas": 0}, baseline
            )
        with pytest.raises(ProtocolError, match='"replicas"'):
            parse_evaluate_body(
                {"config": "ft1_raid5", "replicas": 10**9}, baseline
            )

    def test_availability_flag(self, baseline):
        q = parse_evaluate_body(
            {"config": "ft1_raid5", "availability": True}, baseline
        )[0]
        assert q.recovery_hours == 168.0
        q = parse_evaluate_body(
            {
                "config": "ft1_raid5",
                "availability": {"recovery_hours": 24},
            },
            baseline,
        )[0]
        assert q.recovery_hours == 24.0

    def test_availability_rejected_for_monte_carlo(self, baseline):
        with pytest.raises(ProtocolError, match="monte_carlo"):
            parse_evaluate_body(
                {
                    "config": "ft1_raid5",
                    "method": "monte_carlo",
                    "availability": True,
                },
                baseline,
            )

    def test_solve_options_parsed(self, baseline):
        q = parse_evaluate_body(
            {
                "config": "ft1_raid5",
                "options": {"backend": "sparse_iterative", "tolerance": 1e-8},
            },
            baseline,
        )[0]
        assert q.options.backend == "sparse_iterative"
        assert q.options.tolerance == 1e-8

    def test_solve_options_default(self, baseline):
        q = parse_evaluate_body({"config": "ft1_raid5"}, baseline)[0]
        assert q.options is DEFAULT_SOLVE_OPTIONS

    def test_bad_solve_options_rejected(self, baseline):
        with pytest.raises(ProtocolError, match='bad "options"'):
            parse_evaluate_body(
                {"config": "ft1_raid5", "options": {"backend": "quantum"}},
                baseline,
            )
        with pytest.raises(ProtocolError, match='bad "options"'):
            parse_evaluate_body(
                {"config": "ft1_raid5", "options": {"turbo": True}},
                baseline,
            )

    def test_monte_carlo_backend_must_use_method(self, baseline):
        with pytest.raises(ProtocolError, match='"method"'):
            parse_evaluate_body(
                {
                    "config": "ft1_raid5",
                    "options": {"backend": "monte_carlo"},
                },
                baseline,
            )


# --------------------------------------------------------------------- #
# /v1/sweep parsing
# --------------------------------------------------------------------- #


class TestParseSweepBody:
    BODY = {
        "configs": ["ft1_raid5", "ft2_raid5"],
        "axis": {"name": "drive_mttf_hours", "values": [1e5, 3e5]},
    }

    def test_valid(self, baseline):
        q = parse_sweep_body(self.BODY, baseline)
        assert [c.key for c in q.configs] == ["ft1_raid5", "ft2_raid5"]
        assert q.axis_name == "drive_mttf_hours"
        assert q.values == (1e5, 3e5)
        assert q.method == "analytic"

    def test_unknown_axis(self, baseline):
        body = dict(self.BODY, axis={"name": "warp", "values": [1]})
        with pytest.raises(ProtocolError, match="unknown sweep axis"):
            parse_sweep_body(body, baseline)

    def test_monte_carlo_rejected(self, baseline):
        with pytest.raises(ProtocolError, match="monte_carlo"):
            parse_sweep_body(dict(self.BODY, method="monte_carlo"), baseline)

    def test_values_cap(self, baseline):
        body = dict(
            self.BODY,
            axis={
                "name": "drive_mttf_hours",
                "values": [1e5 + i for i in range(MAX_SWEEP_VALUES + 1)],
            },
        )
        with pytest.raises(ProtocolError, match="at most"):
            parse_sweep_body(body, baseline)

    def test_inadmissible_value_rejected_upfront(self, baseline):
        body = dict(
            self.BODY, axis={"name": "drive_mttf_hours", "values": [1e5, -1]}
        )
        with pytest.raises(ProtocolError):
            parse_sweep_body(body, baseline)

    def test_empty_configs(self, baseline):
        with pytest.raises(ProtocolError, match='"configs"'):
            parse_sweep_body(dict(self.BODY, configs=[]), baseline)


# --------------------------------------------------------------------- #
# cache keys and responses
# --------------------------------------------------------------------- #


class TestCacheKey:
    def test_analytic_key_is_engine_point_key(self, baseline):
        config = Configuration.from_key("ft2_raid5")
        q = PointQuery(config=config, params=baseline, method="analytic")
        assert q.cache_key() == point_key(config, baseline, "analytic", None)

    def test_monte_carlo_key_varies_with_seed_and_replicas(self, baseline):
        config = Configuration.from_key("ft1_raid5")

        def key(**kw):
            return PointQuery(
                config=config, params=baseline, method="monte_carlo", **kw
            ).cache_key()

        assert key(seed=0) != key(seed=1)
        assert key(replicas=100) != key(replicas=200)
        assert key(seed=3, replicas=100) == key(seed=3, replicas=100)

    def test_recovery_hours_changes_key(self, baseline):
        config = Configuration.from_key("ft1_raid5")
        plain = PointQuery(config=config, params=baseline)
        with_avail = PointQuery(
            config=config, params=baseline, recovery_hours=24.0
        )
        assert plain.cache_key() != with_avail.cache_key()

    def test_params_change_key(self, baseline):
        config = Configuration.from_key("ft1_raid5")
        a = PointQuery(config=config, params=baseline)
        b = PointQuery(
            config=config, params=baseline.replace(drive_mttf_hours=461387.0)
        )
        assert a.cache_key() != b.cache_key()

    def test_default_options_leave_key_unchanged(self, baseline):
        # Pre-options cache entries must stay valid: the default options
        # contribute nothing to the key.
        config = Configuration.from_key("ft2_raid5")
        q = PointQuery(
            config=config,
            params=baseline,
            method="analytic",
            options=SolveOptions(),
        )
        assert q.cache_key() == point_key(config, baseline, "analytic", None)

    def test_non_default_options_change_key(self, baseline):
        config = Configuration.from_key("ft2_raid5")
        plain = PointQuery(config=config, params=baseline)
        sparse = PointQuery(
            config=config,
            params=baseline,
            options=SolveOptions(backend="sparse_iterative"),
        )
        tight = PointQuery(
            config=config,
            params=baseline,
            options=SolveOptions(backend="sparse_iterative", tolerance=1e-6),
        )
        assert plain.cache_key() != sparse.cache_key()
        assert sparse.cache_key() != tight.cache_key()


class TestPointResponse:
    def test_fields(self, baseline):
        config = Configuration.from_key("ft2_raid5")
        q = PointQuery(config=config, params=baseline)
        result = ReliabilityResult.from_mttdl(1e9, baseline)
        out = point_response(q, result, cached=False)
        assert out["config"] == "ft2_raid5"
        assert out["method"] == "analytic"
        assert out["mttdl_hours"] == 1e9
        assert out["params_key"] == baseline.cache_key()
        assert out["cached"] is False
        assert "availability" not in out
        assert "replicas" not in out

    def test_monte_carlo_extras(self, baseline):
        config = Configuration.from_key("ft1_raid5")
        q = PointQuery(
            config=config,
            params=baseline,
            method="monte_carlo",
            replicas=500,
            seed=7,
        )
        result = ReliabilityResult.from_mttdl(1e6, baseline)
        out = point_response(q, result, cached=True)
        assert out["replicas"] == 500
        assert out["seed"] == 7
        assert out["cached"] is True

"""The sharded serve topology: routing, equality, caches, crash drills."""

import asyncio
import json
import os

import pytest

import repro
from repro.models.configurations import Configuration, all_configurations
from repro.runtime import faultpoints
from repro.serve import ServeConfig, serving, shard_index
from repro.serve.loadgen import HotKeyShape, run_loadgen

pytestmark = pytest.mark.serve


async def _request(host, port, method, path, body=None):
    """One HTTP exchange; returns (status, headers, parsed-JSON body)."""
    payload = json.dumps(body).encode("utf-8") if body is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1")
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(head + payload)
        await writer.drain()
        raw = await reader.read(-1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_blob) if body_blob else None


# --------------------------------------------------------------------- #
# routing
# --------------------------------------------------------------------- #


class TestShardIndex:
    def test_single_shard_is_zero(self):
        assert shard_index("ft1_raid5", "analytic", 1) == 0
        assert shard_index("ft1_raid5", "analytic", 0) == 0

    def test_deterministic(self):
        for key in ("ft1_noraid", "ft2_raid5", "ft3_raid6"):
            for method in ("analytic", "closed_form"):
                first = shard_index(key, method, 4)
                assert all(
                    shard_index(key, method, 4) == first for _ in range(10)
                )

    def test_in_range(self):
        for config in all_configurations(3):
            for method in ("analytic", "closed_form"):
                for n in (1, 2, 3, 4, 7):
                    assert 0 <= shard_index(config.key, method, n) < n

    def test_standard_configs_cover_all_four_shards(self):
        """The nine standard chain families land on all four residues —
        a 4-worker deployment has no idle shard."""
        shards = {
            shard_index(config.key, "analytic", 4)
            for config in all_configurations(3)
        }
        assert shards == {0, 1, 2, 3}

    def test_analytic_routes_by_spec_hash(self):
        """Same spec family → same shard: ftN_raid5 and ftN_raid6 share
        nothing, but the routing is a pure function of the config key."""
        a = shard_index("ft2_raid5", "analytic", 4)
        b = shard_index("ft2_raid5", "analytic", 4)
        assert a == b


# --------------------------------------------------------------------- #
# bitwise equality across topologies
# --------------------------------------------------------------------- #


def _shard_config(workers, **overrides):
    """Sharded serve config with the front knobs tests rely on."""
    base = dict(
        port=0,
        workers=workers,
        cache_size=0,
        queue_depth=10_000,
        max_wait_us=2_000,
    )
    base.update(overrides)
    return ServeConfig(**base)


def test_sharded_answers_bitwise_equal_single_process():
    """The acceptance bar: the same seeded hot-key load against a
    1-worker and a 4-worker topology produces byte-identical response
    bodies, request by request."""

    async def drive(workers):
        async with serving(_shard_config(workers)) as server:
            return await run_loadgen(
                server.host,
                server.port,
                rps=40,
                duration_s=1.5,
                seed=7,
                shape=HotKeyShape(),
                capture_bodies=True,
            )

    single = asyncio.run(drive(1))
    sharded = asyncio.run(drive(4))
    assert single.sent == sharded.sent > 0
    assert single.transport_errors == sharded.transport_errors == 0
    assert single.server_errors == sharded.server_errors == 0
    assert single.shed == sharded.shed == 0
    mismatches = [
        i
        for i, (a, b) in enumerate(zip(single.bodies, sharded.bodies))
        if a != b
    ]
    assert mismatches == []


def test_sharded_answers_match_direct_evaluate(baseline):
    """Every config answered through the 4-worker topology is bitwise
    identical to the direct repro.evaluate() call."""

    async def drive():
        async with serving(_shard_config(4)) as server:
            answers = {}
            for config in all_configurations(3):
                status, _, body = await _request(
                    server.host,
                    server.port,
                    "POST",
                    "/v1/evaluate",
                    {"config": config.key, "method": "analytic"},
                )
                assert status == 200
                answers[config.key] = body
            return answers

    answers = asyncio.run(drive())
    for key, served in answers.items():
        direct = repro.evaluate(Configuration.from_key(key), baseline)
        assert served["mttdl_hours"] == direct.mttdl_hours, key
        assert served["events_per_pb_year"] == direct.events_per_pb_year, key
        assert served["cached"] is False, key


# --------------------------------------------------------------------- #
# shard-local caches and per-shard metrics
# --------------------------------------------------------------------- #


def test_worker_caches_hit_and_every_shard_solves(baseline):
    """With worker caches on, repeats of a hot key hit the shard-local
    cache (serve.worker.cache.hits), every shard solves at least one
    batch, and answers stay bitwise identical to the direct call."""

    async def drive():
        config = _shard_config(4, cache_size=256, cache_ttl_s=None)
        async with serving(config) as server:
            for _ in range(3):
                for cfg in all_configurations(3):
                    status, _, body = await _request(
                        server.host,
                        server.port,
                        "POST",
                        "/v1/evaluate",
                        {"config": cfg.key, "method": "analytic"},
                    )
                    assert status == 200
                    direct = repro.evaluate(
                        Configuration.from_key(cfg.key), baseline
                    )
                    assert body["mttdl_hours"] == direct.mttdl_hours
                    # The front cache is off in sharded mode; hits are a
                    # worker-side locality effect, never a stale flag.
                    assert body["cached"] is False
            return server.service.metrics

    metrics = asyncio.run(drive())
    assert metrics.value("serve.worker.cache.hits", 0) >= 18
    for shard in range(4):
        assert metrics.value(f"serve.shard.{shard}.batches", 0) > 0
        assert metrics.histogram(f"serve.shard.{shard}.batch.size").count > 0


def test_front_cache_disabled_in_sharded_mode():
    async def drive():
        async with serving(_shard_config(2, cache_size=512)) as server:
            for _ in range(2):
                status, _, body = await _request(
                    server.host,
                    server.port,
                    "POST",
                    "/v1/evaluate",
                    {"config": "ft2_raid5"},
                )
                assert status == 200
                assert body["cached"] is False
            return len(server.service.cache)

    assert asyncio.run(drive()) == 0


# --------------------------------------------------------------------- #
# the serve.worker_crash fault drill
# --------------------------------------------------------------------- #


def test_worker_crash_restart_drill(tmp_path, baseline):
    """Kill a shard worker mid-load via the serve.worker_crash faultpoint:
    the in-flight request fails clean (503 + Retry-After), the runtime
    restarts the worker, and post-restart answers are bitwise identical
    to the direct call."""
    trigger = tmp_path / "kill-shard-worker"

    def kill_if_armed(shard=None, **_kwargs):
        if os.path.exists(str(trigger)):
            os._exit(17)

    async def drive():
        async with serving(_shard_config(2)) as server:
            host, port = server.host, server.port
            body = {"config": "ft2_raid5", "method": "analytic"}

            # Phase 1: healthy baseline.
            status, _, before = await _request(
                host, port, "POST", "/v1/evaluate", body
            )
            assert status == 200

            # Phase 2: arm the faultpoint; the in-flight request dies
            # with the worker and surfaces as a clean 503 + Retry-After.
            trigger.write_text("armed")
            status, headers, error = await _request(
                host, port, "POST", "/v1/evaluate", body
            )
            assert status == 503
            assert "retry-after" in headers
            assert "worker" in error["error"].lower()

            # Phase 3: disarm, wait for the runtime to restart the shard.
            trigger.unlink()
            for _ in range(200):
                health = server.service.health()
                workers = health["workers"]
                if all(w["alive"] for w in workers) and any(
                    w["restarts"] >= 1 for w in workers
                ):
                    break
                await asyncio.sleep(0.01)
            else:
                raise AssertionError(f"no restart observed: {workers}")

            # Phase 4: the restarted worker answers, bitwise identical.
            status, _, after = await _request(
                host, port, "POST", "/v1/evaluate", body
            )
            assert status == 200
            return before, after, server.service.health()

    with faultpoints.injected(faultpoints.SERVE_WORKER_CRASH, kill_if_armed):
        before, after, health = asyncio.run(drive())
    direct = repro.evaluate(Configuration.from_key("ft2_raid5"), baseline)
    assert before["mttdl_hours"] == direct.mttdl_hours
    assert after == before
    assert sum(w["restarts"] for w in health["workers"]) >= 1


def test_crash_faultpoint_does_not_fire_single_process(baseline):
    """The serve.worker_crash faultpoint is scoped to shard workers: the
    single-process solver thread never fires it, so an armed drill does
    not take down an unsharded server."""

    def kill(shard=None, **_kwargs):  # pragma: no cover - must not run
        os._exit(17)

    async def drive():
        async with serving(ServeConfig(port=0, cache_size=0)) as server:
            status, _, body = await _request(
                server.host,
                server.port,
                "POST",
                "/v1/evaluate",
                {"config": "ft1_raid5"},
            )
            return status, body

    with faultpoints.injected(faultpoints.SERVE_WORKER_CRASH, kill):
        status, body = asyncio.run(drive())
    assert status == 200
    direct = repro.evaluate(Configuration.from_key("ft1_raid5"), baseline)
    assert body["mttdl_hours"] == direct.mttdl_hours


# --------------------------------------------------------------------- #
# sharded health payload
# --------------------------------------------------------------------- #


def test_health_reports_workers():
    async def drive():
        async with serving(_shard_config(3)) as server:
            status, _, health = await _request(
                server.host, server.port, "GET", "/healthz"
            )
            return status, health

    status, health = asyncio.run(drive())
    assert status == 200
    workers = health["workers"]
    assert len(workers) == 3
    assert [w["index"] for w in workers] == [0, 1, 2]
    assert all(w["alive"] for w in workers)
    assert all(w["restarts"] == 0 for w in workers)
    assert len({w["pid"] for w in workers}) == 3

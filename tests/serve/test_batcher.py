"""The coalescing batcher: grouping, identity, admission, drain."""

import asyncio

import pytest

import repro
from repro.models.configurations import all_configurations
from repro.core.solvers import SolveOptions
from repro.serve.batcher import CoalescingBatcher, Overloaded

pytestmark = pytest.mark.serve

CONFIGS = all_configurations(3)


def _unique_points(base, n):
    """n unique (config, params) points cycling over all nine configs."""
    return [
        (
            CONFIGS[i % len(CONFIGS)],
            base.replace(drive_mttf_hours=1e5 * (1 + i * 1e-6)),
        )
        for i in range(n)
    ]


def test_concurrent_submits_coalesce_and_match_evaluate(baseline):
    """Concurrent points batch (mean batch size > 1) and every answer is
    bitwise identical to the direct repro.evaluate() path."""
    points = _unique_points(baseline, 60)

    async def drive():
        batcher = CoalescingBatcher(max_batch_size=64, max_wait_us=5000)
        batcher.start()
        try:
            futures = [
                batcher.submit(config, params, "analytic")
                for config, params in points
            ]
            return await asyncio.gather(*futures), batcher.metrics
        finally:
            await batcher.stop()

    answers, metrics = asyncio.run(drive())
    sizes = metrics.histogram("serve.batch.size")
    assert sizes.count >= 1
    assert sizes.mean > 1.0, "concurrent submits did not batch"
    for (config, params), mttdl in zip(points, answers):
        direct = repro.evaluate(config, params)
        assert mttdl == direct.mttdl_hours, config.key


def test_closed_form_points_batch_too(baseline):
    async def drive():
        batcher = CoalescingBatcher(max_batch_size=16, max_wait_us=5000)
        batcher.start()
        try:
            futures = [
                batcher.submit(config, baseline, "closed_form")
                for config in CONFIGS
            ]
            return await asyncio.gather(*futures)
        finally:
            await batcher.stop()

    answers = asyncio.run(drive())
    for config, mttdl in zip(CONFIGS, answers):
        direct = repro.evaluate(
            config, baseline, options=SolveOptions(backend="closed_form")
        )
        assert mttdl == direct.mttdl_hours, config.key


def test_mixed_methods_group_separately(baseline):
    async def drive():
        batcher = CoalescingBatcher(max_batch_size=32, max_wait_us=5000)
        batcher.start()
        try:
            futures = [
                batcher.submit(
                    config,
                    baseline,
                    "analytic" if i % 2 == 0 else "closed_form",
                )
                for i, config in enumerate(CONFIGS)
            ]
            return await asyncio.gather(*futures), batcher.metrics
        finally:
            await batcher.stop()

    answers, metrics = asyncio.run(drive())
    assert metrics.histogram("serve.batch.groups").count >= 1
    for i, (config, mttdl) in enumerate(zip(CONFIGS, answers)):
        method = "analytic" if i % 2 == 0 else "closed_form"
        backend = "auto" if method == "analytic" else "closed_form"
        direct = repro.evaluate(
            config, baseline, options=SolveOptions(backend=backend)
        )
        assert mttdl == direct.mttdl_hours, (config.key, method)


def test_submit_before_start_sheds(baseline):
    async def drive():
        batcher = CoalescingBatcher()
        with pytest.raises(Overloaded):
            batcher.submit(CONFIGS[0], baseline, "analytic")

    asyncio.run(drive())


def test_full_queue_sheds_with_retry_hint(baseline):
    """Admission is the queue bound: submit is synchronous, so filling
    the queue without yielding to the consumer sheds deterministically."""

    async def drive():
        batcher = CoalescingBatcher(
            queue_depth=4, retry_after_s=2.5, max_wait_us=0
        )
        batcher.start()
        try:
            admitted = [
                batcher.submit(CONFIGS[0], baseline, "analytic")
                for _ in range(4)
            ]
            with pytest.raises(Overloaded) as exc_info:
                batcher.submit(CONFIGS[0], baseline, "analytic")
            assert exc_info.value.retry_after_s == 2.5
            assert batcher.metrics.value("serve.queue.shed") == 1
            assert batcher.metrics.value("serve.queue.admitted") == 4
            await asyncio.gather(*admitted)
        finally:
            await batcher.stop()

    asyncio.run(drive())


def test_stop_drains_admitted_points(baseline):
    """Everything admitted before stop() is still answered."""
    points = _unique_points(baseline, 20)

    async def drive():
        batcher = CoalescingBatcher(max_batch_size=8, max_wait_us=0)
        batcher.start()
        futures = [
            batcher.submit(config, params, "analytic")
            for config, params in points
        ]
        await batcher.stop()
        # Draining: new work sheds...
        with pytest.raises(Overloaded):
            batcher.submit(CONFIGS[0], baseline, "analytic")
        # ...but every admitted future already resolved.
        assert all(f.done() for f in futures)
        return [f.result() for f in futures]

    answers = asyncio.run(drive())
    for (config, params), mttdl in zip(points, answers):
        direct = repro.evaluate(config, params)
        assert mttdl == direct.mttdl_hours


def test_group_failure_is_isolated(baseline, monkeypatch):
    """A solver error poisons only its own spec-hash group; the other
    groups in the same batch still answer."""
    import repro.serve.solvecore as solvecore_mod

    real = solvecore_mod.solve_grouped
    boom = RuntimeError("synthetic solver failure")

    def failing(compiled, envs, options=None):
        if len(envs) and compiled.spec.name.startswith("no_raid"):
            raise boom
        return real(compiled, envs, options)

    monkeypatch.setattr(solvecore_mod, "solve_grouped", failing)

    async def drive():
        batcher = CoalescingBatcher(max_batch_size=32, max_wait_us=5000)
        batcher.start()
        try:
            futures = [
                batcher.submit(config, baseline, "analytic")
                for config in CONFIGS
            ]
            return await asyncio.gather(*futures, return_exceptions=True)
        finally:
            await batcher.stop()

    outcomes = asyncio.run(drive())
    failed = [
        config.key
        for config, out in zip(CONFIGS, outcomes)
        if isinstance(out, BaseException)
    ]
    assert failed == [c.key for c in CONFIGS if "noraid" in c.key]
    for config, out in zip(CONFIGS, outcomes):
        if not isinstance(out, BaseException):
            direct = repro.evaluate(config, baseline)
            assert out == direct.mttdl_hours


def test_constructor_validation():
    with pytest.raises(ValueError):
        CoalescingBatcher(max_batch_size=0)
    with pytest.raises(ValueError):
        CoalescingBatcher(max_wait_us=-1)
    with pytest.raises(ValueError):
        CoalescingBatcher(queue_depth=0)

"""The open-loop load generator: percentiles, seeded mix, accounting."""

import math

import pytest

from repro.serve.loadgen import LoadReport, RequestMix, percentile

pytestmark = pytest.mark.serve


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 50) == 5.0
        assert percentile(values, 95) == 10.0
        assert percentile(values, 99) == 10.0
        assert percentile(values, 10) == 1.0
        assert percentile(values, 100) == 10.0

    def test_single_value(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_zero_quantile_clamps_to_first(self):
        assert percentile([1.0, 2.0], 0) == 1.0

    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))


class TestRequestMix:
    def test_same_seed_same_stream(self):
        a = RequestMix(seed=42)
        b = RequestMix(seed=42)
        assert [a.body() for _ in range(50)] == [b.body() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = [RequestMix(seed=1).body() for _ in range(20)]
        b = [RequestMix(seed=2).body() for _ in range(20)]
        assert a != b

    def test_bodies_are_valid_requests(self, baseline):
        from repro.serve.protocol import parse_evaluate_body

        mix = RequestMix(seed=0)
        for _ in range(30):
            queries = parse_evaluate_body(mix.body(), baseline)
            assert len(queries) == 1


class TestLoadReport:
    def test_accounting(self):
        report = LoadReport(target_rps=10, duration_s=1)
        report.record(200, 0.010)
        report.record(200, 0.020)
        report.record(429, 0.001)
        report.record(500, 0.002)
        report.record(-1, 0.5)
        assert report.sent == 5
        assert report.completed == 2
        assert report.shed == 1
        assert report.server_errors == 1
        assert report.transport_errors == 1
        # Transport failures carry no status and no latency sample.
        assert len(report.latencies_s) == 4
        assert report.log[-1][0] == -1

    def test_achieved_rps(self):
        report = LoadReport(target_rps=10, duration_s=1)
        for _ in range(20):
            report.record(200, 0.01)
        report.elapsed_s = 2.0
        assert report.achieved_rps == 10.0

    def test_to_dict_and_format(self):
        report = LoadReport(target_rps=10, duration_s=1)
        report.record(200, 0.010)
        report.record(429, 0.001)
        report.elapsed_s = 1.0
        out = report.to_dict()
        assert out["sent"] == 2
        assert out["completed"] == 1
        assert out["shed"] == 1
        assert out["statuses"] == {"200": 1, "429": 1}
        assert set(out["latency_ms"]) == {"p50", "p95", "p99"}
        text = report.format()
        assert "sent/completed  2/1" in text

"""Traffic shapes: seeded determinism and the shape invariants."""

import collections

import pytest

from repro.serve.loadgen import (
    BurstyShape,
    DiurnalShape,
    HotKeyShape,
    LoadReport,
    RequestMix,
    TrafficShape,
    ZipfRequestMix,
    shape_by_name,
)

pytestmark = pytest.mark.serve


class TestShapeRegistry:
    def test_by_name(self):
        for name, cls in (
            ("uniform", TrafficShape),
            ("diurnal", DiurnalShape),
            ("bursty", BurstyShape),
            ("hotkey", HotKeyShape),
        ):
            shape = shape_by_name(name)
            assert type(shape) is cls
            assert shape.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown traffic shape"):
            shape_by_name("lunar")

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            DiurnalShape(amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalShape(periods=0)
        with pytest.raises(ValueError):
            BurstyShape(on_s=0.0)
        with pytest.raises(ValueError):
            HotKeyShape(skew=0.0)
        with pytest.raises(ValueError):
            ZipfRequestMix(skew=-1.0)


class TestArrivalOffsets:
    def test_uniform_evenly_spaced(self):
        offsets = TrafficShape().arrival_offsets(10.0, 2.0)
        assert len(offsets) == 20
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        assert all(gap == pytest.approx(0.1) for gap in gaps)

    def test_all_shapes_preserve_count_and_bounds(self):
        for name in ("uniform", "diurnal", "bursty", "hotkey"):
            shape = shape_by_name(name)
            offsets = shape.arrival_offsets(25.0, 4.0)
            assert len(offsets) == 100, name
            assert offsets == sorted(offsets), name
            assert offsets[0] >= 0.0, name
            assert offsets[-1] <= 4.0 + 1e-9, name

    def test_all_shapes_deterministic(self):
        for name in ("uniform", "diurnal", "bursty", "hotkey"):
            a = shape_by_name(name).arrival_offsets(30.0, 3.0)
            b = shape_by_name(name).arrival_offsets(30.0, 3.0)
            assert a == b, name

    def test_diurnal_peak_is_denser_than_trough(self):
        """One period starting at the trough: the middle half of the run
        (around the rate peak) carries most of the arrivals."""
        offsets = DiurnalShape(amplitude=0.8).arrival_offsets(50.0, 4.0)
        middle = sum(1 for t in offsets if 1.0 <= t < 3.0)
        edges = len(offsets) - middle
        assert middle > 2 * edges

    def test_diurnal_inverts_the_cumulative_rate(self):
        """Arrival k sits where the cumulative rate reaches k."""
        import math

        rps, duration, amp = 20.0, 5.0, 0.6
        omega = 2.0 * math.pi / duration
        offsets = DiurnalShape(amplitude=amp).arrival_offsets(rps, duration)
        for k in (0, 17, 50, 99):
            t = offsets[k]
            cumulative = rps * (t - amp * math.sin(omega * t) / omega)
            assert cumulative == pytest.approx(k, abs=1e-6)

    def test_bursty_sends_only_inside_on_windows(self):
        shape = BurstyShape(on_s=0.25, off_s=0.75)
        offsets = shape.arrival_offsets(20.0, 4.0)
        assert len(offsets) == 80
        for t in offsets:
            phase = t % 1.0
            assert phase < 0.25 + 1e-9, t

    def test_bursty_on_rate_is_elevated(self):
        """Inside a burst the instantaneous rate is (on+off)/on times the
        average — gaps are 1/burst_rate, not 1/rps."""
        shape = BurstyShape(on_s=0.5, off_s=0.5)
        offsets = shape.arrival_offsets(10.0, 2.0)
        gap = offsets[1] - offsets[0]
        assert gap == pytest.approx(1.0 / 20.0)


class TestZipfMix:
    def test_same_seed_same_stream(self):
        a = ZipfRequestMix(3)
        b = ZipfRequestMix(3)
        assert [a.body() for _ in range(64)] == [b.body() for _ in range(64)]

    def test_skewed_toward_hot_keys(self):
        mix = ZipfRequestMix(0, skew=1.2)
        counts = collections.Counter(
            (body["config"], tuple(sorted(body["params"].items())))
            for body in (mix.body() for _ in range(2000))
        )
        top = counts.most_common(1)[0][1]
        # 45 keys: uniform would give ~44 hits to each; Zipf(1.2) gives
        # the hottest key an order of magnitude more.
        assert top > 400

    def test_uniform_mix_is_not_skewed(self):
        mix = RequestMix(0)
        counts = collections.Counter(
            (body["config"], tuple(sorted(body["params"].items())))
            for body in (mix.body() for _ in range(2000))
        )
        assert counts.most_common(1)[0][1] < 200

    def test_hot_key_order_depends_on_seed(self):
        hot = lambda seed: collections.Counter(  # noqa: E731
            body["config"]
            for body in (ZipfRequestMix(seed).body() for _ in range(500))
        ).most_common(1)[0][0]
        assert len({hot(0), hot(1), hot(2), hot(3)}) > 1

    def test_hotkey_shape_wires_the_mix(self):
        mix = HotKeyShape(skew=2.0).request_mix(7)
        assert isinstance(mix, ZipfRequestMix)
        assert mix.skew == 2.0
        assert mix.seed == 7


class TestReportShape:
    def test_shape_recorded(self):
        report = LoadReport(target_rps=10.0, duration_s=1.0, shape="bursty")
        assert report.to_dict()["shape"] == "bursty"
        assert "bursty" in report.format()

    def test_default_shape_is_uniform(self):
        report = LoadReport(target_rps=10.0, duration_s=1.0)
        assert report.to_dict()["shape"] == "uniform"

"""Deadline-aware batch closing: the close policy and both close paths."""

import asyncio
import time

import pytest

import repro
from repro.models.configurations import Configuration
from repro.serve.batcher import CoalescingBatcher, batch_close_at
from repro.serve.protocol import ProtocolError, parse_evaluate_body

pytestmark = pytest.mark.serve


class TestBatchCloseAt:
    def test_no_deadlines_closes_at_nominal(self):
        t0 = 100.0
        assert batch_close_at(t0, 0.002, (None, None), 0.001) == t0 + 0.002

    def test_tight_deadline_pulls_the_close_in(self):
        t0 = 100.0
        # Deadline 1ms out, margin 0.5ms: close at t0 + 0.5ms, not the
        # nominal t0 + 2ms.
        close = batch_close_at(t0, 0.002, (t0 + 0.001, None), 0.0005)
        assert close == pytest.approx(t0 + 0.0005)

    def test_tightest_member_wins(self):
        t0 = 100.0
        deadlines = (t0 + 0.010, t0 + 0.003, t0 + 0.007)
        close = batch_close_at(t0, 0.020, deadlines, 0.001)
        assert close == pytest.approx(t0 + 0.002)

    def test_loose_deadline_leaves_nominal_close(self):
        t0 = 100.0
        close = batch_close_at(t0, 0.002, (t0 + 1.0,), 0.0005)
        assert close == t0 + 0.002

    def test_never_before_assembly_start(self):
        """An already-blown deadline cannot close the batch in the past —
        the opening point is always accepted."""
        t0 = 100.0
        close = batch_close_at(t0, 0.002, (t0 - 5.0,), 0.001)
        assert close == t0


class TestProtocolDeadline:
    def test_deadline_parses(self, baseline):
        (query,) = parse_evaluate_body(
            {"config": "ft1_raid5", "deadline_ms": 25}, baseline
        )
        assert query.deadline_ms == 25.0

    def test_deadline_defaults_to_none(self, baseline):
        (query,) = parse_evaluate_body({"config": "ft1_raid5"}, baseline)
        assert query.deadline_ms is None

    def test_deadline_excluded_from_cache_key(self, baseline):
        (plain,) = parse_evaluate_body({"config": "ft1_raid5"}, baseline)
        (dead,) = parse_evaluate_body(
            {"config": "ft1_raid5", "deadline_ms": 10}, baseline
        )
        assert plain.cache_key() == dead.cache_key()

    @pytest.mark.parametrize("bad", [0, -5, "soon", True])
    def test_bad_deadline_rejected(self, baseline, bad):
        with pytest.raises(ProtocolError, match="deadline_ms"):
            parse_evaluate_body(
                {"config": "ft1_raid5", "deadline_ms": bad}, baseline
            )


class TestClosePaths:
    def test_tight_deadline_closes_early(self, baseline):
        """A point with a deadline far tighter than max_wait closes its
        batch on the deadline path, counted by serve.batch.closed_early."""

        async def drive():
            batcher = CoalescingBatcher(
                max_batch_size=64, max_wait_us=500_000, deadline_margin_us=500
            )
            batcher.start()
            try:
                t0 = time.monotonic()
                mttdl = await batcher.submit(
                    Configuration.from_key("ft2_raid5"),
                    baseline,
                    "analytic",
                    deadline_s=0.02,
                )
                waited = time.monotonic() - t0
            finally:
                await batcher.stop()
            return mttdl, waited, batcher.metrics

        mttdl, waited, metrics = asyncio.run(drive())
        # Closed on the deadline (~20ms), nowhere near max_wait (500ms).
        assert waited < 0.25
        assert metrics.value("serve.batch.closed_early", 0) >= 1
        direct = repro.evaluate(Configuration.from_key("ft2_raid5"), baseline)
        assert mttdl == direct.mttdl_hours

    def test_no_deadline_closes_on_nominal_timeout(self, baseline):
        """Without deadlines the close is the classic max_wait timeout and
        is not counted as early."""

        async def drive():
            batcher = CoalescingBatcher(max_batch_size=64, max_wait_us=2_000)
            batcher.start()
            try:
                mttdl = await batcher.submit(
                    Configuration.from_key("ft1_raid6"), baseline, "analytic"
                )
            finally:
                await batcher.stop()
            return mttdl, batcher.metrics

        mttdl, metrics = asyncio.run(drive())
        assert metrics.value("serve.batch.closed_early", 0) == 0
        assert metrics.value("serve.batches", 0) >= 1
        direct = repro.evaluate(Configuration.from_key("ft1_raid6"), baseline)
        assert mttdl == direct.mttdl_hours

    def test_full_batch_is_not_counted_early(self, baseline):
        """Filling the batch closes it immediately — the size path, not
        the deadline path."""

        async def drive():
            batcher = CoalescingBatcher(
                max_batch_size=2, max_wait_us=500_000, deadline_margin_us=500
            )
            batcher.start()
            try:
                futures = [
                    batcher.submit(
                        Configuration.from_key("ft2_raid5"),
                        baseline,
                        "analytic",
                        deadline_s=10.0,
                    )
                    for _ in range(2)
                ]
                answers = await asyncio.gather(*futures)
            finally:
                await batcher.stop()
            return answers, batcher.metrics

        answers, metrics = asyncio.run(drive())
        assert metrics.value("serve.batch.closed_early", 0) == 0
        direct = repro.evaluate(Configuration.from_key("ft2_raid5"), baseline)
        assert answers == [direct.mttdl_hours, direct.mttdl_hours]

"""End-to-end tests over real sockets: routes, errors, identity, overload."""

import asyncio
import json

import pytest

import repro
from repro.core.solvers import SolveOptions
from repro.engine.sweep import Axis, SweepEngine
from repro.models.configurations import Configuration, all_configurations
from repro.serve import ServeConfig, serving
from repro.serve.loadgen import run_loadgen

pytestmark = pytest.mark.serve


async def _request(
    host, port, method, path, body=None, raw_body=None, advertised_length=None
):
    """One HTTP exchange; returns (status, headers, parsed-JSON body)."""
    payload = b""
    if raw_body is not None:
        payload = raw_body
    elif body is not None:
        payload = json.dumps(body).encode("utf-8")
    length = (
        advertised_length if advertised_length is not None else len(payload)
    )
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {length}\r\n"
        "Connection: close\r\n\r\n"
    ).encode("latin-1")
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(head + payload)
        await writer.drain()
        raw = await reader.read(-1)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, json.loads(body_blob) if body_blob else None


def _run(coro):
    return asyncio.run(coro)


# --------------------------------------------------------------------- #
# routes
# --------------------------------------------------------------------- #


def test_healthz_and_metricsz():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            status, _, health = await _request(
                server.host, server.port, "GET", "/healthz"
            )
            assert status == 200
            assert health["status"] == "ok"
            assert health["queue_depth"] == 0
            # Answer one point so the metrics have content.
            await _request(
                server.host,
                server.port,
                "POST",
                "/v1/evaluate",
                {"config": "ft1_raid5"},
            )
            status, _, metrics = await _request(
                server.host, server.port, "GET", "/metricsz"
            )
            assert status == 200
            assert metrics["serve.http.requests"] == 3
            assert metrics["serve.points"] == 1

    _run(drive())


def test_single_point_bitwise_identical_to_evaluate(baseline):
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            return await _request(
                server.host,
                server.port,
                "POST",
                "/v1/evaluate",
                {"config": "ft2_raid5", "method": "analytic"},
            )

    status, _, answer = _run(drive())
    assert status == 200
    direct = repro.evaluate(Configuration.from_key("ft2_raid5"), baseline)
    assert answer["mttdl_hours"] == direct.mttdl_hours
    assert answer["events_per_pb_year"] == direct.events_per_pb_year
    assert answer["mttdl_years"] == direct.mttdl_years
    assert answer["meets_target"] == direct.meets_target
    assert answer["cached"] is False


def test_every_config_and_method_matches_evaluate(baseline):
    """The acceptance bar: all nine configs, both chain methods, each
    HTTP answer bitwise identical to the direct API."""
    keys = [c.key for c in all_configurations(3)]

    async def drive():
        answers = {}
        async with serving(ServeConfig(port=0)) as server:
            for method in ("analytic", "closed_form"):
                body = {
                    "points": [
                        {"config": key, "method": method} for key in keys
                    ]
                }
                status, _, out = await _request(
                    server.host, server.port, "POST", "/v1/evaluate", body
                )
                assert status == 200
                answers[method] = out["results"]
        return answers

    answers = _run(drive())
    for method, results in answers.items():
        for key, served in zip(keys, results):
            backend = "auto" if method == "analytic" else "closed_form"
            direct = repro.evaluate(
                Configuration.from_key(key),
                baseline,
                options=SolveOptions(backend=backend),
            )
            assert served["mttdl_hours"] == direct.mttdl_hours, (key, method)
            assert (
                served["events_per_pb_year"] == direct.events_per_pb_year
            ), (key, method)


def test_params_override_round_trip(baseline):
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            return await _request(
                server.host,
                server.port,
                "POST",
                "/v1/evaluate",
                {
                    "config": "ft1_raid6",
                    "params": {"drive_mttf_hours": 250_000.0},
                },
            )

    status, _, answer = _run(drive())
    assert status == 200
    direct = repro.evaluate(
        Configuration.from_key("ft1_raid6"),
        baseline.replace(drive_mttf_hours=250_000.0),
    )
    assert answer["mttdl_hours"] == direct.mttdl_hours


def test_second_identical_request_is_cached():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            first = await _request(
                server.host,
                server.port,
                "POST",
                "/v1/evaluate",
                {"config": "ft3_raid5"},
            )
            second = await _request(
                server.host,
                server.port,
                "POST",
                "/v1/evaluate",
                {"config": "ft3_raid5"},
            )
            return first, second

    (s1, _, a1), (s2, _, a2) = _run(drive())
    assert (s1, s2) == (200, 200)
    assert a1["cached"] is False
    assert a2["cached"] is True
    assert a1["mttdl_hours"] == a2["mttdl_hours"]
    assert a1["params_key"] == a2["params_key"]


def test_availability_profile_in_response(baseline):
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            return await _request(
                server.host,
                server.port,
                "POST",
                "/v1/evaluate",
                {
                    "config": "ft2_raid5",
                    "availability": {"recovery_hours": 24},
                },
            )

    status, _, answer = _run(drive())
    assert status == 200
    profile = answer["availability"]
    assert profile["recovery_hours"] == 24.0
    fractions = (
        profile["fully_operational_fraction"]
        + profile["degraded_fraction"]
        + profile["post_loss_fraction"]
    )
    assert fractions == pytest.approx(1.0)


def test_sweep_matches_sweep_engine(baseline):
    values = (100_000.0, 300_000.0, 750_000.0)
    configs = ["ft1_raid5", "ft2_raid5"]

    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            return await _request(
                server.host,
                server.port,
                "POST",
                "/v1/sweep",
                {
                    "configs": configs,
                    "axis": {
                        "name": "drive_mttf_hours",
                        "values": list(values),
                    },
                },
            )

    status, _, answer = _run(drive())
    assert status == 200
    assert answer["axis"] == "drive_mttf_hours"
    assert answer["values"] == list(values)
    engine = SweepEngine(base_params=baseline, jobs=1, cache=False)
    result = engine.sweep(
        [Configuration.from_key(k) for k in configs],
        Axis("drive_mttf_hours", values),
        method="analytic",
    )
    expected = {}
    for point in result.points:
        expected.setdefault(point.config.key, []).append(point.mttdl_hours)
    served = {s["config"]: s["mttdl_hours"] for s in answer["series"]}
    assert served == expected


# --------------------------------------------------------------------- #
# error mapping
# --------------------------------------------------------------------- #


def test_error_statuses():
    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            host, port = server.host, server.port
            results = {}
            results["bad_json"] = await _request(
                host, port, "POST", "/v1/evaluate", raw_body=b"{nope"
            )
            results["bad_body"] = await _request(
                host, port, "POST", "/v1/evaluate", {"config": "ft9_warp"}
            )
            results["not_found"] = await _request(
                host, port, "GET", "/v2/evaluate"
            )
            results["get_on_post"] = await _request(
                host, port, "GET", "/v1/evaluate"
            )
            results["post_on_get"] = await _request(
                host, port, "POST", "/healthz", {}
            )
            # The server answers 413 from the headers alone, without
            # reading a body it would only throw away.
            results["oversize"] = await _request(
                host,
                port,
                "POST",
                "/v1/evaluate",
                advertised_length=(1 << 20) + 1,
            )
            return results

    results = _run(drive())
    assert results["bad_json"][0] == 400
    assert "JSON" in results["bad_json"][2]["error"]
    assert results["bad_body"][0] == 400
    assert results["not_found"][0] == 404
    assert results["get_on_post"][0] == 400  # POST route, wrong verb
    assert results["post_on_get"][0] == 405
    assert results["oversize"][0] == 413


def test_overload_sheds_429_with_retry_after():
    """With admission closed (drained batcher), every solve request
    sheds as 429 carrying the configured Retry-After hint."""

    async def drive():
        async with serving(
            ServeConfig(port=0, retry_after_s=3.0)
        ) as server:
            # Close admission exactly the way SIGTERM drain does.
            await server.service.batcher.stop()
            status, headers, body = await _request(
                server.host,
                server.port,
                "POST",
                "/v1/evaluate",
                {"config": "ft1_raid5"},
            )
            assert status == 429
            assert headers["retry-after"] == "3"
            assert body["retry_after_s"] == 3.0
            # The metrics saw the shed class.
            _, _, metrics = await _request(
                server.host, server.port, "GET", "/metricsz"
            )
            assert metrics["serve.http.responses.429"] == 1
            server.service.batcher.start()  # so stop() drains cleanly

    _run(drive())


def test_aux_overload_sheds_sweeps():
    """Sweeps run behind their own admission bound; a zero-depth bound
    sheds them deterministically while point solves still answer."""

    async def drive():
        async with serving(ServeConfig(port=0, aux_depth=0)) as server:
            status, headers, _ = await _request(
                server.host,
                server.port,
                "POST",
                "/v1/sweep",
                {
                    "configs": ["ft1_raid5"],
                    "axis": {"name": "drive_mttf_hours", "values": [1e5]},
                },
            )
            assert status == 429
            assert "retry-after" in headers
            status, _, _ = await _request(
                server.host,
                server.port,
                "POST",
                "/v1/evaluate",
                {"config": "ft1_raid5"},
            )
            assert status == 200

    _run(drive())


# --------------------------------------------------------------------- #
# metrics reconcile with the request log under load
# --------------------------------------------------------------------- #


def test_loadgen_metrics_reconcile_with_request_log():
    """Drive the server with the open-loop generator and reconcile the
    server-side counters against the client-side request log."""

    async def drive():
        async with serving(ServeConfig(port=0)) as server:
            report = await run_loadgen(
                server.host, server.port, rps=60, duration_s=1.5, seed=11
            )
            _, _, metrics = await _request(
                server.host, server.port, "GET", "/metricsz"
            )
            return report, metrics

    report, metrics = _run(drive())
    assert report.sent > 0
    assert report.transport_errors == 0
    # One /metricsz probe rode along after the run.
    assert metrics["serve.http.requests"] == report.sent + 1
    classes = {
        "2xx": metrics.get("serve.http.responses.2xx", 0),
        "4xx": metrics.get("serve.http.responses.4xx", 0),
        "429": metrics.get("serve.http.responses.429", 0),
        "5xx": metrics.get("serve.http.responses.5xx", 0),
    }
    assert classes["5xx"] == 0
    # The probe's own 2xx is counted after its snapshot was built, so
    # the classes reflect exactly the loadgen's log.
    assert classes["2xx"] == report.completed
    assert classes["429"] == report.shed
    # Every request was admitted, answered from cache, coalesced onto an
    # in-flight solve, or shed — nothing fell through the cracks.
    accounted = (
        metrics.get("serve.queue.admitted", 0)
        + metrics.get("serve.cache.hits", 0)
        + metrics.get("serve.inflight.coalesced", 0)
        + metrics.get("serve.queue.shed", 0)
    )
    assert accounted >= report.sent
    # The batcher actually ran (and never lost a point).
    assert metrics["serve.points"] == metrics["serve.queue.admitted"]


def test_graceful_drain_answers_inflight(baseline):
    """stop() after concurrent submissions answers everything admitted."""

    async def drive():
        harness = serving(ServeConfig(port=0))
        server = await harness.__aenter__()
        try:
            bodies = [
                {
                    "config": "ft2_raid5",
                    "params": {"drive_mttf_hours": 1e5 + i},
                }
                for i in range(8)
            ]
            tasks = [
                asyncio.ensure_future(
                    _request(
                        server.host, server.port, "POST", "/v1/evaluate", b
                    )
                )
                for b in bodies
            ]
            # Wait until every request reached dispatch, so the drain
            # below finds them genuinely in flight.
            requests_seen = server.service.metrics.counter(
                "serve.http.requests"
            )
            for _ in range(2000):
                if requests_seen.value >= len(bodies):
                    break
                await asyncio.sleep(0.001)
        finally:
            await harness.__aexit__(None, None, None)
        return await asyncio.gather(*tasks)

    outcomes = _run(drive())
    statuses = sorted(status for status, _, _ in outcomes)
    assert all(status in (200, 429) for status in statuses)
    assert 200 in statuses  # the drain really answered admitted work

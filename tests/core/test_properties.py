"""Property-based tests of the CTMC engine on random chains.

These pit independent computational paths against each other on
hypothesis-generated chains: the GTH absorption solve vs trajectory
sampling, uniformization vs the matrix exponential, and structural
invariants every chain must satisfy.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CTMC, Transition, sample_absorption_times


def random_absorbing_chain(rng, n_transient, absorbing=1):
    """A random chain where every transient state reaches absorption."""
    states = [f"s{i}" for i in range(n_transient)] + [
        f"loss{j}" for j in range(absorbing)
    ]
    transitions = []
    for i in range(n_transient):
        # Dense-ish random transitions among transient states.
        for j in range(n_transient):
            if i != j and rng.random() < 0.5:
                transitions.append(
                    Transition(f"s{i}", f"s{j}", float(rng.uniform(0.1, 3.0)))
                )
        # Guarantee a path to absorption from every transient state.
        target = f"loss{int(rng.integers(absorbing))}"
        transitions.append(Transition(f"s{i}", target, float(rng.uniform(0.05, 1.0))))
    return CTMC(states, transitions, initial_state="s0")


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_expected_times_nonnegative_and_consistent(n, seed):
    """tau >= 0, MTTDL = sum(tau), and absorption probabilities form a
    distribution, for arbitrary random absorbing chains."""
    rng = np.random.default_rng(seed)
    chain = random_absorbing_chain(rng, n, absorbing=1 + int(rng.integers(2)))
    result = chain.absorb()
    assert all(t >= 0 for t in result.expected_times.values())
    assert result.mttdl == pytest.approx(sum(result.expected_times.values()))
    assert sum(result.absorption_probabilities.values()) == pytest.approx(1.0)
    assert all(0 <= p <= 1 for p in result.absorption_probabilities.values())


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_uniformization_matches_expm_property(n, seed):
    rng = np.random.default_rng(seed)
    chain = random_absorbing_chain(rng, n)
    t = float(rng.uniform(0.1, 5.0))
    expm_dist = chain.transient_distribution(t)
    uni_dist = chain.transient_distribution_uniformized(t)
    for state in chain.states:
        assert uni_dist[state] == pytest.approx(expm_dist[state], abs=1e-8)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_sampling_matches_solver_property(seed):
    """Monte-Carlo absorption times agree with the GTH solve on random
    chains (two completely independent computations)."""
    rng = np.random.default_rng(seed)
    chain = random_absorbing_chain(rng, int(rng.integers(1, 5)))
    analytic = chain.mean_time_to_absorption()
    summary = sample_absorption_times(chain, n=600, seed=seed)
    assert summary.contains(analytic, sigmas=4.5)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_reliability_bounded_and_decreasing(n, seed):
    rng = np.random.default_rng(seed)
    chain = random_absorbing_chain(rng, n)
    previous = 1.0
    for t in (0.0, 0.5, 2.0, 8.0):
        r = chain.reliability(t)
        assert 0.0 <= r <= 1.0 + 1e-12
        assert r <= previous + 1e-9
        previous = r


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=7),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_stationary_distribution_property(n, seed):
    """For random irreducible chains: pi Q = 0, pi >= 0, sum pi = 1."""
    rng = np.random.default_rng(seed)
    states = [f"s{i}" for i in range(n)]
    transitions = []
    for i in range(n):
        # A cycle guarantees irreducibility; extra random edges on top.
        transitions.append(
            Transition(states[i], states[(i + 1) % n], float(rng.uniform(0.1, 2.0)))
        )
        for j in range(n):
            if i != j and rng.random() < 0.3:
                transitions.append(
                    Transition(states[i], states[j], float(rng.uniform(0.1, 2.0)))
                )
    chain = CTMC(states, transitions)
    pi = chain.stationary_distribution()
    vec = np.array([pi[s] for s in chain.states])
    assert np.all(vec >= 0)
    assert vec.sum() == pytest.approx(1.0)
    assert np.allclose(vec @ chain.generator_matrix(), 0.0, atol=1e-10)

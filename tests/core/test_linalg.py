"""Tests for the GTH subtraction-free M-matrix solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linalg import gth_fundamental_matrix, gth_solve, gth_solve_batched


def random_absorbing_system(rng, n):
    rates = rng.uniform(0.1, 5.0, size=(n, n))
    np.fill_diagonal(rates, 0.0)
    absorb = rng.uniform(0.1, 2.0, size=n)
    return rates, absorb


class TestAgainstDense:
    def test_matches_numpy_on_well_conditioned(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 3, 5, 8):
            rates, absorb = random_absorbing_system(rng, n)
            r = np.diag(rates.sum(axis=1) + absorb) - rates
            expected = np.linalg.solve(r, np.ones(n))
            got = gth_solve(rates, absorb, np.ones(n))
            assert np.allclose(got, expected, rtol=1e-10)

    def test_fundamental_matrix_is_inverse(self):
        rng = np.random.default_rng(1)
        rates, absorb = random_absorbing_system(rng, 6)
        r = np.diag(rates.sum(axis=1) + absorb) - rates
        n_matrix = gth_fundamental_matrix(rates, absorb)
        assert np.allclose(n_matrix @ r, np.eye(6), atol=1e-9)

    def test_matrix_rhs(self):
        rng = np.random.default_rng(2)
        rates, absorb = random_absorbing_system(rng, 4)
        rhs = rng.uniform(0, 1, size=(4, 3))
        r = np.diag(rates.sum(axis=1) + absorb) - rates
        assert np.allclose(
            gth_solve(rates, absorb, rhs), np.linalg.solve(r, rhs), rtol=1e-10
        )


class TestStiffAccuracy:
    def test_stiff_two_state_exact(self):
        # up <-> degraded -> loss with mu/lambda = 1e12: the closed form is
        # exact, float64 Gaussian elimination would be fine here, but the
        # entries span 13 orders of magnitude.
        lam, mu, kill = 1e-6, 1e6, 1e-3
        rates = np.array([[0.0, lam], [mu, 0.0]])
        absorb = np.array([0.0, kill])
        t = gth_solve(rates, absorb, np.ones(2))
        # Mean time to absorption from 'up': tau_up + tau_degraded.
        expected = (mu + kill) / (lam * kill) + 1.0 / kill
        assert t[0] == pytest.approx(expected, rel=1e-12)

    def test_stiff_birth_death_chain(self):
        # Birth-death chain 0..k with births lam, deaths mu, absorption
        # from state k at rate lam.  MTTDL has the closed form
        # sum_{j=0..k} (mu/lam)^j / lam  ... derived from first-step
        # analysis; verified symbolically for small k.
        lam, mu = 1e-8, 1.0
        k = 4
        n = k + 1
        rates = np.zeros((n, n))
        for i in range(k):
            rates[i, i + 1] = lam
            rates[i + 1, i] = mu
        absorb = np.zeros(n)
        absorb[k] = lam
        t = gth_solve(rates, absorb, np.ones(n))
        # Exact MTTDL from state 0 for this chain:
        # E_i = expected time from state i; E_k = (1 + mu*E_{k-1})/(lam+mu)...
        # Compute by high-precision recursion with Fraction arithmetic.
        from fractions import Fraction

        flam, fmu = Fraction(1, 10**8), Fraction(1)
        # Solve tridiagonal system exactly: (D - A) E = 1.
        import itertools

        a = [[Fraction(0)] * n for _ in range(n)]
        for i in range(k):
            a[i][i + 1] = flam
            a[i + 1][i] = fmu
        d = [sum(row) for row in a]
        d[k] += flam
        m = [[(d[i] if i == j else 0) - a[i][j] for j in range(n)] for i in range(n)]
        rhs = [Fraction(1)] * n
        # Gaussian elimination in exact arithmetic.
        for col in range(n):
            piv = next(r for r in range(col, n) if m[r][col] != 0)
            m[col], m[piv] = m[piv], m[col]
            rhs[col], rhs[piv] = rhs[piv], rhs[col]
            inv = 1 / m[col][col]
            m[col] = [x * inv for x in m[col]]
            rhs[col] *= inv
            for r in range(n):
                if r != col and m[r][col] != 0:
                    f = m[r][col]
                    m[r] = [x - f * y for x, y in zip(m[r], m[col])]
                    rhs[r] -= f * rhs[col]
        exact = float(rhs[0])
        assert t[0] == pytest.approx(exact, rel=1e-12)

    def test_result_nonnegative_even_when_stiff(self):
        rng = np.random.default_rng(3)
        n = 12
        rates = rng.uniform(0, 1, size=(n, n)) * 10.0 ** rng.integers(
            -8, 8, size=(n, n)
        )
        np.fill_diagonal(rates, 0.0)
        absorb = rng.uniform(0, 1, size=n) * 1e-9
        t = gth_solve(rates, absorb, np.ones(n))
        assert np.all(t >= 0)
        assert np.all(np.isfinite(t))


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            gth_solve(np.array([[0.0, -1.0], [1.0, 0.0]]), np.ones(2), np.ones(2))

    def test_negative_absorb_rejected(self):
        with pytest.raises(ValueError):
            gth_solve(np.zeros((2, 2)), np.array([1.0, -1.0]), np.ones(2))

    def test_negative_rhs_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            gth_solve(np.zeros((1, 1)), np.ones(1), np.array([-1.0]))

    def test_nonzero_diagonal_rejected(self):
        with pytest.raises(ValueError, match="diagonal"):
            gth_solve(np.eye(2), np.ones(2), np.ones(2))

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="square"):
            gth_solve(np.zeros((2, 3)), np.ones(2), np.ones(2))

    def test_singular_system_rejected(self):
        # State 1 has no way out at all.
        rates = np.array([[0.0, 1.0], [0.0, 0.0]])
        absorb = np.array([0.0, 0.0])
        with pytest.raises(ValueError, match="singular|absorption"):
            gth_solve(rates, absorb, np.ones(2))

    def test_one_by_one(self):
        t = gth_solve(np.zeros((1, 1)), np.array([4.0]), np.array([1.0]))
        assert t[0] == pytest.approx(0.25)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=7), st.integers(min_value=0, max_value=2**31))
def test_gth_agrees_with_numpy_property(n, seed):
    """Property: on benign random absorbing systems GTH equals LU solves."""
    rng = np.random.default_rng(seed)
    rates = rng.uniform(0.1, 3.0, size=(n, n))
    np.fill_diagonal(rates, 0.0)
    absorb = rng.uniform(0.05, 1.0, size=n)
    r = np.diag(rates.sum(axis=1) + absorb) - rates
    expected = np.linalg.solve(r, np.ones(n))
    got = gth_solve(rates, absorb, np.ones(n))
    assert np.allclose(got, expected, rtol=1e-8)


class TestBatchedSolver:
    def _stack(self, rng, batch, n):
        rates = np.stack(
            [random_absorbing_system(rng, n)[0] for _ in range(batch)]
        )
        absorb = rng.uniform(0.1, 2.0, size=(batch, n))
        return rates, absorb

    def test_bitwise_equal_to_scalar_vector_rhs(self):
        """Each batch slice must reproduce gth_solve exactly — not merely
        approximately — because the sweep engine's correctness contract is
        bitwise identity with the point-by-point path."""
        rng = np.random.default_rng(7)
        for n in (1, 2, 3, 5, 9):
            rates, absorb = self._stack(rng, 16, n)
            rhs = rng.uniform(0.0, 1.0, size=(16, n))
            batched = gth_solve_batched(rates, absorb, rhs)
            for b in range(16):
                scalar = gth_solve(rates[b], absorb[b], rhs[b])
                assert np.array_equal(batched[b], scalar)

    def test_bitwise_equal_to_scalar_matrix_rhs(self):
        rng = np.random.default_rng(8)
        n, batch = 6, 10
        rates, absorb = self._stack(rng, batch, n)
        rhs = np.broadcast_to(np.eye(n), (batch, n, n)).copy()
        batched = gth_solve_batched(rates, absorb, rhs)
        for b in range(batch):
            scalar = gth_solve(rates[b], absorb[b], np.eye(n))
            assert np.array_equal(batched[b], scalar)

    def test_stiff_batches(self):
        """Stiff slices (rates spanning ~12 orders of magnitude) keep the
        bitwise guarantee — the whole point of subtraction-free GTH."""
        rng = np.random.default_rng(9)
        n, batch = 5, 8
        scale = 10.0 ** rng.uniform(-6, 6, size=(batch, n, n))
        rates = rng.uniform(0.1, 5.0, size=(batch, n, n)) * scale
        for b in range(batch):
            np.fill_diagonal(rates[b], 0.0)
        absorb = rng.uniform(0.1, 2.0, size=(batch, n)) * 1e-6
        rhs = np.ones((batch, n))
        batched = gth_solve_batched(rates, absorb, rhs)
        for b in range(batch):
            assert np.array_equal(
                batched[b], gth_solve(rates[b], absorb[b], rhs[b])
            )

    def test_singular_member_reported_with_batch_index(self):
        rates = np.zeros((2, 2, 2))
        rates[:, 0, 1] = 1.0
        absorb = np.zeros((2, 2))
        absorb[0, 1] = 1.0  # member 0 fine, member 1 singular
        with pytest.raises(ValueError, match="batch member 1"):
            gth_solve_batched(rates, absorb, np.ones((2, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            gth_solve_batched(np.zeros((2, 2)), np.ones((2, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError):
            gth_solve_batched(
                np.zeros((2, 3, 2)), np.ones((2, 3)), np.ones((2, 3))
            )

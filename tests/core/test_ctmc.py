"""Tests for the absorbing-CTMC engine."""

import math

import numpy as np
import pytest

from repro.core import CTMC, CTMCError, ChainBuilder, NotAbsorbingError, Transition


def two_state_chain(lam=2.0, mu=50.0, kill=1.0) -> CTMC:
    """0 <-> 1 -> loss; a textbook case with a hand-derivable MTTDL."""
    return CTMC(
        ["up", "degraded", "loss"],
        [
            Transition("up", "degraded", lam),
            Transition("degraded", "up", mu),
            Transition("degraded", "loss", kill),
        ],
        initial_state="up",
    )


def two_state_mttdl(lam, mu, kill) -> float:
    # tau_up * lam = tau_deg * (mu + kill) balance; absorbing flow = 1.
    # Solve R^T tau = e0 by hand:
    #   lam * tau_up - mu * tau_deg = 1
    #   -lam * tau_up + (mu + kill) * tau_deg = 0
    tau_deg = 1.0 / kill
    tau_up = (mu + kill) / (lam * kill)
    return tau_up + tau_deg


class TestConstruction:
    def test_duplicate_states_rejected(self):
        with pytest.raises(CTMCError, match="duplicate"):
            CTMC(["a", "a"], [])

    def test_empty_chain_rejected(self):
        with pytest.raises(CTMCError, match="at least one state"):
            CTMC([], [])

    def test_unknown_initial_state(self):
        with pytest.raises(CTMCError, match="initial state"):
            CTMC(["a"], [], initial_state="b")

    def test_unknown_transition_source(self):
        with pytest.raises(CTMCError, match="unknown source"):
            CTMC(["a", "b"], [Transition("c", "a", 1.0)])

    def test_unknown_transition_target(self):
        with pytest.raises(CTMCError, match="unknown target"):
            CTMC(["a", "b"], [Transition("a", "c", 1.0)])

    def test_self_loop_rejected(self):
        with pytest.raises(CTMCError, match="self-loop"):
            Transition("a", "a", 1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(CTMCError, match="rate"):
            Transition("a", "b", -1.0)

    def test_zero_rate_rejected(self):
        """Regression: a zero-rate transition is a structural no-op that
        silently distorted memoized topologies; it must be rejected at
        construction (ChainBuilder.add_rate drops zero rates instead)."""
        with pytest.raises(CTMCError, match="rate"):
            Transition("a", "b", 0.0)

    def test_infinite_rate_rejected(self):
        with pytest.raises(CTMCError, match="rate"):
            Transition("a", "b", float("inf"))

    def test_nan_rate_rejected(self):
        with pytest.raises(CTMCError, match="rate"):
            Transition("a", "b", float("nan"))

    def test_parallel_transitions_sum(self):
        chain = CTMC(
            ["a", "b"],
            [Transition("a", "b", 1.0), Transition("a", "b", 2.5)],
        )
        assert chain.rate("a", "b") == pytest.approx(3.5)

    def test_default_initial_state_is_first(self):
        chain = CTMC(["x", "y"], [Transition("x", "y", 1.0)])
        assert chain.initial_state == "x"


class TestStructure:
    def test_generator_rows_sum_to_zero(self):
        chain = two_state_chain()
        q = chain.generator_matrix()
        assert np.allclose(q.sum(axis=1), 0.0)

    def test_generator_is_readonly_copy(self):
        chain = two_state_chain()
        q = chain.generator_matrix()
        q[0, 0] = 99.0
        assert chain.generator_matrix()[0, 0] != 99.0

    def test_absorbing_and_transient_partition(self):
        chain = two_state_chain()
        assert chain.absorbing_states() == ("loss",)
        assert set(chain.transient_states()) == {"up", "degraded"}

    def test_exit_rate(self):
        chain = two_state_chain(lam=2.0, mu=50.0, kill=1.0)
        assert chain.exit_rate("up") == pytest.approx(2.0)
        assert chain.exit_rate("degraded") == pytest.approx(51.0)
        assert chain.exit_rate("loss") == 0.0

    def test_successors(self):
        chain = two_state_chain(lam=2.0, mu=50.0, kill=1.0)
        assert chain.successors("degraded") == {"up": 50.0, "loss": 1.0}
        assert chain.successors("loss") == {}

    def test_rate_of_absent_edge_is_zero(self):
        chain = two_state_chain()
        assert chain.rate("up", "loss") == 0.0

    def test_rate_diagonal_rejected(self):
        chain = two_state_chain()
        with pytest.raises(CTMCError):
            chain.rate("up", "up")

    def test_index_of_unknown_state(self):
        chain = two_state_chain()
        with pytest.raises(CTMCError, match="unknown state"):
            chain.index_of("nope")

    def test_validate_passes(self):
        two_state_chain().validate()


class TestAbsorption:
    def test_mttdl_matches_hand_derivation(self):
        lam, mu, kill = 2.0, 50.0, 1.0
        chain = two_state_chain(lam, mu, kill)
        assert chain.mean_time_to_absorption() == pytest.approx(
            two_state_mttdl(lam, mu, kill), rel=1e-12
        )

    def test_expected_times_match_hand_derivation(self):
        lam, mu, kill = 3.0, 40.0, 2.0
        chain = two_state_chain(lam, mu, kill)
        result = chain.absorb()
        assert result.expected_times["degraded"] == pytest.approx(1.0 / kill)
        assert result.expected_times["up"] == pytest.approx(
            (mu + kill) / (lam * kill)
        )

    def test_absorption_probabilities_sum_to_one(self):
        chain = CTMC(
            ["a", "b", "l1", "l2"],
            [
                Transition("a", "b", 1.0),
                Transition("b", "a", 5.0),
                Transition("a", "l1", 0.5),
                Transition("b", "l2", 2.0),
            ],
        )
        probs = chain.absorb().absorption_probabilities
        assert sum(probs.values()) == pytest.approx(1.0)
        assert set(probs) == {"l1", "l2"}
        assert all(p > 0 for p in probs.values())

    def test_absorption_probability_ratio(self):
        # From 'a': race between l1 (rate 1) and the path via b.
        chain = CTMC(
            ["a", "l1", "l2"],
            [Transition("a", "l1", 1.0), Transition("a", "l2", 3.0)],
        )
        probs = chain.absorb().absorption_probabilities
        assert probs["l1"] == pytest.approx(0.25)
        assert probs["l2"] == pytest.approx(0.75)

    def test_initial_state_absorbing(self):
        chain = CTMC(["a", "b"], [Transition("b", "a", 1.0)], initial_state="a")
        result = chain.absorb()
        assert result.mttdl == 0.0
        assert result.absorption_probabilities["a"] == 1.0

    def test_no_absorbing_state_raises(self):
        chain = CTMC(
            ["a", "b"],
            [Transition("a", "b", 1.0), Transition("b", "a", 1.0)],
        )
        with pytest.raises(NotAbsorbingError):
            chain.mean_time_to_absorption()

    def test_unreachable_absorption_raises(self):
        # 'a' and 'b' cycle forever; 'c' -> loss exists but is unreachable
        # and, worse, 'a' can never be absorbed.
        chain = CTMC(
            ["a", "b", "c", "loss"],
            [
                Transition("a", "b", 1.0),
                Transition("b", "a", 1.0),
                Transition("c", "loss", 1.0),
            ],
            initial_state="a",
        )
        with pytest.raises(NotAbsorbingError):
            chain.mean_time_to_absorption()

    def test_expected_visits(self):
        lam, mu, kill = 2.0, 50.0, 1.0
        chain = two_state_chain(lam, mu, kill)
        visits = chain.expected_visits()
        # Visits to 'degraded' are geometric with success prob kill/(mu+kill).
        assert visits["degraded"] == pytest.approx((mu + kill) / kill)

    def test_stacked_absorption_system_matches_per_chain(self):
        chains = [
            two_state_chain(2.0 * k, 50.0 * k, 1.0 + k) for k in (1, 2, 3)
        ]
        off, rates, to_abs = CTMC.stacked_absorption_system(chains)
        for i, chain in enumerate(chains):
            o, r, t = chain.absorption_system()
            assert np.array_equal(off[i], o)
            assert np.array_equal(rates[i], r)
            assert np.array_equal(to_abs[i], t)

    def test_mttdl_scales_inversely_with_rates(self):
        fast = two_state_chain(2.0, 50.0, 1.0)
        slow = two_state_chain(0.2, 5.0, 0.1)
        assert slow.mean_time_to_absorption() == pytest.approx(
            10 * fast.mean_time_to_absorption()
        )


class TestTransient:
    def test_distribution_sums_to_one(self):
        chain = two_state_chain()
        dist = chain.transient_distribution(0.7)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_distribution_at_zero(self):
        chain = two_state_chain()
        dist = chain.transient_distribution(0.0)
        assert dist["up"] == pytest.approx(1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(CTMCError):
            two_state_chain().transient_distribution(-1.0)

    def test_reliability_decreases(self):
        chain = two_state_chain()
        r = chain.survival_curve([0.0, 1.0, 5.0, 20.0])
        assert r[0] == pytest.approx(1.0)
        assert all(a >= b - 1e-12 for a, b in zip(r, r[1:]))

    def test_reliability_matches_exponential_for_pure_death(self):
        chain = CTMC(["up", "down"], [Transition("up", "down", 0.3)])
        for t in (0.5, 1.0, 4.0):
            assert chain.reliability(t) == pytest.approx(math.exp(-0.3 * t), rel=1e-9)

    def test_uniformization_matches_expm(self):
        chain = two_state_chain()
        for t in (0.1, 1.0, 3.0):
            expm_dist = chain.transient_distribution(t)
            uni_dist = chain.transient_distribution_uniformized(t)
            for state in chain.states:
                assert uni_dist[state] == pytest.approx(expm_dist[state], abs=1e-9)

    def test_uniformized_dtmc_is_stochastic(self):
        chain = two_state_chain()
        p, lam = chain.uniformized_dtmc()
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.all(p >= 0)
        assert lam >= max(chain.exit_rate(s) for s in chain.states)

    def test_uniformization_rate_too_small_rejected(self):
        chain = two_state_chain()
        with pytest.raises(CTMCError):
            chain.uniformized_dtmc(rate=0.001)

    def test_mean_absorption_consistent_with_survival_integral(self):
        # MTTDL = integral of R(t) dt; check numerically on a mild chain.
        chain = two_state_chain(lam=1.0, mu=2.0, kill=1.0)
        mttdl = chain.mean_time_to_absorption()
        ts = np.linspace(0, 80, 4001)
        rs = chain.survival_curve(list(ts))
        integral = np.trapezoid(rs, ts)
        assert integral == pytest.approx(mttdl, rel=1e-3)

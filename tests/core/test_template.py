"""Chain-structure memoization: bitwise fidelity and topology safety."""

import numpy as np
import pytest

from repro.core import ChainBuilder, ChainStructureMemo, ChainTemplate


def _toy_builder(scale=1.0):
    b = ChainBuilder()
    b.add_rate("up", "degraded", 2.0 * scale)
    b.add_rate("degraded", "up", 100.0 * scale)
    b.add_rate("degraded", "lost", 0.5 * scale)
    return b


def _split_builder(h=0.5, scale=1.0):
    """A toy chain with an h-weighted loss edge that vanishes at h = 0
    (the builder drops zero rates), changing the topology."""
    b = ChainBuilder()
    b.add_rate("up", "degraded", 2.0 * scale * (1.0 - h))
    b.add_rate("up", "lost", 2.0 * scale * h)
    b.add_rate("degraded", "up", 100.0 * scale)
    b.add_rate("degraded", "lost", 1.5 * scale)
    return b


class TestChainTemplate:
    def test_bind_reproduces_builder_chain(self):
        builder = _toy_builder()
        template = ChainTemplate.from_builder(builder, "up")
        direct = builder.build("up")
        bound = template.bind(builder.edge_rates())
        assert bound.states == direct.states
        assert np.array_equal(bound.generator_matrix(), direct.generator_matrix())

    def test_rebinding_new_rates(self):
        template = ChainTemplate.from_builder(_toy_builder(), "up")
        fresh = _toy_builder(scale=3.0)
        bound = template.bind(fresh.edge_rates())
        direct = fresh.build("up")
        assert np.array_equal(bound.generator_matrix(), direct.generator_matrix())
        assert (
            bound.mean_time_to_absorption() == direct.mean_time_to_absorption()
        )

    def test_matches_detects_topology_change(self):
        builder = _toy_builder()
        template = ChainTemplate.from_builder(builder, "up")
        assert template.matches(builder, "up")
        other = _toy_builder()
        other.add_rate("up", "lost", 1e-3)  # extra edge
        assert not template.matches(other, "up")
        assert not template.matches(builder, "degraded")


class TestChainStructureMemo:
    def test_hit_is_bitwise_identical(self):
        memo = ChainStructureMemo()
        cold = _toy_builder().build("up")
        warm1 = memo.build("toy", _toy_builder(), "up")
        warm2 = memo.build("toy", _toy_builder(), "up")
        assert memo.misses == 1
        assert memo.hits == 1
        for chain in (warm1, warm2):
            assert chain.states == cold.states
            assert np.array_equal(
                chain.generator_matrix(), cold.generator_matrix()
            )
            assert (
                chain.mean_time_to_absorption()
                == cold.mean_time_to_absorption()
            )

    def test_topology_change_under_same_key_is_safe(self):
        """h = 0 drops the weighted loss edge, changing the topology.
        Reusing the same memo key must transparently rebuild the template
        rather than binding the wrong structure."""
        memo = ChainStructureMemo()
        first = memo.build("k", _split_builder(h=0.5), "up")
        with pytest.warns(RuntimeWarning, match="rebuilt its topology"):
            second = memo.build("k", _split_builder(h=0.0), "up")
        assert np.array_equal(
            second.generator_matrix(),
            _split_builder(h=0.0).build("up").generator_matrix(),
        )
        # And back again: the template re-adapts (warned once already).
        third = memo.build("k", _split_builder(h=0.5), "up")
        assert np.array_equal(
            third.generator_matrix(), first.generator_matrix()
        )

    def test_structure_rebuilds_counted_separately(self):
        memo = ChainStructureMemo()
        memo.build("k", _split_builder(h=0.5), "up")
        assert (memo.hits, memo.misses, memo.structure_rebuilds) == (0, 1, 0)
        with pytest.warns(RuntimeWarning):
            memo.build("k", _split_builder(h=0.0), "up")
        assert memo.structure_rebuilds == 1
        memo.build("k", _split_builder(h=0.0, scale=2.0), "up")
        assert (memo.hits, memo.structure_rebuilds) == (1, 1)

    def test_rebuild_warns_only_once_per_key(self):
        memo = ChainStructureMemo()
        memo.build("k", _split_builder(h=0.5), "up")
        with pytest.warns(RuntimeWarning, match="rebuilt its topology"):
            memo.build("k", _split_builder(h=0.0), "up")
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            memo.build("k", _split_builder(h=0.5), "up")  # rebuild, no warn
        assert memo.structure_rebuilds == 2

    def test_distinct_keys_are_independent(self):
        memo = ChainStructureMemo()
        memo.build("toy", _toy_builder(), "up")
        memo.build("split", _split_builder(), "up")
        assert len(memo) == 2
        assert memo.misses == 2
        # Re-hitting one key never disturbs the other's template.
        memo.build("toy", _toy_builder(), "up")
        memo.build("split", _split_builder(), "up")
        assert memo.hits == 2 and memo.structure_rebuilds == 0

    def test_clear(self):
        memo = ChainStructureMemo()
        memo.build("k", _toy_builder(), "up")
        memo.clear()
        assert len(memo) == 0
        assert (memo.hits, memo.misses, memo.structure_rebuilds) == (0, 0, 0)

    def test_bound_chains_are_independent(self):
        """Each bind() call assembles a fresh Q; solving one bound chain
        must not disturb another."""
        template = ChainTemplate.from_builder(_toy_builder(), "up")
        first = template.bind(_toy_builder().edge_rates())
        second = template.bind(_toy_builder(scale=2.0).edge_rates())
        q_before = first.generator_matrix()
        second.mean_time_to_absorption()
        assert np.array_equal(first.generator_matrix(), q_before)

"""Chain-structure memoization: bitwise fidelity and topology safety."""

import numpy as np

from repro.core import ChainBuilder, ChainStructureMemo, ChainTemplate
from repro.models import NoRaidNodeModel, Parameters


def _toy_builder(scale=1.0):
    b = ChainBuilder()
    b.add_rate("up", "degraded", 2.0 * scale)
    b.add_rate("degraded", "up", 100.0 * scale)
    b.add_rate("degraded", "lost", 0.5 * scale)
    return b


class TestChainTemplate:
    def test_bind_reproduces_builder_chain(self):
        builder = _toy_builder()
        template = ChainTemplate.from_builder(builder, "up")
        direct = builder.build("up")
        bound = template.bind(builder.edge_rates())
        assert bound.states == direct.states
        assert np.array_equal(bound.generator_matrix(), direct.generator_matrix())

    def test_rebinding_new_rates(self):
        template = ChainTemplate.from_builder(_toy_builder(), "up")
        fresh = _toy_builder(scale=3.0)
        bound = template.bind(fresh.edge_rates())
        direct = fresh.build("up")
        assert np.array_equal(bound.generator_matrix(), direct.generator_matrix())
        assert (
            bound.mean_time_to_absorption() == direct.mean_time_to_absorption()
        )

    def test_matches_detects_topology_change(self):
        builder = _toy_builder()
        template = ChainTemplate.from_builder(builder, "up")
        assert template.matches(builder, "up")
        other = _toy_builder()
        other.add_rate("up", "lost", 1e-3)  # extra edge
        assert not template.matches(other, "up")
        assert not template.matches(builder, "degraded")


class TestChainStructureMemo:
    def test_hit_is_bitwise_identical(self, baseline):
        memo = ChainStructureMemo()
        model = NoRaidNodeModel(baseline, 2)
        cold = model.chain()
        warm1 = model.chain(memo=memo, memo_key="ft2")
        warm2 = model.chain(memo=memo, memo_key="ft2")
        assert memo.misses == 1
        assert memo.hits == 1
        for chain in (warm1, warm2):
            assert chain.states == cold.states
            assert np.array_equal(
                chain.generator_matrix(), cold.generator_matrix()
            )
            assert (
                chain.mean_time_to_absorption()
                == cold.mean_time_to_absorption()
            )

    def test_topology_change_under_same_key_is_safe(self, baseline):
        """h = 0 drops hard-error edges, changing the chain's topology.
        Reusing the same memo key must transparently rebuild the template
        rather than binding the wrong structure."""
        memo = ChainStructureMemo()
        model = NoRaidNodeModel(baseline, 2)
        no_errors = NoRaidNodeModel(
            baseline.replace(hard_error_rate_per_bit=0.0), 2
        )
        first = model.chain(memo=memo, memo_key="k")
        second = no_errors.chain(memo=memo, memo_key="k")
        assert np.array_equal(
            second.generator_matrix(), no_errors.chain().generator_matrix()
        )
        # And back again: the template re-adapts.
        third = model.chain(memo=memo, memo_key="k")
        assert np.array_equal(
            third.generator_matrix(), first.generator_matrix()
        )

    def test_distinct_keys_are_independent(self, baseline):
        memo = ChainStructureMemo()
        ft2 = NoRaidNodeModel(baseline, 2).chain(memo=memo, memo_key="ft2")
        ft3 = NoRaidNodeModel(baseline, 3).chain(memo=memo, memo_key="ft3")
        assert ft2.num_states != ft3.num_states
        assert len(memo) == 2

    def test_clear(self, baseline):
        memo = ChainStructureMemo()
        NoRaidNodeModel(baseline, 2).chain(memo=memo, memo_key="k")
        memo.clear()
        assert len(memo) == 0

    def test_bound_chains_are_independent(self):
        """Each bind() call assembles a fresh Q; solving one bound chain
        must not disturb another."""
        template = ChainTemplate.from_builder(_toy_builder(), "up")
        first = template.bind(_toy_builder().edge_rates())
        second = template.bind(_toy_builder(scale=2.0).edge_rates())
        q_before = first.generator_matrix()
        second.mean_time_to_absorption()
        assert np.array_equal(first.generator_matrix(), q_before)

"""Tests for the chain builder DSL."""

import pytest

from repro.core import CTMCError, ChainBuilder


class TestBasics:
    def test_add_state_idempotent(self):
        b = ChainBuilder().add_state("a").add_state("a")
        assert b.states == ("a",)

    def test_add_states_order_preserved(self):
        b = ChainBuilder().add_states("c", "a", "b")
        assert b.states == ("c", "a", "b")

    def test_add_rate_registers_states(self):
        b = ChainBuilder().add_rate("x", "y", 1.0)
        assert b.has_state("x") and b.has_state("y")

    def test_rates_accumulate(self):
        b = ChainBuilder()
        b.add_rate("a", "b", 1.0)
        b.add_rate("a", "b", 2.0)
        assert b.rate("a", "b") == pytest.approx(3.0)
        assert b.num_transitions == 1

    def test_zero_rate_dropped(self):
        b = ChainBuilder().add_rate("a", "b", 0.0)
        assert b.num_transitions == 0
        assert b.has_state("a") and b.has_state("b")

    def test_negative_rate_rejected(self):
        with pytest.raises(CTMCError):
            ChainBuilder().add_rate("a", "b", -0.1)

    def test_self_loop_rejected(self):
        with pytest.raises(CTMCError):
            ChainBuilder().add_rate("a", "a", 1.0)

    def test_build_produces_working_chain(self):
        b = ChainBuilder()
        b.add_rate("up", "down", 2.0)
        b.add_rate("down", "up", 10.0)
        b.add_rate("down", "dead", 1.0)
        chain = b.build(initial_state="up")
        assert chain.initial_state == "up"
        assert chain.mean_time_to_absorption() > 0

    def test_build_default_initial_is_first_state(self):
        b = ChainBuilder().add_rate("s0", "s1", 1.0)
        assert b.build().initial_state == "s0"


class TestStructuralOps:
    def test_relabel_renames(self):
        b = ChainBuilder().add_rate("a", "b", 2.0)
        renamed = b.relabel(lambda s: s.upper())
        assert renamed.states == ("A", "B")
        assert renamed.rate("A", "B") == pytest.approx(2.0)

    def test_relabel_merges_states(self):
        # Two absorbing states merged into one, as in the appendix
        # construction.
        b = ChainBuilder()
        b.add_rate("a", "loss1", 1.0)
        b.add_rate("a", "loss2", 2.0)
        merged = b.relabel(lambda s: "loss" if s.startswith("loss") else s)
        assert merged.rate("a", "loss") == pytest.approx(3.0)
        assert set(merged.states) == {"a", "loss"}

    def test_relabel_rejects_created_self_loop(self):
        b = ChainBuilder().add_rate("a", "b", 1.0)
        with pytest.raises(CTMCError, match="self-loop"):
            b.relabel(lambda s: "same")

    def test_merge_from_combines(self):
        left = ChainBuilder().add_rate("a", "b", 1.0)
        right = ChainBuilder().add_rate("b", "c", 2.0).add_rate("a", "b", 0.5)
        left.merge_from(right)
        assert left.rate("a", "b") == pytest.approx(1.5)
        assert left.rate("b", "c") == pytest.approx(2.0)
        assert left.states == ("a", "b", "c")

    def test_relabel_leaves_original_untouched(self):
        b = ChainBuilder().add_rate("a", "b", 1.0)
        b.relabel(lambda s: s + "!")
        assert b.states == ("a", "b")

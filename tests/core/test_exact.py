"""Tests for the exact rational-arithmetic solver (ground truth for GTH)."""

from fractions import Fraction

import pytest

from repro.core import (
    CTMC,
    NotAbsorbingError,
    Transition,
    exact_expected_times,
    exact_mttdl,
)
from repro.models import NoRaidNodeModel, Parameters, Raid5Model


class TestExactSolve:
    def test_two_state_closed_form(self):
        lam, mu, kill = Fraction(2), Fraction(50), Fraction(1)
        chain = CTMC(
            ["up", "deg", "loss"],
            [
                Transition("up", "deg", float(lam)),
                Transition("deg", "up", float(mu)),
                Transition("deg", "loss", float(kill)),
            ],
        )
        result = exact_mttdl(chain)
        expected = (mu + kill) / (lam * kill) + 1 / kill
        assert result == expected  # exact equality, not approx

    def test_expected_times_exact(self):
        chain = CTMC(
            ["a", "b", "loss"],
            [
                Transition("a", "b", 4.0),
                Transition("b", "a", 8.0),
                Transition("b", "loss", 2.0),
            ],
        )
        times = exact_expected_times(chain)
        assert times["b"] == Fraction(1, 2)
        assert times["a"] == Fraction(10, 8)

    def test_gth_matches_exact_on_paper_chain(self, baseline):
        """GTH vs rational arithmetic on the Figure 9 chain: agreement to
        near machine precision despite 10 orders of rate spread."""
        chain = NoRaidNodeModel(baseline, 2).chain()
        exact = float(exact_mttdl(chain))
        numeric = chain.mean_time_to_absorption()
        assert numeric == pytest.approx(exact, rel=1e-12)

    def test_gth_matches_exact_on_stiff_raid5(self, baseline):
        chain = Raid5Model(baseline).chain()
        exact = float(exact_mttdl(chain))
        assert chain.mean_time_to_absorption() == pytest.approx(exact, rel=1e-12)

    def test_absorbing_initial_state(self):
        chain = CTMC(["a", "b"], [Transition("b", "a", 1.0)], initial_state="a")
        assert exact_expected_times(chain) == {}
        assert exact_mttdl(chain) == 0

    def test_no_absorbing_rejected(self):
        chain = CTMC(
            ["a", "b"],
            [Transition("a", "b", 1.0), Transition("b", "a", 1.0)],
        )
        with pytest.raises(NotAbsorbingError):
            exact_mttdl(chain)

    def test_unreachable_absorption_rejected(self):
        chain = CTMC(
            ["a", "b", "c", "loss"],
            [
                Transition("a", "b", 1.0),
                Transition("b", "a", 1.0),
                Transition("c", "loss", 1.0),
            ],
            initial_state="a",
        )
        with pytest.raises(NotAbsorbingError):
            exact_mttdl(chain)

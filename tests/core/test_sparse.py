"""Tests for the scipy-free sparse CTMC layer (CSR, builders, kernels)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CTMC, CTMCError, Transition, build_indirect
from repro.core.sparse import (
    DENSE_MATERIALIZE_LIMIT,
    CsrMatrix,
    SparseChain,
    power_stationary,
    sparse_gth_factorize,
    uniformized_mttdl,
)

pytestmark = pytest.mark.solvers


def birth_death_kill(n, lam=0.3, mu=2.0, kill=0.05):
    """A birth-death chain with killing: states 0..n plus "loss"."""

    def transitions(k):
        if k == "loss":
            return {}
        out = {}
        if k < n:
            out[k + 1] = (n - k) * lam
        if k > 0:
            out[k - 1] = k * mu
            out["loss"] = k * kill
        return out

    return build_indirect(0, transitions)


class TestCsrMatrix:
    def test_from_coo_sums_duplicates(self):
        m = CsrMatrix.from_coo([0, 0, 1], [1, 1, 0], [2.0, 3.0, 1.0], (2, 2))
        assert m.nnz == 2
        assert m.to_dense().tolist() == [[0.0, 5.0], [1.0, 0.0]]

    def test_matvec_vecmat_match_dense(self):
        rng = np.random.default_rng(7)
        dense = rng.uniform(size=(5, 5)) * (rng.uniform(size=(5, 5)) > 0.5)
        rows, cols = np.nonzero(dense)
        m = CsrMatrix.from_coo(rows, cols, dense[rows, cols], (5, 5))
        x = rng.uniform(size=5)
        np.testing.assert_allclose(m.matvec(x), dense @ x, rtol=1e-14)
        np.testing.assert_allclose(m.vecmat(x), x @ dense, rtol=1e-14)

    def test_row_sums(self):
        m = CsrMatrix.from_coo([0, 0, 2], [1, 2, 0], [1.0, 2.0, 4.0], (3, 3))
        assert m.row_sums().tolist() == [3.0, 0.0, 4.0]


class TestSparseChainRoundTrip:
    def test_from_ctmc_to_ctmc_round_trip(self):
        chain = CTMC(
            ["up", "degraded", "down"],
            [
                Transition("up", "degraded", 1.5),
                Transition("degraded", "up", 10.0),
                Transition("degraded", "down", 0.1),
            ],
            initial_state="up",
        )
        sparse = SparseChain.from_ctmc(chain)
        back = sparse.to_ctmc()
        assert back.states == chain.states
        assert back.initial_state == chain.initial_state
        assert np.array_equal(
            back.generator_matrix(), chain.generator_matrix()
        )

    def test_to_ctmc_refuses_past_dense_limit(self):
        chain = birth_death_kill(3)
        with pytest.raises(CTMCError, match="dense"):
            chain.to_ctmc(dense_limit=2)
        assert DENSE_MATERIALIZE_LIMIT == 8192

    def test_absorbing_mask_and_exit_rates(self):
        chain = birth_death_kill(3)
        mask = chain.absorbing_mask()
        assert mask.sum() == 1
        assert chain.label(int(np.flatnonzero(mask)[0])) == "loss"


class TestIndirectBuilder:
    def test_cyclic_transition_function_terminates(self):
        # A ring: every state's successor eventually loops back to 0.
        ring = build_indirect(0, lambda k: {(k + 1) % 5: 1.0})
        assert ring.num_states == 5
        assert ring.states == (0, 1, 2, 3, 4)

    def test_deduplicates_states_reached_twice(self):
        # Diamond: 0 -> 1, 0 -> 2, both -> 3.  State 3 appears once.
        def transitions(k):
            if k == 0:
                return [(1, 1.0), (2, 1.0)]
            if k in (1, 2):
                return [(3, 1.0)]
            return []

        chain = build_indirect(0, transitions)
        assert chain.num_states == 4
        assert len(set(chain.states)) == 4

    def test_pair_iterable_and_mapping_agree(self):
        as_map = build_indirect(0, lambda k: {1: 2.0} if k == 0 else {})
        as_pairs = build_indirect(0, lambda k: [(1, 2.0)] if k == 0 else [])
        assert as_map.states == as_pairs.states
        assert as_map.nnz == as_pairs.nnz

    def test_parallel_edges_sum(self):
        chain = build_indirect(
            0, lambda k: [(1, 2.0), (1, 3.0)] if k == 0 else []
        )
        assert chain.rates.to_dense()[0, 1] == 5.0

    def test_parallel_edges_sum_not_last_write_wins(self):
        # Regression: duplicate (state, rate) pairs model *competing*
        # processes and must add — asymmetric rates would expose any
        # first-/last-write-wins regression immediately.
        chain = build_indirect(
            0, lambda k: [(1, 0.25), (1, 0.5)] if k == 0 else []
        )
        assert chain.rates.to_dense()[0, 1] == 0.75
        reversed_chain = build_indirect(
            0, lambda k: [(1, 0.5), (1, 0.25)] if k == 0 else []
        )
        assert reversed_chain.rates.to_dense()[0, 1] == 0.75

    def test_parallel_edges_three_way_sum_deterministic(self):
        # Three-plus duplicates sum through a deterministic pairwise
        # reduction: bit-identical across rebuilds, within one ulp of
        # the sequential sum, but not necessarily *equal* to it — which
        # is exactly why bitwise-differential callers pre-merge.
        def fn(k):
            return [(1, 0.1), (1, 0.2), (1, 0.3)] if k == 0 else []

        first = build_indirect(0, fn).rates.to_dense()[0, 1]
        second = build_indirect(0, fn).rates.to_dense()[0, 1]
        assert first == second
        assert first == pytest.approx((0.1 + 0.2) + 0.3, rel=1e-15)

    def test_parallel_edges_solve_matches_premerged(self):
        # Duplicates must be *semantically* invisible: the chain built
        # from split parallel edges solves to the same MTTDL as one
        # built from the pre-merged rates.
        def split(k):
            return [(1, 0.5), (1, 1.5), (2, 0.25)] if k == 0 else (
                [(0, 2.0)] if k == 1 else []
            )

        def merged(k):
            return [(1, 2.0), (2, 0.25)] if k == 0 else (
                [(0, 2.0)] if k == 1 else []
            )

        a = build_indirect(0, split).to_ctmc().mean_time_to_absorption()
        b = build_indirect(0, merged).to_ctmc().mean_time_to_absorption()
        assert a == pytest.approx(b, rel=1e-12)

    def test_max_states_cap(self):
        with pytest.raises(CTMCError, match="max_states"):
            build_indirect(0, lambda k: {k + 1: 1.0}, max_states=10)

    def test_negative_rate_rejected(self):
        with pytest.raises(CTMCError, match="finite"):
            build_indirect(0, lambda k: {1: -1.0} if k == 0 else {})

    def test_self_loop_rejected(self):
        with pytest.raises(CTMCError, match="self-loop"):
            build_indirect(0, lambda k: {0: 1.0})

    def test_zero_rates_dropped(self):
        chain = build_indirect(
            0, lambda k: [(1, 1.0), (2, 0.0)] if k == 0 else []
        )
        assert chain.num_states == 2  # state 2 never discovered


class TestSparseGth:
    def test_matches_dense_mttdl(self):
        chain = birth_death_kill(40)
        sparse_mttdl = _sparse_mttdl(chain)
        dense_mttdl = chain.to_ctmc().mean_time_to_absorption()
        assert math.isclose(sparse_mttdl, dense_mttdl, rel_tol=1e-12)

    def test_factors_support_resolve(self):
        chain = birth_death_kill(10)
        a, b, _, init_pos = chain.transient_system()
        factors = sparse_gth_factorize(a, b)
        x1 = factors.solve([1.0] * a.shape[0])
        x2 = factors.solve([2.0] * a.shape[0])
        np.testing.assert_allclose(np.asarray(x2), 2.0 * np.asarray(x1), rtol=1e-12)


def _sparse_mttdl(chain):
    a, b, _, init_pos = chain.transient_system()
    factors = sparse_gth_factorize(a, b)
    x = factors.solve([1.0] * a.shape[0])
    return float(x[init_pos])


class TestIterativeKernels:
    def test_power_stationary_matches_dense(self):
        chain = CTMC(
            ["a", "b", "c"],
            [
                Transition("a", "b", 1.0),
                Transition("b", "c", 2.0),
                Transition("c", "a", 3.0),
                Transition("b", "a", 0.5),
            ],
            initial_state="a",
        )
        dense = chain.stationary_distribution()
        sparse = SparseChain.from_ctmc(chain)
        pi, iterations, change, converged = power_stationary(sparse)
        assert converged and iterations > 0
        for i, s in enumerate(sparse.states):
            assert math.isclose(pi[i], dense[s], rel_tol=1e-8, abs_tol=1e-12)

    def test_power_stationary_rejects_absorbing(self):
        chain = birth_death_kill(3)
        with pytest.raises(CTMCError, match="absorbing"):
            power_stationary(chain)

    def test_uniformized_mttdl_non_stiff(self):
        chain = birth_death_kill(8, lam=0.5, mu=1.0, kill=0.8)
        a, b, _, init_pos = chain.transient_system()
        mttdl, iterations, tail, converged = uniformized_mttdl(
            a, b, init_pos, tolerance=1e-10
        )
        assert converged
        dense = chain.to_ctmc().mean_time_to_absorption()
        assert math.isclose(mttdl, dense, rel_tol=1e-8)


@st.composite
def random_absorbing_ctmcs(draw):
    """Small random CTMCs with at least one absorbing state reachable."""
    n = draw(st.integers(min_value=2, max_value=6))
    states = [f"s{i}" for i in range(n)] + ["dead"]
    rate = st.floats(
        min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
    )
    transitions = []
    for i in range(n):
        # A forward edge keeps every transient state connected to
        # absorption; extra random edges add structure (and stiffness).
        nxt = states[i + 1]
        transitions.append((states[i], nxt, draw(rate)))
        for j in range(n + 1):
            if j != i and draw(st.booleans()):
                transitions.append((states[i], states[j], draw(rate)))
    return CTMC(
        states,
        [Transition(s, t, r) for s, t, r in transitions],
        initial_state="s0",
    )


class TestSparseDenseProperty:
    @settings(max_examples=60, deadline=None)
    @given(random_absorbing_ctmcs())
    def test_sparse_gth_agrees_with_dense(self, chain):
        dense = chain.mean_time_to_absorption()
        sparse = _sparse_mttdl(SparseChain.from_ctmc(chain))
        assert math.isclose(sparse, dense, rel_tol=1e-9), (sparse, dense)

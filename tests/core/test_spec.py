"""Unit tests for the declarative spec IR (compile--bind--solve front end)."""

import numpy as np
import pytest

from repro.core import ChainBuilder
from repro.core.spec import (
    CompiledSpecCache,
    ModelSpec,
    RateExpr,
    SpecBuilder,
    SpecError,
    const,
    param,
    rate_min,
)


def _toy_spec():
    b = SpecBuilder()
    lam, mu, h = param("lam"), param("mu"), param("h")
    b.add_rate("up", "degraded", lam * (1.0 - h))
    b.add_rate("up", "lost", lam * h)
    b.add_rate("degraded", "up", mu)
    b.add_rate("degraded", "lost", 2.0 * lam)
    return b.build("toy")


def _toy_env(lam=0.25, mu=40.0, h=0.125):
    return {"lam": lam, "mu": mu, "h": h}


def _toy_reference(env):
    b = ChainBuilder()
    b.add_rate("up", "degraded", env["lam"] * (1.0 - env["h"]))
    b.add_rate("up", "lost", env["lam"] * env["h"])
    b.add_rate("degraded", "up", env["mu"])
    b.add_rate("degraded", "lost", 2.0 * env["lam"])
    return b.build("up")


class TestRateExpr:
    def test_arithmetic_matches_python(self):
        x, y = param("x"), param("y")
        env = {"x": 3.5, "y": 0.25}
        assert (x + y).evaluate(env) == 3.5 + 0.25
        assert (x - y).evaluate(env) == 3.5 - 0.25
        assert (x * y).evaluate(env) == 3.5 * 0.25
        assert (x / y).evaluate(env) == 3.5 / 0.25
        assert (2.0 * x + 1).evaluate(env) == 2.0 * 3.5 + 1
        assert (1.0 - y).evaluate(env) == 1.0 - 0.25

    def test_min_clamps(self):
        h = rate_min(param("h"), 1.0)
        assert h.evaluate({"h": 0.5}) == 0.5
        assert h.evaluate({"h": 7.0}) == 1.0

    def test_vectorized_evaluation_matches_scalar(self):
        expr = param("n") * param("lam") * (1.0 - rate_min(param("h"), 1.0))
        ns = np.array([4, 8, 16])
        lams = np.array([1e-4, 2e-4, 3e-4])
        hs = np.array([0.0, 0.5, 2.0])
        vec = expr.evaluate({"n": ns, "lam": lams, "h": hs})
        for i in range(3):
            scalar = expr.evaluate(
                {"n": int(ns[i]), "lam": float(lams[i]), "h": float(hs[i])}
            )
            assert vec[i] == scalar

    def test_missing_parameter_raises(self):
        with pytest.raises(SpecError, match="missing parameter 'lam'"):
            param("lam").evaluate({})

    def test_wrap_rejects_non_numbers(self):
        with pytest.raises(TypeError):
            RateExpr.wrap("0.5")
        with pytest.raises(TypeError):
            RateExpr.wrap(True)
        assert const(2).evaluate({}) == 2.0

    def test_canonical_is_stable_and_ordered(self):
        e1 = param("a") + param("b") * 2.0
        e2 = param("a") + param("b") * 2.0
        assert e1.canonical() == e2.canonical() == "(a+(b*2.0))"
        assert (param("b") * 2.0 + param("a")).canonical() != e1.canonical()


class TestModelSpec:
    def test_validation(self):
        r = param("r")
        with pytest.raises(SpecError, match="at least one state"):
            ModelSpec("x", (), (), "a")
        with pytest.raises(SpecError, match="duplicate state"):
            ModelSpec("x", ("a", "a"), (), "a")
        with pytest.raises(SpecError, match="self-loop"):
            ModelSpec("x", ("a", "b"), (("a", "a", r),), "a")
        with pytest.raises(SpecError, match="unknown states"):
            ModelSpec("x", ("a", "b"), (("a", "c", r),), "a")
        with pytest.raises(SpecError, match="duplicate edge"):
            ModelSpec("x", ("a", "b"), (("a", "b", r), ("a", "b", r)), "a")
        with pytest.raises(SpecError, match="must be a RateExpr"):
            ModelSpec("x", ("a", "b"), (("a", "b", 2.0),), "a")
        with pytest.raises(SpecError, match="initial state"):
            ModelSpec("x", ("a", "b"), (("a", "b", r),), "c")

    def test_param_names_sorted_union(self):
        spec = _toy_spec()
        assert spec.param_names == ("h", "lam", "mu")

    def test_spec_hash_is_content_addressed(self):
        assert _toy_spec().spec_hash == _toy_spec().spec_hash
        b = SpecBuilder()
        b.add_rate("up", "lost", param("lam"))
        other = b.build("toy")  # same name, different structure
        assert other.spec_hash != _toy_spec().spec_hash

    def test_spec_hash_sensitive_to_state_order(self):
        r = param("r")
        one = ModelSpec("x", ("a", "b", "c"), (("a", "b", r),), "a")
        two = ModelSpec("x", ("a", "c", "b"), (("a", "b", r),), "a")
        assert one.spec_hash != two.spec_hash

    def test_describe_lists_edges(self):
        text = _toy_spec().describe()
        assert "'up' -> 'degraded'" in text
        assert "lam" in text


class TestSpecBuilder:
    def test_states_register_in_insertion_order(self):
        spec = _toy_spec()
        assert spec.states == ("up", "degraded", "lost")
        assert spec.initial_state == "up"

    def test_parallel_rates_accumulate_left_nested(self):
        b = SpecBuilder()
        b.add_rate("a", "b", param("x"))
        b.add_rate("a", "b", param("y"))
        b.add_rate("a", "b", param("z"))
        (edge,) = b.build("acc").edges
        assert edge[2].canonical() == "((x+y)+z)"

    def test_self_loop_rejected(self):
        with pytest.raises(SpecError):
            SpecBuilder().add_rate("a", "a", param("x"))


class TestCompiledChain:
    def test_bind_matches_chain_builder_bitwise(self):
        env = _toy_env()
        bound = _toy_spec().compile().bind(env)
        reference = _toy_reference(env)
        assert bound.states == reference.states
        assert bound.initial_state == reference.initial_state
        assert np.array_equal(
            bound.generator_matrix(), reference.generator_matrix()
        )
        assert (
            bound.mean_time_to_absorption()
            == reference.mean_time_to_absorption()
        )

    def test_zero_rate_keeps_topology_fixed(self):
        """h = 1 zeroes the up->degraded edge; the compiled chain writes an
        explicit 0.0 instead of dropping the edge, so the matrix still
        matches the builder's (which drops it — same zero entry)."""
        env = _toy_env(h=1.0)
        bound = _toy_spec().compile().bind(env)
        reference = _toy_reference(env)
        assert np.array_equal(
            bound.generator_matrix(), reference.generator_matrix()
        )

    def test_bind_batch_bitwise_equals_per_point_bind(self):
        compiled = _toy_spec().compile()
        envs = [
            _toy_env(0.25, 40.0, 0.125),
            _toy_env(0.5, 10.0, 0.0),
            _toy_env(1e-3, 250.0, 1.0),
        ]
        stacked = {
            name: np.array([e[name] for e in envs])
            for name in compiled.spec.param_names
        }
        batch = compiled.bind_batch(stacked)
        assert len(batch) == 3
        for chain, env in zip(batch, envs):
            single = compiled.bind(env)
            assert chain.states == single.states
            assert np.array_equal(
                chain.generator_matrix(), single.generator_matrix()
            )
            assert (
                chain.mean_time_to_absorption()
                == single.mean_time_to_absorption()
            )

    def test_bind_batch_scalar_broadcast(self):
        compiled = _toy_spec().compile()
        stacked = {"lam": np.array([0.25, 0.5]), "mu": 40.0, "h": 0.125}
        batch = compiled.bind_batch(stacked)
        assert len(batch) == 2
        assert np.array_equal(
            batch[0].generator_matrix(),
            compiled.bind(_toy_env(0.25, 40.0, 0.125)).generator_matrix(),
        )

    def test_mismatched_array_lengths_raise(self):
        compiled = _toy_spec().compile()
        with pytest.raises(SpecError, match="disagree on length"):
            compiled.bind_batch(
                {"lam": np.array([1.0, 2.0]), "mu": np.array([1.0]), "h": 0.0}
            )

    def test_missing_env_parameter_raises(self):
        compiled = _toy_spec().compile()
        with pytest.raises(SpecError, match="missing"):
            compiled.bind({"lam": 0.25, "mu": 40.0})

    def test_bound_chains_are_independent(self):
        compiled = _toy_spec().compile()
        first = compiled.bind(_toy_env())
        q_before = first.generator_matrix()
        second = compiled.bind(_toy_env(lam=0.9))
        second.mean_time_to_absorption()
        assert np.array_equal(first.generator_matrix(), q_before)

    def test_counters(self):
        compiled = _toy_spec().compile()
        assert (compiled.hits, compiled.structure_rebuilds) == (0, 0)
        compiled.bind(_toy_env())
        stacked = {
            name: np.array([v, v])
            for name, v in _toy_env().items()
        }
        compiled.bind_batch(stacked)
        assert compiled.hits == 3  # one scalar bind + two batched points
        assert compiled.structure_rebuilds == 0


class TestCompiledSpecCache:
    def test_compile_once_then_hit(self):
        cache = CompiledSpecCache()
        a = cache.get_or_compile(_toy_spec())
        b = cache.get_or_compile(_toy_spec())
        assert a is b
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hashes() == (a.spec_hash,)

    def test_distinct_specs_get_distinct_entries(self):
        cache = CompiledSpecCache()
        cache.get_or_compile(_toy_spec())
        b = SpecBuilder()
        b.add_rate("a", "b", param("x"))
        cache.get_or_compile(b.build("other"))
        assert len(cache) == 2
        assert cache.misses == 2

    def test_poisoned_entry_detected_and_recompiled(self):
        cache = CompiledSpecCache()
        real = cache.get_or_compile(_toy_spec())
        b = SpecBuilder()
        b.add_rate("a", "b", param("x"))
        decoy = b.build("decoy").compile()
        cache._chains[real.spec_hash] = decoy
        again = cache.get_or_compile(_toy_spec())
        assert again is not decoy
        assert again.spec_hash == real.spec_hash
        assert cache.structure_rebuilds == 1
        # The recompiled entry replaces the poison; next lookup hits.
        hits = cache.hits
        assert cache.get_or_compile(_toy_spec()) is again
        assert cache.hits == hits + 1

    def test_clear(self):
        cache = CompiledSpecCache()
        cache.get_or_compile(_toy_spec())
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses, cache.structure_rebuilds) == (0, 0, 0)

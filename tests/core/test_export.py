"""Tests for CTMC DOT export and text description."""

import pytest

from repro.core import CTMC, Transition
from repro.models import NoRaidNodeModel, Parameters


@pytest.fixture
def chain():
    return CTMC(
        ["up", "deg", "loss"],
        [
            Transition("up", "deg", 2.0),
            Transition("deg", "up", 10.0),
            Transition("deg", "loss", 0.5),
        ],
        initial_state="up",
    )


class TestDot:
    def test_structure(self, chain):
        dot = chain.to_dot()
        assert dot.startswith("digraph ctmc {")
        assert dot.rstrip().endswith("}")
        assert '"loss" [shape=doublecircle]' in dot
        assert '"up" [shape=circle, style=bold]' in dot
        assert '"up" -> "deg" [label="2"]' in dot
        assert '"deg" -> "loss" [label="0.5"]' in dot

    def test_no_edges_out_of_absorbing(self, chain):
        dot = chain.to_dot()
        assert '"loss" ->' not in dot

    def test_custom_name_and_format(self, chain):
        dot = chain.to_dot(name="figure8", rate_format="{:.1e}")
        assert "digraph figure8" in dot
        assert "2.0e+00" in dot

    def test_paper_chain_exports(self, baseline):
        dot = NoRaidNodeModel(baseline, 2).chain().to_dot(name="figure9")
        # 7 transient + loss states, all present.
        for state in ("00", "N0", "d0", "NN", "Nd", "dN", "dd", "loss"):
            assert f'"{state}"' in dot


class TestDescribe:
    def test_lists_all_states(self, chain):
        text = chain.describe()
        assert "3 states" in text
        assert "absorbing" in text
        assert "'up'" in text and "'loss'" in text

    def test_shows_rates(self, chain):
        assert "@ 10" in chain.describe()

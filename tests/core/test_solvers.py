"""Tests for the solver-strategy API (SolveOptions/SolveRequest/backends)."""

import math

import pytest

from repro.core import (
    BACKENDS,
    CTMC,
    DEFAULT_SOLVE_OPTIONS,
    SolveOptions,
    SolveRequest,
    SolverError,
    Transition,
    build_indirect,
    get_backend,
    select_backend,
    solve,
)
from repro.core.sparse import SparseChain

pytestmark = pytest.mark.solvers


def _chain():
    return CTMC(
        ["up", "degraded", "down"],
        [
            Transition("up", "degraded", 2.0),
            Transition("degraded", "up", 50.0),
            Transition("degraded", "down", 0.5),
        ],
        initial_state="up",
    )


class TestSolveOptions:
    def test_defaults_are_the_default_singleton(self):
        assert SolveOptions() == DEFAULT_SOLVE_OPTIONS
        assert SolveOptions().is_default()
        assert not SolveOptions(backend="dense_gth").is_default()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "quantum"},
            {"rates_method": "guess"},
            {"sparse_algorithm": "magic"},
            {"tolerance": 0.0},
            {"tolerance": -1.0},
            {"max_iterations": 0},
            {"dense_state_limit": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(SolverError):
            SolveOptions(**kwargs)

    def test_monte_carlo_is_a_valid_backend_name(self):
        # Valid in options (so the whole method choice travels in one
        # value) but not a chain-solve backend.
        opts = SolveOptions(backend="monte_carlo")
        with pytest.raises(SolverError, match="repro.evaluate"):
            get_backend(opts.backend)

    def test_round_trip_dict(self):
        opts = SolveOptions(backend="sparse_iterative", tolerance=1e-7)
        assert SolveOptions.from_dict(opts.to_dict()) == opts

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises((SolverError, ValueError)):
            SolveOptions.from_dict({"backened": "dense_gth"})

    def test_cache_key_stable_and_sensitive(self):
        a = SolveOptions(backend="sparse_iterative")
        b = SolveOptions(backend="sparse_iterative")
        c = SolveOptions(backend="sparse_iterative", tolerance=1e-6)
        assert a.cache_key() == b.cache_key()
        assert a.cache_key() != c.cache_key()
        assert len(a.cache_key()) == 64

    def test_replace(self):
        opts = DEFAULT_SOLVE_OPTIONS.replace(backend="dense_gth")
        assert opts.backend == "dense_gth"
        assert DEFAULT_SOLVE_OPTIONS.backend == "auto"

    def test_hashable_for_grouping(self):
        assert len({SolveOptions(), SolveOptions(), SolveOptions(tolerance=1e-6)}) == 2


class TestSolveRequest:
    def test_exactly_one_payload(self):
        with pytest.raises(SolverError):
            SolveRequest()
        with pytest.raises(SolverError):
            SolveRequest(
                chains=(_chain(),),
                sparse=SparseChain.from_ctmc(_chain()),
            )

    def test_unknown_query_rejected(self):
        with pytest.raises(SolverError):
            SolveRequest(chains=(_chain(),), query="eigenvalues")


class TestBackendSelection:
    def test_explicit_choice_honored(self):
        request = SolveRequest(
            chains=(_chain(),),
            options=SolveOptions(backend="sparse_iterative"),
        )
        assert select_backend(request).name == "sparse_iterative"

    def test_auto_small_dense(self):
        request = SolveRequest(chains=(_chain(),))
        assert select_backend(request).name == "dense_gth"

    def test_auto_large_goes_sparse(self):
        request = SolveRequest(
            chains=(_chain(),),
            options=SolveOptions(dense_state_limit=2),
        )
        assert select_backend(request).name == "sparse_iterative"

    def test_auto_sparse_payload_goes_sparse(self):
        request = SolveRequest(sparse=SparseChain.from_ctmc(_chain()))
        assert select_backend(request).name == "sparse_iterative"

    def test_auto_closed_form_thunk(self):
        request = SolveRequest(closed_form=lambda: (1.0,))
        assert select_backend(request).name == "closed_form"

    def test_registry_names(self):
        assert set(BACKENDS) == {"dense_gth", "sparse_iterative", "closed_form"}
        with pytest.raises(SolverError, match="unknown backend"):
            get_backend("quantum")


class TestSolveDispatch:
    def test_dense_matches_ctmc_method(self):
        chain = _chain()
        result = solve(
            SolveRequest(
                chains=(chain,), options=SolveOptions(backend="dense_gth")
            )
        )
        assert result.backend == "dense_gth"
        assert result.values[0] == chain.mean_time_to_absorption()

    def test_sparse_matches_dense(self):
        chain = _chain()
        result = solve(
            SolveRequest(
                sparse=SparseChain.from_ctmc(chain),
                options=SolveOptions(backend="sparse_iterative"),
            )
        )
        assert result.converged
        assert math.isclose(
            result.values[0],
            chain.mean_time_to_absorption(),
            rel_tol=1e-9,
        )

    def test_closed_form_backend_runs_thunk(self):
        result = solve(
            SolveRequest(closed_form=lambda: [1.0, 2.5], query="mttdl")
        )
        assert result.backend == "closed_form"
        assert result.values == (1.0, 2.5)

    def test_sparse_refuses_absorption_query(self):
        request = SolveRequest(
            sparse=SparseChain.from_ctmc(_chain()),
            query="absorption",
            options=SolveOptions(backend="sparse_iterative"),
        )
        with pytest.raises(SolverError):
            solve(request)

    def test_stationary_queries_agree(self):
        chain = CTMC(
            ["a", "b"],
            [Transition("a", "b", 1.0), Transition("b", "a", 3.0)],
            initial_state="a",
        )
        dense = solve(
            SolveRequest(
                chains=(chain,),
                query="stationary",
                options=SolveOptions(backend="dense_gth"),
            )
        )
        sparse = solve(
            SolveRequest(
                sparse=SparseChain.from_ctmc(chain),
                query="stationary",
                options=SolveOptions(backend="sparse_iterative"),
            )
        )
        for state in chain.states:
            assert math.isclose(
                dense.distribution[state],
                sparse.distribution[state],
                rel_tol=1e-8,
            )


class TestCtmcSolveMethod:
    def test_ctmc_solve_routes_through_backends(self):
        chain = _chain()
        result = chain.solve()
        assert result.values[0] == chain.mean_time_to_absorption()
        sparse = chain.solve(SolveOptions(backend="sparse_iterative"))
        assert math.isclose(
            sparse.values[0], result.values[0], rel_tol=1e-9
        )

    def test_absorb_still_exact(self):
        chain = _chain()
        absorb = chain.absorb()
        assert absorb.mttdl == chain.mean_time_to_absorption()
        assert math.isclose(
            sum(absorb.absorption_probabilities.values()), 1.0, rel_tol=1e-12
        )


class TestScale:
    def test_indirect_chain_beyond_dense_limit_solves(self):
        n = 9_000  # past DENSE_MATERIALIZE_LIMIT

        def transitions(k):
            if k == "loss":
                return {}
            out = {}
            if k < n:
                out[k + 1] = (n - k) * 1e-4
            if k > 0:
                out[k - 1] = k * 1.0
                out["loss"] = k * 1e-6
            return out

        chain = build_indirect(0, transitions)
        result = solve(SolveRequest(sparse=chain))  # auto -> sparse
        assert result.backend == "sparse_iterative"
        assert result.converged
        assert result.values[0] > 0.0

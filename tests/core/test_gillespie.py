"""Tests for CTMC trajectory sampling."""

import numpy as np
import pytest

from repro.core import (
    CTMC,
    CTMCError,
    NotAbsorbingError,
    Transition,
    sample_absorption_times,
    sample_trajectory,
)


def make_chain(lam=1.0, mu=5.0, kill=2.0) -> CTMC:
    return CTMC(
        ["up", "deg", "loss"],
        [
            Transition("up", "deg", lam),
            Transition("deg", "up", mu),
            Transition("deg", "loss", kill),
        ],
    )


class TestTrajectory:
    def test_starts_at_initial_state(self):
        traj = sample_trajectory(make_chain(), np.random.default_rng(0))
        assert traj.states[0] == "up"
        assert traj.times[0] == 0.0

    def test_ends_absorbed(self):
        traj = sample_trajectory(make_chain(), np.random.default_rng(1))
        assert traj.absorbed
        assert traj.states[-1] == "loss"

    def test_times_strictly_increasing(self):
        traj = sample_trajectory(make_chain(), np.random.default_rng(2))
        assert all(a < b for a, b in zip(traj.times, traj.times[1:]))

    def test_consecutive_states_are_neighbors(self):
        chain = make_chain()
        traj = sample_trajectory(chain, np.random.default_rng(3))
        for a, b in zip(traj.states, traj.states[1:]):
            assert b in chain.successors(a)

    def test_max_time_truncation(self):
        chain = make_chain(lam=1e-6)  # essentially never leaves 'up'
        traj = sample_trajectory(chain, np.random.default_rng(4), max_time=10.0)
        assert not traj.absorbed
        assert traj.total_time == 10.0

    def test_reproducible_with_same_seed(self):
        a = sample_trajectory(make_chain(), np.random.default_rng(42))
        b = sample_trajectory(make_chain(), np.random.default_rng(42))
        assert a.states == b.states
        assert a.times == b.times


class TestAbsorptionSampling:
    def test_mean_matches_analytic(self):
        chain = make_chain()
        analytic = chain.mean_time_to_absorption()
        summary = sample_absorption_times(chain, n=4000, seed=7)
        assert summary.contains(analytic, sigmas=4.0)

    def test_ci_width_shrinks_with_n(self):
        chain = make_chain()
        small = sample_absorption_times(chain, n=100, seed=1)
        large = sample_absorption_times(chain, n=2000, seed=1)
        assert large.std_error < small.std_error

    def test_ci95_brackets_mean(self):
        summary = sample_absorption_times(make_chain(), n=50, seed=3)
        lo, hi = summary.ci95
        assert lo < summary.mean < hi

    def test_requires_positive_n(self):
        with pytest.raises(CTMCError):
            sample_absorption_times(make_chain(), n=0)

    def test_requires_absorbing_chain(self):
        chain = CTMC(
            ["a", "b"],
            [Transition("a", "b", 1.0), Transition("b", "a", 1.0)],
        )
        with pytest.raises(NotAbsorbingError):
            sample_absorption_times(chain, n=5, seed=0)

    def test_explicit_rng_used(self):
        rng = np.random.default_rng(11)
        s1 = sample_absorption_times(make_chain(), n=20, rng=rng)
        s2 = sample_absorption_times(make_chain(), n=20, seed=11)
        # Same master seed, same consumption order -> identical results.
        assert s1.mean == pytest.approx(s2.mean)

"""Tests for the systematic Reed-Solomon codec."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import CodecError, ReedSolomonCodec


class TestEncode:
    def test_systematic_prefix(self):
        codec = ReedSolomonCodec(3, 2)
        data = [b"one!", b"two!", b"tre!"]
        shards = codec.encode(data)
        assert shards[:3] == data
        assert len(shards) == 5

    def test_wrong_block_count(self):
        with pytest.raises(CodecError):
            ReedSolomonCodec(3, 2).encode([b"a", b"b"])

    def test_unequal_lengths(self):
        with pytest.raises(CodecError):
            ReedSolomonCodec(2, 1).encode([b"ab", b"abc"])

    def test_empty_blocks_rejected(self):
        with pytest.raises(CodecError):
            ReedSolomonCodec(2, 1).encode([b"", b""])

    def test_verify_accepts_valid(self):
        codec = ReedSolomonCodec(4, 2)
        shards = codec.encode([b"aaaa", b"bbbb", b"cccc", b"dddd"])
        assert codec.verify(shards)

    def test_verify_rejects_corruption(self):
        codec = ReedSolomonCodec(4, 2)
        shards = codec.encode([b"aaaa", b"bbbb", b"cccc", b"dddd"])
        shards[5] = bytes([shards[5][0] ^ 1]) + shards[5][1:]
        assert not codec.verify(shards)

    def test_verify_needs_all_shards(self):
        codec = ReedSolomonCodec(2, 1)
        with pytest.raises(CodecError):
            codec.verify([b"aa", b"bb"])


class TestDecode:
    @pytest.mark.parametrize("construction", ["vandermonde", "cauchy"])
    def test_all_erasure_patterns(self, construction):
        """MDS property: any m losses are recoverable, exhaustively."""
        k, m = 4, 3
        codec = ReedSolomonCodec(k, m, construction=construction)
        data = [bytes([i] * 8) for i in range(k)]
        shards = codec.encode(data)
        for lost in itertools.combinations(range(k + m), m):
            survivors = {
                i: s for i, s in enumerate(shards) if i not in lost
            }
            assert codec.decode_data(survivors) == data

    def test_too_few_shards(self):
        codec = ReedSolomonCodec(4, 2)
        shards = codec.encode([b"aaaa"] * 4)
        survivors = {0: shards[0], 1: shards[1], 2: shards[2]}
        with pytest.raises(CodecError, match="unrecoverable"):
            codec.decode_data(survivors)

    def test_invalid_index(self):
        codec = ReedSolomonCodec(2, 1)
        with pytest.raises(CodecError, match="out of range"):
            codec.decode_data({0: b"aa", 7: b"bb"})

    def test_reconstruct_restores_everything(self):
        codec = ReedSolomonCodec(3, 2)
        shards = codec.encode([b"xx", b"yy", b"zz"])
        survivors = {i: s for i, s in enumerate(shards) if i not in (1, 3)}
        assert codec.reconstruct(survivors) == shards

    def test_reconstruct_shard_single(self):
        codec = ReedSolomonCodec(3, 2)
        shards = codec.encode([b"xx", b"yy", b"zz"])
        survivors = {i: s for i, s in enumerate(shards) if i != 4}
        assert codec.reconstruct_shard(survivors, 4) == shards[4]

    def test_reconstruct_shard_present_returns_it(self):
        codec = ReedSolomonCodec(2, 1)
        shards = codec.encode([b"aa", b"bb"])
        assert codec.reconstruct_shard(dict(enumerate(shards)), 1) == shards[1]

    def test_numpy_blocks_accepted(self):
        codec = ReedSolomonCodec(2, 1)
        data = [np.frombuffer(b"ab", dtype=np.uint8), np.frombuffer(b"cd", dtype=np.uint8)]
        shards = codec.encode(data)
        assert shards[0] == b"ab"


class TestConfiguration:
    def test_invalid_parameters(self):
        with pytest.raises(CodecError):
            ReedSolomonCodec(0, 1)
        with pytest.raises(CodecError):
            ReedSolomonCodec(1, 0)
        with pytest.raises(CodecError):
            ReedSolomonCodec(200, 100)
        with pytest.raises(CodecError):
            ReedSolomonCodec(2, 1, construction="mystery")

    def test_properties(self):
        codec = ReedSolomonCodec(5, 3)
        assert codec.data_blocks == 5
        assert codec.parity_blocks == 3
        assert codec.total_blocks == 8

    def test_encoding_matrix_systematic(self):
        codec = ReedSolomonCodec(4, 2)
        m = codec.encoding_matrix
        assert np.array_equal(m[:4], np.eye(4, dtype=np.uint8))


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(min_value=1, max_value=8),
    m=st.integers(min_value=1, max_value=4),
    payload=st.binary(min_size=1, max_size=128),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_roundtrip_random_erasures_property(k, m, payload, seed):
    """Property: encode, erase m random shards, decode -> original data."""
    codec = ReedSolomonCodec(k, m)
    block = (len(payload) + k - 1) // k
    padded = payload + b"\0" * (block * k - len(payload))
    data = [padded[i * block : (i + 1) * block] for i in range(k)]
    shards = codec.encode(data)
    rng = np.random.default_rng(seed)
    lost = set(rng.choice(k + m, size=m, replace=False).tolist())
    survivors = {i: s for i, s in enumerate(shards) if i not in lost}
    assert codec.decode_data(survivors) == data

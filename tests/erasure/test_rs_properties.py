"""Hypothesis property tests: the Reed-Solomon codec is MDS.

The defining property — *any* ``k`` of the ``k + m`` shards recover the
data exactly, for every erasure pattern up to ``m`` losses — is checked
on hypothesis-drawn geometries, block contents and erasure sets, for both
matrix constructions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.reed_solomon import CodecError, ReedSolomonCodec


@st.composite
def codec_cases(draw):
    """(k, m, construction, data blocks, erased indices) with |erased| <= m."""
    k = draw(st.integers(min_value=1, max_value=6))
    m = draw(st.integers(min_value=1, max_value=4))
    construction = draw(st.sampled_from(["vandermonde", "cauchy"]))
    length = draw(st.integers(min_value=1, max_value=16))
    data = draw(
        st.lists(
            st.binary(min_size=length, max_size=length),
            min_size=k,
            max_size=k,
        )
    )
    erased = draw(
        st.sets(
            st.integers(min_value=0, max_value=k + m - 1),
            min_size=0,
            max_size=m,
        )
    )
    return k, m, construction, data, erased


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(case=codec_cases())
    def test_erasures_up_to_parity_decode(self, case):
        """encode -> erase any <= m shards -> decode recovers the data."""
        k, m, construction, data, erased = case
        codec = ReedSolomonCodec(k, m, construction)
        shards = codec.encode(data)
        survivors = {
            i: shard for i, shard in enumerate(shards) if i not in erased
        }
        assert codec.decode_data(survivors) == list(data)

    @settings(max_examples=60, deadline=None)
    @given(case=codec_cases())
    def test_reconstruct_restores_all_shards(self, case):
        k, m, construction, data, erased = case
        codec = ReedSolomonCodec(k, m, construction)
        shards = codec.encode(data)
        survivors = {
            i: shard for i, shard in enumerate(shards) if i not in erased
        }
        assert codec.reconstruct(survivors) == shards

    @settings(max_examples=30, deadline=None)
    @given(case=codec_cases())
    def test_systematic_prefix(self, case):
        k, m, construction, data, _ = case
        codec = ReedSolomonCodec(k, m, construction)
        assert codec.encode(data)[:k] == list(data)


class TestUnrecoverable:
    @settings(max_examples=30, deadline=None)
    @given(case=codec_cases())
    def test_fewer_than_k_shards_raises(self, case):
        k, m, construction, data, _ = case
        codec = ReedSolomonCodec(k, m, construction)
        shards = codec.encode(data)
        survivors = {i: shards[i] for i in range(k - 1)}
        with pytest.raises(CodecError):
            codec.decode_data(survivors)


class TestVerify:
    @settings(max_examples=30, deadline=None)
    @given(case=codec_cases())
    def test_verify_accepts_consistent_shards(self, case):
        k, m, construction, data, _ = case
        codec = ReedSolomonCodec(k, m, construction)
        assert codec.verify(codec.encode(data))

    @settings(max_examples=30, deadline=None)
    @given(
        case=codec_cases(),
        victim=st.integers(min_value=0),
        byte=st.integers(min_value=0),
        flip=st.integers(min_value=1, max_value=255),
    )
    def test_verify_rejects_tampering(self, case, victim, byte, flip):
        k, m, construction, data, _ = case
        codec = ReedSolomonCodec(k, m, construction)
        shards = codec.encode(data)
        victim %= len(shards)
        target = bytearray(shards[victim])
        byte %= len(target)
        target[byte] ^= flip
        shards[victim] = bytes(target)
        assert not codec.verify(shards)

"""Hypothesis property tests: GF(256) is actually a field.

The table-driven arithmetic in :mod:`repro.erasure.gf256` underpins every
erasure-code guarantee in the repository, so the field axioms themselves
are checked exhaustively over hypothesis-drawn elements: associativity,
commutativity, distributivity, identities, inverses, and the consistency
of the log/exp tables with multiplication.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure.gf256 import (
    FieldError,
    GF_SIZE,
    add,
    addmul_array,
    div,
    exp,
    inv,
    log,
    mul,
    mul_array,
    pow_,
    sub,
)

elements = st.integers(min_value=0, max_value=GF_SIZE - 1)
nonzero = st.integers(min_value=1, max_value=GF_SIZE - 1)


class TestFieldAxioms:
    @given(a=elements, b=elements, c=elements)
    def test_add_associative_commutative(self, a, b, c):
        assert add(add(a, b), c) == add(a, add(b, c))
        assert add(a, b) == add(b, a)

    @given(a=elements, b=elements, c=elements)
    def test_mul_associative_commutative(self, a, b, c):
        assert mul(mul(a, b), c) == mul(a, mul(b, c))
        assert mul(a, b) == mul(b, a)

    @given(a=elements, b=elements, c=elements)
    def test_distributive(self, a, b, c):
        assert mul(a, add(b, c)) == add(mul(a, b), mul(a, c))

    @given(a=elements)
    def test_identities(self, a):
        assert add(a, 0) == a
        assert mul(a, 1) == a
        assert mul(a, 0) == 0

    @given(a=elements)
    def test_characteristic_two(self, a):
        """Addition is XOR: every element is its own additive inverse."""
        assert add(a, a) == 0
        assert sub(a, a) == 0

    @given(a=elements, b=elements)
    def test_sub_is_add(self, a, b):
        assert sub(a, b) == add(a, b)

    @given(a=nonzero)
    def test_multiplicative_inverse(self, a):
        assert mul(a, inv(a)) == 1

    @given(a=elements, b=nonzero)
    def test_div_inverts_mul(self, a, b):
        assert div(mul(a, b), b) == a
        assert mul(div(a, b), b) == a

    def test_zero_has_no_inverse(self):
        with pytest.raises(FieldError):
            inv(0)
        with pytest.raises(FieldError):
            div(1, 0)
        with pytest.raises(FieldError):
            log(0)


class TestTables:
    @given(a=nonzero)
    def test_exp_log_round_trip(self, a):
        assert exp(log(a)) == a

    @given(a=nonzero, b=nonzero)
    def test_log_turns_mul_into_add(self, a, b):
        assert mul(a, b) == exp((log(a) + log(b)) % (GF_SIZE - 1))

    @given(a=elements, n=st.integers(min_value=0, max_value=12))
    def test_pow_matches_repeated_mul(self, a, n):
        expected = 1
        for _ in range(n):
            expected = mul(expected, a)
        assert pow_(a, n) == expected


class TestArrayKernels:
    @given(
        scalar=elements,
        data=st.lists(elements, min_size=1, max_size=64),
    )
    def test_mul_array_matches_scalar_mul(self, scalar, data):
        arr = np.array(data, dtype=np.uint8)
        out = mul_array(scalar, arr)
        assert list(out) == [mul(scalar, x) for x in data]

    @given(
        scalar=elements,
        data=st.lists(elements, min_size=1, max_size=64),
        acc=elements,
    )
    def test_addmul_array_accumulates(self, scalar, data, acc):
        arr = np.array(data, dtype=np.uint8)
        accumulator = np.full(len(data), acc, dtype=np.uint8)
        addmul_array(accumulator, scalar, arr)
        assert list(accumulator) == [add(acc, mul(scalar, x)) for x in data]

"""Field-axiom tests for GF(256)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import gf256
from repro.erasure.gf256 import FieldError

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestAxioms:
    @settings(max_examples=200)
    @given(elements, elements)
    def test_addition_commutative(self, a, b):
        assert gf256.add(a, b) == gf256.add(b, a)

    @settings(max_examples=200)
    @given(elements, elements, elements)
    def test_addition_associative(self, a, b, c):
        assert gf256.add(gf256.add(a, b), c) == gf256.add(a, gf256.add(b, c))

    @settings(max_examples=200)
    @given(elements)
    def test_addition_self_inverse(self, a):
        assert gf256.add(a, a) == 0
        assert gf256.sub(a, a) == 0

    @settings(max_examples=200)
    @given(elements, elements)
    def test_multiplication_commutative(self, a, b):
        assert gf256.mul(a, b) == gf256.mul(b, a)

    @settings(max_examples=200)
    @given(elements, elements, elements)
    def test_multiplication_associative(self, a, b, c):
        assert gf256.mul(gf256.mul(a, b), c) == gf256.mul(a, gf256.mul(b, c))

    @settings(max_examples=200)
    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        left = gf256.mul(a, gf256.add(b, c))
        right = gf256.add(gf256.mul(a, b), gf256.mul(a, c))
        assert left == right

    @settings(max_examples=200)
    @given(elements)
    def test_multiplicative_identity(self, a):
        assert gf256.mul(a, 1) == a

    @settings(max_examples=200)
    @given(elements)
    def test_zero_annihilates(self, a):
        assert gf256.mul(a, 0) == 0

    @settings(max_examples=200)
    @given(nonzero)
    def test_inverse(self, a):
        assert gf256.mul(a, gf256.inv(a)) == 1

    @settings(max_examples=200)
    @given(nonzero, nonzero)
    def test_division_inverts_multiplication(self, a, b):
        assert gf256.div(gf256.mul(a, b), b) == a


class TestLogExp:
    def test_exp_log_roundtrip(self):
        for a in range(1, 256):
            assert gf256.exp(gf256.log(a)) == a

    def test_exp_periodic(self):
        for n in (0, 5, 254, 255, 300):
            assert gf256.exp(n) == gf256.exp(n + 255)

    def test_generator_generates_whole_group(self):
        seen = {gf256.exp(n) for n in range(255)}
        assert seen == set(range(1, 256))

    def test_pow_matches_repeated_mul(self):
        a = 7
        acc = 1
        for n in range(10):
            assert gf256.pow_(a, n) == acc
            acc = gf256.mul(acc, a)

    def test_pow_negative_exponent(self):
        assert gf256.pow_(3, -1) == gf256.inv(3)

    def test_pow_zero_base(self):
        assert gf256.pow_(0, 0) == 1
        assert gf256.pow_(0, 5) == 0
        with pytest.raises(FieldError):
            gf256.pow_(0, -1)


class TestErrors:
    def test_division_by_zero(self):
        with pytest.raises(FieldError):
            gf256.div(5, 0)

    def test_inverse_of_zero(self):
        with pytest.raises(FieldError):
            gf256.inv(0)

    def test_log_of_zero(self):
        with pytest.raises(FieldError):
            gf256.log(0)

    def test_out_of_range(self):
        with pytest.raises(FieldError):
            gf256.mul(256, 1)
        with pytest.raises(FieldError):
            gf256.add(-1, 0)


class TestVectorized:
    @settings(max_examples=50)
    @given(elements, st.binary(min_size=1, max_size=64))
    def test_mul_array_matches_scalar(self, scalar, data):
        arr = np.frombuffer(data, dtype=np.uint8)
        vectorized = gf256.mul_array(scalar, arr)
        scalar_loop = np.array(
            [gf256.mul(scalar, int(x)) for x in arr], dtype=np.uint8
        )
        assert np.array_equal(vectorized, scalar_loop)

    def test_mul_array_by_zero_and_one(self):
        arr = np.arange(256, dtype=np.uint8)
        assert np.array_equal(gf256.mul_array(0, arr), np.zeros(256, dtype=np.uint8))
        assert np.array_equal(gf256.mul_array(1, arr), arr)

    def test_addmul_array_accumulates(self):
        acc = np.zeros(4, dtype=np.uint8)
        data = np.array([1, 2, 3, 4], dtype=np.uint8)
        gf256.addmul_array(acc, 3, data)
        gf256.addmul_array(acc, 3, data)
        assert np.array_equal(acc, np.zeros(4, dtype=np.uint8))  # x ^ x = 0

    def test_addmul_shape_mismatch(self):
        with pytest.raises(FieldError):
            gf256.addmul_array(np.zeros(3, dtype=np.uint8), 1, np.zeros(4, dtype=np.uint8))

"""Tests for incremental Reed-Solomon parity update (read-modify-write)."""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import CodecError, ReedSolomonCodec


class TestUpdateParity:
    def test_matches_full_reencode(self):
        codec = ReedSolomonCodec(5, 3)
        data = [os.urandom(32) for _ in range(5)]
        shards = codec.encode(data)
        new_block = os.urandom(32)
        updated = codec.update_parity(shards[5:], 2, data[2], new_block)
        data[2] = new_block
        assert codec.encode(data)[5:] == updated

    def test_noop_update(self):
        codec = ReedSolomonCodec(3, 2)
        data = [b"aaaa", b"bbbb", b"cccc"]
        shards = codec.encode(data)
        updated = codec.update_parity(shards[3:], 1, data[1], data[1])
        assert updated == shards[3:]

    def test_sequential_updates_compose(self):
        codec = ReedSolomonCodec(4, 2)
        data = [bytearray(os.urandom(16)) for _ in range(4)]
        parity = codec.encode([bytes(d) for d in data])[4:]
        for step in range(6):
            idx = step % 4
            new = os.urandom(16)
            parity = codec.update_parity(parity, idx, bytes(data[idx]), new)
            data[idx] = bytearray(new)
        assert codec.encode([bytes(d) for d in data])[4:] == parity

    def test_updated_stripe_still_decodes(self):
        codec = ReedSolomonCodec(4, 2)
        data = [os.urandom(16) for _ in range(4)]
        parity = codec.encode(data)[4:]
        new = os.urandom(16)
        parity = codec.update_parity(parity, 0, data[0], new)
        data[0] = new
        shards = dict(enumerate(data + parity))
        del shards[0], shards[3]  # lose the updated block and another
        assert codec.decode_data(shards) == data

    def test_validation(self):
        codec = ReedSolomonCodec(3, 2)
        data = [b"aaaa"] * 3
        parity = codec.encode(data)[3:]
        with pytest.raises(CodecError):
            codec.update_parity(parity, 5, b"aaaa", b"bbbb")
        with pytest.raises(CodecError):
            codec.update_parity(parity[:1], 0, b"aaaa", b"bbbb")
        with pytest.raises(CodecError):
            codec.update_parity(parity, 0, b"aaaa", b"bb")
        with pytest.raises(CodecError):
            codec.update_parity([b"aa", b"aa"], 0, b"aaaa", b"bbbb")


@settings(max_examples=30, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=6),
    m=st.integers(min_value=1, max_value=3),
    idx_seed=st.integers(min_value=0, max_value=10**6),
)
def test_update_equals_reencode_property(k, m, idx_seed):
    rng = np.random.default_rng(idx_seed)
    codec = ReedSolomonCodec(k, m)
    data = [rng.integers(0, 256, 24, dtype=np.uint8).tobytes() for _ in range(k)]
    parity = codec.encode(data)[k:]
    idx = int(rng.integers(k))
    new = rng.integers(0, 256, 24, dtype=np.uint8).tobytes()
    updated = codec.update_parity(parity, idx, data[idx], new)
    data[idx] = new
    assert codec.encode(data)[k:] == updated

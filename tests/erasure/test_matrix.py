"""Tests for GF(256) matrix algebra."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import cauchy, identity, invert, matmul, matvec_blocks, vandermonde
from repro.erasure.gf256 import FieldError


class TestConstructions:
    def test_identity(self):
        i = identity(4)
        assert np.array_equal(matmul(i, i), i)

    def test_vandermonde_shape_and_first_column(self):
        v = vandermonde(6, 4)
        assert v.shape == (6, 4)
        assert np.all(v[:, 0] == 1)  # x^0

    def test_vandermonde_any_square_submatrix_of_rows_invertible(self):
        v = vandermonde(8, 4)
        for rows in itertools.combinations(range(8), 4):
            invert(v[list(rows)])  # must not raise

    def test_cauchy_every_square_submatrix_invertible(self):
        c = cauchy(5, 4)
        for size in (1, 2, 3, 4):
            for rows in itertools.combinations(range(5), size):
                for cols in itertools.combinations(range(4), size):
                    invert(c[np.ix_(list(rows), list(cols))])

    def test_size_limits(self):
        with pytest.raises(FieldError):
            vandermonde(200, 200)
        with pytest.raises(FieldError):
            cauchy(0, 4)


class TestInvert:
    def test_inverse_roundtrip(self):
        m = vandermonde(4, 4)
        inv = invert(m)
        assert np.array_equal(matmul(m, inv), identity(4))
        assert np.array_equal(matmul(inv, m), identity(4))

    def test_singular_detected(self):
        m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(FieldError, match="singular"):
            invert(m)

    def test_zero_matrix_singular(self):
        with pytest.raises(FieldError):
            invert(np.zeros((3, 3), dtype=np.uint8))

    def test_nonsquare_rejected(self):
        with pytest.raises(FieldError):
            invert(np.zeros((2, 3), dtype=np.uint8))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=10**6))
    def test_random_invertible_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        while True:
            m = rng.integers(0, 256, size=(n, n), dtype=np.uint8)
            try:
                inv = invert(m)
                break
            except FieldError:
                continue
        assert np.array_equal(matmul(m, inv), identity(n))


class TestMatmulAndBlocks:
    def test_matmul_shape_mismatch(self):
        with pytest.raises(FieldError):
            matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 2), dtype=np.uint8))

    def test_matmul_identity(self):
        m = cauchy(3, 3)
        assert np.array_equal(matmul(identity(3), m), m)

    def test_matvec_blocks_with_identity(self):
        blocks = [b"abcd", b"efgh", b"ijkl"]
        out = matvec_blocks(identity(3), blocks)
        assert [o.tobytes() for o in out] == blocks

    def test_matvec_blocks_xor_row(self):
        m = np.array([[1, 1]], dtype=np.uint8)
        out = matvec_blocks(m, [bytes([0b1010]), bytes([0b0110])])
        assert out[0][0] == 0b1100

    def test_matvec_blocks_validates_lengths(self):
        with pytest.raises(FieldError):
            matvec_blocks(identity(2), [b"ab", b"abc"])

    def test_matvec_blocks_validates_count(self):
        with pytest.raises(FieldError):
            matvec_blocks(identity(2), [b"ab"])

"""Tests for the common codec interface."""

import pytest

from repro.erasure import (
    CodecError,
    ErasureCodec,
    Raid5Codec,
    Raid6Codec,
    ReedSolomonCodec,
    codec_for,
    internal_codec_for,
)
from repro.models import InternalRaid


class TestProtocol:
    @pytest.mark.parametrize(
        "codec",
        [ReedSolomonCodec(4, 2), Raid5Codec(4), Raid6Codec(4)],
        ids=["rs", "raid5", "raid6"],
    )
    def test_all_codecs_satisfy_interface(self, codec):
        assert isinstance(codec, ErasureCodec)
        assert codec.fault_tolerance >= 1
        data = [bytes([i] * 8) for i in range(4)]
        shards = codec.encode(data)
        # Systematic prefix.
        assert shards[:4] == data
        # Drop up to the tolerance and reconstruct.
        lost = set(range(codec.fault_tolerance))
        survivors = {i: s for i, s in enumerate(shards) if i not in lost}
        assert codec.reconstruct(survivors) == shards


class TestFactories:
    def test_codec_for_paper_geometry(self):
        codec = codec_for(redundancy_set_size=8, fault_tolerance=2)
        assert codec.data_blocks == 6
        assert codec.fault_tolerance == 2
        assert codec.total_blocks == 8

    def test_codec_for_validation(self):
        with pytest.raises(CodecError):
            codec_for(8, 0)
        with pytest.raises(CodecError):
            codec_for(8, 8)

    def test_internal_codec_dispatch(self):
        assert isinstance(internal_codec_for(InternalRaid.RAID5, 4), Raid5Codec)
        assert isinstance(internal_codec_for(InternalRaid.RAID6, 4), Raid6Codec)
        assert internal_codec_for(InternalRaid.NONE, 4) is None

"""Tests for the byte-level RAID 5 / RAID 6 codecs."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.erasure import CodecError, Raid5Codec, Raid6Codec


def strips_for(k, length=16, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=length, dtype=np.uint8).tobytes() for _ in range(k)]


class TestRaid5:
    def test_parity_is_xor(self):
        codec = Raid5Codec(2)
        out = codec.encode([bytes([0b1100]), bytes([0b1010])])
        assert out[2] == bytes([0b0110])

    def test_recover_each_single_loss(self):
        codec = Raid5Codec(5)
        stripe = codec.encode(strips_for(5))
        for missing in range(codec.total_strips):
            survivors = {i: s for i, s in enumerate(stripe) if i != missing}
            assert codec.reconstruct(survivors) == stripe

    def test_no_loss_passthrough(self):
        codec = Raid5Codec(3)
        stripe = codec.encode(strips_for(3))
        assert codec.reconstruct(dict(enumerate(stripe))) == stripe

    def test_double_loss_rejected(self):
        codec = Raid5Codec(3)
        stripe = codec.encode(strips_for(3))
        survivors = {i: s for i, s in enumerate(stripe) if i not in (0, 2)}
        with pytest.raises(CodecError):
            codec.reconstruct(survivors)

    def test_too_few_data_strips(self):
        with pytest.raises(CodecError):
            Raid5Codec(1)

    def test_unequal_strips_rejected(self):
        with pytest.raises(CodecError):
            Raid5Codec(2).encode([b"aa", b"a"])

    def test_properties(self):
        codec = Raid5Codec(7)
        assert codec.data_strips == 7
        assert codec.total_strips == 8
        assert codec.fault_tolerance == 1


class TestRaid6:
    def test_recover_every_double_loss(self):
        """Exhaustive over all C(k+2, 2) failure pairs, including P+Q,
        data+P, data+Q and data+data."""
        codec = Raid6Codec(5)
        stripe = codec.encode(strips_for(5, seed=3))
        for lost in itertools.combinations(range(codec.total_strips), 2):
            survivors = {i: s for i, s in enumerate(stripe) if i not in lost}
            assert codec.reconstruct(survivors) == stripe, lost

    def test_recover_every_single_loss(self):
        codec = Raid6Codec(4)
        stripe = codec.encode(strips_for(4, seed=4))
        for lost in range(codec.total_strips):
            survivors = {i: s for i, s in enumerate(stripe) if i != lost}
            assert codec.reconstruct(survivors) == stripe

    def test_triple_loss_rejected(self):
        codec = Raid6Codec(4)
        stripe = codec.encode(strips_for(4))
        survivors = {i: s for i, s in enumerate(stripe) if i > 2}
        with pytest.raises(CodecError):
            codec.reconstruct(survivors)

    def test_p_is_xor_of_data(self):
        codec = Raid6Codec(3)
        data = strips_for(3, seed=5)
        stripe = codec.encode(data)
        expected = bytes(
            a ^ b ^ c for a, b, c in zip(data[0], data[1], data[2])
        )
        assert stripe[3] == expected

    def test_properties(self):
        codec = Raid6Codec(10)
        assert codec.total_strips == 12
        assert codec.fault_tolerance == 2

    def test_too_few_data_strips(self):
        with pytest.raises(CodecError):
            Raid6Codec(1)


class TestParityUpdate:
    def test_raid5_update_matches_reencode(self):
        codec = Raid5Codec(4)
        data = strips_for(4, seed=7)
        stripe = codec.encode(data)
        new = strips_for(1, seed=8)[0]
        updated = codec.update_parity(stripe[4], 2, data[2], new)
        data[2] = new
        assert codec.encode(data)[4] == updated

    def test_raid5_update_validation(self):
        codec = Raid5Codec(3)
        stripe = codec.encode(strips_for(3))
        with pytest.raises(CodecError):
            codec.update_parity(stripe[3], 9, stripe[0], stripe[1])

    def test_raid6_update_matches_reencode(self):
        codec = Raid6Codec(5)
        data = strips_for(5, seed=9)
        stripe = codec.encode(data)
        new = strips_for(1, seed=10)[0]
        p, q = codec.update_parity(stripe[5], stripe[6], 3, data[3], new)
        data[3] = new
        fresh = codec.encode(data)
        assert (p, q) == (fresh[5], fresh[6])

    def test_raid6_updated_stripe_recovers_double_loss(self):
        codec = Raid6Codec(4)
        data = strips_for(4, seed=11)
        stripe = codec.encode(data)
        new = strips_for(1, seed=12)[0]
        p, q = codec.update_parity(stripe[4], stripe[5], 0, data[0], new)
        data[0] = new
        full = data + [p, q]
        survivors = {i: s for i, s in enumerate(full) if i not in (0, 2)}
        assert codec.reconstruct(survivors) == full

    def test_raid6_update_validation(self):
        codec = Raid6Codec(3)
        stripe = codec.encode(strips_for(3))
        with pytest.raises(CodecError):
            codec.update_parity(stripe[3], stripe[4], 5, stripe[0], stripe[1])


@settings(max_examples=40, deadline=None)
@given(
    k=st.integers(min_value=2, max_value=10),
    length=st.integers(min_value=1, max_value=64),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_raid6_random_double_erasure_property(k, length, seed):
    rng = np.random.default_rng(seed)
    codec = Raid6Codec(k)
    data = [rng.integers(0, 256, size=length, dtype=np.uint8).tobytes() for _ in range(k)]
    stripe = codec.encode(data)
    lost = rng.choice(k + 2, size=2, replace=False)
    survivors = {i: s for i, s in enumerate(stripe) if i not in set(lost.tolist())}
    assert codec.reconstruct(survivors) == stripe

"""SweepEngine: pool-vs-serial equality, disk caching, sweeps and grids."""

import os

import pytest

from repro import ALL_CONFIGURATIONS, Parameters, SweepEngine
from repro.engine import Axis, DiskCache
from repro.models.configurations import sensitivity_configurations


def _grid_pairs(baseline, n_x=6):
    xs = [50_000.0 * k for k in range(2, 2 + n_x)]
    return [
        (config, baseline.replace(node_mttf_hours=x))
        for x in xs
        for config in ALL_CONFIGURATIONS
    ]


class TestPoolVsSerial:
    def test_bitwise_identical(self, baseline):
        """The acceptance criterion: pooled evaluation returns exactly the
        serial floats for every point."""
        pairs = _grid_pairs(baseline)
        serial = SweepEngine(jobs=1).evaluate_many(pairs)
        pooled = SweepEngine(jobs=4).evaluate_many(pairs)
        assert [r.mttdl_hours for r in pooled] == [r.mttdl_hours for r in serial]
        assert [r.events_per_pb_year for r in pooled] == [
            r.events_per_pb_year for r in serial
        ]

    def test_serial_matches_pre_engine_loop(self, baseline):
        pairs = _grid_pairs(baseline, n_x=2)
        engine = SweepEngine(jobs=1)
        got = engine.evaluate_many(pairs)
        expected = [c.reliability(p, "exact") for c, p in pairs]
        assert [r.mttdl_hours for r in got] == [r.mttdl_hours for r in expected]

    def test_closed_form_matches_pre_engine_loop(self, baseline):
        pairs = _grid_pairs(baseline, n_x=2)
        got = SweepEngine(jobs=4).evaluate_many(pairs, method="closed_form")
        expected = [c.reliability(p, "approx") for c, p in pairs]
        assert [r.mttdl_hours for r in got] == [r.mttdl_hours for r in expected]

    def test_forced_pool_bitwise_identical(self, baseline, monkeypatch):
        """Engage the real process pool even on a single-CPU host (where
        the gate would otherwise decline it) and check both the floats and
        the worker counters coming back."""
        pairs = _grid_pairs(baseline)
        serial = SweepEngine(jobs=1).evaluate_many(pairs)
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        pooled_engine = SweepEngine(jobs=4)
        pooled = pooled_engine.evaluate_many(pairs)
        assert [r.mttdl_hours for r in pooled] == [r.mttdl_hours for r in serial]
        # Worker spec counters are folded into the engine's provenance.
        prov = pooled_engine.provenance()
        assert prov.spec_misses > 0
        assert prov.spec_hashes  # workers report the shapes they compiled

    def test_monte_carlo_rejected(self, baseline):
        with pytest.raises(ValueError, match="monte_carlo"):
            SweepEngine().evaluate_many(
                [(ALL_CONFIGURATIONS[0], baseline)], method="monte_carlo"
            )


class TestDiskCacheIntegration:
    def test_round_trip_is_bitwise(self, baseline, tmp_path):
        pairs = _grid_pairs(baseline, n_x=1)
        engine = SweepEngine(jobs=1, cache=tmp_path)
        first = engine.evaluate_many(pairs)
        assert engine.cache.misses == len(pairs)
        second = engine.evaluate_many(pairs)
        assert engine.cache.hits == len(pairs)
        assert [r.mttdl_hours for r in second] == [r.mttdl_hours for r in first]

    def test_cache_shared_between_engines(self, baseline, tmp_path):
        pairs = _grid_pairs(baseline, n_x=1)
        SweepEngine(jobs=1, cache=tmp_path).evaluate_many(pairs)
        fresh = SweepEngine(jobs=1, cache=tmp_path)
        results = fresh.evaluate_many(pairs)
        assert fresh.cache.hits == len(pairs)
        assert fresh.cache.misses == 0
        expected = [c.reliability(p, "exact") for c, p in pairs]
        assert [r.mttdl_hours for r in results] == [
            r.mttdl_hours for r in expected
        ]

    def test_parameter_change_invalidates(self, baseline, tmp_path):
        config = ALL_CONFIGURATIONS[0]
        engine = SweepEngine(jobs=1, cache=tmp_path)
        engine.evaluate(config, baseline)
        changed = baseline.replace(rebuild_command_bytes=64 * 1024)
        engine.evaluate(config, changed)
        # Second point must be computed, not served from the first's entry.
        assert engine.cache.misses == 2
        assert (
            engine.evaluate(config, changed).mttdl_hours
            == config.reliability(changed, "exact").mttdl_hours
        )

    def test_method_change_invalidates(self, baseline, tmp_path):
        config = ALL_CONFIGURATIONS[3]
        engine = SweepEngine(jobs=1, cache=tmp_path)
        exact = engine.evaluate(config, baseline, method="analytic")
        approx = engine.evaluate(config, baseline, method="closed_form")
        assert engine.cache.misses == 2
        assert exact.mttdl_hours != approx.mttdl_hours

    def test_cache_true_uses_default_directory(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        engine = SweepEngine(cache=True)
        assert engine.cache is not None
        assert engine.cache.directory.name == ".repro_cache"


class TestSweepAndGrid:
    def test_sweep_result_shape(self, baseline):
        engine = SweepEngine(jobs=1)
        result = engine.sweep(
            sensitivity_configurations(),
            Axis("node_set_size", (16, 64), label="node set size N"),
            base_params=baseline,
        )
        assert result.axis_name == "node_set_size"
        assert result.axis_values == (16, 64)
        assert result.x_label == "node set size N"
        assert len(result.series) == 3
        assert all(len(s.values) == 2 for s in result.series)
        assert len(result.points) == 6
        assert result.provenance is not None
        assert result.provenance.jobs == 1

    def test_sweep_matches_direct_evaluation(self, baseline):
        engine = SweepEngine(jobs=1)
        result = engine.sweep(
            sensitivity_configurations(),
            Axis("drive_mttf_hours", (100_000.0, 750_000.0)),
            base_params=baseline,
        )
        for point in result.points:
            expected = point.config.reliability(
                baseline.replace(drive_mttf_hours=point.x), "exact"
            )
            assert point.mttdl_hours == expected.mttdl_hours

    def test_axis_transform(self, baseline):
        axis = Axis(
            "link_speed",
            (1.0, 10.0),
            transform=lambda p, x: p.with_link_speed_gbps(x),
        )
        assert axis.apply(baseline, 1.0).link_speed_bps == 1e9

    def test_axis_casts_to_field_type(self, baseline):
        axis = Axis("node_set_size", (16.0,))
        applied = axis.apply(baseline, 16.0)
        assert applied.node_set_size == 16
        assert isinstance(applied.node_set_size, int)

    def test_grid_covers_product(self, baseline):
        engine = SweepEngine(jobs=1)
        points = engine.grid(
            sensitivity_configurations()[:2],
            [
                Axis("node_set_size", (16, 64)),
                Axis("drives_per_node", (4, 12)),
            ],
            base_params=baseline,
        )
        assert len(points) == 2 * 2 * 2
        first = points[0]
        assert first.coords == (("node_set_size", 16), ("drives_per_node", 4))
        expected = first.config.reliability(first.params, "exact")
        assert first.result.mttdl_hours == expected.mttdl_hours

    def test_grid_needs_axes(self, baseline):
        with pytest.raises(ValueError):
            SweepEngine().grid(sensitivity_configurations(), [])


class TestProvenance:
    def test_counters_accumulate(self, baseline):
        engine = SweepEngine(jobs=1)
        engine.evaluate_many([(c, baseline) for c in ALL_CONFIGURATIONS])
        prov = engine.provenance()
        assert prov.spec_misses > 0
        assert prov.jobs == 1
        assert not prov.cache_enabled
        assert "compiled specs" in prov.describe()
        # The provenance names the exact chain structures it solved.
        assert len(prov.spec_hashes) == prov.spec_misses
        assert all(len(h) == 64 for h in prov.spec_hashes)

    def test_verbose_kwarg_removed(self, baseline):
        with pytest.raises(TypeError):
            SweepEngine(jobs=1, verbose=True)

"""Engine × observability integration: span trees, bitwise safety,
counter read-through.

The hard guarantees under test:

* tracing never changes a result bit (the engine's core promise extends
  to instrumented runs);
* a pooled run and a serial run grow *equivalent* span trees — the same
  set of root-to-leaf name paths — because workers ship their spans home
  and the parent re-parents them under its dispatch span;
* the legacy counter attributes (``DiskCache.hits``,
  ``CompiledSpecCache.misses``, ...) read through to the obs registries.
"""

import pytest

import repro
from repro import obs
from repro.engine.sweep import SweepEngine
from repro.runtime import should_pool
from repro.obs.tracer import Tracer


def sweep_pairs(n_points=3):
    """9 configurations x n parameter points (enough to engage the pool)."""
    base = repro.Parameters.baseline()
    points = [
        base.replace(drive_mttf_hours=mttf)
        for mttf in (300_000.0, 500_000.0, 750_000.0)[:n_points]
    ]
    return [(c, p) for p in points for c in repro.ALL_CONFIGURATIONS]


def run_engine(jobs, traced):
    engine = SweepEngine(jobs=jobs)
    pairs = sweep_pairs()
    if not traced:
        return engine.evaluate_many(pairs), []
    tracer = Tracer()
    with obs.use_tracer(tracer):
        results = engine.evaluate_many(pairs)
    return results, tracer.finished()


def name_paths(spans):
    """The set of root-to-span name paths (tree shape, count-free)."""
    by_id = {s["span_id"]: s for s in spans}
    paths = set()
    for span in spans:
        parts = []
        node = span
        while node is not None:
            parts.append(node["name"])
            node = by_id.get(node["parent_id"])
        paths.add("/".join(reversed(parts)))
    return paths


class TestBitwiseSafety:
    def test_tracing_does_not_change_results(self):
        plain, _ = run_engine(jobs=1, traced=False)
        traced, spans = run_engine(jobs=1, traced=True)
        assert [r.mttdl_hours for r in plain] == [
            r.mttdl_hours for r in traced
        ]
        assert spans  # and the traced run actually recorded something

    def test_pooled_tracing_does_not_change_results(self):
        plain, _ = run_engine(jobs=4, traced=False)
        traced, _ = run_engine(jobs=4, traced=True)
        assert [r.mttdl_hours for r in plain] == [
            r.mttdl_hours for r in traced
        ]


class TestSpanTrees:
    def test_serial_tree_shape(self):
        _, spans = run_engine(jobs=1, traced=True)
        paths = name_paths(spans)
        assert "engine.evaluate_many" in paths
        assert "engine.evaluate_many/engine.dispatch/engine.worker" in paths
        assert (
            "engine.evaluate_many/engine.dispatch/engine.worker/solve.prepare"
            in paths
        )
        assert any(p.endswith("solve.bind") for p in paths)
        assert any(p.endswith("solve.gth") for p in paths)

    def test_pooled_and_serial_trees_equivalent(self):
        """jobs=1 and jobs=4 record the same name-path set: shipped worker
        spans re-parent under the dispatch span, so the tree shape does
        not depend on where the work ran."""
        _, serial = run_engine(jobs=1, traced=True)
        _, pooled = run_engine(jobs=4, traced=True)
        assert name_paths(serial) == name_paths(pooled)

    def test_pooled_spans_reparented_under_dispatch(self):
        if not should_pool(4, len(sweep_pairs())):
            pytest.skip("host cannot pool (single CPU)")
        _, spans = run_engine(jobs=4, traced=True)
        by_id = {s["span_id"]: s for s in spans}
        workers = [s for s in spans if s["name"] == "engine.worker"]
        assert len(workers) > 1  # one per chunk
        parents = {by_id[w["parent_id"]]["name"] for w in workers}
        assert parents == {"engine.dispatch"}
        # worker spans were produced in other processes
        parent_pid = by_id[workers[0]["parent_id"]]["pid"]
        assert {w["pid"] for w in workers} != {parent_pid}

    def test_forced_pool_ships_worker_spans(self, monkeypatch):
        """Even on a single-CPU host: force the pool on and check that
        worker spans cross the process boundary and re-parent correctly,
        with results bitwise equal to the serial run."""
        import repro.engine.sweep as sweep_mod
        import repro.runtime.chunks as chunks_mod

        forced = lambda jobs, total: jobs > 1 and total >= 8  # noqa: E731
        monkeypatch.setattr(chunks_mod, "should_pool", forced)
        monkeypatch.setattr(sweep_mod, "should_pool", forced)

        serial, serial_spans = run_engine(jobs=1, traced=True)
        pooled, spans = run_engine(jobs=4, traced=True)
        assert [r.mttdl_hours for r in serial] == [
            r.mttdl_hours for r in pooled
        ]
        assert name_paths(serial_spans) == name_paths(spans)
        by_id = {s["span_id"]: s for s in spans}
        workers = [s for s in spans if s["name"] == "engine.worker"]
        assert len(workers) > 1
        assert {by_id[w["parent_id"]]["name"] for w in workers} == {
            "engine.dispatch"
        }
        parent_pid = by_id[workers[0]["parent_id"]]["pid"]
        assert {w["pid"] for w in workers} != {parent_pid}

    def test_cache_spans_present_when_cache_enabled(self, tmp_path):
        engine = SweepEngine(jobs=1, cache=str(tmp_path / "cache"))
        tracer = Tracer()
        with obs.use_tracer(tracer):
            engine.evaluate_many(sweep_pairs())
        names = {s["name"] for s in tracer.finished()}
        assert "engine.cache.lookup" in names
        assert "engine.cache.store" in names


class TestCounterReadThrough:
    def test_spec_cache_properties_match_registry(self):
        engine = SweepEngine(jobs=1)
        engine.evaluate_many(sweep_pairs())
        ctx = engine._ctx
        assert ctx.specs.hits == ctx.metrics.value("core.spec_cache.hits")
        assert ctx.specs.misses == ctx.metrics.value("core.spec_cache.misses")
        assert ctx.array_hits == ctx.metrics.value("engine.array_memo.hits")
        assert ctx.specs.hits + ctx.specs.misses > 0

    def test_disk_cache_properties_match_registry(self, tmp_path):
        cache = repro.DiskCache(tmp_path / "cache")
        cache.put("abc123", {"mttdl_hours": 1.0})
        assert cache.get("abc123") == {"mttdl_hours": 1.0}
        assert cache.get("facade0") is None
        assert cache.hits == cache.metrics.value("engine.disk_cache.hits") == 1
        assert (
            cache.misses
            == cache.metrics.value("engine.disk_cache.misses")
            == 1
        )

    def test_engine_metrics_snapshot(self, tmp_path):
        engine = SweepEngine(jobs=1, cache=str(tmp_path / "cache"))
        pairs = sweep_pairs()
        engine.evaluate_many(pairs)
        flat = engine.metrics_snapshot().to_dict()
        assert flat["engine.points"] == len(pairs)
        assert flat["engine.batches"] == 1
        assert flat["engine.disk_cache.misses"] == len(pairs)
        assert "core.spec_cache.hits" in flat
        # second batch: all disk hits
        engine.evaluate_many(pairs)
        flat = engine.metrics_snapshot().to_dict()
        assert flat["engine.disk_cache.hits"] == len(pairs)

    def test_pool_counters_folded(self):
        if not should_pool(4, len(sweep_pairs())):
            pytest.skip("host cannot pool (single CPU)")
        engine = SweepEngine(jobs=4)
        engine.evaluate_many(sweep_pairs())
        flat = engine.metrics_snapshot().to_dict()
        assert (
            flat["engine.pool.spec_misses"] + flat["engine.pool.spec_hits"]
            > 0
        )
        prov = engine.provenance()
        assert prov.spec_misses == (
            flat["engine.pool.spec_misses"] + flat["core.spec_cache.misses"]
        )


class TestVerboseRemoved:
    def test_verbose_kwarg_is_gone(self):
        # Deprecated in the obs PR; the removal completes the cycle.
        with pytest.raises(TypeError):
            SweepEngine(jobs=1, verbose=True)

    def test_default_does_not_warn(self, recwarn):
        SweepEngine(jobs=1)
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

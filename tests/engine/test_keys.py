"""Cache-key stability and invalidation."""

import subprocess
import sys

from repro import Configuration, InternalRaid, Parameters
from repro.engine import point_key, stable_digest


CONFIG = Configuration(InternalRaid.RAID5, 2)


class TestStableDigest:
    def test_deterministic(self):
        payload = {"b": 2, "a": [1.5, "x"], "c": None}
        assert stable_digest(payload) == stable_digest(payload)

    def test_key_order_independent(self):
        assert stable_digest({"a": 1, "b": 2}) == stable_digest({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert stable_digest({"a": 1}) != stable_digest({"a": 2})

    def test_hex_sha256(self):
        digest = stable_digest({"a": 1})
        assert len(digest) == 64
        assert all(c in "0123456789abcdef" for c in digest)


class TestPointKey:
    def test_stable_within_process(self, baseline):
        assert point_key(CONFIG, baseline, "analytic") == point_key(
            CONFIG, baseline, "analytic"
        )

    def test_stable_across_interpreter_runs(self, baseline):
        """The key must not depend on randomized string hashing: a fresh
        interpreter (fresh PYTHONHASHSEED) computes the identical key."""
        here = point_key(CONFIG, baseline, "analytic")
        code = (
            "from repro import Configuration, InternalRaid, Parameters\n"
            "from repro.engine import point_key\n"
            "config = Configuration(InternalRaid.RAID5, 2)\n"
            "print(point_key(config, Parameters.baseline(), 'analytic'))\n"
        )
        fresh = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        assert fresh == here

    def test_changes_with_params(self, baseline):
        other = baseline.replace(node_mttf_hours=123_456.0)
        assert point_key(CONFIG, baseline, "analytic") != point_key(
            CONFIG, other, "analytic"
        )

    def test_changes_with_method(self, baseline):
        assert point_key(CONFIG, baseline, "analytic") != point_key(
            CONFIG, baseline, "closed_form"
        )

    def test_changes_with_config(self, baseline):
        other = Configuration(InternalRaid.RAID6, 2)
        assert point_key(CONFIG, baseline, "analytic") != point_key(
            other, baseline, "analytic"
        )

    def test_changes_with_extra(self, baseline):
        plain = point_key(CONFIG, baseline, "monte_carlo")
        seeded = point_key(CONFIG, baseline, "monte_carlo", extra={"seed": 1})
        other_seed = point_key(CONFIG, baseline, "monte_carlo", extra={"seed": 2})
        assert len({plain, seeded, other_seed}) == 3

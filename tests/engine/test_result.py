"""SweepResult and EngineProvenance containers."""

from repro import Parameters, SweepEngine, SweepResult
from repro.analysis.report import FigureData, format_figure
from repro.engine import Axis, EngineProvenance
from repro.models.configurations import sensitivity_configurations


class TestSweepResult:
    def test_is_figure_data(self, baseline):
        result = SweepEngine(jobs=1).sweep(
            sensitivity_configurations(),
            Axis("node_set_size", (16, 64)),
            base_params=baseline,
        )
        assert isinstance(result, SweepResult)
        assert isinstance(result, FigureData)

    def test_format_figure_consumes_it_unchanged(self, baseline):
        result = SweepEngine(jobs=1).sweep(
            sensitivity_configurations(),
            Axis("node_set_size", (16, 64), label="node set size N"),
            base_params=baseline,
            title="Engine sweep",
        )
        rendered = format_figure(result)
        assert "Engine sweep" in rendered
        assert "node set size N" in rendered

    def test_figure_data_renderers_work(self, baseline):
        result = SweepEngine(jobs=1).sweep(
            sensitivity_configurations(),
            Axis("node_set_size", (16, 64)),
            base_params=baseline,
        )
        csv = result.to_csv()
        assert csv.splitlines()[0].startswith("node_set_size")
        payload = result.to_dict()
        assert len(payload["series"]) == 3


class TestEngineProvenance:
    def test_defaults(self):
        prov = EngineProvenance()
        assert prov.jobs == 1
        assert not prov.cache_enabled
        assert "disk cache off" in prov.describe()

    def test_describe_with_cache(self):
        prov = EngineProvenance(cache_enabled=True, cache_hits=3, cache_misses=1)
        text = prov.describe()
        assert "3 hits" in text
        assert "1 misses" in text

"""The unified repro.evaluate() facade."""

import math

import pytest

import repro
from repro import ALL_CONFIGURATIONS, Configuration, InternalRaid, Parameters
from repro.core.solvers import SolveOptions
from repro.engine.facade import evaluate
from repro.sim import accelerated_parameters, estimate_mttdl


class TestAnalyticParity:
    @pytest.mark.parametrize("config", ALL_CONFIGURATIONS, ids=lambda c: c.key)
    def test_matches_pre_engine_entry_point(self, config, baseline):
        """repro.evaluate() must equal the old evaluate()/reliability path
        for every one of the paper's nine configurations."""
        new = evaluate(config, baseline)
        old = config.reliability(baseline, "exact")
        assert new.mttdl_hours == old.mttdl_hours
        assert new.events_per_pb_year == old.events_per_pb_year

    @pytest.mark.solvers
    @pytest.mark.parametrize("config", ALL_CONFIGURATIONS, ids=lambda c: c.key)
    def test_sparse_backend_agrees(self, config, baseline):
        dense = evaluate(config, baseline)
        sparse = evaluate(
            config, baseline, options=SolveOptions(backend="sparse_iterative")
        )
        assert math.isclose(
            sparse.mttdl_hours, dense.mttdl_hours, rel_tol=1e-9
        )

    def test_exact_rates_differ_from_approx(self, baseline):
        config = ALL_CONFIGURATIONS[4]
        approx = evaluate(config, baseline)
        exact = evaluate(
            config, baseline, options=SolveOptions(rates_method="exact")
        )
        assert approx.mttdl_hours != exact.mttdl_hours


class TestClosedFormParity:
    @pytest.mark.parametrize("config", ALL_CONFIGURATIONS, ids=lambda c: c.key)
    def test_matches_pre_engine_entry_point(self, config, baseline):
        new = evaluate(
            config, baseline, options=SolveOptions(backend="closed_form")
        )
        old = config.reliability(baseline, "approx")
        assert new.mttdl_hours == old.mttdl_hours


class TestMonteCarlo:
    def test_matches_estimator_mean(self):
        base = Parameters.with_overrides(node_set_size=12, redundancy_set_size=6)
        acc = accelerated_parameters(base, failure_scale=200.0)
        config = Configuration(InternalRaid.NONE, 1)
        result = evaluate(
            config,
            acc,
            options=SolveOptions(backend="monte_carlo"),
            replicas=10,
            seed=7,
        )
        mc = estimate_mttdl(config, acc, replicas=10, seed=7)
        assert result.mttdl_hours == mc.mean_hours

    def test_rebuild_override_rejected(self, baseline):
        with pytest.raises(ValueError, match="rebuild"):
            evaluate(
                ALL_CONFIGURATIONS[0],
                baseline,
                options=SolveOptions(backend="monte_carlo"),
                rebuild=object(),
            )


class TestMethodShim:
    """The deprecated method= keyword still works, with a warning."""

    def test_analytic_method_warns_and_matches(self, baseline):
        config = ALL_CONFIGURATIONS[0]
        with pytest.warns(DeprecationWarning, match="options"):
            old_style = evaluate(config, baseline, method="analytic")
        assert old_style.mttdl_hours == evaluate(config, baseline).mttdl_hours

    def test_exact_alias(self, baseline):
        config = ALL_CONFIGURATIONS[4]
        with pytest.warns(DeprecationWarning):
            shimmed = evaluate(config, baseline, method="exact")
        assert shimmed.mttdl_hours == evaluate(config, baseline).mttdl_hours

    def test_approx_alias_maps_to_closed_form(self, baseline):
        config = ALL_CONFIGURATIONS[1]
        with pytest.warns(DeprecationWarning):
            shimmed = evaluate(config, baseline, method="approx")
        assert (
            shimmed.mttdl_hours
            == evaluate(
                config, baseline, options=SolveOptions(backend="closed_form")
            ).mttdl_hours
        )

    def test_method_with_compatible_options(self, baseline):
        config = ALL_CONFIGURATIONS[0]
        with pytest.warns(DeprecationWarning):
            result = evaluate(
                config,
                baseline,
                method="analytic",
                options=SolveOptions(backend="sparse_iterative"),
            )
        assert result.mttdl_hours > 0

    def test_method_conflicting_with_options_rejected(self, baseline):
        config = ALL_CONFIGURATIONS[0]
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="conflicts"):
                evaluate(
                    config,
                    baseline,
                    method="closed_form",
                    options=SolveOptions(backend="sparse_iterative"),
                )

    def test_unknown_method_rejected(self, baseline):
        with pytest.raises(ValueError, match="unknown method"):
            evaluate(ALL_CONFIGURATIONS[0], baseline, method="magic")


class TestApiSurface:
    def test_exported_from_package_root(self):
        assert repro.evaluate is evaluate

    def test_default_params_is_baseline(self):
        config = ALL_CONFIGURATIONS[0]
        assert (
            evaluate(config).mttdl_hours
            == evaluate(config, Parameters.baseline()).mttdl_hours
        )

    def test_evaluate_all_still_exported(self, baseline):
        pairs = repro.evaluate_all(baseline, ALL_CONFIGURATIONS[:2])
        assert len(pairs) == 2
        config, result = pairs[0]
        assert result.mttdl_hours == config.reliability(baseline).mttdl_hours

"""The unified repro.evaluate() facade."""

import pytest

import repro
from repro import ALL_CONFIGURATIONS, Configuration, InternalRaid, Parameters
from repro.engine.facade import evaluate
from repro.sim import accelerated_parameters, estimate_mttdl


class TestAnalyticParity:
    @pytest.mark.parametrize("config", ALL_CONFIGURATIONS, ids=lambda c: c.key)
    def test_matches_pre_engine_entry_point(self, config, baseline):
        """repro.evaluate() must equal the old evaluate()/reliability path
        for every one of the paper's nine configurations."""
        new = evaluate(config, baseline, method="analytic")
        old = config.reliability(baseline, "exact")
        assert new.mttdl_hours == old.mttdl_hours
        assert new.events_per_pb_year == old.events_per_pb_year

    def test_exact_alias(self, baseline):
        config = ALL_CONFIGURATIONS[4]
        assert (
            evaluate(config, baseline, method="exact").mttdl_hours
            == evaluate(config, baseline, method="analytic").mttdl_hours
        )


class TestClosedFormParity:
    @pytest.mark.parametrize("config", ALL_CONFIGURATIONS, ids=lambda c: c.key)
    def test_matches_pre_engine_entry_point(self, config, baseline):
        new = evaluate(config, baseline, method="closed_form")
        old = config.reliability(baseline, "approx")
        assert new.mttdl_hours == old.mttdl_hours

    def test_approx_alias(self, baseline):
        config = ALL_CONFIGURATIONS[1]
        assert (
            evaluate(config, baseline, method="approx").mttdl_hours
            == evaluate(config, baseline, method="closed_form").mttdl_hours
        )


class TestMonteCarlo:
    def test_matches_estimator_mean(self):
        base = Parameters.with_overrides(node_set_size=12, redundancy_set_size=6)
        acc = accelerated_parameters(base, failure_scale=200.0)
        config = Configuration(InternalRaid.NONE, 1)
        result = evaluate(config, acc, method="monte_carlo", replicas=10, seed=7)
        mc = estimate_mttdl(config, acc, replicas=10, seed=7)
        assert result.mttdl_hours == mc.mean_hours

    def test_rebuild_override_rejected(self, baseline):
        with pytest.raises(ValueError, match="rebuild"):
            evaluate(
                ALL_CONFIGURATIONS[0],
                baseline,
                method="monte_carlo",
                rebuild=object(),
            )


class TestApiSurface:
    def test_exported_from_package_root(self):
        assert repro.evaluate is evaluate

    def test_default_params_is_baseline(self):
        config = ALL_CONFIGURATIONS[0]
        assert (
            evaluate(config).mttdl_hours
            == evaluate(config, Parameters.baseline()).mttdl_hours
        )

    def test_unknown_method_rejected(self, baseline):
        with pytest.raises(ValueError, match="unknown method"):
            evaluate(ALL_CONFIGURATIONS[0], baseline, method="magic")

    def test_evaluate_all_still_exported(self, baseline):
        pairs = repro.evaluate_all(baseline, ALL_CONFIGURATIONS[:2])
        assert len(pairs) == 2
        config, result = pairs[0]
        assert result.mttdl_hours == config.reliability(baseline).mttdl_hours

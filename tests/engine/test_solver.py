"""Solver layer: method normalization, batched solves, chunk evaluation."""

import pytest

from repro import ALL_CONFIGURATIONS, Parameters
from repro.engine import evaluate_chunk, mttdl_batched, normalize_method
from repro.engine.solver import SolveContext


class TestNormalizeMethod:
    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("analytic", "analytic"),
            ("exact", "analytic"),
            ("closed_form", "closed_form"),
            ("approx", "closed_form"),
            ("monte_carlo", "monte_carlo"),
        ],
    )
    def test_aliases(self, alias, canonical):
        assert normalize_method(alias) == canonical

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            normalize_method("simulation")


class TestMttdlBatched:
    def test_bitwise_equal_to_scalar_solves(self, baseline):
        """Stacked GTH over mixed structures reproduces every chain's own
        mean_time_to_absorption to the last bit."""
        chains = [c.chain(baseline) for c in ALL_CONFIGURATIONS]
        batched = mttdl_batched(chains)
        scalar = [chain.mean_time_to_absorption() for chain in chains]
        assert batched == scalar

    def test_mixed_parameter_points(self, baseline):
        points = [
            baseline,
            baseline.replace(node_mttf_hours=50_000.0),
            baseline.replace(drive_mttf_hours=750_000.0),
        ]
        chains = [c.chain(p) for p in points for c in ALL_CONFIGURATIONS[:3]]
        assert mttdl_batched(chains) == [
            chain.mean_time_to_absorption() for chain in chains
        ]


class TestEvaluateChunk:
    def test_analytic_matches_reliability(self, baseline):
        tasks = [(c, baseline, "analytic") for c in ALL_CONFIGURATIONS]
        mttdls = evaluate_chunk(tasks)
        expected = [c.mttdl_hours(baseline, "exact") for c in ALL_CONFIGURATIONS]
        assert mttdls == expected

    def test_closed_form_matches_reliability(self, baseline):
        tasks = [(c, baseline, "closed_form") for c in ALL_CONFIGURATIONS]
        mttdls = evaluate_chunk(tasks)
        expected = [c.mttdl_hours(baseline, "approx") for c in ALL_CONFIGURATIONS]
        assert mttdls == expected

    def test_memo_reuse_does_not_change_results(self, baseline):
        """A context warm from other points returns the same floats as a
        cold one."""
        points = [baseline.replace(node_mttf_hours=float(m)) for m in
                  (100_000, 200_000, 300_000)]
        tasks = [(c, p, "analytic") for p in points for c in ALL_CONFIGURATIONS]
        warm_ctx = SolveContext()
        evaluate_chunk(tasks, warm_ctx)  # warm the memos
        warm = evaluate_chunk(tasks, warm_ctx)
        cold = evaluate_chunk(tasks, SolveContext())
        assert warm == cold
        assert warm_ctx.specs.hits > 0
        assert warm_ctx.array_hits > 0

    def test_monte_carlo_rejected(self, baseline):
        with pytest.raises(ValueError):
            evaluate_chunk([(ALL_CONFIGURATIONS[0], baseline, "monte_carlo")])

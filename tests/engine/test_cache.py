"""DiskCache behavior: round-trips, corruption tolerance, counters."""

import pytest

from repro.engine import DiskCache

KEY = "ab" * 32
OTHER = "cd" * 32


class TestDiskCache:
    def test_miss_then_hit(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get(KEY) is None
        cache.put(KEY, {"mttdl_hours": 1.5})
        assert cache.get(KEY) == {"mttdl_hours": 1.5}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_float_round_trip_is_exact(self, tmp_path):
        cache = DiskCache(tmp_path)
        value = 1.234567890123456789e17 / 3.0
        cache.put(KEY, {"mttdl_hours": value})
        assert cache.get(KEY)["mttdl_hours"] == value

    def test_lazy_directory_creation(self, tmp_path):
        root = tmp_path / "sub" / "cache"
        cache = DiskCache(root)
        assert not root.exists()
        assert len(cache) == 0
        cache.put(KEY, {"x": 1})
        assert root.is_dir()
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"x": 1})
        (tmp_path / f"{KEY}.json").write_text("{not json", encoding="utf-8")
        assert cache.get(KEY) is None
        assert cache.misses == 1

    def test_non_dict_payload_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        (tmp_path / f"{KEY}.json").write_text("[1, 2]", encoding="utf-8")
        assert cache.get(KEY) is None

    def test_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"x": 1})
        cache.put(OTHER, {"x": 2})
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get(KEY) is None

    def test_rejects_non_hex_keys(self, tmp_path):
        cache = DiskCache(tmp_path)
        with pytest.raises(ValueError):
            cache.get("../escape")
        with pytest.raises(ValueError):
            cache.put("UPPER", {})

    def test_no_temp_file_left_behind(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"x": 1})
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []

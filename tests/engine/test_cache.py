"""DiskCache behavior: round-trips, corruption tolerance, counters."""

import logging

import pytest

from repro.engine import DiskCache, point_payload_valid

KEY = "ab" * 32
OTHER = "cd" * 32


class TestDiskCache:
    def test_miss_then_hit(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get(KEY) is None
        cache.put(KEY, {"mttdl_hours": 1.5})
        assert cache.get(KEY) == {"mttdl_hours": 1.5}
        assert cache.hits == 1
        assert cache.misses == 1

    def test_float_round_trip_is_exact(self, tmp_path):
        cache = DiskCache(tmp_path)
        value = 1.234567890123456789e17 / 3.0
        cache.put(KEY, {"mttdl_hours": value})
        assert cache.get(KEY)["mttdl_hours"] == value

    def test_lazy_directory_creation(self, tmp_path):
        root = tmp_path / "sub" / "cache"
        cache = DiskCache(root)
        assert not root.exists()
        assert len(cache) == 0
        cache.put(KEY, {"x": 1})
        assert root.is_dir()
        assert len(cache) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"x": 1})
        (tmp_path / f"{KEY}.json").write_text("{not json", encoding="utf-8")
        assert cache.get(KEY) is None
        assert cache.misses == 1

    def test_non_dict_payload_is_a_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        (tmp_path / f"{KEY}.json").write_text("[1, 2]", encoding="utf-8")
        assert cache.get(KEY) is None

    def test_clear(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"x": 1})
        cache.put(OTHER, {"x": 2})
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get(KEY) is None

    def test_rejects_non_hex_keys(self, tmp_path):
        cache = DiskCache(tmp_path)
        with pytest.raises(ValueError):
            cache.get("../escape")
        with pytest.raises(ValueError):
            cache.put("UPPER", {})

    def test_no_temp_file_left_behind(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put(KEY, {"x": 1})
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []


class TestCorruptionHardening:
    """Planted garbage must degrade to a logged miss and be overwritten —
    never raise, never return a damaged payload."""

    PLANTS = {
        "garbage-bytes": b"\x00\xffnot json at all\xfe",
        "truncated": b'{"mttdl_hours": 1.5, "eve',
        "empty": b"",
        "non-dict": b"[1, 2, 3]",
        "wrong-unicode": b"\xff\xfe\x00j",
    }

    @pytest.mark.parametrize("mode", sorted(PLANTS))
    def test_planted_damage_is_a_rejected_miss(self, tmp_path, mode, caplog):
        cache = DiskCache(tmp_path)
        (tmp_path / f"{KEY}.json").write_bytes(self.PLANTS[mode])
        with caplog.at_level(logging.WARNING, logger="repro.engine.cache"):
            assert cache.get(KEY) is None
        assert cache.misses == 1
        assert cache.rejected == 1
        assert any("discarding cache entry" in r.message for r in caplog.records)
        # The damaged file is gone, so a recompute can overwrite it.
        assert not (tmp_path / f"{KEY}.json").exists()

    @pytest.mark.parametrize("mode", sorted(PLANTS))
    def test_overwrite_after_damage_round_trips(self, tmp_path, mode):
        cache = DiskCache(tmp_path)
        (tmp_path / f"{KEY}.json").write_bytes(self.PLANTS[mode])
        assert cache.get(KEY) is None
        cache.put(KEY, {"mttdl_hours": 42.0})
        assert cache.get(KEY) == {"mttdl_hours": 42.0}
        assert cache.hits == 1

    def test_schema_mismatch_with_validator(self, tmp_path, caplog):
        cache = DiskCache(tmp_path, validator=point_payload_valid)
        # Valid JSON dict, but not the point-payload schema.
        (tmp_path / f"{KEY}.json").write_text(
            '{"mttdl_hours": "not a number"}', encoding="utf-8"
        )
        with caplog.at_level(logging.WARNING, logger="repro.engine.cache"):
            assert cache.get(KEY) is None
        assert cache.rejected == 1
        assert any("schema mismatch" in r.message for r in caplog.records)

    def test_validator_accepts_good_payload(self, tmp_path):
        cache = DiskCache(tmp_path, validator=point_payload_valid)
        cache.put(KEY, {"mttdl_hours": 7.0})
        assert cache.get(KEY) == {"mttdl_hours": 7.0}
        assert cache.rejected == 0

    def test_clean_miss_is_not_rejected(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get(KEY) is None
        assert cache.misses == 1
        assert cache.rejected == 0

    def test_point_payload_valid(self):
        assert point_payload_valid({"mttdl_hours": 1.0})
        assert point_payload_valid({"mttdl_hours": 3})
        assert not point_payload_valid({"mttdl_hours": True})
        assert not point_payload_valid({"mttdl_hours": "1.0"})
        assert not point_payload_valid({})


class TestConcurrentWriters:
    """Same-key races: concurrent put/get must never surface torn data,
    and a reader must never delete a writer's fresh entry."""

    def test_thread_hammer_one_key(self, tmp_path):
        """Many writer and reader threads on one key: every observed
        payload is complete, nothing is rejected, no temp files leak."""
        import threading

        cache = DiskCache(tmp_path, validator=point_payload_valid)
        stop = threading.Event()
        seen = []
        errors = []

        def writer(worker):
            i = 0
            while not stop.is_set():
                # Payload is internally consistent: a torn read could
                # not produce matching fields and still parse.
                cache.put(
                    KEY, {"mttdl_hours": float(i), "worker": worker, "i": i}
                )
                i += 1

        def reader():
            while not stop.is_set():
                payload = cache.get(KEY)
                if payload is None:
                    continue
                try:
                    assert set(payload) == {"mttdl_hours", "worker", "i"}
                    assert payload["mttdl_hours"] == float(payload["i"])
                except AssertionError as exc:
                    errors.append(exc)
                    return
                seen.append(payload["i"])

        threads = [
            threading.Thread(target=writer, args=(w,)) for w in range(4)
        ] + [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        import time

        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join()

        assert not errors, errors[0]
        assert seen, "readers never observed a stored payload"
        assert cache.rejected == 0
        leftovers = list(tmp_path.glob(".tmp-*"))
        assert leftovers == [], leftovers
        # The surviving entry is whole.
        final = cache.get(KEY)
        assert final is not None and point_payload_valid(final)

    def test_reject_spares_concurrently_replaced_entry(
        self, tmp_path, monkeypatch
    ):
        """A reader that saw a corrupt entry must not unlink the fresh
        valid entry a concurrent put() raced in behind its back."""
        import json

        cache = DiskCache(tmp_path)
        path = tmp_path / f"{KEY}.json"
        path.write_text("{torn", encoding="utf-8")

        real_load = json.load

        def racing_load(fh, *args, **kwargs):
            # The reader holds the corrupt file open; before it decides
            # to reject, a concurrent writer replaces the entry.
            DiskCache(tmp_path).put(KEY, {"mttdl_hours": 9.0})
            return real_load(fh, *args, **kwargs)

        monkeypatch.setattr(json, "load", racing_load)
        assert cache.get(KEY) is None  # the corrupt bytes: a miss
        monkeypatch.undo()
        assert cache.rejected == 1
        # The freshly written entry survived the rejection's unlink.
        assert path.exists()
        assert cache.get(KEY) == {"mttdl_hours": 9.0}

    def test_reject_still_unlinks_unreplaced_corruption(self, tmp_path):
        cache = DiskCache(tmp_path)
        path = tmp_path / f"{KEY}.json"
        path.write_text("{torn", encoding="utf-8")
        assert cache.get(KEY) is None
        assert cache.rejected == 1
        assert not path.exists()

"""Seeded determinism: same seed, same numbers, at any fan-out width.

Replica ``i`` of a Monte-Carlo estimate is seeded from ``(seed, i)``
independently of how replicas are distributed over processes, so the
estimate — and the underlying event traces — must be *identical* between
serial and pooled runs and between repeated runs with the same seed.
"""

from repro.models import Configuration, InternalRaid, Parameters
from repro.sim import (
    NoRaidFailureProcess,
    Simulator,
    StreamFactory,
    TraceRecorder,
    accelerated_parameters,
    estimate_mttdl,
)


def _accelerated():
    base = Parameters.baseline().replace(node_set_size=16, redundancy_set_size=8)
    return accelerated_parameters(base, failure_scale=200.0)


def _trace(seed: int):
    """One traced replica of the NFT-2 no-RAID process."""
    params = _accelerated()
    sim = Simulator()
    recorder = TraceRecorder()
    process = NoRaidFailureProcess(
        sim, params, 2, StreamFactory(seed), on_data_loss=recorder.on_loss
    )
    recorder.attach(sim, process)
    sim.run(stop_when=lambda: process.has_lost_data, max_events=10**6)
    recorder.validate()
    return recorder.records


class TestEstimateDeterminism:
    def test_same_seed_same_estimate_across_jobs(self):
        """--jobs 1 and --jobs 4 are bitwise the same estimate (32
        replicas, enough for the pool to actually engage)."""
        config = Configuration(InternalRaid.NONE, 2)
        params = _accelerated()
        serial = estimate_mttdl(config, params, replicas=32, seed=7, jobs=1)
        pooled = estimate_mttdl(config, params, replicas=32, seed=7, jobs=4)
        assert pooled == serial
        assert pooled.mean_hours == serial.mean_hours
        assert pooled.std_error_hours == serial.std_error_hours
        assert pooled.loss_causes == serial.loss_causes

    def test_same_seed_same_estimate_across_runs(self):
        config = Configuration(InternalRaid.RAID5, 1)
        params = _accelerated()
        first = estimate_mttdl(config, params, replicas=16, seed=3, jobs=2)
        second = estimate_mttdl(config, params, replicas=16, seed=3, jobs=2)
        assert first == second

    def test_different_seeds_differ(self):
        config = Configuration(InternalRaid.NONE, 1)
        params = _accelerated()
        a = estimate_mttdl(config, params, replicas=8, seed=1)
        b = estimate_mttdl(config, params, replicas=8, seed=2)
        assert a.mean_hours != b.mean_hours


class TestTraceDeterminism:
    def test_same_seed_identical_event_trace(self):
        """Two same-seed replicas replay the identical timeline: every
        event time, kind, depth and detail matches exactly."""
        first = _trace(seed=42)
        second = _trace(seed=42)
        assert len(first) > 0
        assert first == second

    def test_different_seed_different_trace(self):
        assert _trace(seed=42) != _trace(seed=43)

"""Tests for the fleet-lifetime capacity simulation."""

import pytest

from repro.cluster import SparePolicy
from repro.models import HOURS_PER_YEAR, Parameters
from repro.sim import simulate_lifetime


@pytest.fixture
def params():
    return Parameters.baseline().replace(node_set_size=16, redundancy_set_size=8)


class TestTrajectory:
    def test_samples_cover_horizon(self, params):
        result = simulate_lifetime(
            params, horizon_hours=HOURS_PER_YEAR, seed=0, sample_interval_hours=730
        )
        assert len(result.samples) >= 12
        assert result.samples[0].time_hours == 0.0
        assert result.samples[-1].time_hours <= HOURS_PER_YEAR

    def test_capacity_never_grows_without_spares(self, params):
        result = simulate_lifetime(params, 3 * HOURS_PER_YEAR, seed=1)
        caps = [s.raw_capacity_bytes for s in result.samples]
        assert all(a >= b for a, b in zip(caps, caps[1:]))

    def test_utilization_never_falls_without_spares(self, params):
        result = simulate_lifetime(params, 3 * HOURS_PER_YEAR, seed=2)
        utils = [s.utilization for s in result.samples]
        assert all(b >= a - 1e-12 for a, b in zip(utils, utils[1:]))

    def test_failures_accumulate(self, params):
        # Accelerated aging to make failures certain.
        fast = params.replace(node_mttf_hours=5_000.0, drive_mttf_hours=4_000.0)
        result = simulate_lifetime(fast, HOURS_PER_YEAR, seed=3)
        assert result.drive_failures > 0
        assert result.node_failures > 0

    def test_reproducible(self, params):
        a = simulate_lifetime(params, HOURS_PER_YEAR, seed=9)
        b = simulate_lifetime(params, HOURS_PER_YEAR, seed=9)
        assert a.drive_failures == b.drive_failures
        assert [s.utilization for s in a.samples] == [
            s.utilization for s in b.samples
        ]

    def test_first_time_above(self, params):
        fast = params.replace(node_mttf_hours=3_000.0)
        result = simulate_lifetime(fast, 5 * HOURS_PER_YEAR, seed=4)
        t = result.first_time_above(0.8)
        if t is not None:
            assert any(
                s.time_hours == t and s.utilization > 0.8 for s in result.samples
            )

    def test_invalid_inputs(self, params):
        with pytest.raises(ValueError):
            simulate_lifetime(params, 0.0)
        with pytest.raises(ValueError):
            simulate_lifetime(params, 10.0, sample_interval_hours=0)


class TestWithSparePolicy:
    def test_policy_keeps_utilization_bounded(self, params):
        fast = params.replace(node_mttf_hours=8_000.0, drive_mttf_hours=6_000.0)
        policy = SparePolicy(fast, utilization_threshold=0.9)
        result = simulate_lifetime(
            fast,
            3 * HOURS_PER_YEAR,
            seed=5,
            spare_policy=policy,
            sample_interval_hours=200.0,
        )
        assert result.nodes_added > 0
        # Sampled utilization right after policy application is bounded.
        assert all(s.utilization <= 0.9 + 1e-9 for s in result.samples)

    def test_no_spares_needed_when_reliable(self, params):
        reliable = params.replace(
            node_mttf_hours=1e9, drive_mttf_hours=1e9
        )
        policy = SparePolicy(reliable, utilization_threshold=0.9)
        result = simulate_lifetime(
            reliable, HOURS_PER_YEAR, seed=6, spare_policy=policy
        )
        assert result.nodes_added == 0

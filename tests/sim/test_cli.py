"""Tests for the repro-validate command-line harness."""

import pytest

from repro.sim.cli import main


class TestValidateCli:
    def test_runs_and_reports(self, capsys):
        rc = main(["--replicas", "30", "--scale", "100", "--seed", "3", "--nodes", "12"])
        out = capsys.readouterr().out
        assert "configuration" in out
        assert "worst |z|" in out
        assert rc in (0, 1)

    def test_small_scale_ok(self, capsys):
        # Heavier acceleration keeps runtimes small in CI.
        rc = main(["--replicas", "40", "--scale", "200", "--nodes", "12"])
        assert rc in (0, 1)
        assert "acceleration x200" in capsys.readouterr().out

    def test_bad_arguments(self):
        with pytest.raises(SystemExit):
            main(["--replicas", "1"])
        with pytest.raises(SystemExit):
            main(["--scale", "0"])

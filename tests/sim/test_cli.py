"""Tests for the repro-validate command-line harness."""

import pytest

from repro.sim.cli import main


class TestValidateCli:
    @pytest.mark.tier2
    def test_runs_and_reports(self, capsys):
        rc = main(
            [
                "--replicas", "30", "--scale", "100", "--seed", "3",
                "--nodes", "12", "--no-cache",
            ]
        )
        out = capsys.readouterr().out
        assert "configuration" in out
        assert "worst |z|" in out
        assert rc in (0, 1)

    def test_small_scale_ok(self, capsys):
        # Heavier acceleration keeps runtimes small in CI.
        rc = main(["--replicas", "40", "--scale", "200", "--nodes", "12", "--no-cache"])
        assert rc in (0, 1)
        assert "acceleration x200" in capsys.readouterr().out

    def test_cache_round_trip(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        args = ["--replicas", "10", "--scale", "200", "--nodes", "12", "--verbose"]
        rc1 = main(args)
        first = capsys.readouterr()
        assert "disk cache 0 hits / 5 misses" in first.err
        rc2 = main(args)
        second = capsys.readouterr()
        assert "disk cache 5 hits / 0 misses" in second.err
        assert rc1 == rc2
        assert first.out == second.out

    def test_trace_and_metrics_export(self, capsys, tmp_path):
        from repro.obs import tree_coverage, validate_trace

        trace_path = str(tmp_path / "validate.jsonl")
        metrics_path = str(tmp_path / "metrics.json")
        rc = main(
            ["--replicas", "10", "--scale", "200", "--nodes", "12",
             "--no-cache", "--trace", trace_path, "--metrics", metrics_path]
        )
        assert rc in (0, 1)
        capsys.readouterr()
        spans = validate_trace(trace_path)
        names = {s["name"] for s in spans}
        assert "repro-validate" in names
        assert "validate.case" in names
        assert "sim.estimate_mttdl" in names
        assert "sim.replica_chunk" in names
        assert tree_coverage(spans) >= 0.95
        import json

        flat = json.load(open(metrics_path))
        assert flat["sim.loss_hours.count"] >= 50  # 5 cases x 10 replicas
        assert flat["sim.replicas"] >= 50

    def test_bad_arguments(self):
        with pytest.raises(SystemExit):
            main(["--replicas", "1"])
        with pytest.raises(SystemExit):
            main(["--scale", "0"])

"""Monte-Carlo validation: the headline consistency tests.

The physical simulation re-creates the paper's assumptions from events;
its empirical MTTDL must agree with the analytic chains solved at the
same (accelerated) parameters.
"""

import pytest

from repro.models import Configuration, InternalRaid, InternalRaidNodeModel, Parameters
from repro.sim import MonteCarloResult, accelerated_parameters, estimate_mttdl


@pytest.fixture(scope="module")
def acc():
    base = Parameters.baseline().replace(node_set_size=16, redundancy_set_size=8)
    return accelerated_parameters(base, failure_scale=100.0)


class TestAcceleration:
    def test_scales_mttfs(self):
        base = Parameters.baseline()
        acc = accelerated_parameters(base, 50.0)
        assert acc.node_mttf_hours == pytest.approx(base.node_mttf_hours / 50)
        assert acc.drive_mttf_hours == pytest.approx(base.drive_mttf_hours / 50)
        # Rebuild-side parameters untouched.
        assert acc.rebuild_command_bytes == base.rebuild_command_bytes

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            accelerated_parameters(Parameters.baseline(), 0.0)


class TestAgainstChains:
    @pytest.mark.parametrize("t", [1, 2])
    def test_no_raid_matches_chain(self, acc, t):
        """The no-RAID process is chain-equivalent by construction: the
        empirical mean must sit within sampling error of the solve."""
        config = Configuration(InternalRaid.NONE, t)
        mc = estimate_mttdl(config, acc, replicas=150, seed=11)
        analytic = config.mttdl_hours(acc)
        assert mc.consistent_with(analytic, sigmas=4.0), (
            mc.mean_hours,
            mc.std_error_hours,
            analytic,
        )

    def test_internal_raid_matches_chain_with_exact_rates(self, acc):
        """Internal RAID needs the exact lambda_D / lambda_S extraction in
        the accelerated regime (the paper's approximations assume
        mu >> lambda)."""
        config = Configuration(InternalRaid.RAID5, 1)
        mc = estimate_mttdl(config, acc, replicas=150, seed=13)
        analytic = InternalRaidNodeModel(
            acc, InternalRaid.RAID5, 1, rates_method="exact"
        ).mttdl_exact()
        assert mc.consistent_with(analytic, sigmas=4.0)

    def test_loss_cause_mix_reported(self, acc):
        mc = estimate_mttdl(Configuration(InternalRaid.NONE, 1), acc, replicas=60, seed=5)
        assert sum(count for _, count in mc.loss_causes) == 60


class TestResultType:
    def test_ci_and_consistency(self):
        result = MonteCarloResult(
            mean_hours=100.0, std_error_hours=5.0, replicas=10, loss_causes=()
        )
        lo, hi = result.ci95_hours
        assert lo == pytest.approx(100 - 1.96 * 5)
        assert hi == pytest.approx(100 + 1.96 * 5)
        assert result.consistent_with(110.0)
        assert not result.consistent_with(200.0)

    def test_replica_minimum(self, acc):
        with pytest.raises(ValueError):
            estimate_mttdl(Configuration(InternalRaid.NONE, 1), acc, replicas=1)


class TestReplicaFanOut:
    def test_jobs_do_not_change_the_estimate(self, acc):
        """Replicas are independently seeded, so any pool width returns the
        identical estimate (tuple-of-int hashing is process-stable)."""
        config = Configuration(InternalRaid.NONE, 1)
        serial = estimate_mttdl(config, acc, replicas=12, seed=5, jobs=1)
        pooled = estimate_mttdl(config, acc, replicas=12, seed=5, jobs=4)
        assert pooled == serial

    def test_seed_still_controls_the_estimate(self, acc):
        config = Configuration(InternalRaid.NONE, 1)
        a = estimate_mttdl(config, acc, replicas=6, seed=5)
        b = estimate_mttdl(config, acc, replicas=6, seed=6)
        assert a.mean_hours != b.mean_hours

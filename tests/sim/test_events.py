"""Tests for the discrete-event kernel."""

import math

import pytest

from repro.sim import EventQueue, SimulationError, Simulator


class TestEventQueue:
    def test_fifo_tie_breaking(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda: order.append("a"))
        q.push(1.0, lambda: order.append("b"))
        first = q.pop()
        second = q.pop()
        first.callback()
        second.callback()
        assert order == ["a", "b"]

    def test_time_ordering(self):
        q = EventQueue()
        q.push(5.0, lambda: None)
        h = q.push(2.0, lambda: None)
        assert q.pop() is h

    def test_cancellation(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        h.cancel()
        assert q.pop() is None
        assert len(q) == 0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        h.cancel()
        assert q.peek_time() == 2.0

    def test_infinite_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(math.inf, lambda: None)


class TestSimulator:
    def test_runs_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(3.0, lambda: fired.append(3.0))
        sim.schedule_at(1.0, lambda: fired.append(1.0))
        sim.schedule_after(2.0, lambda: fired.append(2.0))
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
        assert sim.now == 3.0

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_run_until_advances_clock(self):
        sim = Simulator()
        sim.schedule_at(100.0, lambda: None)
        sim.run(until=10.0)
        assert sim.now == 10.0
        assert sim.pending_events == 1

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(depth):
            fired.append(sim.now)
            if depth > 0:
                sim.schedule_after(1.0, lambda: chain(depth - 1))

        sim.schedule_at(0.0, lambda: chain(3))
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_stop_when(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run(stop_when=lambda: len(fired) >= 2)
        assert fired == [1.0, 2.0]

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule_after(1.0, forever)

        sim.schedule_at(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=100)

    def test_cancelled_event_not_processed(self):
        sim = Simulator()
        fired = []
        h = sim.schedule_at(1.0, lambda: fired.append("x"))
        h.cancel()
        sim.run()
        assert fired == []
        assert sim.events_processed == 0

    def test_step(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        assert sim.step()
        assert not sim.step()

"""Tests for simulation tracing."""

import pytest

from repro.models import Parameters
from repro.sim import (
    NoRaidFailureProcess,
    Simulator,
    StreamFactory,
    TraceRecorder,
)


@pytest.fixture
def traced_run():
    params = Parameters.baseline().replace(
        node_set_size=8,
        redundancy_set_size=4,
        node_mttf_hours=500.0,
        drive_mttf_hours=400.0,
    )
    sim = Simulator()
    recorder = TraceRecorder()
    process = NoRaidFailureProcess(
        sim, params, 2, StreamFactory(3), on_data_loss=recorder.on_loss
    )
    recorder.attach(sim, process)
    sim.run(stop_when=lambda: process.has_lost_data, max_events=10**6)
    return recorder, process


class TestRecorder:
    def test_records_end_with_loss(self, traced_run):
        recorder, process = traced_run
        assert process.has_lost_data
        assert recorder.records[-1].kind == "loss"

    def test_structural_validity(self, traced_run):
        recorder, _ = traced_run
        recorder.validate()

    def test_depth_never_exceeds_tolerance_before_loss(self, traced_run):
        recorder, _ = traced_run
        non_loss = [r for r in recorder.records if r.kind != "loss"]
        assert max(r.depth for r in non_loss) <= 2

    def test_failures_and_repairs_interleave(self, traced_run):
        recorder, _ = traced_run
        kinds = {r.kind for r in recorder.records}
        assert "failure" in kinds
        # Most replicas see at least one completed repair before dying.
        timeline = recorder.depth_timeline()
        assert len(timeline) >= 1

    def test_time_at_depth_sums_to_total(self, traced_run):
        recorder, _ = traced_run
        end = recorder.records[-1].time_hours
        total = sum(recorder.time_at_depth(d, until=end) for d in range(0, 4))
        assert total == pytest.approx(end, rel=1e-9)

    def test_max_depth(self, traced_run):
        recorder, _ = traced_run
        assert recorder.max_depth() >= 1

    def test_validate_catches_corruption(self, traced_run):
        recorder, _ = traced_run
        from repro.sim import TraceRecord

        recorder.records.insert(
            0, TraceRecord(time_hours=1e9, kind="failure", depth=1)
        )
        with pytest.raises(AssertionError):
            recorder.validate()

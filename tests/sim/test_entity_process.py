"""Tests for the per-entity (Weibull) failure process."""

import math

import numpy as np
import pytest

from repro.models import Configuration, InternalRaid, Parameters
from repro.sim import (
    EntityNoRaidProcess,
    Simulator,
    StreamFactory,
    WeibullLifetime,
)


@pytest.fixture
def acc_params():
    return Parameters.baseline().replace(
        node_set_size=10,
        redundancy_set_size=5,
        node_mttf_hours=2_000.0,
        drive_mttf_hours=1_500.0,
    )


def mean_time_to_loss(params, t, runs, **kwargs):
    times = []
    for seed in range(runs):
        sim = Simulator()
        process = EntityNoRaidProcess(
            sim, params, t, StreamFactory(seed), **kwargs
        )
        sim.run(stop_when=lambda: process.has_lost_data, max_events=10**7)
        assert process.has_lost_data
        times.append(process.losses[0].time_hours)
    arr = np.array(times)
    return float(arr.mean()), float(arr.std(ddof=1) / math.sqrt(runs))


class TestWeibullLifetime:
    def test_exponential_special_case_mean(self):
        rng = np.random.default_rng(0)
        lifetime = WeibullLifetime(100.0, shape=1.0)
        samples = [lifetime.sample(rng) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.05)

    def test_mean_preserved_across_shapes(self):
        rng = np.random.default_rng(1)
        for shape in (0.7, 1.5, 3.0):
            lifetime = WeibullLifetime(100.0, shape=shape)
            samples = [lifetime.sample(rng) for _ in range(20_000)]
            assert np.mean(samples) == pytest.approx(100.0, rel=0.05)

    def test_residual_memoryless_when_shape_one(self):
        rng = np.random.default_rng(2)
        lifetime = WeibullLifetime(100.0, shape=1.0)
        residuals = [lifetime.sample_residual(rng, age=500.0) for _ in range(20_000)]
        assert np.mean(residuals) == pytest.approx(100.0, rel=0.05)

    def test_residual_shrinks_with_age_under_wearout(self):
        rng = np.random.default_rng(3)
        lifetime = WeibullLifetime(100.0, shape=3.0)
        young = np.mean([lifetime.sample_residual(rng, 1.0) for _ in range(5000)])
        old = np.mean([lifetime.sample_residual(rng, 150.0) for _ in range(5000)])
        assert old < young / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            WeibullLifetime(0.0)
        with pytest.raises(ValueError):
            WeibullLifetime(10.0, shape=0.0)
        with pytest.raises(ValueError):
            WeibullLifetime(10.0).sample_residual(np.random.default_rng(0), -1.0)


class TestEntityProcess:
    def test_shape_one_matches_chain(self, acc_params):
        """With exponential lifetimes the per-entity process reproduces the
        Markov chain's MTTDL — the cross-validation of both machineries."""
        mean, sem = mean_time_to_loss(acc_params, 2, runs=120)
        chain = Configuration(InternalRaid.NONE, 2).mttdl_hours(acc_params)
        assert abs(chain - mean) <= 4.0 * sem

    def test_infant_mortality_is_catastrophic(self, acc_params):
        """Decreasing hazard clusters failures early: much shorter time to
        first loss at the same mean MTTF."""
        exp_mean, _ = mean_time_to_loss(acc_params, 2, runs=60)
        infant_mean, _ = mean_time_to_loss(
            acc_params, 2, runs=60, node_shape=0.7, drive_shape=0.7
        )
        assert infant_mean < 0.5 * exp_mean

    def test_wearout_delays_first_loss(self, acc_params):
        exp_mean, _ = mean_time_to_loss(acc_params, 2, runs=60)
        wear_mean, _ = mean_time_to_loss(
            acc_params, 2, runs=60, node_shape=3.0, drive_shape=3.0
        )
        assert wear_mean > 1.5 * exp_mean

    def test_reproducible(self, acc_params):
        a, _ = mean_time_to_loss(acc_params, 1, runs=5)
        b, _ = mean_time_to_loss(acc_params, 1, runs=5)
        assert a == b

    def test_word_and_counters(self, acc_params):
        sim = Simulator()
        process = EntityNoRaidProcess(sim, acc_params, 2, StreamFactory(0))
        assert process.outstanding_failures == 0
        assert process.failure_word == ""

    def test_validation(self, acc_params):
        sim = Simulator()
        with pytest.raises(ValueError):
            EntityNoRaidProcess(sim, acc_params, 0, StreamFactory(0))
        with pytest.raises(ValueError):
            EntityNoRaidProcess(
                sim,
                acc_params.replace(node_set_size=2, redundancy_set_size=2),
                2,
                StreamFactory(0),
            )

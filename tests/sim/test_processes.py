"""Tests for the physical failure/rebuild processes."""

import pytest

from repro.models import InternalRaid, Parameters
from repro.sim import (
    InternalRaidFailureProcess,
    NoRaidFailureProcess,
    Simulator,
    StreamFactory,
)


@pytest.fixture
def acc_params():
    """Heavily accelerated so losses happen within a few simulated weeks."""
    return Parameters.baseline().replace(
        node_set_size=8,
        redundancy_set_size=4,
        node_mttf_hours=400.0,
        drive_mttf_hours=300.0,
    )


def run_to_loss(process, sim, max_events=2_000_000):
    sim.run(max_events=max_events, stop_when=lambda: process.has_lost_data)
    assert process.has_lost_data
    return process.losses[0]


class TestNoRaidProcess:
    def test_reaches_data_loss(self, acc_params):
        sim = Simulator()
        process = NoRaidFailureProcess(sim, acc_params, 2, StreamFactory(0))
        event = run_to_loss(process, sim)
        assert event.time_hours > 0
        assert event.cause in (
            "failure-beyond-tolerance",
            "hard-error-critical-rebuild",
        )

    def test_stops_generating_after_loss(self, acc_params):
        sim = Simulator()
        process = NoRaidFailureProcess(sim, acc_params, 1, StreamFactory(1))
        run_to_loss(process, sim)
        losses = len(process.losses)
        sim.run()
        assert len(process.losses) == losses

    def test_reproducible(self, acc_params):
        times = []
        for _ in range(2):
            sim = Simulator()
            process = NoRaidFailureProcess(sim, acc_params, 2, StreamFactory(42))
            times.append(run_to_loss(process, sim).time_hours)
        assert times[0] == times[1]

    def test_word_tracking(self, acc_params):
        sim = Simulator()
        process = NoRaidFailureProcess(sim, acc_params, 3, StreamFactory(3))
        assert process.failure_word == ""
        assert process.outstanding_failures == 0

    def test_higher_tolerance_survives_longer(self, acc_params):
        means = []
        for t in (1, 2):
            total = 0.0
            for seed in range(40):
                sim = Simulator()
                process = NoRaidFailureProcess(
                    sim, acc_params, t, StreamFactory(seed)
                )
                total += run_to_loss(process, sim).time_hours
            means.append(total / 40)
        assert means[1] > 2 * means[0]

    def test_deterministic_repair_mode(self, acc_params):
        sim = Simulator()
        process = NoRaidFailureProcess(
            sim, acc_params, 2, StreamFactory(5), repair_distribution="deterministic"
        )
        run_to_loss(process, sim)

    def test_correlated_bursts_hurt(self, acc_params):
        """With burst size above the tolerance, correlated failures cut
        survival time versus independent failures at the same total rate."""
        def mean_ttl(burst_fraction, runs=50):
            total = 0.0
            for seed in range(runs):
                sim = Simulator()
                process = NoRaidFailureProcess(
                    sim,
                    acc_params,
                    2,
                    StreamFactory(seed),
                    burst_fraction=burst_fraction,
                    burst_size=3,
                )
                total += run_to_loss(process, sim).time_hours
            return total / runs

        independent = mean_ttl(0.0)
        correlated = mean_ttl(0.5)
        assert correlated < independent

    def test_burst_smaller_than_tolerance_recoverable(self, acc_params):
        """Bursts within the tolerance do not cause instant loss."""
        sim = Simulator()
        process = NoRaidFailureProcess(
            sim,
            acc_params,
            3,
            StreamFactory(4),
            burst_fraction=1.0,
            burst_size=2,
        )
        event = run_to_loss(process, sim)
        assert event.time_hours > 0

    def test_burst_validation(self, acc_params):
        sim = Simulator()
        with pytest.raises(ValueError):
            NoRaidFailureProcess(
                sim, acc_params, 2, StreamFactory(0), burst_fraction=1.5
            )
        with pytest.raises(ValueError):
            NoRaidFailureProcess(
                sim, acc_params, 2, StreamFactory(0), burst_size=1
            )

    def test_validation(self, acc_params):
        sim = Simulator()
        with pytest.raises(ValueError):
            NoRaidFailureProcess(sim, acc_params, 0, StreamFactory(0))
        with pytest.raises(ValueError):
            NoRaidFailureProcess(
                sim, acc_params, 2, StreamFactory(0), repair_distribution="weird"
            )
        with pytest.raises(ValueError):
            NoRaidFailureProcess(sim, acc_params, 8, StreamFactory(0))


class TestInternalRaidProcess:
    def test_reaches_data_loss(self, acc_params):
        sim = Simulator()
        process = InternalRaidFailureProcess(
            sim, acc_params, InternalRaid.RAID5, 2, StreamFactory(0)
        )
        event = run_to_loss(process, sim)
        assert event.cause in (
            "failure-beyond-tolerance",
            "hard-error-critical-restripe",
        )

    def test_raid6_survives_longer_than_raid5(self, acc_params):
        means = []
        for level in (InternalRaid.RAID5, InternalRaid.RAID6):
            total = 0.0
            for seed in range(30):
                sim = Simulator()
                process = InternalRaidFailureProcess(
                    sim, acc_params, level, 1, StreamFactory(seed)
                )
                total += run_to_loss(process, sim).time_hours
            means.append(total / 30)
        assert means[1] > means[0]

    def test_nodes_down_tracking(self, acc_params):
        sim = Simulator()
        process = InternalRaidFailureProcess(
            sim, acc_params, InternalRaid.RAID5, 2, StreamFactory(2)
        )
        assert process.nodes_down == 0

    def test_validation(self, acc_params):
        sim = Simulator()
        with pytest.raises(ValueError):
            InternalRaidFailureProcess(
                sim, acc_params, InternalRaid.NONE, 2, StreamFactory(0)
            )
        with pytest.raises(ValueError):
            InternalRaidFailureProcess(
                sim, acc_params, InternalRaid.RAID5, 0, StreamFactory(0)
            )
        with pytest.raises(ValueError):
            InternalRaidFailureProcess(
                sim,
                acc_params.replace(drives_per_node=2),
                InternalRaid.RAID6,
                1,
                StreamFactory(0),
            )

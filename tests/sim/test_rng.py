"""Tests for reproducible random streams."""

import numpy as np
import pytest

from repro.sim import StreamFactory, bernoulli, exponential


class TestStreamFactory:
    def test_same_name_same_stream(self):
        f = StreamFactory(seed=1)
        assert f.stream("a") is f.stream("a")

    def test_different_names_independent(self):
        f = StreamFactory(seed=1)
        a = f.stream("a").random(5)
        b = f.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_reproducible_across_factories(self):
        a = StreamFactory(seed=7).stream("x").random(5)
        b = StreamFactory(seed=7).stream("x").random(5)
        assert np.allclose(a, b)

    def test_request_order_does_not_matter(self):
        f1 = StreamFactory(seed=7)
        f1.stream("a")
        x1 = f1.stream("x").random(3)
        f2 = StreamFactory(seed=7)
        x2 = f2.stream("x").random(3)
        assert np.allclose(x1, x2)

    def test_different_seeds_differ(self):
        a = StreamFactory(seed=1).stream("x").random(5)
        b = StreamFactory(seed=2).stream("x").random(5)
        assert not np.allclose(a, b)

    def test_long_names_sharing_a_prefix_are_independent(self):
        # Regression: the seed derivation once truncated names to their
        # first 16 bytes, so "...-replica-10" and "...-replica-100"
        # aliased onto one stream and replayed identical draws —
        # silently collapsing a Monte-Carlo run's effective sample size.
        f = StreamFactory(seed=0)
        a = f.stream("fleet-replica-10").random(8)
        b = f.stream("fleet-replica-100").random(8)
        c = f.stream("fleet-replica-101").random(8)
        assert not np.allclose(a, b)
        assert not np.allclose(b, c)

    def test_short_name_seed_derivation_is_stable(self):
        # Names up to 16 bytes keep their historical child seeds (the
        # padded-name spawn key), so existing seeded runs reproduce.
        draws = StreamFactory(seed=123).stream("node-failures").random(3)
        expected = np.random.default_rng(
            np.random.SeedSequence(
                entropy=123,
                spawn_key=tuple(
                    int(x)
                    for x in np.frombuffer(
                        b"node-failures\0\0\0", dtype=np.uint32
                    )
                ),
            )
        ).random(3)
        assert np.array_equal(draws, expected)


class TestDistributions:
    def test_exponential_mean(self):
        rng = np.random.default_rng(0)
        samples = [exponential(rng, rate=4.0) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(0.25, rel=0.05)

    def test_exponential_positive_rate_required(self):
        with pytest.raises(ValueError):
            exponential(np.random.default_rng(0), 0.0)

    def test_bernoulli_frequency(self):
        rng = np.random.default_rng(1)
        hits = sum(bernoulli(rng, 0.3) for _ in range(20_000))
        assert hits / 20_000 == pytest.approx(0.3, abs=0.02)

    def test_bernoulli_clamps(self):
        rng = np.random.default_rng(2)
        assert bernoulli(rng, 1.5) is True
        assert bernoulli(rng, -0.5) is False

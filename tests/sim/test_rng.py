"""Tests for reproducible random streams."""

import numpy as np
import pytest

from repro.sim import StreamFactory, bernoulli, exponential


class TestStreamFactory:
    def test_same_name_same_stream(self):
        f = StreamFactory(seed=1)
        assert f.stream("a") is f.stream("a")

    def test_different_names_independent(self):
        f = StreamFactory(seed=1)
        a = f.stream("a").random(5)
        b = f.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_reproducible_across_factories(self):
        a = StreamFactory(seed=7).stream("x").random(5)
        b = StreamFactory(seed=7).stream("x").random(5)
        assert np.allclose(a, b)

    def test_request_order_does_not_matter(self):
        f1 = StreamFactory(seed=7)
        f1.stream("a")
        x1 = f1.stream("x").random(3)
        f2 = StreamFactory(seed=7)
        x2 = f2.stream("x").random(3)
        assert np.allclose(x1, x2)

    def test_different_seeds_differ(self):
        a = StreamFactory(seed=1).stream("x").random(5)
        b = StreamFactory(seed=2).stream("x").random(5)
        assert not np.allclose(a, b)


class TestDistributions:
    def test_exponential_mean(self):
        rng = np.random.default_rng(0)
        samples = [exponential(rng, rate=4.0) for _ in range(20_000)]
        assert np.mean(samples) == pytest.approx(0.25, rel=0.05)

    def test_exponential_positive_rate_required(self):
        with pytest.raises(ValueError):
            exponential(np.random.default_rng(0), 0.0)

    def test_bernoulli_frequency(self):
        rng = np.random.default_rng(1)
        hits = sum(bernoulli(rng, 0.3) for _ in range(20_000))
        assert hits / 20_000 == pytest.approx(0.3, abs=0.02)

    def test_bernoulli_clamps(self):
        rng = np.random.default_rng(2)
        assert bernoulli(rng, 1.5) is True
        assert bernoulli(rng, -0.5) is False

"""Tests for the renewal event-rate estimator."""

import pytest

from repro.models import Configuration, InternalRaid, Parameters, events_per_pb_year
from repro.sim import accelerated_parameters, estimate_event_rate


@pytest.fixture(scope="module")
def acc():
    base = Parameters.baseline().replace(node_set_size=12, redundancy_set_size=6)
    return accelerated_parameters(base, failure_scale=300.0)


class TestEventRate:
    @pytest.mark.tier2
    def test_matches_analytic_rate(self, acc):
        """Long-run renewal rate equals 1/MTTDL per PB (the paper's
        headline metric), within Poisson error."""
        config = Configuration(InternalRaid.NONE, 2)
        result = estimate_event_rate(config, acc, horizon_hours=120 * 8766, seed=3)
        analytic = events_per_pb_year(config.mttdl_hours(acc), acc)
        assert result.events > 100
        z = (result.events_per_pb_year - analytic) / result.rate_std_error
        assert abs(z) < 4.0

    def test_zero_events_possible(self, acc):
        """A short horizon on a strong configuration records no events."""
        strong = Configuration(InternalRaid.NONE, 3)
        result = estimate_event_rate(strong, acc, horizon_hours=50.0, seed=0)
        assert result.events == 0
        assert result.events_per_pb_year == 0.0
        assert result.rate_std_error > 0  # conservative Poisson floor

    def test_rates_consistent(self, acc):
        config = Configuration(InternalRaid.NONE, 1)
        result = estimate_event_rate(config, acc, horizon_hours=5000.0, seed=1)
        assert result.events_per_pb_year == pytest.approx(
            result.events_per_system_year / acc.system_logical_pb
        )

    def test_reproducible(self, acc):
        config = Configuration(InternalRaid.NONE, 2)
        a = estimate_event_rate(config, acc, horizon_hours=20_000.0, seed=5)
        b = estimate_event_rate(config, acc, horizon_hours=20_000.0, seed=5)
        assert a.events == b.events

    def test_invalid_horizon(self, acc):
        with pytest.raises(ValueError):
            estimate_event_rate(
                Configuration(InternalRaid.NONE, 2), acc, horizon_hours=0.0
            )

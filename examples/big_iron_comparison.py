#!/usr/bin/env python
"""Bricks vs 'big iron': the introduction's motivating comparison.

The paper argues commodity bricks with cross-node redundancy can reach
enterprise-class reliability without enterprise hardware.  This example
puts numbers on it: a monolithic frame of RAID-6 groups on 1M-hour
enterprise drives with 8-hour hot-spare rebuilds, against the brick
baseline (300k-hour desktop drives, sealed fail-in-place nodes) at
several redundancy configurations.

Run:  python examples/big_iron_comparison.py
"""

from repro import ALL_CONFIGURATIONS, Parameters
from repro.models import MonolithicSystem


def main() -> None:
    monolith = MonolithicSystem()
    print("monolithic comparator: %d RAID-6 groups x %d enterprise drives "
          "(MTTF %.0fk h, HER %.0e), %.1f h hot-spare rebuild" % (
              monolith.array_groups,
              monolith.drives_per_group,
              monolith.drive_mttf_hours / 1000,
              monolith.hard_error_rate_per_bit,
              monolith.rebuild_hours,
          ))
    mono_rate = monolith.events_per_pb_year()
    print(f"monolith reliability: {mono_rate:.3e} events/PB-year\n")

    params = Parameters.baseline()
    print("brick system (desktop drives, MTTF 300k h, HER 1e-14, "
          "fail-in-place):")
    print(f"{'configuration':<26} {'events/PB-year':>14}  vs monolith")
    for config in ALL_CONFIGURATIONS:
        rate = config.reliability(params).events_per_pb_year
        ratio = rate / mono_rate
        verdict = f"{1 / ratio:8.1f}x better" if ratio < 1 else f"{ratio:8.1f}x worse"
        print(f"{config.label:<26} {rate:>14.3e}  {verdict}")

    print("\nThe paper's thesis, quantified: despite 3x-worse drives and "
          "unserviced sealed nodes, cross-node fault tolerance 2 with "
          "internal RAID 5 beats the enterprise monolith outright — the "
          "redundancy architecture, not the hardware class, sets the "
          "reliability.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Headroom report: how far can each parameter drift before trouble?

Section 8 reads the sensitivity charts as "insight into available
headroom".  This example computes the headroom directly for the
shortlisted [FT 2, internal RAID 5] configuration: the current distance
to the target in orders of magnitude, and for each operational parameter
the value at which the configuration would cross the 2e-3 events/PB-year
line.

Run:  python examples/headroom_report.py
"""

from repro import Configuration, InternalRaid, Parameters
from repro.analysis import find_crossover, headroom_orders


def main() -> None:
    params = Parameters.baseline()
    config = Configuration(InternalRaid.RAID5, 2)

    print(f"configuration: {config.label}")
    print(f"current headroom: {headroom_orders(config, params):.2f} orders "
          "of magnitude below the target\n")

    knobs = [
        (
            "drive MTTF (hours)",
            50_000.0,
            750_000.0,
            lambda p, x: p.replace(drive_mttf_hours=x),
            "minimum tolerable",
        ),
        (
            "node MTTF (hours)",
            20_000.0,
            1_000_000.0,
            lambda p, x: p.replace(node_mttf_hours=x),
            "minimum tolerable",
        ),
        (
            "rebuild block size (KB)",
            1.0,
            512.0,
            lambda p, x: p.replace(rebuild_command_bytes=x * 1024),
            "minimum required",
        ),
        (
            "link speed (Gb/s)",
            0.05,
            10.0,
            lambda p, x: p.with_link_speed_gbps(x),
            "minimum required",
        ),
        (
            "redundancy set size R",
            4.0,
            32.0,
            lambda p, x: p.replace(redundancy_set_size=int(round(x))),
            "maximum tolerable",
        ),
    ]

    print(f"{'parameter':<26} {'baseline':>10} {'crossover':>12}  meaning")
    baselines = {
        "drive MTTF (hours)": params.drive_mttf_hours,
        "node MTTF (hours)": params.node_mttf_hours,
        "rebuild block size (KB)": params.rebuild_command_bytes / 1024,
        "link speed (Gb/s)": params.link_speed_bps / 1e9,
        "redundancy set size R": params.redundancy_set_size,
    }
    for name, low, high, transform, meaning in knobs:
        result = find_crossover(config, params, transform, low, high)
        if result.always_meets:
            verdict = "(meets target over the whole range)"
        elif result.never_meets:
            verdict = "(never meets target in this range)"
        else:
            verdict = f"{result.value:>12.4g}  {meaning}"
        base = baselines[name]
        print(f"{name:<26} {base:>10.4g} {verdict:>12}")


if __name__ == "__main__":
    main()

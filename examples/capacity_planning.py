#!/usr/bin/env python
"""Fail-in-place capacity planning (Section 3's service model).

Sealed bricks are never serviced: failed drives and nodes permanently
reduce raw capacity, so the installation must be over-provisioned — or
grown with spare bricks when utilization crosses a threshold.  This
example answers the two operator questions:

1. *Planning*: for a maintenance-free life of 1-7 years, what initial
   utilization can I commit to?  (analytic, from the exponential failure
   model)
2. *Operations*: simulate a cluster aging for five years with a
   90 %-utilization spare policy and watch the capacity trajectory and
   brick additions.

Run:  python examples/capacity_planning.py
"""

from repro import Parameters
from repro.cluster import SparePolicy
from repro.models import HOURS_PER_YEAR
from repro.sim import simulate_lifetime


def main() -> None:
    params = Parameters.baseline()
    policy = SparePolicy(params, utilization_threshold=0.9)

    print("=== planning: over-provisioning for a maintenance-free life ===")
    print(f"{'years':>5} {'E[node fails]':>14} {'E[drive fails]':>15} "
          f"{'max initial utilization':>24}")
    for years in (1, 2, 3, 5, 7):
        plan = policy.provisioning_plan(years * HOURS_PER_YEAR)
        print(f"{years:>5} {plan.expected_node_failures:>14.2f} "
              f"{plan.expected_drive_failures:>15.2f} "
              f"{plan.required_utilization:>24.3f}")
    life = policy.maintenance_free_life_hours()
    print(f"\nat the baseline 75% utilization, the install survives about "
          f"{life / HOURS_PER_YEAR:.1f} years without adding bricks")

    print("\n=== operations: five simulated years with a 90% spare policy ===")
    result = simulate_lifetime(
        params,
        horizon_hours=5 * HOURS_PER_YEAR,
        seed=7,
        spare_policy=policy,
        sample_interval_hours=24 * 91,  # quarterly samples
    )
    print(f"{'quarter':>7} {'util':>6} {'nodes up':>9} {'bricks added':>13}")
    for i, sample in enumerate(result.samples):
        print(f"{i:>7} {sample.utilization:>6.3f} {sample.nodes_available:>9} "
              f"{sample.nodes_added:>13}")
    print(f"\ntotals: {result.drive_failures} drive failures, "
          f"{result.node_failures} node failures, "
          f"{result.nodes_added} bricks added")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Byte-level demonstration of the redundancy schemes the models analyze.

Builds a small brick cluster, stores real objects with a fault-tolerance-2
cross-node erasure code, then walks through the paper's failure scenarios:

1. one node fails -> everything still readable, rebuild restores full
   redundancy onto the survivors' spare space (Section 5.1's distributed
   rebuild);
2. two nodes fail simultaneously -> still readable (that is what FT 2
   buys);
3. three simultaneous failures before any rebuild -> data-loss events for
   exactly the stripes whose redundancy sets contain all three nodes —
   the critical-redundancy-set geometry of Section 5.2.

Run:  python examples/brick_store_demo.py
"""

import os

from repro import Parameters
from repro.cluster import Cluster, DataLossError, StripeStore
from repro.models import critical_fraction


def build_store() -> StripeStore:
    params = Parameters.with_overrides(node_set_size=12, redundancy_set_size=6)
    cluster = Cluster(params)
    return StripeStore(cluster, fault_tolerance=2)


def main() -> None:
    store = build_store()
    payloads = {f"object-{i:03d}": os.urandom(2048 + i) for i in range(60)}
    for key, payload in payloads.items():
        store.put(key, payload)
    print(f"stored {store.object_count} objects across "
          f"{store.cluster.size} bricks (FT {store.fault_tolerance})")

    # --- scenario 1: single node failure + rebuild -------------------- #
    store.fail_node(3)
    readable = sum(1 for k, v in payloads.items() if store.get(k) == v)
    print(f"\nnode 3 failed: {readable}/{len(payloads)} objects readable (degraded)")
    shards = store.rebuild_node(3)
    print(f"distributed rebuild reconstructed {shards} shards onto spare space")
    report = store.scrub(repair=False)
    print(f"scrub: {report.intact} intact, {report.degraded} degraded, "
          f"{len(report.lost)} lost")

    # --- scenario 2: two simultaneous failures ------------------------ #
    store.fail_node(0)
    store.fail_node(7)
    readable = sum(1 for k, v in payloads.items() if store.get(k) == v)
    print(f"\nnodes 0 and 7 failed together: {readable}/{len(payloads)} readable")
    store.rebuild_node(0)
    store.rebuild_node(7)
    print("both rebuilt; redundancy restored")

    # --- scenario 3: beyond the fault tolerance ----------------------- #
    fresh = build_store()
    for key, payload in payloads.items():
        fresh.put(key, payload)
    for node in (1, 2, 5):
        fresh.fail_node(node)
    lost = 0
    for key in payloads:
        try:
            fresh.get(key)
        except DataLossError:
            lost += 1
    params = fresh.cluster.params
    n, r = params.node_set_size, params.redundancy_set_size
    print(f"\nnodes 1, 2, 5 failed before any rebuild: {lost} objects lost")
    print("geometry check (Section 5.2): a stripe is lost only if its "
          "redundancy set contains all three failed nodes;")
    expected_fraction = (
        critical_fraction(n, r, 3) * (r / n)
    )  # P(set contains a given node) * P(contains the other two | contains it)
    print(f"expected lost fraction ~ {expected_fraction:.3f}, "
          f"measured {lost / len(payloads):.3f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: evaluate the reliability of brick-storage configurations.

Reproduces the paper's core workflow in a few lines: pick a redundancy
configuration (internal RAID level x cross-node fault tolerance), plug in
system parameters, and read off the expected data-loss events per
PB-year against the enterprise target of 2e-3.

Run:  python examples/quickstart.py
"""

import repro
from repro import (
    ALL_CONFIGURATIONS,
    Configuration,
    InternalRaid,
    PAPER_TARGET_EVENTS_PER_PB_YEAR,
    Parameters,
    RebuildModel,
)


def main() -> None:
    params = Parameters.baseline()

    print("System: %d nodes x %d drives x %.0f GB, R = %d" % (
        params.node_set_size,
        params.drives_per_node,
        params.drive_capacity_bytes / 1e9,
        params.redundancy_set_size,
    ))
    print("Logical capacity: %.3f PB" % params.system_logical_pb)
    print("Reliability target: %.1e data loss events per PB-year" %
          PAPER_TARGET_EVENTS_PER_PB_YEAR)
    print()

    # One configuration in detail: FT 2 across nodes + RAID 5 inside them.
    config = Configuration(InternalRaid.RAID5, node_fault_tolerance=2)
    result = repro.evaluate(config, params)
    rebuild = RebuildModel(params)
    breakdown = rebuild.node_rebuild(config.node_fault_tolerance)

    print(f"--- {config.label} ---")
    print(f"MTTDL: {result.mttdl_hours:.3e} hours ({result.mttdl_years:.3e} years)")
    print(f"Events per PB-year: {result.events_per_pb_year:.3e}")
    print(f"Meets target: {result.meets_target}")
    print(f"Node rebuild time: {breakdown.total_hours:.2f} h "
          f"(bottleneck: {breakdown.bottleneck})")
    print()

    # All nine configurations, Figure 13 style.
    print(f"{'configuration':<26} {'events/PB-year':>14}  meets target")
    for cfg in ALL_CONFIGURATIONS:
        res = repro.evaluate(cfg, params)
        marker = "yes" if res.meets_target else "NO"
        print(f"{cfg.label:<26} {res.events_per_pb_year:>14.3e}  {marker}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Mission survival, fleet math and degraded-time analysis.

The paper's target is a *fleet mission statement* — 100 petabyte systems,
5 years, under one data-loss event — evaluated via MTTDL.  This example
computes the statement directly from the chains' transient solutions and
adds the operational picture the MTTDL hides: how much of a year each
configuration spends degraded (rebuilds in flight, redundancy reduced).

Run:  python examples/mission_and_availability.py
"""

from repro import ALL_CONFIGURATIONS, Parameters
from repro.models import (
    AvailabilityModel,
    HOURS_PER_YEAR,
    fleet_expected_events,
    fleet_loss_probability,
    mission_survival_probability,
)

MISSION_YEARS = 5
FLEET = 100


def main() -> None:
    params = Parameters.baseline()
    mission_hours = MISSION_YEARS * HOURS_PER_YEAR

    print(f"fleet: {FLEET} systems x {params.system_logical_pb:.3f} PB, "
          f"{MISSION_YEARS}-year mission\n")
    header = (f"{'configuration':<26} {'P(survive 5y)':>14} "
              f"{'fleet P(loss)':>14} {'E[events]/PB':>13} "
              f"{'degraded h/yr':>14}")
    print(header)
    for config in ALL_CONFIGURATIONS:
        chain = config.chain(params)
        survival = mission_survival_probability(chain, mission_hours)
        p_fleet = fleet_loss_probability(survival, FLEET)
        events = fleet_expected_events(
            config.mttdl_hours(params), FLEET, mission_hours
        ) / params.system_logical_pb
        availability = AvailabilityModel(config, params).evaluate()
        print(f"{config.label:<26} {survival:>14.6f} {p_fleet:>14.3e} "
              f"{events:>13.3e} {availability.degraded_hours_per_year:>14.2f}")

    print("\nReading: the paper's 'less than one event across the fleet in "
          "5 years' requires E[events]/PB < 1; degraded hours per year show "
          "the operational cost (rebuild bandwidth reserved, redundancy "
          "reduced) even in configurations that never lose data.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Validate the analytic Markov chains against physical simulation.

The paper's chains encode modeling assumptions (exponential clocks, LIFO
repair, the (N - j) exclusion, hard-error splits on critical
transitions).  This example re-creates those assumptions from *physical*
events — individual failures, re-stripes, rebuilds — and checks that the
empirical mean time to data loss matches the chains' MTTDL.

Baseline MTTDLs are millions of years, so the comparison runs with
accelerated failure rates; the chains are solved with the *same*
accelerated parameters (and, for internal RAID, with exact lambda_D /
lambda_S extraction, since the paper's approximations assume mu >> lambda).

Run:  python examples/validate_models.py
"""

import os

from repro import Configuration, InternalRaid, Parameters
from repro.models import InternalRaidNodeModel
from repro.sim import accelerated_parameters, estimate_mttdl

#: Override for quick runs, e.g. REPRO_VALIDATE_REPLICAS=25.
REPLICAS = int(os.environ.get("REPRO_VALIDATE_REPLICAS", "150"))


def main() -> None:
    base = Parameters.with_overrides(node_set_size=16, redundancy_set_size=8)
    scale = 50.0
    acc = accelerated_parameters(base, failure_scale=scale)
    print(f"acceleration: failure rates x{scale:.0f} "
          f"(drive MTTF {acc.drive_mttf_hours:.0f} h, node MTTF "
          f"{acc.node_mttf_hours:.0f} h); N = {acc.node_set_size}\n")

    cases = [
        Configuration(InternalRaid.NONE, 1),
        Configuration(InternalRaid.NONE, 2),
        Configuration(InternalRaid.RAID5, 1),
        Configuration(InternalRaid.RAID5, 2),
        Configuration(InternalRaid.RAID6, 2),
    ]
    print(f"{'configuration':<26} {'simulated (h)':>16} {'chain (h)':>12} "
          f"{'z-score':>8}  causes")
    for config in cases:
        mc = estimate_mttdl(config, acc, replicas=REPLICAS, seed=2024)
        if config.internal is InternalRaid.NONE:
            analytic = config.mttdl_hours(acc)
        else:
            # Exact rate extraction: the approximations assume mu >> lambda,
            # which acceleration deliberately violates.
            analytic = InternalRaidNodeModel(
                acc, config.internal, config.node_fault_tolerance,
                rates_method="exact",
            ).mttdl_exact()
        z = (analytic - mc.mean_hours) / mc.std_error_hours
        causes = ", ".join(f"{c}:{n}" for c, n in mc.loss_causes)
        print(f"{config.label:<26} {mc.mean_hours:>10.4g} +- "
              f"{mc.std_error_hours:<6.2g} {analytic:>10.4g} {z:>+8.2f}  {causes}")

    print("\n|z| <~ 3 indicates the physical simulation and the analytic "
          "chain agree within sampling error.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Arbitrary fault tolerance via the appendix's recursive construction.

The paper hand-draws the no-internal-RAID chains up to fault tolerance 3
(Figures 8-10) and gives a recursive construction plus a closed form
(Figure A1) for arbitrary k.  This example pushes both well past the
paper: chains for k = 1..6 (up to 127 states), exact numeric solves vs
the closed form, and the diminishing returns of additional tolerance.

Run:  python examples/arbitrary_fault_tolerance.py
"""

from repro import Parameters
from repro.models import (
    PAPER_TARGET_EVENTS_PER_PB_YEAR,
    RecursiveNoRaidModel,
    events_per_pb_year,
)


def main() -> None:
    # A larger-than-baseline brick farm with slow, cheap drives.
    params = Parameters.with_overrides(
        node_set_size=128,
        redundancy_set_size=16,
        drive_mttf_hours=150_000.0,
    )
    print(f"N = {params.node_set_size}, R = {params.redundancy_set_size}, "
          f"d = {params.drives_per_node}, no internal RAID")
    print(f"target: {PAPER_TARGET_EVENTS_PER_PB_YEAR:.1e} events/PB-year\n")

    print(f"{'k':>2} {'states':>7} {'MTTDL exact (h)':>16} "
          f"{'Figure A1 (h)':>14} {'ratio':>7} {'events/PB-yr':>13} target")
    previous = None
    for k in range(1, 7):
        model = RecursiveNoRaidModel(params, fault_tolerance=k)
        chain = model.chain()
        exact = chain.mean_time_to_absorption()
        approx = model.mttdl_approx()
        rate = events_per_pb_year(exact, params)
        marker = "meets" if rate < PAPER_TARGET_EVENTS_PER_PB_YEAR else "MISSES"
        gain = "" if previous is None else f"  (x{exact / previous:.0f} vs k-1)"
        print(f"{k:>2} {chain.num_states - 1:>7} {exact:>16.4g} "
              f"{approx:>14.4g} {approx / exact:>7.3f} {rate:>13.3e} {marker}{gain}")
        previous = exact

    print("\nEach +1 of cross-node tolerance buys orders of magnitude, but "
          "the rebuild-rate-to-failure-rate ratio sets the multiplier; the "
          "Figure A1 closed form tracks the exact solve while mu >> N*lambda "
          "and the h-probabilities stay small.")


if __name__ == "__main__":
    main()

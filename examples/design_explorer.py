#!/usr/bin/env python
"""Design-space exploration for user-configurable reliability goals.

The paper's conclusion notes that the closed-form solutions "may be used
to determine redundancy configurations for a spectrum of reliability
targets".  This example does exactly that with
:mod:`repro.analysis.design_space`: enumerate the configuration grid —
internal RAID level, cross-node fault tolerance, redundancy set size,
rebuild block size — and report the cheapest (lowest storage overhead)
design meeting each of several targets, plus the full Pareto frontier of
overhead vs reliability.

Run:  python examples/design_explorer.py
"""

from repro import Parameters
from repro.analysis import cheapest_meeting, enumerate_designs, pareto_front


def main() -> None:
    base = Parameters.baseline()
    candidates = enumerate_designs(base)
    print(f"evaluated {len(candidates)} candidate designs\n")

    targets = [1e-1, 1e-2, 2e-3, 1e-4, 1e-6, 1e-8]
    print(f"{'target (events/PB-yr)':>22}   cheapest design meeting it")
    for target in targets:
        best = cheapest_meeting(candidates, target)
        if best is None:
            print(f"{target:>22.0e}   (none in the searched grid)")
        else:
            print(f"{target:>22.0e}   {best.describe()}")

    print("\nPareto frontier (storage overhead vs reliability):")
    for candidate in pareto_front(candidates):
        print("  " + candidate.describe())


if __name__ == "__main__":
    main()

"""Validation benchmark: Monte-Carlo simulation vs analytic chains.

Not a figure from the paper — this is the reproduction's own evidence
that the chains encode what they claim: a physical discrete-event
simulation built from individual failures/rebuilds must land on the same
MTTDL (at accelerated failure rates; the chains are solved at the same
parameters, with exact lambda_D/lambda_S for internal RAID).
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.models import (
    Configuration,
    InternalRaid,
    InternalRaidNodeModel,
    Parameters,
)
from repro.sim import accelerated_parameters, estimate_mttdl

CASES = [
    Configuration(InternalRaid.NONE, 1),
    Configuration(InternalRaid.NONE, 2),
    Configuration(InternalRaid.RAID5, 1),
    Configuration(InternalRaid.RAID5, 2),
]


@pytest.fixture(scope="module")
def acc():
    # Scale 60: fast enough to simulate, mild enough that the hierarchical
    # decomposition for internal RAID (constant lambda_D during node
    # rebuilds) stays within a few percent of the physical process.
    base = Parameters.with_overrides(node_set_size=16, redundancy_set_size=8)
    return accelerated_parameters(base, failure_scale=60.0)


def analytic_mttdl(config, params):
    if config.internal is InternalRaid.NONE:
        return config.mttdl_hours(params)
    return InternalRaidNodeModel(
        params, config.internal, config.node_fault_tolerance, rates_method="exact"
    ).mttdl_exact()


@pytest.mark.parametrize("config", CASES, ids=lambda c: c.key)
def test_monte_carlo_vs_chain(benchmark, acc, config):
    mc = benchmark.pedantic(
        estimate_mttdl,
        args=(config, acc),
        kwargs={"replicas": 120, "seed": 7},
        rounds=1,
        iterations=1,
    )
    analytic = analytic_mttdl(config, acc)
    assert mc.consistent_with(analytic, sigmas=5.0), (
        mc.mean_hours,
        mc.std_error_hours,
        analytic,
    )


def test_monte_carlo_report(acc):
    rows = [["configuration", "simulated (h)", "std err", "chain (h)", "z"]]
    for config in CASES:
        mc = estimate_mttdl(config, acc, replicas=120, seed=7)
        analytic = analytic_mttdl(config, acc)
        z = (analytic - mc.mean_hours) / mc.std_error_hours
        rows.append(
            [
                config.label,
                f"{mc.mean_hours:.4g}",
                f"{mc.std_error_hours:.3g}",
                f"{analytic:.4g}",
                f"{z:+.2f}",
            ]
        )
    emit_text(
        "Validation: physical simulation vs analytic chains "
        "(failure rates x60)\n"
        + format_table(rows)
        + "\n\nNote: the no-RAID processes are chain-equivalent by "
        "construction (|z| ~ 1).  The internal-RAID rows inherit the "
        "paper's hierarchical approximation (constant lambda_D/lambda_S "
        "while node rebuilds are in flight), which biases the chain "
        "optimistic by ~10-20% under this acceleration; the bias vanishes "
        "as mu/lambda grows toward the real operating regime.",
        "monte_carlo_validation.txt",
    )

"""Shared helpers for the benchmark harness."""

import pathlib

from repro.analysis import FigureData, format_figure

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(figure: FigureData, filename: str) -> None:
    """Print a reproduced figure (run pytest with ``-s`` to see it) and
    archive it under ``benchmarks/results/``."""
    text = format_figure(figure)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf-8")


def emit_text(text: str, filename: str) -> None:
    """Print and archive a free-form benchmark report."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n", encoding="utf-8")

"""Figure 19: sensitivity to redundancy set size R (4-16)."""

import math

from _bench_utils import emit

from repro.analysis import figure19_redundancy_set_size


def test_fig19_redundancy_set_size(benchmark, baseline_params):
    figure = benchmark(figure19_redundancy_set_size, baseline_params)
    emit(figure, "fig19_redundancy_set.txt")

    for series in figure.series:
        # "all configurations appear to become less reliable as the
        # redundancy set size increases"
        assert all(b >= a for a, b in zip(series.values, series.values[1:]))
        # "about an order of magnitude difference between the extremes"
        orders = math.log10(series.values[-1] / series.values[0])
        assert 0.5 < orders < 3.5

"""Memoized design-space search vs cold per-candidate solves.

The optimizer's scalability claim is concrete: a >=500-candidate
``repro.advise`` search must run through one memoized
``SweepEngine.evaluate_many`` pass — where every candidate sharing a
chain topology binds as one stacked numpy solve and the compiled-spec
memo absorbs the rest — measurably faster than solving each candidate
cold with ``config.reliability(params)``, while returning bitwise-equal
reliability numbers for every point on the frontier.

Two arms over the same 576-candidate space (9 configurations x R in
{6,8,10,12} x N in {32,64} x four drive MTTFs x two scrub cadences):

* ``advise (memoized engine)`` — one ``advise()`` call through a shared
  engine (the serving layer's configuration);
* ``cold per-candidate``       — the same grid, one
  ``config.reliability`` per point, no engine, no memo.

The speedup and the engine's spec-cache hit rate are archived in
``benchmarks/results/advise.txt``; CI runs this file as the
``advise-smoke`` job's benchmark leg.
"""

import time

from _bench_utils import emit_text

from repro.advise import AdviseRequest, advise, dominates
from repro.analysis import format_table
from repro.engine import SweepEngine
from repro.models import ConfigSpace, ParamAxis, Parameters, SearchSpace

TRIALS = 3

SPACE = SearchSpace(
    configs=ConfigSpace(),
    axes=(
        ParamAxis("redundancy_set_size", (6, 8, 10, 12)),
        ParamAxis("node_set_size", (32, 64)),
        ParamAxis(
            "drive_mttf_hours", (200_000.0, 300_000.0, 400_000.0, 500_000.0)
        ),
        ParamAxis("scrub_interval_hours", (168.0, 730.0)),
    ),
)


def _best_of(fn, trials=TRIALS):
    best = float("inf")
    result = None
    for _ in range(trials):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_advise_speedup_report():
    base = Parameters.baseline()
    request = AdviseRequest(space=SPACE, seed=0)
    assert SPACE.size() >= 500

    engine = SweepEngine(base_params=base, jobs=1, cache=False)

    def advise_arm():
        return advise(request, base_params=base, engine=engine)

    points, _ = SPACE.grid(base)

    def cold_arm():
        return [p.config.reliability(p.params) for p in points]

    advise_time, result = _best_of(advise_arm)
    cold_time, cold_results = _best_of(cold_arm)

    assert result.evaluated == len(points) >= 500
    # Bitwise identity: the memoized search and the cold loop answer
    # every candidate with the same numbers...
    by_key = {
        (c.config.key, c.params.cache_key()): c
        for c in result.frontier
    }
    matched = 0
    for point, direct in zip(points, cold_results):
        candidate = by_key.get((point.config.key, point.params.cache_key()))
        if candidate is None:
            continue
        assert candidate.result.mttdl_hours == direct.mttdl_hours
        assert (
            candidate.result.events_per_pb_year == direct.events_per_pb_year
        )
        matched += 1
    assert matched == len(result.frontier)
    # ...and the frontier is sound.
    objectives = [c.objectives for c in result.frontier]
    for a in objectives:
        assert not any(dominates(b, a) for b in objectives)

    prov = result.provenance
    spec_total = prov.spec_hits + prov.spec_misses
    hit_rate = prov.spec_hits / spec_total if spec_total else 0.0
    speedup = cold_time / advise_time

    rows = [
        ["arm", "wall ms", "us/candidate", "speedup"],
        [
            "advise (memoized engine)",
            f"{advise_time * 1e3:8.1f}",
            f"{advise_time / len(points) * 1e6:6.0f}",
            f"{speedup:.2f}x",
        ],
        [
            "cold per-candidate",
            f"{cold_time * 1e3:8.1f}",
            f"{cold_time / len(points) * 1e6:6.0f}",
            "1.00x",
        ],
    ]
    table = format_table(rows)
    lines = [
        "advise: memoized engine search vs cold per-candidate solves",
        f"({len(points)} candidates, best of {TRIALS}; "
        f"{len(result.frontier)} frontier points)",
        "",
        table,
        "",
        f"spec-cache hit rate: {hit_rate:.3f} "
        f"({prov.spec_hits} hits / {prov.spec_misses} misses)",
        f"speedup: {speedup:.2f}x",
    ]
    emit_text("\n".join(lines), "advise.txt")

    assert hit_rate > 0.5, hit_rate
    assert speedup >= 1.5, (
        f"memoized search only {speedup:.2f}x faster than cold solves"
    )

"""Appendix scaling: recursive chain construction and GTH solve time as a
function of fault tolerance k, plus Figure A1 agreement at every k.

The chain has 2^(k+1) - 1 states and the solve is O(states^3); the GTH
elimination keeps it accurate even at condition numbers beyond 1e16.
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.models import Parameters, RecursiveNoRaidModel


@pytest.fixture(scope="module")
def params():
    return Parameters.with_overrides(node_set_size=128, redundancy_set_size=16)


@pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6, 7])
def test_recursive_solve_scaling(benchmark, params, k):
    model = RecursiveNoRaidModel(params, fault_tolerance=k)
    mttdl = benchmark(model.mttdl_exact)
    assert mttdl > 0
    if k == 1:
        # At k = 1 the baseline's h_N = d(R-1)C*HER exceeds 1: the chain
        # clamps the probability, the closed form does not, so Figure A1
        # is conservative (underestimates) rather than tight.
        assert model.mttdl_approx() <= mttdl
    else:
        # Figure A1 tracks the exact solve for every higher k.
        assert model.mttdl_approx() == pytest.approx(mttdl, rel=0.25)


def test_recursive_scaling_report(params):
    rows = [["k", "states", "MTTDL exact (h)", "Figure A1 (h)", "ratio"]]
    for k in range(1, 8):
        model = RecursiveNoRaidModel(params, fault_tolerance=k)
        chain = model.chain()
        exact = chain.mean_time_to_absorption()
        approx = model.mttdl_approx()
        rows.append(
            [
                str(k),
                str(chain.num_states - 1),
                f"{exact:.4g}",
                f"{approx:.4g}",
                f"{approx / exact:.3f}",
            ]
        )
    emit_text(
        "Appendix: recursive construction, arbitrary fault tolerance\n"
        + format_table(rows),
        "recursive_scaling.txt",
    )

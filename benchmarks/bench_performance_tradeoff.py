"""Extension benchmark: the rebuild-bandwidth-fraction trade-off.

The paper fixes the rebuild bandwidth reservation at 10% and never asks
what it costs.  This benchmark sweeps the reservation and reports both
sides — events/PB-year (reliability) and long-run average foreground
throughput (performance) — showing that at baseline failure rates the
reservation is nearly free on average, so the knob should be set for
reliability.
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.models import Configuration, InternalRaid, PerformanceImpactModel

FRACTIONS = (0.05, 0.10, 0.20, 0.40)


def test_performance_tradeoff(benchmark, baseline_params):
    model = PerformanceImpactModel(
        Configuration(InternalRaid.RAID5, 2), baseline_params
    )
    rows = benchmark.pedantic(
        model.sweep_rebuild_fraction, args=(FRACTIONS,), rounds=1, iterations=1
    )
    rates = [r[1] for r in rows]
    throughputs = [r[2] for r in rows]
    # More rebuild bandwidth strictly improves reliability...
    assert rates == sorted(rates, reverse=True)
    # ...while the long-run average throughput barely moves.
    assert min(throughputs) > 0.995


def test_performance_tradeoff_report(baseline_params):
    model = PerformanceImpactModel(
        Configuration(InternalRaid.RAID5, 2), baseline_params
    )
    rows_data = model.sweep_rebuild_fraction(FRACTIONS)
    rows = [["rebuild BW fraction", "events/PB-yr", "avg foreground throughput"]]
    for fraction, rate, throughput in rows_data:
        rows.append([f"{fraction:.0%}", f"{rate:.3e}", f"{throughput:.5f}"])
    emit_text(
        "Extension: rebuild-bandwidth reservation trade-off "
        "(FT 2, internal RAID 5)\n" + format_table(rows),
        "performance_tradeoff.txt",
    )

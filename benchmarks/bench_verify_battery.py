"""Benchmark: the cost of the verification battery itself.

The invariant registry is only useful if running it is cheap enough to
gate every PR, so this benchmark times the full deterministic smoke pass
(nine configurations x the 27-point lattice, every registered invariant
including the engine fault drill) and archives the per-invariant budget
breakdown.
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.verify import REGISTRY, make_context


def run_smoke_battery():
    report = REGISTRY.run(make_context())
    assert report.ok, report.format_text()
    return report


def test_verify_smoke_battery(benchmark):
    report = benchmark.pedantic(run_smoke_battery, rounds=1, iterations=1)
    # The whole deterministic battery must stay PR-gate cheap.
    assert report.total_checked > 1000
    assert sum(c.seconds for c in report.checks) < 60.0


def test_verify_budget_report():
    report = run_smoke_battery()
    rows = [["invariant", "checked", "seconds"]]
    for check in report.checks:
        rows.append([check.name, str(check.checked), f"{check.seconds:.3f}"])
    rows.append(["total", str(report.total_checked), ""])
    emit_text(
        "verification battery budget (smoke)\n" + format_table(rows),
        "verify_battery_budget.txt",
    )

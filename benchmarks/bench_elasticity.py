"""Elasticity benchmark: the sensitivity figures' slopes as numbers.

``d log(events/PB-year) / d log(parameter)`` at the baseline for the
shortlisted configurations — the differential version of Figures 14-17,
and a structural check on the models (the internal-RAID NFT-2 rate goes
like mu_N^-2, so the rebuild-block elasticity must sit near -2 while
rebuilds are IOPS-bound).
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import elasticity_profile, format_table
from repro.models import Configuration, InternalRaid, sensitivity_configurations


def test_elasticity_structure(benchmark, baseline_params):
    profile = benchmark.pedantic(
        elasticity_profile,
        args=(Configuration(InternalRaid.RAID5, 2), baseline_params),
        rounds=1,
        iterations=1,
    )
    by_name = {e.parameter: e.value for e in profile}
    # mu_N^2 in the numerator and IOPS-bound rebuilds: block elasticity -2.
    assert by_name["rebuild_command_bytes"] == pytest.approx(-2.0, abs=0.1)
    # Node failures dominate: strong negative node-MTTF elasticity...
    assert by_name["node_mttf_hours"] < -2.0
    # ...while drive MTTF barely matters (Figure 14's flat curve).
    assert abs(by_name["drive_mttf_hours"]) < 1.0
    # Disk-bound at 10 Gb/s: zero link elasticity (Figure 17's plateau).
    assert by_name["link_speed_bps"] == pytest.approx(0.0, abs=1e-6)


def test_elasticity_report(baseline_params):
    configs = sensitivity_configurations()
    profiles = {c.label: elasticity_profile(c, baseline_params) for c in configs}
    fields = [e.parameter for e in profiles[configs[0].label]]
    rows = [["parameter"] + [c.label for c in configs]]
    for field in sorted(fields):
        row = [field]
        for c in configs:
            value = next(
                e.value for e in profiles[c.label] if e.parameter == field
            )
            row.append(f"{value:+.2f}")
        rows.append(row)
    emit_text(
        "Elasticities at the baseline: d log(events/PB-yr) / d log(param)\n"
        + format_table(rows),
        "elasticity.txt",
    )

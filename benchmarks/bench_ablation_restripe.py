"""Ablation (beyond the paper): fail-in-place re-stripe vs hot-spare rebuild.

Section 3 commits to sealed nodes whose arrays *re-stripe* onto surviving
drives after a failure.  The classic alternative keeps a hot spare per
node and rebuilds the failed drive onto it.  The two differ in repair
time: a re-stripe moves the whole array's data (read + write) through all
drives, while a spare rebuild is bottlenecked by the single spare drive's
write bandwidth.  This benchmark quantifies what the design choice costs
in system-level reliability at the baseline.
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.models import (
    Parameters,
    RebuildModel,
    build_internal_raid_chain,
    events_per_pb_year,
    k2_factor,
)


def raid5_rates(params: Parameters, restripe_rate: float):
    """lambda_D / lambda_S from the paper's Section 4.2 formulas at an
    arbitrary repair rate."""
    d = params.drives_per_node
    lam = params.drive_failure_rate
    che = params.hard_error_per_drive_read
    lambda_d_arr = d * (d - 1) * lam**2 / restripe_rate
    lambda_s = d * (d - 1) * lam * che
    return lambda_d_arr, lambda_s


def spare_rebuild_rate(params: Parameters) -> float:
    """Hot-spare repair: the spare drive's write stream is the bottleneck
    (one drive at sustained x rebuild fraction, re-stripe command size)."""
    per_drive = (
        min(
            params.drive_max_iops * params.restripe_command_bytes,
            params.drive_sustained_bps,
        )
        * params.rebuild_bandwidth_fraction
    )
    seconds = params.drive_data_bytes / per_drive
    return 3600.0 / seconds


def system_mttdl(params: Parameters, repair_rate: float) -> float:
    lambda_d_arr, lambda_s = raid5_rates(params, repair_rate)
    chain = build_internal_raid_chain(
        2,
        params.node_set_size,
        params.node_failure_rate,
        lambda_d_arr,
        lambda_s,
        RebuildModel(params).node_rebuild_rate(2),
        k2_factor(params.node_set_size, params.redundancy_set_size),
    )
    return chain.mean_time_to_absorption()


def test_ablation_restripe_vs_spare(benchmark, baseline_params):
    restripe = RebuildModel(baseline_params).restripe_rate()
    spare = spare_rebuild_rate(baseline_params)

    mttdl_restripe = benchmark(system_mttdl, baseline_params, restripe)
    mttdl_spare = system_mttdl(baseline_params, spare)

    rows = [
        ["variant", "repair rate (1/h)", "MTTDL (h)", "events/PB-yr"],
        [
            "fail-in-place re-stripe",
            f"{restripe:.4g}",
            f"{mttdl_restripe:.4g}",
            f"{events_per_pb_year(mttdl_restripe, baseline_params):.3e}",
        ],
        [
            "hot-spare rebuild",
            f"{spare:.4g}",
            f"{mttdl_spare:.4g}",
            f"{events_per_pb_year(mttdl_spare, baseline_params):.3e}",
        ],
    ]
    emit_text(
        "Ablation: internal-RAID repair strategy (FT 2, internal RAID 5)\n"
        + format_table(rows),
        "ablation_restripe.txt",
    )

    # A single spare drive rebuild moves ~d x less data than a re-stripe,
    # but through 1/d of the spindles: the rates end up comparable, and
    # system reliability is dominated by node failures either way —
    # quantitative support for the paper's fail-in-place choice.
    assert 0.2 < mttdl_restripe / mttdl_spare < 5.0

"""Figure 16: sensitivity to rebuild block size (16-512 KB) — the paper's
most powerful controllable knob."""

from _bench_utils import emit

from repro.analysis import figure16_rebuild_block_size
from repro.models import PAPER_TARGET_EVENTS_PER_PB_YEAR

TARGET = PAPER_TARGET_EVENTS_PER_PB_YEAR


def test_fig16_rebuild_block_size(benchmark, baseline_params):
    figure = benchmark(figure16_rebuild_block_size, baseline_params)
    emit(figure, "fig16_rebuild_block.txt")

    # Significant leverage: >1 order for all, >2 orders where two rebuild
    # rates compound.
    for series in figure.series:
        assert series.values[0] / series.values[-1] > 20
    assert any(s.values[0] / s.values[-1] > 100 for s in figure.series)
    # The paper's recommendation: the two strong configurations meet the
    # target at 64 KB or larger (baseline MTTFs).
    idx64 = figure.x_values.index(64.0)
    for label in (
        "FT 2, Internal RAID 5 (baseline MTTF)",
        "FT 3, No Internal RAID (baseline MTTF)",
    ):
        assert all(v < TARGET for v in figure.series_by_label(label).values[idx64:])
    # FT2 no-RAID never meets the target at low MTTF, any block size.
    low = figure.series_by_label("FT 2, No Internal RAID (low MTTF)")
    assert all(v > TARGET for v in low.values)

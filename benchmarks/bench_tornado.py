"""Tornado ranking of the controllable parameters (Section 8's conclusion).

"the rebuild block size is a controllable parameter with the most
significant impact on reliability" — this benchmark ranks every
configurable knob by the orders of magnitude it moves events/PB-year
across its practical range, for the FT2 + internal RAID 5 configuration.
"""

from _bench_utils import emit_text

from repro.analysis import format_table, tornado
from repro.models import Configuration, InternalRaid

RANGES = {
    "rebuild block size (16-512 KB)": (
        [16, 64, 256, 512],
        lambda p, x: p.with_rebuild_command_kb(x),
    ),
    "link speed (1-10 Gb/s)": (
        [1.0, 5.0, 10.0],
        lambda p, x: p.with_link_speed_gbps(x),
    ),
    "redundancy set size (4-16)": (
        [4, 8, 16],
        lambda p, x: p.replace(redundancy_set_size=int(x)),
    ),
    "node set size (16-256)": (
        [16, 64, 256],
        lambda p, x: p.replace(node_set_size=int(x)),
    ),
    "drives per node (4-24)": (
        [4, 12, 24],
        lambda p, x: p.replace(drives_per_node=int(x)),
    ),
}


def test_tornado_controllable_knobs(benchmark, baseline_params):
    configs = [Configuration(InternalRaid.RAID5, 2)]
    entries = benchmark.pedantic(
        tornado, args=(configs, baseline_params, RANGES), rounds=1, iterations=1
    )
    # Section 8's headline: rebuild block size dominates.
    assert entries[0].parameter.startswith("rebuild block size")
    assert entries[0].leverage_orders > 1.5

    rows = [["parameter", "best", "worst", "leverage (orders)"]]
    for e in entries:
        rows.append(
            [e.parameter, f"{e.low:.3e}", f"{e.high:.3e}", f"{e.leverage_orders:.2f}"]
        )
    emit_text(
        "Tornado: controllable-parameter leverage (FT 2, internal RAID 5)\n"
        + format_table(rows),
        "tornado.txt",
    )

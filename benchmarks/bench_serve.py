"""Serving-layer benchmark: coalesced batching vs one-solve-per-request.

The acceptance bar for ``repro.serve`` is concrete: under concurrent
load of *unique* queries (cache and in-flight coalescing defeated on
purpose), the coalescing batcher must sustain at least 3x the
throughput of the same service with batching disabled
(``max_batch_size=1`` — one bind + one GTH solve per request, the
classic request-per-solve server).  Both arms run the identical
in-process service stack, so the ratio isolates exactly what the
batcher buys: grouping in-flight points by spec hash, one
``bind_batch`` pass and one stacked elimination per group.

The benchmark also asserts the two correctness bars from the issue:
the mean solve-batch size under load is > 1 (requests really are
grouped), and every answer is bitwise identical both across arms and
against a direct ``repro.evaluate()`` call.  Results are archived in
``benchmarks/results/serve.txt``.
"""

import asyncio
import time

from _bench_utils import emit_text

import repro
from repro.analysis import format_table
from repro.models.configurations import all_configurations
from repro.serve import PointQuery, ReliabilityService, ServeConfig

TRIALS = 3
POINTS = 2000
WARMUP_POINTS = 18

#: The required throughput multiple of coalesced batching over the
#: one-solve-per-request baseline.
REQUIRED_SPEEDUP = 3.0


def _queries(base, n, offset=0):
    """``n`` unique-parameter queries cycling over all nine configs.

    Every point gets its own ``drive_mttf_hours`` so no two requests
    share a result-cache key — the benchmark measures solving, not
    caching.
    """
    configs = all_configurations(3)
    return [
        PointQuery(
            config=configs[i % len(configs)],
            params=base.replace(
                drive_mttf_hours=1e5 * (1 + (i + offset) * 1e-6)
            ),
            method="analytic",
        )
        for i in range(n)
    ]


async def _drive(config, base, concurrency, n=POINTS):
    """Run ``n`` unique queries through a fresh service at the given
    closed-loop concurrency; returns (wall_s, answers, mean_batch)."""
    async with ReliabilityService(config) as svc:
        for q in _queries(base, WARMUP_POINTS, offset=10**7):
            await svc.answer_point(q)

        queries = _queries(base, n)
        answers = [None] * n
        pending = iter(range(n))

        async def worker():
            while True:
                try:
                    i = next(pending)
                except StopIteration:
                    return
                answers[i] = await svc.answer_point(queries[i])

        t0 = time.perf_counter()
        await asyncio.gather(*[worker() for _ in range(concurrency)])
        wall = time.perf_counter() - t0
        sizes = svc.metrics.histogram("serve.batch.size")
        mean_batch = sizes.mean if sizes.count else 0.0
    return wall, answers, mean_batch


def _best_of(config, base, concurrency, trials=TRIALS):
    best_wall = float("inf")
    answers = None
    mean_batch = 0.0
    for _ in range(trials):
        wall, got, batch = asyncio.run(_drive(config, base, concurrency))
        if wall < best_wall:
            best_wall, answers, mean_batch = wall, got, batch
    return best_wall, answers, mean_batch


def test_serve_batching_speedup_report(baseline_params):
    base = baseline_params
    # Identical knobs except the batch policy; the result cache is off
    # and every query is unique, so neither arm gets free answers.
    naive_cfg = ServeConfig(
        cache_size=0, queue_depth=100_000, max_batch_size=1, max_wait_us=0
    )
    batched_cfg = ServeConfig(
        cache_size=0, queue_depth=100_000, max_batch_size=256, max_wait_us=2000
    )

    naive_wall, naive_answers, naive_batch = _best_of(naive_cfg, base, 128)
    batched_wall, batched_answers, mean_batch = _best_of(
        batched_cfg, base, 512
    )

    # Correctness bar 1: the batcher really groups concurrent requests.
    assert naive_batch <= 1.0
    assert mean_batch > 1.0, mean_batch

    # Correctness bar 2: bitwise-identical answers across arms and
    # against the direct evaluate() path (sampled — it is ~500us/point).
    for a, b in zip(naive_answers, batched_answers):
        assert a["mttdl_hours"] == b["mttdl_hours"], (a, b)
        assert a["events_per_pb_year"] == b["events_per_pb_year"], (a, b)
    queries = _queries(base, POINTS)
    for i in range(0, POINTS, POINTS // 20):
        direct = repro.evaluate(
            queries[i].config, queries[i].params, method="analytic"
        )
        assert batched_answers[i]["mttdl_hours"] == direct.mttdl_hours

    naive_rps = POINTS / naive_wall
    batched_rps = POINTS / batched_wall
    speedup = batched_rps / naive_rps

    rows = [
        ["arm", "throughput", "mean batch", "speedup"],
        [
            "one solve per request (max_batch_size=1)",
            f"{naive_rps:7.1f} req/s",
            f"{naive_batch:5.1f}",
            "1.00x",
        ],
        [
            "coalescing batcher (max_batch_size=256)",
            f"{batched_rps:7.1f} req/s",
            f"{mean_batch:5.1f}",
            f"{speedup:.2f}x",
        ],
    ]
    emit_text(
        f"repro.serve throughput: {POINTS} unique analytic points over the "
        f"nine configurations\n(closed loop, best of {TRIALS}; result cache "
        "disabled so every request solves)\n"
        + format_table(rows)
        + "\nanswers bitwise-identical across arms and vs direct "
        "repro.evaluate()",
        "serve.txt",
    )

    assert speedup >= REQUIRED_SPEEDUP, (
        f"coalescing gained only {speedup:.2f}x over one-solve-per-request "
        f"(bar: {REQUIRED_SPEEDUP}x)"
    )

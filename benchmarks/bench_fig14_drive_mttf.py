"""Figure 14: sensitivity to drive MTTF (100k-750k h) at node MTTF
low/high, for the three surviving configurations."""

from _bench_utils import emit

from repro.analysis import figure14_drive_mttf
from repro.models import PAPER_TARGET_EVENTS_PER_PB_YEAR

TARGET = PAPER_TARGET_EVENTS_PER_PB_YEAR


def test_fig14_drive_mttf(benchmark, baseline_params):
    figure = benchmark(figure14_drive_mttf, baseline_params)
    emit(figure, "fig14_drive_mttf.txt")

    # FT2 no-RAID misses the target across the range at low node MTTF...
    low = figure.series_by_label("FT 2, No Internal RAID (node MTTF low)")
    assert all(v > TARGET for v in low.values)
    # ...and is marginal at high node MTTF.
    high = figure.series_by_label("FT 2, No Internal RAID (node MTTF high)")
    assert min(high.values) < 2 * TARGET
    # FT2 + internal RAID 5 is nearly flat in drive MTTF at low node MTTF
    # (node failures dominate — the Section 8 explanation for RAID 6's
    # irrelevance).
    raid5_low = figure.series_by_label("FT 2, Internal RAID 5 (node MTTF low)")
    assert max(raid5_low.values) / min(raid5_low.values) < 2.0
    # The two strong configurations meet the target over the whole range.
    for label in (
        "FT 2, Internal RAID 5 (node MTTF low)",
        "FT 3, No Internal RAID (node MTTF low)",
    ):
        assert all(v < TARGET for v in figure.series_by_label(label).values)

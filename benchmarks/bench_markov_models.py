"""Model-level benchmarks (Figures 1, 4, 5-10): chain construction + solve
time for every Markov model in the paper, with closed-form agreement
assertions."""

import pytest

from repro.models import (
    InternalRaid,
    InternalRaidNodeModel,
    NoRaidNodeModel,
    Parameters,
    Raid5Model,
    Raid6Model,
    RecursiveNoRaidModel,
)


@pytest.fixture(scope="module")
def gentle():
    """Regime where the paper's approximations hold tightly."""
    return Parameters.with_overrides(
        node_mttf_hours=2_000_000.0,
        drive_mttf_hours=1_500_000.0,
        hard_error_rate_per_bit=1e-16,
        node_set_size=32,
    )


def test_fig1_raid5_array(benchmark, baseline_params):
    model = Raid5Model(baseline_params)
    mttdl = benchmark(model.mttdl_exact)
    assert mttdl == pytest.approx(model.mttdl_exact_formula(), rel=1e-10)


def test_fig4_raid6_array(benchmark, baseline_params):
    model = Raid6Model(baseline_params)
    mttdl = benchmark(model.mttdl_exact)
    assert mttdl == pytest.approx(model.mttdl_approx(), rel=0.05)


@pytest.mark.parametrize("t", [1, 2, 3])
def test_fig5to7_internal_raid(benchmark, gentle, t):
    model = InternalRaidNodeModel(gentle, InternalRaid.RAID5, t)
    mttdl = benchmark(model.mttdl_exact)
    assert mttdl == pytest.approx(model.mttdl_approx(), rel=0.05)


@pytest.mark.parametrize("t", [1, 2, 3])
def test_fig8to10_no_raid(benchmark, gentle, t):
    model = NoRaidNodeModel(gentle, t)
    mttdl = benchmark(model.mttdl_exact)
    recursive = RecursiveNoRaidModel(gentle, t)
    assert mttdl == pytest.approx(recursive.mttdl_exact(), rel=1e-9)
    assert mttdl == pytest.approx(recursive.mttdl_approx(), rel=0.05)

"""Observability overhead: instrumented hot paths must stay nearly free.

Two contracts, both with a 5% budget:

* **Tracing** — times the figure-13 baseline evaluation (all nine
  configurations, the paper's Section 6 operating point) with tracing
  disabled and enabled, asserts the enabled-tracing penalty stays under
  5%, and checks the traced run's numbers are bitwise identical to the
  untraced ones.  Archived in ``benchmarks/results/obs_overhead.txt``.

* **Live serving telemetry** — drives the 4-worker spec-hash-sharded
  serving path (the ``serve_sharded.txt`` hot-key workload) with the
  full live-telemetry bundle on — windowed latency/SLO instruments plus
  1% head-based trace sampling shipping stitched span trees across the
  shard pipe — versus everything off, and asserts the throughput
  penalty stays under 5% with bitwise-identical answers.  Archived in
  ``benchmarks/results/obs_overhead_serve.txt``.
"""

import asyncio
import functools
import gc
import os
import time

from _bench_utils import emit_text

from repro import obs
from repro.analysis import baseline_figure, run_baseline
from repro.engine.keys import point_key
from repro.models.configurations import all_configurations
from repro.obs.tracer import Tracer
from repro.runtime import ProcessTopology
from repro.serve.batcher import CoalescingBatcher
from repro.serve.shard import shard_index
from repro.serve.solvecore import make_state, solve_handler, synth_span

#: Consecutive baseline evaluations per timed trial (amortizes timer noise).
REPEATS = 20
#: Interleaved trials per measurement session.
TRIALS = 15
#: Measurement sessions (best-of; a session ends the run early once it
#: lands inside the budget — noise can only inflate the estimate).
SESSIONS = 6
#: The acceptance budget for enabled-tracing overhead.
MAX_OVERHEAD = 0.05


def _paired_trials(arms, trials=TRIALS):
    """Per-trial wall times, arms interleaved A/B/A/B.

    Interleaving keeps slow drift (CPU frequency scaling, a noisy
    neighbor on a shared host) from landing entirely on one arm and
    masquerading as overhead; garbage collection is paused so a
    collection pause landing inside one arm cannot skew a pair (both
    arms allocate heavily either way).
    """
    times = [[] for _ in arms]
    gc.collect()
    gc.disable()
    try:
        for trial in range(trials):
            # Alternate arm order so any systematic first-arm advantage
            # (frequency boost decay, cache warmth) cancels across trials.
            order = range(len(arms)) if trial % 2 == 0 else reversed(range(len(arms)))
            for i in order:
                t0 = time.perf_counter()
                arms[i]()
                times[i].append(time.perf_counter() - t0)
    finally:
        gc.enable()
    return times


def _series_values(report):
    figure = baseline_figure(report)
    return [(s.label, s.values) for s in figure.series]


def test_tracing_overhead_under_budget(baseline_params):
    params = baseline_params

    def untraced():
        # Explicitly disable: under an env-traced CI session the baseline
        # arm must still measure the tracing-off path.
        with obs.use_tracer(None):
            for _ in range(REPEATS):
                run_baseline(params)

    def traced():
        # A fresh tracer per trial: steady-state span recording, not an
        # ever-growing buffer.
        with obs.use_tracer(Tracer()):
            for _ in range(REPEATS):
                run_baseline(params)

    untraced()  # warm-up: imports, allocator, caches
    traced()
    # Overhead as the median of per-trial paired ratios: a noise burst on
    # a shared host hits adjacent trials of both arms alike, so each pair
    # is a fair comparison, and the median discards the pairs a burst
    # landed inside — per-arm bests can fall in different noise regimes
    # and fabricate overhead.  Noise only inflates the estimate, so take
    # the best of a few measurement sessions, stopping at the first one
    # inside the budget.
    overhead = float("inf")
    disabled = enabled = float("inf")
    for _ in range(SESSIONS):
        disabled_times, enabled_times = _paired_trials([untraced, traced])
        ratios = sorted(e / d for d, e in zip(disabled_times, enabled_times))
        session_overhead = ratios[len(ratios) // 2] - 1.0
        if session_overhead < overhead:
            overhead = session_overhead
            disabled = min(disabled_times)
            enabled = min(enabled_times)
        if overhead < MAX_OVERHEAD:
            break

    # Bitwise safety: the traced run computes the exact same numbers.
    plain_report = run_baseline(params)
    tracer = Tracer()
    with obs.use_tracer(tracer):
        with obs.span("fig13.baseline", configurations=9):
            traced_report = run_baseline(params)
    assert _series_values(traced_report) == _series_values(plain_report)

    spans = tracer.finished()
    assert spans, "traced baseline run recorded no spans"

    lines = [
        "observability overhead — fig13 baseline (9 configurations)",
        "",
        f"disabled tracing : {disabled / REPEATS * 1e3:8.3f} ms/run "
        f"(best of {TRIALS} trials x {REPEATS} runs)",
        f"enabled tracing  : {enabled / REPEATS * 1e3:8.3f} ms/run",
        f"overhead         : {100.0 * overhead:+8.2f}%  "
        f"(budget {100.0 * MAX_OVERHEAD:+.2f}%; median paired ratio)",
        f"spans per run    : {len(spans)}",
        "",
        "per-phase timings of one traced baseline run:",
        "",
        obs.render_report(spans),
    ]
    emit_text("\n".join(lines), "obs_overhead.txt")

    assert overhead < MAX_OVERHEAD, (
        f"enabled tracing costs {100.0 * overhead:.2f}% "
        f"(budget {100.0 * MAX_OVERHEAD:.0f}%)"
    )


# --------------------------------------------------------------------- #
# live serving telemetry overhead
# --------------------------------------------------------------------- #

#: The sharded serving workload (mirrors bench_serve_sharded.py).
SERVE_POINTS = 1200
SERVE_WORKERS = 4
SERVE_CONCURRENCY = 128
SERVE_TRIALS = 3
SERVE_SESSIONS = 4
SERVE_SAMPLE_RATE = 0.01
SERVE_DEADLINE_MS = 50.0
_VALUE_COUNT = 25
_ZIPF_SKEW = 1.2


def _serve_points(base, n, seed=7):
    import random

    configs = all_configurations(3)
    keys = [
        (config, 1e5 * (1 + v * 1e-3))
        for config in configs
        for v in range(_VALUE_COUNT)
    ]
    rng = random.Random(seed ^ 0x5A1F)
    rng.shuffle(keys)
    weights = [1.0 / (r + 1) ** _ZIPF_SKEW for r in range(len(keys))]
    draw = random.Random(seed)
    return [
        (config, base.replace(drive_mttf_hours=value))
        for config, value in draw.choices(keys, weights=weights, k=n)
    ]


async def _drive_live(points, live):
    """The sharded serving path with a given live-telemetry bundle:
    per-request sampling decision + SLO/windowed recording, per-batch
    shard instruments, sampled spans shipped across the pipe and
    stitched — everything the HTTP layer would do per request, minus
    the socket."""
    workers = SERVE_WORKERS
    topology = ProcessTopology(
        solve_handler,
        size=workers,
        worker_state=functools.partial(make_state, 4096, None, True),
        restart=True,
        name="bench-obs-shard",
    )
    topology.start()
    batchers = [
        CoalescingBatcher(
            max_batch_size=256,
            max_wait_us=2000,
            queue_depth=100_000,
            runtime=topology,
            shard=i,
            live=live,
        )
        for i in range(workers)
    ]
    for batcher in batchers:
        batcher.start()
    try:
        for config in all_configurations(3):
            await batchers[shard_index(config.key, "analytic", workers)].submit(
                config, points[0][1].replace(drive_mttf_hours=9e4), "analytic"
            )
        semaphore = asyncio.Semaphore(SERVE_CONCURRENCY)

        async def one(config, params):
            async with semaphore:
                trace_id = live.sample()
                t0 = time.perf_counter()
                unix0 = time.time()
                mttdl = await batchers[
                    shard_index(config.key, "analytic", workers)
                ].submit(
                    config,
                    params,
                    "analytic",
                    deadline_s=SERVE_DEADLINE_MS / 1e3,
                    cache_key=point_key(config, params, "analytic", None),
                    trace_id=trace_id,
                )
                wall = time.perf_counter() - t0
                live.record_request(
                    200,
                    wall,
                    SERVE_DEADLINE_MS,
                    method="POST",
                    path="/v1/evaluate",
                    detail=None,
                    trace_id=trace_id,
                )
                if trace_id is not None:
                    live.finish_trace(
                        trace_id,
                        synth_span(
                            "serve.request", unix0, wall, status=200, points=1
                        ),
                    )
                return mttdl

        t0 = time.perf_counter()
        answers = await asyncio.gather(*[one(c, p) for c, p in points])
        wall = time.perf_counter() - t0
    finally:
        for batcher in batchers:
            await batcher.stop()
        await asyncio.get_running_loop().run_in_executor(None, topology.stop)
    return wall, answers


def test_live_telemetry_overhead_under_budget(baseline_params, tmp_path):
    points = _serve_points(baseline_params, SERVE_POINTS)
    trace_path = os.path.join(str(tmp_path), "bench-samples.jsonl")

    def run_off():
        return asyncio.run(_drive_live(points, obs.NULL_LIVE))

    def run_on():
        live = obs.LiveTelemetry(
            obs.Metrics(),
            windowed=True,
            slo_target=0.99,
            sample_rate=SERVE_SAMPLE_RATE,
            sample_seed=0,
            trace_path=trace_path,
        )
        return asyncio.run(_drive_live(points, live))

    run_off()  # warm-up: forks, spec compilation, allocator
    off_answers = on_answers = None
    overhead = float("inf")
    off_best = on_best = float("inf")
    for session in range(SERVE_SESSIONS):
        walls = ([], [])
        for trial in range(SERVE_TRIALS):
            order = (0, 1) if trial % 2 == 0 else (1, 0)
            for arm in order:
                wall, answers = (run_off, run_on)[arm]()
                walls[arm].append(wall)
                if arm == 0:
                    off_answers = answers
                else:
                    on_answers = answers
        ratios = sorted(on / off for off, on in zip(*walls))
        session_overhead = ratios[len(ratios) // 2] - 1.0
        if session_overhead < overhead:
            overhead = session_overhead
            off_best = min(walls[0])
            on_best = min(walls[1])
        if overhead < MAX_OVERHEAD:
            break

    # Bitwise safety: telemetry observes the serving path, never
    # perturbs it.
    assert off_answers == on_answers

    # The sampled trees really crossed the pipe and stitched.
    sampled = obs.validate_trace(trace_path)
    roots = [s for s in sampled if s.get("parent_id") is None]
    assert roots, "1% sampling produced no stitched span trees"

    off_rps = SERVE_POINTS / off_best
    on_rps = SERVE_POINTS / on_best
    lines = [
        "live serving telemetry overhead — "
        f"{SERVE_POINTS} hot-key points, {SERVE_WORKERS} shard workers",
        "",
        f"telemetry off : {off_rps:8.1f} req/s (best of {SERVE_TRIALS} "
        f"trials, closed loop x{SERVE_CONCURRENCY})",
        f"telemetry on  : {on_rps:8.1f} req/s  (windowed metrics + SLO + "
        f"{100 * SERVE_SAMPLE_RATE:g}% trace sampling)",
        f"overhead      : {100.0 * overhead:+8.2f}%  "
        f"(budget {100.0 * MAX_OVERHEAD:+.2f}%; median paired ratio)",
        f"sampled trees : {len(roots)} ({len(sampled)} spans, stitched "
        "across the shard pipe)",
        "",
        "answers bitwise-identical with telemetry on vs off",
    ]
    emit_text("\n".join(lines), "obs_overhead_serve.txt")

    assert overhead < MAX_OVERHEAD, (
        f"live serving telemetry costs {100.0 * overhead:.2f}% "
        f"(budget {100.0 * MAX_OVERHEAD:.0f}%)"
    )

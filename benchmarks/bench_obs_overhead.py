"""Observability overhead: instrumented hot paths must stay nearly free.

Times the figure-13 baseline evaluation (all nine configurations, the
paper's Section 6 operating point) with tracing disabled and enabled,
asserts the enabled-tracing penalty stays under 5%, checks the traced
run's numbers are bitwise identical to the untraced ones, and archives
the per-phase span timings in ``benchmarks/results/obs_overhead.txt``.
"""

import gc
import time

from _bench_utils import emit_text

from repro import obs
from repro.analysis import baseline_figure, run_baseline
from repro.obs.tracer import Tracer

#: Consecutive baseline evaluations per timed trial (amortizes timer noise).
REPEATS = 20
#: Interleaved trials per measurement session.
TRIALS = 15
#: Measurement sessions (best-of; a session ends the run early once it
#: lands inside the budget — noise can only inflate the estimate).
SESSIONS = 6
#: The acceptance budget for enabled-tracing overhead.
MAX_OVERHEAD = 0.05


def _paired_trials(arms, trials=TRIALS):
    """Per-trial wall times, arms interleaved A/B/A/B.

    Interleaving keeps slow drift (CPU frequency scaling, a noisy
    neighbor on a shared host) from landing entirely on one arm and
    masquerading as overhead; garbage collection is paused so a
    collection pause landing inside one arm cannot skew a pair (both
    arms allocate heavily either way).
    """
    times = [[] for _ in arms]
    gc.collect()
    gc.disable()
    try:
        for trial in range(trials):
            # Alternate arm order so any systematic first-arm advantage
            # (frequency boost decay, cache warmth) cancels across trials.
            order = range(len(arms)) if trial % 2 == 0 else reversed(range(len(arms)))
            for i in order:
                t0 = time.perf_counter()
                arms[i]()
                times[i].append(time.perf_counter() - t0)
    finally:
        gc.enable()
    return times


def _series_values(report):
    figure = baseline_figure(report)
    return [(s.label, s.values) for s in figure.series]


def test_tracing_overhead_under_budget(baseline_params):
    params = baseline_params

    def untraced():
        # Explicitly disable: under an env-traced CI session the baseline
        # arm must still measure the tracing-off path.
        with obs.use_tracer(None):
            for _ in range(REPEATS):
                run_baseline(params)

    def traced():
        # A fresh tracer per trial: steady-state span recording, not an
        # ever-growing buffer.
        with obs.use_tracer(Tracer()):
            for _ in range(REPEATS):
                run_baseline(params)

    untraced()  # warm-up: imports, allocator, caches
    traced()
    # Overhead as the median of per-trial paired ratios: a noise burst on
    # a shared host hits adjacent trials of both arms alike, so each pair
    # is a fair comparison, and the median discards the pairs a burst
    # landed inside — per-arm bests can fall in different noise regimes
    # and fabricate overhead.  Noise only inflates the estimate, so take
    # the best of a few measurement sessions, stopping at the first one
    # inside the budget.
    overhead = float("inf")
    disabled = enabled = float("inf")
    for _ in range(SESSIONS):
        disabled_times, enabled_times = _paired_trials([untraced, traced])
        ratios = sorted(e / d for d, e in zip(disabled_times, enabled_times))
        session_overhead = ratios[len(ratios) // 2] - 1.0
        if session_overhead < overhead:
            overhead = session_overhead
            disabled = min(disabled_times)
            enabled = min(enabled_times)
        if overhead < MAX_OVERHEAD:
            break

    # Bitwise safety: the traced run computes the exact same numbers.
    plain_report = run_baseline(params)
    tracer = Tracer()
    with obs.use_tracer(tracer):
        with obs.span("fig13.baseline", configurations=9):
            traced_report = run_baseline(params)
    assert _series_values(traced_report) == _series_values(plain_report)

    spans = tracer.finished()
    assert spans, "traced baseline run recorded no spans"

    lines = [
        "observability overhead — fig13 baseline (9 configurations)",
        "",
        f"disabled tracing : {disabled / REPEATS * 1e3:8.3f} ms/run "
        f"(best of {TRIALS} trials x {REPEATS} runs)",
        f"enabled tracing  : {enabled / REPEATS * 1e3:8.3f} ms/run",
        f"overhead         : {100.0 * overhead:+8.2f}%  "
        f"(budget {100.0 * MAX_OVERHEAD:+.2f}%; median paired ratio)",
        f"spans per run    : {len(spans)}",
        "",
        "per-phase timings of one traced baseline run:",
        "",
        obs.render_report(spans),
    ]
    emit_text("\n".join(lines), "obs_overhead.txt")

    assert overhead < MAX_OVERHEAD, (
        f"enabled tracing costs {100.0 * overhead:.2f}% "
        f"(budget {100.0 * MAX_OVERHEAD:.0f}%)"
    )

"""Figure 13: baseline comparison of the nine redundancy configurations.

Regenerates the bar chart as a table (events/PB-year per configuration at
the Section 6 baseline) and asserts the paper's three observations.
"""

from _bench_utils import emit

from repro.analysis import baseline_figure, run_baseline
from repro.models import PAPER_TARGET_EVENTS_PER_PB_YEAR


def test_fig13_baseline(benchmark, baseline_params):
    report = benchmark(run_baseline, baseline_params)
    figure = baseline_figure(report)
    emit(figure, "fig13_baseline.txt")

    # Observation 1: NFT 1 misses the target everywhere.
    assert report.ft1_all_miss_target()
    # Observation 2: internal RAID 5 ~ RAID 6 at FT >= 2.
    assert report.raid5_raid6_gap_orders(2) < 0.5
    assert report.raid5_raid6_gap_orders(3) < 0.5
    # Observation 3: [FT3, internal RAID] overshoots by ~5 orders.
    assert 4.0 < report.ft3_internal_raid_margin_orders() < 8.0
    # The survivors include the Section 7 sensitivity trio's strong members.
    keys = {c.key for c in report.survivors()}
    assert {"ft2_raid5", "ft3_noraid"} <= keys
    # FT2 no-RAID is marginal (within 3x of the line either way).
    rate = report.result_for("ft2_noraid").events_per_pb_year
    assert PAPER_TARGET_EVENTS_PER_PB_YEAR / 3 < rate < 3 * PAPER_TARGET_EVENTS_PER_PB_YEAR

"""Fleet-level evaluation of the paper's target in its original form.

Section 6 states the target as "a field population of 100 systems each
with a petabyte of logical capacity will experience less than one data
loss event in 5 years" and then converts it to 2e-3 events/PB-year.
This benchmark evaluates the original statement directly from the chains'
transient solutions: per-system 5-year survival probability, fleet
P(>= 1 loss), and expected fleet events — scaled to petabyte systems.
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.models import (
    ALL_CONFIGURATIONS,
    HOURS_PER_YEAR,
    fleet_expected_events,
    fleet_loss_probability,
    mission_survival_probability,
)

MISSION_HOURS = 5 * HOURS_PER_YEAR
FLEET = 100


def fleet_events_per_pb_fleet(config, params):
    """Expected 5-year fleet events, normalized to 1-PB systems (the
    paper's fleet is petabyte-scale; ours is params.system_logical_pb)."""
    mttdl = config.mttdl_hours(params)
    per_system = fleet_expected_events(mttdl, FLEET, MISSION_HOURS)
    return per_system / params.system_logical_pb


def test_fleet_target_statement(benchmark, baseline_params):
    events = benchmark(
        fleet_events_per_pb_fleet, ALL_CONFIGURATIONS[4], baseline_params
    )  # ft2_raid5
    # The headline configuration satisfies the original target statement.
    assert events < 1.0


def test_fleet_target_report(baseline_params):
    rows = [
        [
            "configuration",
            "P(survive 5y)",
            "fleet P(>=1 loss)",
            "E[fleet events]/PB",
            "meets '<1 event'",
        ]
    ]
    for config in ALL_CONFIGURATIONS:
        chain = config.chain(baseline_params)
        survival = mission_survival_probability(chain, MISSION_HOURS)
        p_fleet = fleet_loss_probability(survival, FLEET)
        events = fleet_events_per_pb_fleet(config, baseline_params)
        rows.append(
            [
                config.label,
                f"{survival:.6f}",
                f"{p_fleet:.3e}",
                f"{events:.3e}",
                "yes" if events < 1.0 else "NO",
            ]
        )
    emit_text(
        "Section 6 target, original fleet form (100 PB-scale systems, "
        "5 years)\n" + format_table(rows),
        "fleet_target.txt",
    )

"""Ablation (beyond the paper): the Section 5.2 critical-fraction refinement.

A naive model charges *every* hard error during a re-stripe as a data
loss.  The paper's refinement observes that, with data spread over all
C(N, R) redundancy sets, only the fraction k_t of a node's data that
shares a redundancy set with every concurrent failure is actually
critical.  This benchmark measures how much pessimism the naive model
carries — i.e. how much reliability the placement geometry 'buys'.
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.models import (
    InternalRaid,
    InternalRaidNodeModel,
    Parameters,
    RebuildModel,
    build_internal_raid_chain,
    events_per_pb_year,
    k2_factor,
    k3_factor,
)


def mttdl_with_fraction(params, t, fraction):
    model = InternalRaidNodeModel(params, InternalRaid.RAID5, t)
    rates = model.array_rates
    chain = build_internal_raid_chain(
        t,
        params.node_set_size,
        params.node_failure_rate,
        rates.array_failure_rate,
        rates.restripe_sector_loss_rate,
        model.node_rebuild_rate,
        fraction,
    )
    return chain.mean_time_to_absorption()


@pytest.mark.parametrize("t", [2, 3])
def test_ablation_critical_fraction(benchmark, baseline_params, t):
    n, r = baseline_params.node_set_size, baseline_params.redundancy_set_size
    k_t = k2_factor(n, r) if t == 2 else k3_factor(n, r)
    refined = benchmark(mttdl_with_fraction, baseline_params, t, k_t)
    naive = mttdl_with_fraction(baseline_params, t, 1.0)
    assert refined >= naive
    # The refinement matters more at higher tolerance (k3 << k2).
    if t == 3:
        assert refined / naive > 1.5


def test_ablation_critical_fraction_report(baseline_params):
    n, r = baseline_params.node_set_size, baseline_params.redundancy_set_size
    rows = [["FT", "k_t", "naive events/PB-yr", "refined events/PB-yr", "gain"]]
    for t, k_t in ((2, k2_factor(n, r)), (3, k3_factor(n, r))):
        naive = mttdl_with_fraction(baseline_params, t, 1.0)
        refined = mttdl_with_fraction(baseline_params, t, k_t)
        rows.append(
            [
                str(t),
                f"{k_t:.4f}",
                f"{events_per_pb_year(naive, baseline_params):.3e}",
                f"{events_per_pb_year(refined, baseline_params):.3e}",
                f"{refined / naive:.2f}x",
            ]
        )
    emit_text(
        "Ablation: Section 5.2 critical-fraction scaling "
        "(internal RAID 5)\n" + format_table(rows),
        "ablation_critical_fraction.txt",
    )

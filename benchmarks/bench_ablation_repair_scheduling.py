"""Ablation (beyond the paper): serial vs parallel node-rebuild scheduling.

The paper's chains repair one node at a time (a single ``mu_N`` edge per
degraded state).  A distributed rebuild could instead run all outstanding
rebuilds concurrently on disjoint survivor sets — rate ``j * mu_N`` with
``j`` nodes down — at the cost of more rebuild bandwidth consumed.  This
ablation measures how much the scheduling choice is worth.
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.models import (
    InternalRaid,
    InternalRaidNodeModel,
    build_internal_raid_chain,
    events_per_pb_year,
    k2_factor,
    k3_factor,
)


def mttdl_with_scheduling(params, t, parallel):
    model = InternalRaidNodeModel(params, InternalRaid.RAID5, t)
    rates = model.array_rates
    n, r = params.node_set_size, params.redundancy_set_size
    k_t = 1.0 if t == 1 else (k2_factor(n, r) if t == 2 else k3_factor(n, r))
    chain = build_internal_raid_chain(
        t,
        n,
        params.node_failure_rate,
        rates.array_failure_rate,
        rates.restripe_sector_loss_rate,
        model.node_rebuild_rate,
        k_t,
        parallel_repair=parallel,
    )
    return chain.mean_time_to_absorption()


@pytest.mark.parametrize("t", [2, 3])
def test_ablation_repair_scheduling(benchmark, baseline_params, t):
    import math

    serial = benchmark(mttdl_with_scheduling, baseline_params, t, False)
    parallel = mttdl_with_scheduling(baseline_params, t, True)
    # To leading order MTTDL ~ mu^t / (rates...); parallel repair replaces
    # mu^t by (1 mu)(2 mu)...(t mu): a t! gain, and no more.
    assert parallel > serial
    assert parallel == pytest.approx(serial * math.factorial(t), rel=0.05)


def test_ablation_repair_scheduling_report(baseline_params):
    rows = [["FT", "serial events/PB-yr", "parallel events/PB-yr", "gain"]]
    for t in (2, 3):
        serial = mttdl_with_scheduling(baseline_params, t, False)
        parallel = mttdl_with_scheduling(baseline_params, t, True)
        rows.append(
            [
                str(t),
                f"{events_per_pb_year(serial, baseline_params):.3e}",
                f"{events_per_pb_year(parallel, baseline_params):.3e}",
                f"{parallel / serial:.2f}x",
            ]
        )
    emit_text(
        "Ablation: node-rebuild scheduling (internal RAID 5)\n"
        + format_table(rows),
        "ablation_repair_scheduling.txt",
    )

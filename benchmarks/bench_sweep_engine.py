"""Sweep-engine benchmark: the figure 14-20 sweep, serial vs engine.

The acceptance bar for the engine is concrete: evaluating the full
sensitivity-figure sweep through ``SweepEngine(jobs=4)`` must be at least
2x faster than the pre-engine point-by-point path while producing
bitwise-identical MTTDL curves.  This benchmark measures both arms (plus
a warm-disk-cache arm), asserts the bar, and archives the wall times in
``benchmarks/results/sweep_engine.txt``.
"""

import time

import pytest
from _bench_utils import emit_text

from repro import Parameters, SweepEngine
from repro.analysis import format_table
from repro.analysis.figures import all_figures

TRIALS = 5


def _best_of(fn, trials=TRIALS):
    """Best wall time over ``trials`` runs (suppresses scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(trials):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
    return best, result


def _assert_identical(serial_figs, engine_figs):
    for plain, fast in zip(serial_figs, engine_figs):
        assert plain.title == fast.title
        assert plain.x_values == fast.x_values
        for a, b in zip(plain.series, fast.series):
            assert a.label == b.label
            assert a.values == b.values, (plain.title, a.label)


def test_engine_speedup_report(baseline_params, tmp_path):
    params = baseline_params

    serial_time, serial_figs = _best_of(lambda: all_figures(params))
    engine_time, engine_figs = _best_of(
        lambda: all_figures(params, engine=SweepEngine(params, jobs=4))
    )
    _assert_identical(serial_figs, engine_figs)
    speedup = serial_time / engine_time

    # Warm-disk-cache arm: every point is answered from the result cache.
    cache_dir = tmp_path / "cache"
    all_figures(params, engine=SweepEngine(params, jobs=4, cache=cache_dir))
    cached_time, cached_figs = _best_of(
        lambda: all_figures(
            params, engine=SweepEngine(params, jobs=4, cache=cache_dir)
        )
    )
    _assert_identical(serial_figs, cached_figs)

    provenance = SweepEngine(params, jobs=4)
    all_figures(params, engine=provenance)
    rows = [
        ["arm", f"wall time (best of {TRIALS})", "speedup"],
        ["serial point-by-point", f"{serial_time * 1e3:8.1f} ms", "1.00x"],
        ["SweepEngine(jobs=4)", f"{engine_time * 1e3:8.1f} ms", f"{speedup:.2f}x"],
        [
            "SweepEngine(jobs=4) + warm disk cache",
            f"{cached_time * 1e3:8.1f} ms",
            f"{serial_time / cached_time:.2f}x",
        ],
    ]
    emit_text(
        "Figure 14-20 sensitivity sweep (168 points), serial vs sweep engine\n"
        + format_table(rows)
        + "\nengine counters: "
        + provenance.provenance().describe()
        + "\noutputs bitwise identical across all arms",
        "sweep_engine.txt",
    )
    assert speedup >= 2.0, f"engine speedup {speedup:.2f}x < 2x"


@pytest.mark.parametrize("arm", ["serial", "engine"])
def test_all_figures_timing(benchmark, baseline_params, arm):
    if arm == "serial":
        benchmark(lambda: all_figures(baseline_params))
    else:
        benchmark(
            lambda: all_figures(
                baseline_params, engine=SweepEngine(baseline_params, jobs=4)
            )
        )

"""Sharded-serve benchmark: 4 shard workers vs the single-process baseline.

The acceptance bar for the sharded topology is concrete: under a
hot-key Zipf workload (the skew real caches live under), the 4-worker
spec-hash-sharded topology with shard-local TTL caches must sustain at
least 2x the throughput of the single-process baseline measured in
``benchmarks/results/serve.txt`` — the classic one-solve-per-request
server (``max_batch_size=1``, result cache off).  All arms run the
identical batcher-plus-runtime substrate from :mod:`repro.runtime` /
:mod:`repro.serve` and the identical seeded request stream, so the
ratios isolate exactly what each layer buys:

* arm 1 (baseline): one solve per request on the single solver thread —
  serve.txt's baseline arm;
* arm 2: the coalescing batcher on the same single solver thread,
  cache off — serve.txt's batched arm;
* arm 3: four forked shard workers on :class:`repro.runtime.ProcessTopology`,
  every point routed by spec hash to the worker owning its chain
  family's compiled spec and shard-local TTL cache, with a declared
  per-request deadline budget.

On a single-CPU host the forked workers add pipe round-trips without
adding cores, so arm 3's margin over arm 1 comes from batching plus
shard-cache locality (hot keys answer from the owning shard's cache
instead of re-solving); on multi-core hosts the workers add parallel
solve capacity on top.

The benchmark also asserts the serving-quality bars: the sharded arm's
p99 latency must land inside its declared deadline budget, and every
answer is bitwise identical across all three arms and against a direct
``repro.evaluate()`` call.  Results are archived in
``benchmarks/results/serve_sharded.txt``.
"""

import asyncio
import functools
import random
import time

from _bench_utils import emit_text

import repro
from repro.analysis import format_table
from repro.core.solvers import SolveOptions
from repro.engine.keys import point_key
from repro.models.configurations import all_configurations
from repro.runtime import ProcessTopology
from repro.serve.batcher import CoalescingBatcher
from repro.serve.loadgen import percentile
from repro.serve.shard import shard_index
from repro.serve.solvecore import make_state, solve_handler

TRIALS = 3
POINTS = 2000
SHARD_WORKERS = 4

#: Off-stream warmup points (one per chain family, parameters outside
#: the measured key space): compiles every spec in every topology before
#: the clock starts, exactly like serve.txt's warmup.
WARMUP_VALUE = 9e4

#: Closed-loop concurrency per arm, tuned the way serve.txt tunes its
#: arms: enough to keep each topology saturated without flooding it.
NAIVE_CONCURRENCY = 128
BATCHED_CONCURRENCY = 512
SHARDED_CONCURRENCY = 128

#: The declared per-request latency budget for the sharded arm.
DEADLINE_MS = 50.0

#: The required throughput multiple of the 4-worker sharded topology
#: over serve.txt's single-process one-solve-per-request baseline.
REQUIRED_SPEEDUP = 2.0

#: The hot-key key space: nine configs x 25 drive-MTTF values, drawn
#: Zipf(1.2) — a handful of hot keys dominate, as in production traffic.
VALUE_COUNT = 25
ZIPF_SKEW = 1.2


def _hotkey_points(base, n, seed=7):
    """``n`` Zipf-skewed (config, params) points over the key space.

    Mirrors the load generator's hot-key shape, in-process: the key
    order is a seeded shuffle, rank r carries weight 1/(r+1)^skew.
    """
    configs = all_configurations(3)
    keys = [
        (config, 1e5 * (1 + v * 1e-3))
        for config in configs
        for v in range(VALUE_COUNT)
    ]
    rng = random.Random(seed ^ 0x5A1F)
    rng.shuffle(keys)
    weights = [1.0 / (r + 1) ** ZIPF_SKEW for r in range(len(keys))]
    draw = random.Random(seed)
    return [
        (config, base.replace(drive_mttf_hours=value))
        for config, value in draw.choices(keys, weights=weights, k=n)
    ]


async def _drive_single(points, concurrency, max_batch_size, max_wait_us):
    """One batcher on the classic single solver thread, cache off."""
    batcher = CoalescingBatcher(
        max_batch_size=max_batch_size,
        max_wait_us=max_wait_us,
        queue_depth=100_000,
    )
    batcher.start()
    try:
        for config in all_configurations(3):
            await batcher.submit(
                config, points[0][1].replace(drive_mttf_hours=WARMUP_VALUE),
                "analytic",
            )
        semaphore = asyncio.Semaphore(concurrency)

        async def one(config, params):
            async with semaphore:
                t0 = time.perf_counter()
                mttdl = await batcher.submit(config, params, "analytic")
                return mttdl, time.perf_counter() - t0

        t0 = time.perf_counter()
        outcomes = await asyncio.gather(*[one(c, p) for c, p in points])
        wall = time.perf_counter() - t0
    finally:
        await batcher.stop()
    return wall, [m for m, _ in outcomes], [lat for _, lat in outcomes]


async def _drive_sharded(points, concurrency, workers=SHARD_WORKERS):
    """Per-shard batchers over forked workers with shard-local caches."""
    topology = ProcessTopology(
        solve_handler,
        size=workers,
        worker_state=functools.partial(make_state, 4096, None, True),
        restart=True,
        name="bench-serve-shard",
    )
    topology.start()
    batchers = [
        CoalescingBatcher(
            max_batch_size=256,
            max_wait_us=2000,
            queue_depth=100_000,
            runtime=topology,
            shard=i,
        )
        for i in range(workers)
    ]
    for batcher in batchers:
        batcher.start()
    try:
        for config in all_configurations(3):
            await batchers[shard_index(config.key, "analytic", workers)].submit(
                config, points[0][1].replace(drive_mttf_hours=WARMUP_VALUE),
                "analytic",
            )
        semaphore = asyncio.Semaphore(concurrency)

        async def one(config, params):
            async with semaphore:
                batcher = batchers[
                    shard_index(config.key, "analytic", workers)
                ]
                t0 = time.perf_counter()
                mttdl = await batcher.submit(
                    config,
                    params,
                    "analytic",
                    deadline_s=DEADLINE_MS / 1e3,
                    cache_key=point_key(config, params, "analytic", None),
                )
                return mttdl, time.perf_counter() - t0

        t0 = time.perf_counter()
        outcomes = await asyncio.gather(*[one(c, p) for c, p in points])
        wall = time.perf_counter() - t0
    finally:
        for batcher in batchers:
            await batcher.stop()
        await asyncio.get_running_loop().run_in_executor(None, topology.stop)
    return wall, [m for m, _ in outcomes], [lat for _, lat in outcomes]


def _best_of(drive, trials=TRIALS):
    best = None
    for _ in range(trials):
        wall, answers, latencies = asyncio.run(drive())
        if best is None or wall < best[0]:
            best = (wall, answers, latencies)
    return best


def test_serve_sharded_speedup_report(baseline_params):
    base = baseline_params
    points = _hotkey_points(base, POINTS)

    naive_wall, naive_answers, _ = _best_of(
        lambda: _drive_single(points, NAIVE_CONCURRENCY, 1, 0)
    )
    batched_wall, batched_answers, _ = _best_of(
        lambda: _drive_single(points, BATCHED_CONCURRENCY, 256, 2000)
    )
    sharded_wall, sharded_answers, sharded_lat = _best_of(
        lambda: _drive_sharded(points, SHARDED_CONCURRENCY)
    )

    # Correctness bar: bitwise-identical answers across all topologies
    # and against the direct evaluate() path (sampled — ~500us/point).
    assert naive_answers == batched_answers == sharded_answers
    for i in range(0, POINTS, POINTS // 20):
        config, params = points[i]
        direct = repro.evaluate(
            config, params, options=SolveOptions(backend="auto")
        )
        assert sharded_answers[i] == direct.mttdl_hours

    naive_rps = POINTS / naive_wall
    batched_rps = POINTS / batched_wall
    sharded_rps = POINTS / sharded_wall
    speedup_batched = batched_rps / naive_rps
    speedup_sharded = sharded_rps / naive_rps
    ordered = sorted(sharded_lat)
    p50_ms = 1e3 * percentile(ordered, 50)
    p99_ms = 1e3 * percentile(ordered, 99)

    rows = [
        ["arm", "throughput", "p99 ms", "speedup"],
        [
            "one solve per request (serve.txt baseline)",
            f"{naive_rps:7.1f} req/s",
            "",
            "1.00x",
        ],
        [
            "coalescing batcher, single thread",
            f"{batched_rps:7.1f} req/s",
            "",
            f"{speedup_batched:.2f}x",
        ],
        [
            f"sharded x{SHARD_WORKERS} (spec-hash routing, shard caches)",
            f"{sharded_rps:7.1f} req/s",
            f"{p99_ms:6.2f}",
            f"{speedup_sharded:.2f}x",
        ],
    ]
    emit_text(
        f"repro.serve sharded topology: {POINTS} hot-key (Zipf {ZIPF_SKEW}) "
        f"analytic points over {9 * VALUE_COUNT} keys\n(closed loop, best of "
        f"{TRIALS}; sharded arm declares a {DEADLINE_MS:g}ms deadline "
        "budget per request)\n"
        + format_table(rows)
        + f"\nsharded p50 {p50_ms:.2f}ms / p99 {p99_ms:.2f}ms; answers "
        "bitwise-identical across all arms and vs direct repro.evaluate()\n"
        "single-CPU hosts measure batching + shard-cache locality only; "
        "multi-core hosts add parallel solve capacity on top",
        "serve_sharded.txt",
    )

    assert p99_ms <= DEADLINE_MS, (
        f"sharded p99 {p99_ms:.2f}ms blew the declared "
        f"{DEADLINE_MS:g}ms deadline budget"
    )
    assert speedup_sharded >= REQUIRED_SPEEDUP, (
        f"sharded topology gained only {speedup_sharded:.2f}x over the "
        f"one-solve-per-request baseline (bar: {REQUIRED_SPEEDUP}x)"
    )

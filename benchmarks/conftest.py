"""Fixtures for the benchmark harness.

Each ``bench_figNN_*.py`` regenerates one figure of the paper's
evaluation: the benchmark times the full analysis, asserts the paper's
qualitative claims, prints the rows/series (run with ``-s`` to see them)
and archives them under ``benchmarks/results/``.
"""

import pytest


@pytest.fixture(scope="session")
def baseline_params():
    from repro.models import Parameters

    return Parameters.baseline()

"""Fixtures for the benchmark harness.

Each ``bench_figNN_*.py`` regenerates one figure of the paper's
evaluation: the benchmark times the full analysis, asserts the paper's
qualitative claims, prints the rows/series (run with ``-s`` to see them)
and archives them under ``benchmarks/results/``.
"""

import pytest


@pytest.fixture(scope="session")
def baseline_params():
    from repro.models import Parameters

    return Parameters.baseline()


@pytest.fixture(scope="session", autouse=True)
def _obs_session_from_env():
    """Trace the whole benchmark session when CI asks for it.

    Setting ``REPRO_TRACE`` / ``REPRO_METRICS`` / ``REPRO_REPORT`` wraps
    the session in a :class:`repro.obs.TraceSession`, so the bench-smoke
    CI job gets a JSONL trace and metrics.json of the benchmark run
    without any benchmark growing flags.
    """
    from repro import obs

    session = obs.session_from_env()
    if session is None:
        yield
        return
    with session:
        yield

"""Benchmark: the full scenario-corpus flywheel at acceptance scale.

The differential oracles are only an acceptance gate if they hold over a
corpus large enough to exercise every scenario family and both solver
backends, so this benchmark generates the pinned 1000-scenario corpus,
pumps it through :func:`repro.fleet.run_corpus` and archives the oracle
and backend breakdown.  Any oracle violation fails the run outright.
"""

import statistics
from collections import Counter

from _bench_utils import emit_text

from repro.analysis import format_table
from repro.engine import SweepEngine
from repro.fleet import ScenarioGenerator, run_corpus

CORPUS_SEED = 2006  # the paper's year; pinned so results are comparable
CORPUS_COUNT = 1000
DENSE_CHECK_LIMIT = 2048


def run_acceptance_corpus():
    scenarios = list(
        ScenarioGenerator(seed=CORPUS_SEED).generate(CORPUS_COUNT)
    )
    engine = SweepEngine(jobs=1, cache=False)
    return scenarios, run_corpus(
        scenarios, engine=engine, dense_check_limit=DENSE_CHECK_LIMIT
    )


def test_fleet_corpus_acceptance(benchmark):
    scenarios, run = benchmark.pedantic(
        run_acceptance_corpus, rounds=1, iterations=1
    )
    assert run.ok, run.violations[:5]
    assert len(run.results) == CORPUS_COUNT
    assert all(result.ok for result in run.results)

    dense_checked = [
        r for r in run.results if r.sparse_dense_rel_gap is not None
    ]
    assert dense_checked, "no scenario was densely solvable"
    worst_gap = max(r.sparse_dense_rel_gap for r in dense_checked)
    assert worst_gap <= 1e-9

    families = Counter(s.family for s in scenarios)
    backends = Counter(r.backend for r in run.results)
    states = sorted(r.num_states for r in run.results)
    ratios = sorted(r.heterogeneity_ratio for r in run.results)

    rows = [["metric", "value"]]
    rows.append(["scenarios", str(CORPUS_COUNT)])
    rows.append(["seed", str(CORPUS_SEED)])
    rows.append(["oracle violations", str(len(run.violations))])
    for family in sorted(families):
        rows.append([f"family {family}", str(families[family])])
    for backend in sorted(backends):
        rows.append([f"backend {backend}", str(backends[backend])])
    rows.append(["dense cross-checks", str(len(dense_checked))])
    rows.append(["worst sparse/dense rel gap", f"{worst_gap:.3e}"])
    rows.append(
        [
            "states min/median/max",
            f"{states[0]} / {statistics.median(states):.0f} / {states[-1]}",
        ]
    )
    rows.append(
        [
            "heterogeneity ratio min/max",
            f"{ratios[0]:.4f} / {ratios[-1]:.4f}",
        ]
    )
    rows.append(
        [
            "elapsed seconds",
            f"{run.header.provenance['elapsed_seconds']:.1f}",
        ]
    )
    emit_text(
        "fleet scenario corpus (acceptance scale)\n" + format_table(rows),
        "fleet_corpus.txt",
    )

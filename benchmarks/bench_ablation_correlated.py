"""Ablation (beyond the paper): correlated node failures.

Every chain in the paper assumes independent failures.  Real bricks share
power and cooling domains (the CIB mesh stacks them physically), so node
failures can arrive in bursts.  This ablation keeps the *total* node
failure rate fixed and shifts a growing fraction of it into simultaneous
bursts of 3 — instantly fatal at fault tolerance 2 — measuring how much
the independence assumption flatters the paper's numbers.
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.models import Parameters
from repro.sim import NoRaidFailureProcess, Simulator, StreamFactory

ACCELERATED = Parameters.with_overrides(
    node_set_size=12,
    redundancy_set_size=6,
    node_mttf_hours=4_000.0,
    drive_mttf_hours=3_000.0,
)


def mean_time_to_loss(burst_fraction: float, runs: int = 80) -> float:
    total = 0.0
    for seed in range(runs):
        sim = Simulator()
        process = NoRaidFailureProcess(
            sim,
            ACCELERATED,
            2,
            StreamFactory(seed),
            burst_fraction=burst_fraction,
            burst_size=3,
        )
        sim.run(stop_when=lambda: process.has_lost_data, max_events=10**7)
        total += process.losses[0].time_hours
    return total / runs


def test_ablation_correlated_failures(benchmark):
    independent = benchmark.pedantic(
        mean_time_to_loss, args=(0.0,), rounds=1, iterations=1
    )
    fully_correlated = mean_time_to_loss(1.0)
    # Same total failure rate, drastically different reliability.
    assert fully_correlated < 0.75 * independent


def test_ablation_correlated_report():
    rows = [["burst fraction", "mean time to loss (h)", "vs independent"]]
    baseline = mean_time_to_loss(0.0)
    for fraction in (0.0, 0.1, 0.25, 0.5, 1.0):
        value = mean_time_to_loss(fraction)
        rows.append(
            [f"{fraction:.0%}", f"{value:.0f}", f"{value / baseline:.2f}x"]
        )
    emit_text(
        "Ablation: correlated node failures (bursts of 3, FT 2 no-RAID, "
        "accelerated rates; total failure rate held constant)\n"
        + format_table(rows),
        "ablation_correlated.txt",
    )

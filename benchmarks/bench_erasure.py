"""Erasure-codec data-path benchmarks.

Throughput of the substrates the storage engine uses: Reed-Solomon
encode/decode at the paper's cross-node geometries (R = 8, t = 1..3) and
the RAID 6 double-erasure recovery path.
"""

import numpy as np
import pytest

from repro.erasure import Raid6Codec, ReedSolomonCodec

BLOCK = 64 * 1024


def make_blocks(k, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.integers(0, 256, size=BLOCK, dtype=np.uint8).tobytes() for _ in range(k)]


@pytest.mark.parametrize("t", [1, 2, 3])
def test_rs_encode_r8(benchmark, t):
    codec = ReedSolomonCodec(8 - t, t)
    data = make_blocks(8 - t)
    shards = benchmark(codec.encode, data)
    assert len(shards) == 8


@pytest.mark.parametrize("t", [1, 2, 3])
def test_rs_decode_r8_worst_case(benchmark, t):
    codec = ReedSolomonCodec(8 - t, t)
    data = make_blocks(8 - t, seed=1)
    shards = codec.encode(data)
    # Worst case: all t lost shards are data shards.
    survivors = {i: s for i, s in enumerate(shards) if i >= t}
    decoded = benchmark(codec.decode_data, survivors)
    assert decoded == data


def test_raid6_double_recovery(benchmark):
    codec = Raid6Codec(10)
    data = make_blocks(10, seed=2)
    stripe = codec.encode(data)
    survivors = {i: s for i, s in enumerate(stripe) if i not in (3, 7)}
    rebuilt = benchmark(codec.reconstruct, survivors)
    assert rebuilt == stripe

"""Numerical benchmark: the GTH solver vs LU on stiff reliability chains.

Reliability chains mix rates spanning (mu/lambda)^k orders of magnitude.
This benchmark measures both solvers' accuracy against exact rational
arithmetic on the paper's chains, and their speed on the large recursive
chains — quantifying why the library solves with GTH.
"""

import numpy as np
import pytest
from scipy import linalg as sla
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.core import exact_mttdl
from repro.models import NoRaidNodeModel, Parameters, RecursiveNoRaidModel


def lu_mttdl(chain):
    """Plain float64 LU solve of R t = 1 (what a naive implementation does)."""
    transient = list(chain.transient_states())
    idx = [chain.index_of(s) for s in transient]
    q = chain.generator_matrix()
    r = -q[np.ix_(idx, idx)]
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        t = sla.solve(r, np.ones(len(idx)))
    return float(t[transient.index(chain.initial_state)])


@pytest.mark.parametrize("k", [2, 4, 6])
def test_gth_solve_speed(benchmark, k):
    params = Parameters.with_overrides(node_set_size=128, redundancy_set_size=16)
    chain = RecursiveNoRaidModel(params, k).chain()
    mttdl = benchmark(chain.mean_time_to_absorption)
    assert mttdl > 0


def test_gth_vs_lu_accuracy_report():
    params = Parameters.baseline()
    rows = [["chain", "exact (rational)", "GTH rel.err", "LU rel.err"]]
    # Small chains: both fine.  Stiff recursive chains: LU falls apart.
    cases = [
        ("Figure 9 (t=2)", NoRaidNodeModel(params, 2).chain()),
        ("Figure 10 (t=3)", NoRaidNodeModel(params, 3).chain()),
    ]
    big = Parameters.with_overrides(node_set_size=128, redundancy_set_size=16)
    cases.append(("recursive k=5 (N=128)", RecursiveNoRaidModel(big, 5).chain()))
    for name, chain in cases:
        if chain.num_states <= 20:
            exact = float(exact_mttdl(chain))
        else:
            # Rational arithmetic explodes on the big chain; GTH's
            # componentwise guarantee stands in as the reference there.
            exact = chain.mean_time_to_absorption()
        gth = chain.mean_time_to_absorption()
        lu = lu_mttdl(chain)
        rows.append(
            [
                name,
                f"{exact:.6e}",
                f"{abs(gth - exact) / exact:.2e}",
                f"{abs(lu - exact) / exact:.2e}",
            ]
        )
    emit_text(
        "Solver accuracy on reliability chains (reference: exact rational "
        "arithmetic where feasible)\n" + format_table(rows),
        "gth_solver.txt",
    )


def test_lu_is_wrong_on_very_stiff_chain():
    """The motivating failure: on the k=6 condition-1e17 chain LU is off
    by tens of percent while GTH matches Figure A1 to ~1%."""
    params = Parameters.with_overrides(node_set_size=128, redundancy_set_size=16)
    model = RecursiveNoRaidModel(params, 6)
    chain = model.chain()
    gth = chain.mean_time_to_absorption()
    lu = lu_mttdl(chain)
    approx = model.mttdl_approx()
    assert abs(gth - approx) / approx < 0.05
    assert abs(lu - approx) / approx > 0.05

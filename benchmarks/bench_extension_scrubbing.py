"""Extension benchmark: scrub cadence vs reliability vs bandwidth cost.

Sweeps the scrub interval from daily to yearly for the three Section 7
configurations, reporting events/PB-year alongside the drive-bandwidth
fraction one sweep consumes — the trade-off an operator actually tunes.
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.models import ScrubbingModel, sensitivity_configurations

INTERVALS = [
    ("daily", 24.0),
    ("weekly", 168.0),
    ("monthly", 720.0),
    ("quarterly", 2191.5),
    ("yearly (no-scrub calib.)", 8766.0),
]


def sweep_scrub(params):
    model = ScrubbingModel()
    table = {}
    for name, hours in INTERVALS:
        scrubbed = model.scrubbed_parameters(params, hours)
        rates = [
            config.reliability(scrubbed).events_per_pb_year
            for config in sensitivity_configurations()
        ]
        table[name] = (model.scrub_bandwidth_fraction(params, hours), rates)
    return table


def test_extension_scrubbing(benchmark, baseline_params):
    table = benchmark.pedantic(
        sweep_scrub, args=(baseline_params,), rounds=1, iterations=1
    )
    # More frequent scrubbing never hurts reliability.
    series = list(table.values())
    for j in range(3):
        rates = [rates[j] for _, rates in series]
        assert all(a <= b * (1 + 1e-12) for a, b in zip(rates, rates[1:]))
    # Daily scrubbing costs under 10% of a drive's bandwidth at baseline.
    assert table["daily"][0] < 0.10


def test_extension_scrubbing_report(baseline_params):
    table = sweep_scrub(baseline_params)
    labels = [c.label for c in sensitivity_configurations()]
    rows = [["scrub cadence", "drive BW cost"] + labels]
    for name, (cost, rates) in table.items():
        rows.append([name, f"{cost:.2%}"] + [f"{r:.3e}" for r in rates])
    emit_text(
        "Extension: scrub cadence vs reliability (events/PB-year)\n"
        + format_table(rows),
        "extension_scrubbing.txt",
    )

"""Figure 18: sensitivity to node set size N (16-256)."""

from _bench_utils import emit

from repro.analysis import figure18_node_set_size


def test_fig18_node_set_size(benchmark, baseline_params):
    figure = benchmark(figure18_node_set_size, baseline_params)
    emit(figure, "fig18_node_set.txt")

    spreads = {s.label: max(s.values) / min(s.values) for s in figure.series}
    # FT2 no-RAID shows some sensitivity; the other two stay within about
    # an order of magnitude over a 16x range of N (the cancellation between
    # a larger failure domain and a smaller critical fraction).
    assert spreads["FT 2, Internal RAID 5"] < 12
    assert spreads["FT 3, No Internal RAID"] < 12
    assert all(v < 30 for v in spreads.values())

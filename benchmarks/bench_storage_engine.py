"""Storage-engine data-path benchmarks: put / get / degraded get / rebuild
throughput of the byte-level substrates."""

import os

import pytest

from repro.cluster import BrickStore, Cluster, StripeStore
from repro.models import InternalRaid, Parameters

PARAMS = Parameters.with_overrides(node_set_size=12, redundancy_set_size=6)
PAYLOAD = os.urandom(64 * 1024)


def fresh_stripe_store():
    store = StripeStore(Cluster(PARAMS), fault_tolerance=2)
    for i in range(20):
        store.put(f"seed-{i}", PAYLOAD)
    return store


def test_put_throughput(benchmark):
    store = fresh_stripe_store()
    counter = iter(range(10**9))

    def put():
        store.put(f"bench-{next(counter)}", PAYLOAD)

    benchmark(put)


def test_get_throughput(benchmark):
    store = fresh_stripe_store()
    result = benchmark(store.get, "seed-7")
    assert result == PAYLOAD


def test_degraded_get_throughput(benchmark):
    """Read with two shards missing: the decode path."""
    store = fresh_stripe_store()
    info = store.info("seed-7")
    store.fail_node(info.redundancy_set.nodes[0])
    store.fail_node(info.redundancy_set.nodes[1])
    result = benchmark(store.get, "seed-7")
    assert result == PAYLOAD


def test_node_rebuild_throughput(benchmark):
    def rebuild():
        store = fresh_stripe_store()
        store.fail_node(3)
        return store.rebuild_node(3)

    shards = benchmark.pedantic(rebuild, rounds=5, iterations=1)
    assert shards >= 0


def test_brick_store_put_raid5(benchmark):
    store = BrickStore(Cluster(PARAMS), fault_tolerance=2, internal=InternalRaid.RAID5)
    counter = iter(range(10**9))

    def put():
        store.put(f"bench-{next(counter)}", PAYLOAD)

    benchmark(put)


def test_brick_restripe_throughput(benchmark):
    def restripe():
        store = BrickStore(
            Cluster(PARAMS), fault_tolerance=2, internal=InternalRaid.RAID5
        )
        for i in range(10):
            store.put(f"k{i}", PAYLOAD)
        return store.fail_drive(0, 0)

    preserved = benchmark.pedantic(restripe, rounds=5, iterations=1)
    assert preserved >= 0

"""Extension benchmark: batch-to-batch MTTF uncertainty propagation.

Section 8: "drive MTTF can vary significantly between batches of drives
and the same can be expected of nodes."  The paper brackets the range
with two point estimates; here we propagate log-uniform uncertainty over
both MTTFs through the models and report percentile bands plus the
probability of meeting the target — the risk view behind Figure 14/15.
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import LogUniform, UncertaintyStudy, format_table
from repro.models import sensitivity_configurations

SAMPLES = 48


def run_study(params):
    study = UncertaintyStudy(
        params,
        {
            "drive_mttf_hours": LogUniform(100_000, 750_000),
            "node_mttf_hours": LogUniform(100_000, 1_000_000),
        },
    )
    return study.run_many(sensitivity_configurations(), samples=SAMPLES, seed=0)


def test_extension_uncertainty(benchmark, baseline_params):
    results = benchmark.pedantic(
        run_study, args=(baseline_params,), rounds=1, iterations=1
    )
    by_key = {r.config.key: r for r in results}
    # FT2 + RAID 5 is robust: meets the target for a clear majority of
    # batch draws; FT2 no-RAID is fragile: mostly misses.
    assert by_key["ft2_raid5"].probability_meets_target() > 0.6
    assert by_key["ft2_noraid"].probability_meets_target() < 0.4
    # FT3 no-RAID's 95th percentile stays under the target.
    assert by_key["ft3_noraid"].p95 < 2e-3


def test_extension_uncertainty_report(baseline_params):
    results = run_study(baseline_params)
    rows = [["configuration", "p5", "median", "p95", "P(meets target)"]]
    for r in results:
        rows.append(
            [
                r.config.label,
                f"{r.percentile(5):.3e}",
                f"{r.median:.3e}",
                f"{r.p95:.3e}",
                f"{r.probability_meets_target():.2f}",
            ]
        )
    emit_text(
        f"Extension: MTTF batch uncertainty, {SAMPLES} LHS draws "
        "(events/PB-year)\n" + format_table(rows),
        "extension_uncertainty.txt",
    )

"""Compiled-spec bind vs legacy rebuild: the compile--bind--solve payoff.

The declarative IR's performance claim is concrete: once a chain family
is compiled, binding a whole parameter lattice through the vectorized
rate kernel must be at least 2x faster than rebuilding the chain
point-by-point with the legacy imperative builder — while producing
bitwise-identical generator matrices.  This benchmark measures three
arms on the largest explicit family (no-RAID at fault tolerance 3,
16 states, sweeping the drive failure rate):

* ``legacy rebuild``  — ``legacy_build_no_raid_chain_ft3`` per point,
* ``compiled bind``   — ``CompiledChain.bind`` per point (structure
  reused, rates re-evaluated as scalars),
* ``compiled bind_batch`` — one stacked numpy pass for every point.

It asserts the 2x bar on the batched arm and archives the wall times in
``benchmarks/results/spec_bind.txt``.
"""

import time

import numpy as np
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.models.no_raid import legacy_build_no_raid_chain_ft3
from repro.models.specs import no_raid_env, no_raid_spec

POINTS = 400
TRIALS = 5

N, D = 64, 12
LAMBDA_N = 1.0 / 400_000
MU_N, MU_D = 1.0 / 20, 1.0 / 8
H_WORDS = ("NNN", "NNd", "NdN", "Ndd", "dNN", "dNd", "ddN", "ddd")
H = {w: 0.003 * (i + 1) for i, w in enumerate(H_WORDS)}


def _best_of(fn, trials=TRIALS):
    best = float("inf")
    result = None
    for _ in range(trials):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_spec_bind_speedup_report():
    lambda_ds = [1.0 / mttf for mttf in np.linspace(150_000, 600_000, POINTS)]

    def rebuild_arm():
        return [
            legacy_build_no_raid_chain_ft3(
                N, D, LAMBDA_N, lam_d, MU_N, MU_D, H
            )
            for lam_d in lambda_ds
        ]

    compiled = no_raid_spec(3).compile()
    envs = [
        no_raid_env(3, N, D, LAMBDA_N, lam_d, MU_N, MU_D, H)
        for lam_d in lambda_ds
    ]

    def bind_arm():
        return [compiled.bind(env) for env in envs]

    stacked = no_raid_env(
        3, N, D, LAMBDA_N, np.array(lambda_ds), MU_N, MU_D, H
    )

    def batch_arm():
        return compiled.bind_batch(stacked)

    rebuild_time, legacy_chains = _best_of(rebuild_arm)
    bind_time, bound_chains = _best_of(bind_arm)
    batch_time, batched_chains = _best_of(batch_arm)

    for legacy, bound, batched in zip(
        legacy_chains, bound_chains, batched_chains
    ):
        assert bound.states == legacy.states
        assert batched.states == legacy.states
        q = legacy.generator_matrix()
        assert np.array_equal(bound.generator_matrix(), q)
        assert np.array_equal(batched.generator_matrix(), q)

    bind_speedup = rebuild_time / bind_time
    batch_speedup = rebuild_time / batch_time
    rows = [
        ["arm", f"wall time (best of {TRIALS})", "speedup"],
        ["legacy rebuild per point", f"{rebuild_time * 1e3:8.2f} ms", "1.00x"],
        ["compiled bind per point", f"{bind_time * 1e3:8.2f} ms", f"{bind_speedup:.2f}x"],
        ["compiled bind_batch", f"{batch_time * 1e3:8.2f} ms", f"{batch_speedup:.2f}x"],
    ]
    emit_text(
        f"no-RAID ft3 chain ({compiled.num_states} states), "
        f"{POINTS}-point drive-MTTF sweep: rebuild vs bind\n"
        + format_table(rows)
        + "\ngenerator matrices bitwise identical across all arms"
        + "\n(per-point bind interprets the expression trees per call and"
        + "\n trades speed for fixed topology; the sweep engine always"
        + "\n groups points by spec hash and takes the bind_batch path)",
        "spec_bind.txt",
    )
    assert batch_speedup >= 2.0, (
        f"bind_batch speedup {batch_speedup:.2f}x < 2x over legacy rebuild"
    )

"""Sparse-solver benchmark: a chain the dense backend cannot even build.

The headline claim of the solver-strategy API is scale: the CSR sparse
backend solves chains whose dense generator would not fit in memory.
This benchmark grows a sector-fleet birth-death-with-killing chain to
``REPRO_SPARSE_BENCH_STATES`` states (default 120,000; CI smoke runs a
reduced count) through the indirect builder, shows that materializing it
densely is refused with a memory estimate, solves its MTTDL through the
sparse backend, and cross-checks the same construction at a dense-sized
state count against the dense GTH backend.

The chain: ``n`` independent sectors, each failing at rate ``lam`` and
repairing at rate ``mu``; while ``k`` sectors are degraded, an
unrecoverable second fault kills the fleet at rate ``k * kill``.  States
are the degraded count plus one absorbing loss state — bandwidth 1, so
sparse elimination is O(n) in both fill and time, while the dense
generator is O(n^2) bytes.
"""

import os
import time

from _bench_utils import emit_text

from repro.analysis import format_table
from repro.core import CTMCError, SolveOptions, SolveRequest, solve
from repro.core.sparse import build_indirect

#: Stiff but realistic repair/failure separation; kill is the rare event.
LAM = 1e-4
MU = 1.0
KILL = 1e-6

LOSS = "loss"


def _fleet_transitions(n):
    """Transition function for the ``n``-sector fleet (indirect builder)."""

    def transitions(state):
        if state == LOSS:
            return {}
        k = state
        out = {}
        if k < n:
            out[k + 1] = (n - k) * LAM
        if k > 0:
            out[k - 1] = k * MU
            out[LOSS] = k * KILL
        return out

    return transitions


def _build(states):
    n = states - 2  # degraded counts 0..n plus the loss state
    return build_indirect(0, _fleet_transitions(n), max_states=states + 1)


def test_sparse_solver_scale_report():
    target = int(os.environ.get("REPRO_SPARSE_BENCH_STATES", "120000"))
    assert target >= 10_000, "bench needs a chain the dense path refuses"

    t0 = time.perf_counter()
    chain = _build(target)
    build_s = time.perf_counter() - t0
    assert chain.num_states == target

    # The dense backend cannot take this chain: materializing the
    # generator is refused with the memory estimate in the message.
    try:
        chain.to_ctmc()
    except CTMCError as exc:
        refusal = str(exc)
    else:
        raise AssertionError("dense materialization unexpectedly succeeded")

    options = SolveOptions(backend="sparse_iterative", tolerance=1e-9)
    t0 = time.perf_counter()
    result = solve(SolveRequest(sparse=chain, options=options))
    solve_s = time.perf_counter() - t0
    mttdl = result.values[0]
    assert result.converged
    assert result.residual <= options.tolerance
    assert mttdl > 0.0

    # Cross-check: the same fleet at a dense-friendly size must agree
    # with the dense GTH backend to near machine precision.
    small = _build(2_000)
    sparse_small = solve(
        SolveRequest(sparse=small, options=options)
    ).values[0]
    dense_small = solve(
        SolveRequest(
            chains=(small.to_ctmc(),),
            options=SolveOptions(backend="dense_gth"),
        )
    ).values[0]
    rel = abs(sparse_small - dense_small) / dense_small
    assert rel < 1e-9, rel

    dense_gb = chain.dense_bytes() / 1e9
    rows = [
        ["quantity", "value"],
        ["states", f"{chain.num_states:,}"],
        ["nonzero rates", f"{chain.nnz:,}"],
        ["dense generator would need", f"{dense_gb:,.1f} GB"],
        ["indirect build", f"{build_s * 1e3:8.1f} ms"],
        ["sparse solve (factorize + refine)", f"{solve_s * 1e3:8.1f} ms"],
        ["refinement passes", str(result.iterations)],
        ["certified residual", f"{result.residual:.3g}"],
        ["MTTDL", f"{mttdl:.6e} hours"],
        ["sparse vs dense @2,000 states", f"rel diff {rel:.3g}"],
    ]
    emit_text(
        f"Sparse CTMC solver at {chain.num_states:,} states "
        "(birth-death-with-killing sector fleet)\n"
        + format_table(rows)
        + "\ndense refusal: "
        + refusal,
        "sparse_solver.txt",
    )

"""Ablation (beyond the paper): sensitivity to the disk hard-error rate.

The paper fixes HER at 1 sector per 10^14 bits (desktop/ATA class) and
never sweeps it, yet hard errors drive the lambda_S terms and the h
probabilities.  This ablation sweeps HER across enterprise (1e-16) to
worst-case (1e-13) and shows which configurations are hard-error-limited
vs failure-limited — context for the paper's Section 8 balance argument.
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.models import events_per_pb_year, sensitivity_configurations

HER_VALUES = [1e-16, 1e-15, 1e-14, 1e-13]


def sweep_her(params):
    results = {}
    for config in sensitivity_configurations():
        rates = []
        for her in HER_VALUES:
            p = params.replace(hard_error_rate_per_bit=her)
            rates.append(config.reliability(p).events_per_pb_year)
        results[config.label] = rates
    return results


def test_ablation_hard_error_rate(benchmark, baseline_params):
    results = benchmark.pedantic(
        sweep_her, args=(baseline_params,), rounds=1, iterations=1
    )
    for label, rates in results.items():
        # Fewer hard errors never hurts.
        assert all(a <= b * (1 + 1e-12) for a, b in zip(rates, rates[1:]))
    # Hard errors are a first-order factor: across three orders of HER,
    # every configuration moves by several-fold — but node/drive failures
    # keep a floor, so none moves by the full three orders (the Section 8
    # balance argument).
    spread = {label: rates[-1] / rates[0] for label, rates in results.items()}
    assert all(s > 2.0 for s in spread.values())
    assert all(s < 1000.0 for s in spread.values())


def test_ablation_hard_error_report(baseline_params):
    results = sweep_her(baseline_params)
    rows = [["HER (per bit)"] + list(results)]
    for i, her in enumerate(HER_VALUES):
        rows.append([f"{her:.0e}"] + [f"{rates[i]:.3e}" for rates in results.values()])
    emit_text(
        "Ablation: disk hard-error rate (events/PB-year)\n"
        + format_table(rows),
        "ablation_hard_errors.txt",
    )

"""Figure 20: sensitivity to drives per node d (4-24)."""

from _bench_utils import emit

from repro.analysis import figure20_drives_per_node


def test_fig20_drives_per_node(benchmark, baseline_params):
    figure = benchmark(figure20_drives_per_node, baseline_params)
    emit(figure, "fig20_drives_per_node.txt")

    # "there is very little sensitivity to the number of drives per node"
    # — the per-PB normalization cancels per-node reliability against node
    # count.
    for series in figure.series:
        assert max(series.values) / min(series.values) < 3.0

"""Mesh flow benchmark: is the single-link bandwidth abstraction sound?

Section 6 reduces the 3-D mesh interconnect to a single sustained
per-node link bandwidth, citing [Fleiner et al. 2003].  This benchmark
lays an actual node rebuild's flows on the 4x4x4 baseline mesh, computes
max-min fair throughput, and reports the ratio between the mesh's real
per-destination rate and the abstraction — the closer to 1, the sounder
Figure 17's network model.
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.cluster import MeshTopology, rebuild_flow_study


def test_mesh_rebuild_flow(benchmark):
    mesh = MeshTopology(4, 4, 4, link_bandwidth_bps=10e9)
    study = benchmark.pedantic(
        rebuild_flow_study,
        args=(mesh, 21, 6),
        rounds=3,
        iterations=1,
    )
    # The abstraction is within 2x of the flow-level truth.
    assert 0.3 < study.abstraction_ratio < 2.0


def test_mesh_rebuild_flow_report():
    rows = [
        [
            "link speed",
            "mesh per-dest MB/s",
            "abstract MB/s",
            "ratio",
            "slowest flow MB/s",
        ]
    ]
    for gbps in (1, 5, 10):
        mesh = MeshTopology(4, 4, 4, link_bandwidth_bps=gbps * 1e9)
        study = rebuild_flow_study(mesh, failed_node=21, source_count=6)
        rows.append(
            [
                f"{gbps} Gb/s",
                f"{study.per_destination_rate / 1e6:.0f}",
                f"{study.abstract_node_bandwidth / 1e6:.0f}",
                f"{study.abstraction_ratio:.2f}",
                f"{study.slowest_flow_rate / 1e6:.1f}",
            ]
        )
    emit_text(
        "Mesh flow study: single-link abstraction vs max-min fair flows "
        "(4x4x4, R-t = 6 sources per destination)\n" + format_table(rows),
        "mesh_flows.txt",
    )

"""Appendix-hypothesis benchmark: approximation error vs rate separation.

The appendix theorem assumes ``N (lambda_N + d lambda_d)`` is at least an
order of magnitude below both rebuild rates.  This benchmark maps the
Figure A1 closed form's relative error as the failure rates climb toward
the rebuild rates, verifying the error decays roughly linearly with the
separation (a first-order perturbation).
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table, validity_map


def test_validity_map(benchmark):
    points = benchmark.pedantic(validity_map, rounds=1, iterations=1)
    # Error decays with separation...
    errors = [p.relative_error for p in points]
    assert errors == sorted(errors, reverse=True)
    # ...and is below 1% once separation exceeds ~100.
    assert points[-1].separation > 100 or points[-1].relative_error < 0.01
    assert points[-1].relative_error < 0.01


def test_validity_map_report():
    points = validity_map()
    rows = [["separation (mu/N*lam)", "max h", "FigA1 rel. error", "trust?"]]
    for p in points:
        rows.append(
            [
                f"{p.separation:.3g}",
                f"{p.max_h:.3g}",
                f"{p.relative_error:.2%}",
                "yes" if p.trustworthy else "no",
            ]
        )
    emit_text(
        "Validity map: Figure A1 error vs the appendix theorem's rate-"
        "separation hypothesis (FT 2, no internal RAID)\n"
        + format_table(rows),
        "validity_map.txt",
    )

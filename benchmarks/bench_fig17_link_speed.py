"""Figure 17: sensitivity to link speed (1 / 5 / 10 Gb/s)."""

import pytest
from _bench_utils import emit

from repro.analysis import figure17_link_speed
from repro.models import RebuildModel


def test_fig17_link_speed(benchmark, baseline_params):
    figure = benchmark(figure17_link_speed, baseline_params)
    emit(figure, "fig17_link_speed.txt")

    i1 = figure.x_values.index(1.0)
    i5 = figure.x_values.index(5.0)
    i10 = figure.x_values.index(10.0)
    for series in figure.series:
        # "There is no difference in reliability between the last two points."
        assert series.values[i5] == pytest.approx(series.values[i10], rel=1e-9)
        # 1 Gb/s is network-bound and clearly worse.
        assert series.values[i1] > 1.5 * series.values[i10]

    # The crossover sits "around 3 Gb/s" (we land at ~2.5 with the paper's
    # transport constants).
    crossover = RebuildModel(baseline_params).network_bound_below_gbps(2)
    assert 2.0 < crossover < 3.5

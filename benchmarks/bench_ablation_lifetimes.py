"""Ablation (beyond the paper): exponential vs Weibull lifetimes.

Every chain in the paper assumes memoryless lifetimes.  At the *same*
mean MTTF, a Weibull shape below 1 (infant mortality) clusters failures
early in life and slashes the time to first data loss; a shape above 1
(wear-out) spaces early life out and delays it.  This quantifies how far
the exponential assumption can mislead — the flip side of Section 8's
remark that "drive MTTF can vary significantly between batches".
"""

import math

import numpy as np
import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.models import Configuration, InternalRaid, Parameters
from repro.sim import EntityNoRaidProcess, Simulator, StreamFactory

ACCELERATED = Parameters.with_overrides(
    node_set_size=10,
    redundancy_set_size=5,
    node_mttf_hours=2_000.0,
    drive_mttf_hours=1_500.0,
)
SHAPES = [0.7, 1.0, 1.5, 3.0]


def mean_time_to_loss(shape: float, runs: int = 80):
    times = []
    for seed in range(runs):
        sim = Simulator()
        process = EntityNoRaidProcess(
            sim,
            ACCELERATED,
            2,
            StreamFactory(seed),
            node_shape=shape,
            drive_shape=shape,
        )
        sim.run(stop_when=lambda: process.has_lost_data, max_events=10**7)
        times.append(process.losses[0].time_hours)
    arr = np.array(times)
    return float(arr.mean()), float(arr.std(ddof=1) / math.sqrt(runs))


def test_ablation_lifetime_shape(benchmark):
    exponential_mean, sem = benchmark.pedantic(
        mean_time_to_loss, args=(1.0,), rounds=1, iterations=1
    )
    # shape = 1 reproduces the chain.
    chain = Configuration(InternalRaid.NONE, 2).mttdl_hours(ACCELERATED)
    assert abs(chain - exponential_mean) <= 4.0 * sem
    # Infant mortality is the dangerous direction.
    infant_mean, _ = mean_time_to_loss(0.7)
    assert infant_mean < 0.5 * exponential_mean


def test_ablation_lifetime_shape_report():
    chain = Configuration(InternalRaid.NONE, 2).mttdl_hours(ACCELERATED)
    rows = [["Weibull shape", "mean time to loss (h)", "vs exponential", "regime"]]
    base = None
    for shape in SHAPES:
        mean, sem = mean_time_to_loss(shape)
        if shape == 1.0:
            base = mean
    for shape in SHAPES:
        mean, sem = mean_time_to_loss(shape)
        regime = (
            "infant mortality"
            if shape < 1
            else ("memoryless (= chain)" if shape == 1 else "wear-out")
        )
        rows.append(
            [f"{shape:.1f}", f"{mean:.0f} +- {sem:.0f}", f"{mean / base:.2f}x", regime]
        )
    emit_text(
        "Ablation: lifetime distribution shape at constant mean MTTF "
        f"(FT 2 no-RAID, accelerated; chain predicts {chain:.0f} h)\n"
        + format_table(rows),
        "ablation_lifetimes.txt",
    )

"""Figure 15: sensitivity to node MTTF (100k-1M h) at drive MTTF low/high."""

from _bench_utils import emit

from repro.analysis import figure15_node_mttf
from repro.models import PAPER_TARGET_EVENTS_PER_PB_YEAR

TARGET = PAPER_TARGET_EVENTS_PER_PB_YEAR


def test_fig15_node_mttf(benchmark, baseline_params):
    figure = benchmark(figure15_node_mttf, baseline_params)
    emit(figure, "fig15_node_mttf.txt")

    # FT2 + internal RAID 5 shows the most sensitivity to node MTTF.
    spreads = {
        s.label: max(s.values) / min(s.values) for s in figure.series
    }
    raid5 = max(v for k, v in spreads.items() if "RAID 5" in k)
    others = max(v for k, v in spreads.items() if "RAID 5" not in k)
    assert raid5 >= others
    # FT2 no-RAID misses the target for most of the range at low drive
    # MTTF, and still misses at the low-node-MTTF end even with good drives.
    low_drive = figure.series_by_label("FT 2, No Internal RAID (drive MTTF low)")
    assert sum(1 for v in low_drive.values if v > TARGET) >= len(low_drive.values) // 2
    high_drive = figure.series_by_label("FT 2, No Internal RAID (drive MTTF high)")
    assert high_drive.values[0] > TARGET
    # Reliability improves monotonically with node MTTF.
    for series in figure.series:
        assert all(a >= b for a, b in zip(series.values, series.values[1:]))

"""Extension benchmark: failure-detection latency.

The paper's chains start rebuilds instantly.  This extension adds an
undetected window (heartbeat timeouts, rebuild scheduling) before each
rebuild and sweeps its mean from seconds to a day: the reliability
penalty is roughly quadratic once the window rivals the rebuild time —
an operational requirement the paper leaves implicit.
"""

import pytest
from _bench_utils import emit_text

from repro.analysis import format_table
from repro.models import DetectionLatencyModel, InternalRaid, InternalRaidNodeModel

DETECTION_HOURS = [0.01, 0.1, 1.0, 4.0, 24.0]


def penalty_sweep(params):
    return [
        (
            h,
            DetectionLatencyModel(
                params, InternalRaid.RAID5, 2, detection_hours=h
            ).mttdl_penalty(),
        )
        for h in DETECTION_HOURS
    ]


def test_extension_detection_latency(benchmark, baseline_params):
    sweep = benchmark.pedantic(
        penalty_sweep, args=(baseline_params,), rounds=1, iterations=1
    )
    penalties = [p for _, p in sweep]
    # Monotone and converging to 1 at instant detection.
    assert penalties == sorted(penalties)
    assert penalties[0] < 1.05
    # A day of undetected degradation costs more than an order of magnitude.
    assert penalties[-1] > 10.0


def test_extension_detection_report(baseline_params):
    rebuild_hours = 1.0 / InternalRaidNodeModel(
        baseline_params, InternalRaid.RAID5, 2
    ).node_rebuild_rate
    rows = [["mean detection latency", "MTTDL penalty"]]
    for hours, penalty in penalty_sweep(baseline_params):
        rows.append([f"{hours:g} h", f"{penalty:.2f}x"])
    emit_text(
        "Extension: failure-detection latency (FT 2, internal RAID 5; "
        f"node rebuild takes {rebuild_hours:.1f} h)\n" + format_table(rows),
        "extension_detection.txt",
    )

"""Analysis harness: baseline comparison, sensitivity sweeps and reports.

Reproduces the paper's evaluation (Figures 13-20) on top of the
reliability models, and provides the generic sweep/tornado machinery for
exploring other operating points.
"""

from .baseline import BaselineReport, baseline_figure, run_baseline
from .crossover import Crossover, find_crossover, headroom_orders
from .elasticity import Elasticity, elasticity, elasticity_profile
from .design_space import (
    DesignCandidate,
    cheapest_meeting,
    enumerate_designs,
    pareto_front,
)
from .figures import (
    DRIVE_MTTF_HIGH,
    DRIVE_MTTF_LOW,
    NODE_MTTF_HIGH,
    NODE_MTTF_LOW,
    all_figures,
    figure14_drive_mttf,
    figure15_node_mttf,
    figure16_rebuild_block_size,
    figure17_link_speed,
    figure18_node_set_size,
    figure19_redundancy_set_size,
    figure20_drives_per_node,
)
from ..engine.result import EngineProvenance, SweepResult
from .report import FigureData, Series, format_figure, format_table
from .sensitivity import SweepPoint, TornadoEntry, sweep, sweep_to_figure, tornado
from .uncertainty import LogUniform, UncertaintyResult, UncertaintyStudy
from .validity import ValidityPoint, separation_ratio, validity_map

__all__ = [
    "BaselineReport",
    "Crossover",
    "DRIVE_MTTF_HIGH",
    "DesignCandidate",
    "Elasticity",
    "elasticity",
    "elasticity_profile",
    "cheapest_meeting",
    "enumerate_designs",
    "pareto_front",
    "find_crossover",
    "headroom_orders",
    "DRIVE_MTTF_LOW",
    "FigureData",
    "LogUniform",
    "NODE_MTTF_HIGH",
    "UncertaintyResult",
    "UncertaintyStudy",
    "ValidityPoint",
    "separation_ratio",
    "validity_map",
    "NODE_MTTF_LOW",
    "EngineProvenance",
    "Series",
    "SweepPoint",
    "SweepResult",
    "TornadoEntry",
    "all_figures",
    "baseline_figure",
    "figure14_drive_mttf",
    "figure15_node_mttf",
    "figure16_rebuild_block_size",
    "figure17_link_speed",
    "figure18_node_set_size",
    "figure19_redundancy_set_size",
    "figure20_drives_per_node",
    "format_figure",
    "format_table",
    "run_baseline",
    "sweep",
    "sweep_to_figure",
    "tornado",
]

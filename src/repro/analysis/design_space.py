"""Design-space enumeration: pick a redundancy configuration for a goal.

The paper's conclusion points out that the closed-form solutions "may be
used to determine redundancy configurations for a spectrum of reliability
targets such as in systems that offer user-configurable goals".  This
module is that tool: enumerate the (internal level x fault tolerance x
R x rebuild block) grid, compute reliability and storage overhead for
each design, and answer the two standard questions — the cheapest design
meeting a target, and the Pareto frontier of overhead vs reliability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

from ..models.configurations import Configuration

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.sweep import SweepEngine
from ..models.metrics import PAPER_TARGET_EVENTS_PER_PB_YEAR
from ..models.parameters import KB, Parameters
from ..models.raid import InternalRaid
from ..models.space import ConfigSpace, ParamAxis, SearchSpace, storage_overhead

__all__ = [
    "DesignCandidate",
    "enumerate_designs",
    "cheapest_meeting",
    "pareto_front",
    "storage_overhead",
]


@dataclass(frozen=True)
class DesignCandidate:
    """One evaluated point of the design grid.

    Attributes:
        config: redundancy configuration (internal level + tolerance).
        redundancy_set_size: R used.
        rebuild_kb: rebuild command size in KB.
        events_per_pb_year: evaluated reliability.
        storage_overhead: raw bytes stored per user byte (both redundancy
            dimensions compounded).
    """

    config: Configuration
    redundancy_set_size: int
    rebuild_kb: int
    events_per_pb_year: float
    storage_overhead: float

    def meets(self, target: float = PAPER_TARGET_EVENTS_PER_PB_YEAR) -> bool:
        return self.events_per_pb_year < target

    def describe(self) -> str:
        return (
            f"{self.config.label:<24} R={self.redundancy_set_size:<3} "
            f"rebuild={self.rebuild_kb:>3} KB  "
            f"overhead={self.storage_overhead:5.2f}x  "
            f"events/PB-yr={self.events_per_pb_year:.2e}"
        )


def enumerate_designs(
    base: Parameters,
    internal_levels: Sequence[InternalRaid] = (
        InternalRaid.NONE,
        InternalRaid.RAID5,
        InternalRaid.RAID6,
    ),
    fault_tolerances: Sequence[int] = (1, 2, 3),
    set_sizes: Sequence[int] = (6, 8, 12),
    rebuild_kbs: Sequence[int] = (64, 128, 256),
    method: str = "exact",
    engine: Optional["SweepEngine"] = None,
) -> List[DesignCandidate]:
    """Evaluate the full design grid.

    The grid is declared as a :class:`repro.models.SearchSpace` (internal
    level outermost, matching this module's historical order); invalid
    combinations (R <= t, R > N) are skipped silently.  With an
    ``engine``, the whole grid is evaluated in one batch (compiled specs
    re-bound per point, pooled, optionally disk-cached) with
    bitwise-identical results.
    """
    d = base.drives_per_node
    space = SearchSpace(
        configs=ConfigSpace(
            internal_levels=tuple(internal_levels),
            fault_tolerances=tuple(fault_tolerances),
        ),
        axes=(
            ParamAxis("redundancy_set_size", tuple(set_sizes)),
            ParamAxis(
                "rebuild_command_bytes", tuple(kb * KB for kb in rebuild_kbs)
            ),
        ),
        major="internal",
    )
    points, _ = space.grid(base)
    if engine is not None:
        results = engine.evaluate_many(
            [(p.config, p.params) for p in points], method=method
        )
    else:
        results = [p.config.reliability(p.params, method) for p in points]
    return [
        DesignCandidate(
            config=point.config,
            redundancy_set_size=point.params.redundancy_set_size,
            rebuild_kb=int(dict(point.coords)["rebuild_command_bytes"]) // KB,
            events_per_pb_year=result.events_per_pb_year,
            storage_overhead=storage_overhead(
                point.config, point.params.redundancy_set_size, d
            ),
        )
        for point, result in zip(points, results)
    ]


def cheapest_meeting(
    candidates: Iterable[DesignCandidate],
    target: float = PAPER_TARGET_EVENTS_PER_PB_YEAR,
) -> Optional[DesignCandidate]:
    """Lowest-overhead design under the target (ties broken by
    reliability); None if nothing qualifies."""
    meeting = [c for c in candidates if c.meets(target)]
    if not meeting:
        return None
    return min(meeting, key=lambda c: (c.storage_overhead, c.events_per_pb_year))


def pareto_front(candidates: Iterable[DesignCandidate]) -> List[DesignCandidate]:
    """Non-dominated designs, sorted by ascending overhead.

    A design is dominated if another has both no-worse overhead and
    strictly better reliability.
    """
    ordered = sorted(
        candidates, key=lambda c: (c.storage_overhead, c.events_per_pb_year)
    )
    front: List[DesignCandidate] = []
    best = float("inf")
    for c in ordered:
        if c.events_per_pb_year < best:
            front.append(c)
            best = c.events_per_pb_year
    return front

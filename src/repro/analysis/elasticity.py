"""Local elasticities: the slopes behind the sensitivity figures.

The paper reads slopes off log-log charts ("relatively insensitive",
"most sensitivity to node MTTF").  An *elasticity* puts a number on
each: ``d log(events/PB-year) / d log(parameter)`` — the percent change
in loss rate per percent change of the knob.  Elasticities of the
closed-form MTTDLs are simple integers in the asymptotic regime (e.g.
-2 in mu_N for NFT 2), so they double as a structural check on the
implementations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..models.configurations import Configuration
from ..models.parameters import Parameters

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.sweep import SweepEngine

__all__ = ["Elasticity", "elasticity", "elasticity_profile"]

#: Fields it makes sense to differentiate against.
NUMERIC_FIELDS = (
    "node_mttf_hours",
    "drive_mttf_hours",
    "hard_error_rate_per_bit",
    "drive_capacity_bytes",
    "rebuild_command_bytes",
    "link_speed_bps",
)


@dataclass(frozen=True)
class Elasticity:
    """One measured elasticity.

    Attributes:
        parameter: field name.
        value: d log(rate) / d log(parameter); negative = raising the
            parameter reduces loss events.
    """

    parameter: str
    value: float

    @property
    def magnitude(self) -> float:
        return abs(self.value)


def elasticity(
    config: Configuration,
    params: Parameters,
    field: str,
    step: float = 0.05,
    method: str = "exact",
    engine: Optional["SweepEngine"] = None,
) -> Elasticity:
    """Central log-log finite difference of events/PB-year w.r.t. ``field``.

    Args:
        config: configuration under study.
        params: operating point.
        field: a numeric :class:`Parameters` field.
        step: relative half-step (5% default).
        method: reliability computation method.
        engine: optional :class:`~repro.engine.SweepEngine` used to
            evaluate both probe points (bitwise-identical results).
    """
    current = getattr(params, field, None)
    if current is None or not isinstance(current, (int, float)):
        raise ValueError(f"{field!r} is not a numeric parameter")
    if step <= 0 or step >= 1:
        raise ValueError("step must be in (0, 1)")
    up = params.replace(**{field: current * (1 + step)})
    down = params.replace(**{field: current * (1 - step)})
    if engine is not None:
        result_up, result_down = engine.evaluate_many(
            [(config, up), (config, down)], method=method
        )
        rate_up = result_up.events_per_pb_year
        rate_down = result_down.events_per_pb_year
    else:
        rate_up = config.reliability(up, method).events_per_pb_year
        rate_down = config.reliability(down, method).events_per_pb_year
    value = (math.log(rate_up) - math.log(rate_down)) / (
        math.log(1 + step) - math.log(1 - step)
    )
    return Elasticity(parameter=field, value=value)


def elasticity_profile(
    config: Configuration,
    params: Parameters,
    fields: Sequence[str] = NUMERIC_FIELDS,
    method: str = "exact",
    engine: Optional["SweepEngine"] = None,
) -> List[Elasticity]:
    """Elasticities for several fields, sorted by descending magnitude."""
    results = [
        elasticity(config, params, f, method=method, engine=engine)
        for f in fields
    ]
    results.sort(key=lambda e: e.magnitude, reverse=True)
    return results

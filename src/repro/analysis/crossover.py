"""Target-crossover and headroom analysis (Section 8's "available headroom").

Section 8 frames the sensitivity study as "insight into available
headroom from a reliability perspective": how far can a parameter drift
before a configuration stops meeting the target?  This module answers it
directly: bisection over any single parameter for the value at which a
configuration's events/PB-year crosses the target.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..models.configurations import Configuration
from ..models.metrics import PAPER_TARGET_EVENTS_PER_PB_YEAR
from ..models.parameters import Parameters

__all__ = ["Crossover", "find_crossover", "headroom_orders"]

ParamsTransform = Callable[[Parameters, float], Parameters]


@dataclass(frozen=True)
class Crossover:
    """Result of a crossover search.

    Attributes:
        value: parameter value at which the loss rate equals the target,
            or None if the configuration sits on one side over the whole
            range.
        meets_at_low: whether the target is met at the range's low end.
        meets_at_high: whether it is met at the high end.
    """

    value: Optional[float]
    meets_at_low: bool
    meets_at_high: bool

    @property
    def always_meets(self) -> bool:
        return self.value is None and self.meets_at_low and self.meets_at_high

    @property
    def never_meets(self) -> bool:
        return self.value is None and not (self.meets_at_low or self.meets_at_high)


def _rate(
    config: Configuration,
    base: Parameters,
    transform: ParamsTransform,
    x: float,
    method: str,
) -> float:
    return config.reliability(transform(base, x), method).events_per_pb_year


def find_crossover(
    config: Configuration,
    base: Parameters,
    transform: ParamsTransform,
    low: float,
    high: float,
    target: float = PAPER_TARGET_EVENTS_PER_PB_YEAR,
    method: str = "exact",
    tolerance: float = 1e-3,
    log_scale: bool = True,
) -> Crossover:
    """Bisect for the parameter value where the loss rate crosses the target.

    Assumes the loss rate is monotone in the parameter over [low, high]
    (true for every knob the paper sweeps).

    Args:
        config: configuration under study.
        base: baseline parameters.
        transform: (params, x) -> params with the knob set to x.
        low, high: search range (low < high).
        target: events/PB-year threshold.
        method: ``"exact"`` or ``"approx"``.
        tolerance: relative width at which bisection stops.
        log_scale: bisect in log-space (natural for rates and sizes).

    Returns:
        A :class:`Crossover`.
    """
    if not low < high:
        raise ValueError("need low < high")
    rate_low = _rate(config, base, transform, low, method)
    rate_high = _rate(config, base, transform, high, method)
    meets_low = rate_low < target
    meets_high = rate_high < target
    if meets_low == meets_high:
        return Crossover(value=None, meets_at_low=meets_low, meets_at_high=meets_high)

    lo, hi = low, high
    for _ in range(200):
        if log_scale:
            mid = math.sqrt(lo * hi)
        else:
            mid = 0.5 * (lo + hi)
        if (hi - lo) / max(abs(mid), 1e-300) < tolerance:
            break
        meets_mid = _rate(config, base, transform, mid, method) < target
        if meets_mid == meets_low:
            lo = mid
        else:
            hi = mid
    return Crossover(
        value=0.5 * (lo + hi),
        meets_at_low=meets_low,
        meets_at_high=meets_high,
    )


def headroom_orders(
    config: Configuration,
    params: Parameters,
    target: float = PAPER_TARGET_EVENTS_PER_PB_YEAR,
    method: str = "exact",
) -> float:
    """Orders of magnitude between a configuration's loss rate and the
    target (positive = headroom, negative = shortfall)."""
    rate = config.reliability(params, method).events_per_pb_year
    return math.log10(target / rate)

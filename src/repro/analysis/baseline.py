"""Baseline reliability comparison (Section 6, Figure 13).

Evaluates all nine redundancy configurations at the paper's baseline
parameters, checks them against the 2e-3 events/PB-year target, and
verifies the paper's three headline observations:

1. node fault tolerance 1 misses the target in every internal-RAID
   variant;
2. internal RAID 5 and RAID 6 are nearly indistinguishable at fault
   tolerance >= 2; and
3. [FT3, internal RAID] overshoots the target by about five orders of
   magnitude.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..models.configurations import ALL_CONFIGURATIONS, Configuration, evaluate_all
from ..models.metrics import PAPER_TARGET_EVENTS_PER_PB_YEAR, ReliabilityResult
from ..models.parameters import Parameters
from ..models.raid import InternalRaid
from .report import FigureData, Series

__all__ = ["BaselineReport", "run_baseline", "baseline_figure"]


@dataclass(frozen=True)
class BaselineReport:
    """Figure 13 as data.

    Attributes:
        params: the parameters used.
        results: (configuration, reliability) in Figure 13 order.
    """

    params: Parameters
    results: Tuple[Tuple[Configuration, ReliabilityResult], ...]

    def result_for(self, key: str) -> ReliabilityResult:
        """Result by configuration key, e.g. ``"ft2_raid5"``."""
        for config, result in self.results:
            if config.key == key:
                return result
        raise KeyError(f"no configuration {key!r}")

    # -- the paper's observations, as predicates ------------------------ #

    def ft1_all_miss_target(self) -> bool:
        """Observation 1: every NFT-1 configuration misses the target."""
        return all(
            not result.meets_target
            for config, result in self.results
            if config.node_fault_tolerance == 1
        )

    def raid5_raid6_gap_orders(self, fault_tolerance: int) -> float:
        """|log10| gap between internal RAID 5 and RAID 6 at a given NFT
        (observation 2 expects this to be well under one order)."""
        r5 = self.result_for(f"ft{fault_tolerance}_raid5").events_per_pb_year
        r6 = self.result_for(f"ft{fault_tolerance}_raid6").events_per_pb_year
        return abs(math.log10(r5 / r6))

    def ft3_internal_raid_margin_orders(self) -> float:
        """Observation 3: orders of magnitude by which [FT3, RAID 5]
        overshoots the target (the paper reports about five)."""
        return self.result_for("ft3_raid5").margin_orders_of_magnitude()

    def survivors(self) -> List[Configuration]:
        """Configurations that meet the target (candidates for Section 7)."""
        return [c for c, r in self.results if r.meets_target]


def run_baseline(
    params: Optional[Parameters] = None, method: str = "exact"
) -> BaselineReport:
    """Evaluate all nine configurations (Figure 13)."""
    if params is None:
        params = Parameters.baseline()
    results = tuple(evaluate_all(params, ALL_CONFIGURATIONS, method))
    return BaselineReport(params=params, results=results)


def baseline_figure(report: BaselineReport) -> FigureData:
    """Figure 13 as a bar-chart-shaped table: one series per internal
    level, x-axis the node fault tolerance."""
    tolerances = sorted({c.node_fault_tolerance for c, _ in report.results})
    by_internal: Dict[InternalRaid, Dict[int, float]] = {}
    for config, result in report.results:
        by_internal.setdefault(config.internal, {})[
            config.node_fault_tolerance
        ] = result.events_per_pb_year
    labels = {
        InternalRaid.NONE: "No Internal RAID",
        InternalRaid.RAID5: "Internal RAID 5",
        InternalRaid.RAID6: "Internal RAID 6",
    }
    series = tuple(
        Series(labels[level], tuple(values[t] for t in tolerances))
        for level, values in by_internal.items()
    )
    return FigureData(
        title="Figure 13: Baseline Comparison",
        x_label="node fault tolerance",
        x_values=tuple(float(t) for t in tolerances),
        series=series,
        target=PAPER_TARGET_EVENTS_PER_PB_YEAR,
    )

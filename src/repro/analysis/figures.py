"""Drivers for the paper's sensitivity figures (Figures 14-20).

Each ``figureNN`` function reproduces one figure of Section 7 as a
:class:`~repro.engine.SweepResult` (a :class:`~repro.analysis.report.FigureData`
subclass, so every renderer consumes it unchanged): the swept x-axis, one
series per (configuration x MTTF-regime) line, y-values in data-loss
events per PB-year.  The three configurations are the Section 6
survivors: [FT2, no internal RAID], [FT2, internal RAID 5],
[FT3, no internal RAID].

Every driver accepts an optional ``engine`` — a
:class:`~repro.engine.SweepEngine` through which all points are
evaluated (compiled specs re-bound per point, pooled, optionally
disk-cached) with bitwise identical results; ``repro-figures --jobs N`` uses exactly this hook.

MTTF regimes follow the paper: drive MTTF low/high = 100,000 / 750,000
hours; node MTTF low/high = 100,000 / 1,000,000 hours.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from ..engine.result import EngineProvenance, SweepResult
from ..models.configurations import Configuration, sensitivity_configurations
from ..models.parameters import KB, Parameters
from .sensitivity import SweepPoint, sweep, sweep_to_figure

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.sweep import SweepEngine

__all__ = [
    "DRIVE_MTTF_LOW",
    "DRIVE_MTTF_HIGH",
    "NODE_MTTF_LOW",
    "NODE_MTTF_HIGH",
    "figure14_drive_mttf",
    "figure15_node_mttf",
    "figure16_rebuild_block_size",
    "figure17_link_speed",
    "figure18_node_set_size",
    "figure19_redundancy_set_size",
    "figure20_drives_per_node",
    "all_figures",
]

DRIVE_MTTF_LOW = 100_000.0
DRIVE_MTTF_HIGH = 750_000.0
NODE_MTTF_LOW = 100_000.0
NODE_MTTF_HIGH = 1_000_000.0


def _configs() -> List[Configuration]:
    return sensitivity_configurations()


def _provenance(
    engine: Optional["SweepEngine"], method: str
) -> Optional[EngineProvenance]:
    return engine.provenance(method) if engine is not None else None


def figure14_drive_mttf(
    params: Optional[Parameters] = None,
    x_values: Sequence[float] = (100_000, 200_000, 300_000, 450_000, 600_000, 750_000),
    method: str = "exact",
    engine: Optional["SweepEngine"] = None,
) -> SweepResult:
    """Figure 14: sensitivity to drive MTTF.

    Series: each surviving configuration at node MTTF low (100k h) and
    high (1M h).
    """
    base = params or Parameters.baseline()
    points: List[SweepPoint] = []
    labels = {}
    for node_mttf, regime in ((NODE_MTTF_LOW, "node MTTF low"), (NODE_MTTF_HIGH, "node MTTF high")):
        regime_base = base.replace(node_mttf_hours=node_mttf)
        swept = sweep(
            _configs(),
            regime_base,
            x_values,
            lambda p, x: p.replace(drive_mttf_hours=float(x)),
            method,
            engine,
        )
        for p in swept:
            labels[id(p)] = f"{p.config.label} ({regime})"
        points.extend(swept)
    return sweep_to_figure(
        "Figure 14: Sensitivity to Drive MTTF",
        "drive MTTF (hours)",
        points,
        label_fn=lambda p: labels[id(p)],
        axis_name="drive_mttf_hours",
        provenance=_provenance(engine, method),
    )


def figure15_node_mttf(
    params: Optional[Parameters] = None,
    x_values: Sequence[float] = (
        100_000,
        200_000,
        400_000,
        600_000,
        800_000,
        1_000_000,
    ),
    method: str = "exact",
    engine: Optional["SweepEngine"] = None,
) -> SweepResult:
    """Figure 15: sensitivity to node MTTF.

    Series: each surviving configuration at drive MTTF low (100k h) and
    high (750k h).
    """
    base = params or Parameters.baseline()
    points: List[SweepPoint] = []
    labels = {}
    for drive_mttf, regime in ((DRIVE_MTTF_LOW, "drive MTTF low"), (DRIVE_MTTF_HIGH, "drive MTTF high")):
        regime_base = base.replace(drive_mttf_hours=drive_mttf)
        swept = sweep(
            _configs(),
            regime_base,
            x_values,
            lambda p, x: p.replace(node_mttf_hours=float(x)),
            method,
            engine,
        )
        for p in swept:
            labels[id(p)] = f"{p.config.label} ({regime})"
        points.extend(swept)
    return sweep_to_figure(
        "Figure 15: Sensitivity to Node MTTF",
        "node MTTF (hours)",
        points,
        label_fn=lambda p: labels[id(p)],
        axis_name="node_mttf_hours",
        provenance=_provenance(engine, method),
    )


def figure16_rebuild_block_size(
    params: Optional[Parameters] = None,
    x_values: Sequence[float] = (16, 32, 64, 128, 256, 512),
    method: str = "exact",
    engine: Optional["SweepEngine"] = None,
) -> SweepResult:
    """Figure 16: sensitivity to rebuild block size (KB).

    Series: each surviving configuration at the low-MTTF regime (drive
    and node MTTF at their low ends) and at the baseline MTTFs — the
    paper's "does not meet the target for low MTTF" observation needs the
    former, its ">= 64 KB" recommendation the latter.
    """
    base = params or Parameters.baseline()
    points: List[SweepPoint] = []
    labels = {}
    regimes = (
        (
            base.replace(
                drive_mttf_hours=DRIVE_MTTF_LOW, node_mttf_hours=NODE_MTTF_LOW
            ),
            "low MTTF",
        ),
        (base, "baseline MTTF"),
    )
    for regime_base, regime in regimes:
        swept = sweep(
            _configs(),
            regime_base,
            x_values,
            lambda p, x: p.replace(rebuild_command_bytes=float(x) * KB),
            method,
            engine,
        )
        for p in swept:
            labels[id(p)] = f"{p.config.label} ({regime})"
        points.extend(swept)
    return sweep_to_figure(
        "Figure 16: Sensitivity to Rebuild Block Size",
        "rebuild block size (KB)",
        points,
        label_fn=lambda p: labels[id(p)],
        axis_name="rebuild_command_bytes",
        provenance=_provenance(engine, method),
    )


def figure17_link_speed(
    params: Optional[Parameters] = None,
    x_values: Sequence[float] = (1.0, 5.0, 10.0),
    method: str = "exact",
    engine: Optional["SweepEngine"] = None,
) -> SweepResult:
    """Figure 17: sensitivity to link speed (Gb/s) at the paper's three
    points; 5 and 10 Gb/s should coincide (disk-bound regime)."""
    base = params or Parameters.baseline()
    points = sweep(
        _configs(),
        base,
        x_values,
        lambda p, x: p.with_link_speed_gbps(float(x)),
        method,
        engine,
    )
    return sweep_to_figure(
        "Figure 17: Sensitivity to Link Speed",
        "link speed (Gb/s)",
        points,
        axis_name="link_speed_bits_per_hour",
        provenance=_provenance(engine, method),
    )


def figure18_node_set_size(
    params: Optional[Parameters] = None,
    x_values: Sequence[int] = (16, 32, 64, 128, 256),
    method: str = "exact",
    engine: Optional["SweepEngine"] = None,
) -> SweepResult:
    """Figure 18: sensitivity to node set size N."""
    base = params or Parameters.baseline()
    points = sweep(
        _configs(),
        base,
        x_values,
        lambda p, x: p.replace(node_set_size=int(x)),
        method,
        engine,
    )
    return sweep_to_figure(
        "Figure 18: Sensitivity to Node Set Size",
        "node set size N",
        points,
        axis_name="node_set_size",
        provenance=_provenance(engine, method),
    )


def figure19_redundancy_set_size(
    params: Optional[Parameters] = None,
    x_values: Sequence[int] = (4, 6, 8, 10, 12, 16),
    method: str = "exact",
    engine: Optional["SweepEngine"] = None,
) -> SweepResult:
    """Figure 19: sensitivity to redundancy set size R (about an order of
    magnitude between the extremes, per the paper)."""
    base = params or Parameters.baseline()
    points = sweep(
        _configs(),
        base,
        x_values,
        lambda p, x: p.replace(redundancy_set_size=int(x)),
        method,
        engine,
    )
    return sweep_to_figure(
        "Figure 19: Sensitivity to Redundancy Set Size",
        "redundancy set size R",
        points,
        axis_name="redundancy_set_size",
        provenance=_provenance(engine, method),
    )


def figure20_drives_per_node(
    params: Optional[Parameters] = None,
    x_values: Sequence[int] = (4, 8, 12, 16, 20, 24),
    method: str = "exact",
    engine: Optional["SweepEngine"] = None,
) -> SweepResult:
    """Figure 20: sensitivity to drives per node d (nearly flat, thanks to
    the per-PB normalization's cancellation effect)."""
    base = params or Parameters.baseline()
    points = sweep(
        _configs(),
        base,
        x_values,
        lambda p, x: p.replace(drives_per_node=int(x)),
        method,
        engine,
    )
    return sweep_to_figure(
        "Figure 20: Sensitivity to Drives per Node",
        "drives per node d",
        points,
        axis_name="drives_per_node",
        provenance=_provenance(engine, method),
    )


def all_figures(
    params: Optional[Parameters] = None,
    method: str = "exact",
    engine: Optional["SweepEngine"] = None,
) -> List[SweepResult]:
    """Every sensitivity figure, in paper order.

    With an ``engine``, the compiled specs and array-rates memo persist
    across all seven figures — the later figures only re-bind rates.
    """
    return [
        figure14_drive_mttf(params, method=method, engine=engine),
        figure15_node_mttf(params, method=method, engine=engine),
        figure16_rebuild_block_size(params, method=method, engine=engine),
        figure17_link_speed(params, method=method, engine=engine),
        figure18_node_set_size(params, method=method, engine=engine),
        figure19_redundancy_set_size(params, method=method, engine=engine),
        figure20_drives_per_node(params, method=method, engine=engine),
    ]

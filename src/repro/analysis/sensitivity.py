"""One-at-a-time sensitivity analysis (Section 7).

The paper varies one parameter at a time, holding the others at the
baseline, and plots events/PB-year per configuration.
:func:`sweep` is the generic engine behind every sensitivity figure;
:func:`tornado` summarizes each parameter's leverage (max/min ratio over
its range), which is how the paper concludes the rebuild block size is
"the controllable parameter with the most significant impact".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..engine.result import EngineProvenance, SweepResult
from ..models.configurations import Configuration
from ..models.metrics import PAPER_TARGET_EVENTS_PER_PB_YEAR
from ..models.parameters import Parameters
from .report import FigureData, Series

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.sweep import SweepEngine

__all__ = ["sweep", "SweepPoint", "sweep_to_figure", "tornado", "TornadoEntry"]

ParamsTransform = Callable[[Parameters, Any], Parameters]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a sweep."""

    x: Any
    config: Configuration
    events_per_pb_year: float
    mttdl_hours: float

    @property
    def meets_target(self) -> bool:
        return self.events_per_pb_year < PAPER_TARGET_EVENTS_PER_PB_YEAR


def sweep(
    configs: Sequence[Configuration],
    base_params: Parameters,
    x_values: Sequence[Any],
    transform: ParamsTransform,
    method: str = "exact",
    engine: Optional["SweepEngine"] = None,
) -> List[SweepPoint]:
    """Evaluate configurations over a one-dimensional parameter sweep.

    Args:
        configs: configurations to evaluate at every point.
        base_params: the baseline every point starts from.
        x_values: swept values (passed to ``transform``).
        transform: maps (baseline, x) to the point's parameters.
        method: ``"exact"`` or ``"approx"`` MTTDL computation.
        engine: optional :class:`~repro.engine.SweepEngine`; when given,
            all points are evaluated through it (compiled specs
            re-bound per point, pooled, optionally disk-cached) with
            bitwise-identical results.

    Returns:
        Points in (x, config) iteration order.
    """
    per_x = [(x, transform(base_params, x)) for x in x_values]
    pairs = [
        (x, config, params) for x, params in per_x for config in configs
    ]
    if engine is not None:
        results = engine.evaluate_many(
            [(config, params) for _, config, params in pairs], method=method
        )
    else:
        results = [
            config.reliability(params, method) for _, config, params in pairs
        ]
    return [
        SweepPoint(
            x=x,
            config=config,
            events_per_pb_year=result.events_per_pb_year,
            mttdl_hours=result.mttdl_hours,
        )
        for (x, config, _), result in zip(pairs, results)
    ]


def sweep_to_figure(
    title: str,
    x_label: str,
    points: Sequence[SweepPoint],
    label_fn: Optional[Callable[[SweepPoint], str]] = None,
    axis_name: str = "",
    provenance: Optional[EngineProvenance] = None,
) -> SweepResult:
    """Group sweep points into a :class:`~repro.engine.SweepResult`.

    The result is a :class:`FigureData` subclass (one series per label),
    so every existing renderer consumes it unchanged; it additionally
    carries the raw points, the swept axis and the engine provenance.
    """
    if label_fn is None:
        label_fn = lambda p: p.config.label
    x_values: List[Any] = []
    series_values: Dict[str, Dict[Any, float]] = {}
    for p in points:
        if p.x not in x_values:
            x_values.append(p.x)
        series_values.setdefault(label_fn(p), {})[p.x] = p.events_per_pb_year
    series = tuple(
        Series(label, tuple(values[x] for x in x_values))
        for label, values in series_values.items()
    )
    return SweepResult(
        title=title,
        x_label=x_label,
        x_values=tuple(float(x) for x in x_values),
        series=series,
        target=PAPER_TARGET_EVENTS_PER_PB_YEAR,
        axis_name=axis_name or x_label,
        axis_values=tuple(x_values),
        points=tuple(points),
        provenance=provenance,
    )


@dataclass(frozen=True)
class TornadoEntry:
    """Leverage of one parameter for one configuration.

    Attributes:
        parameter: swept parameter name.
        config: configuration evaluated.
        low: events/PB-year at the range's best end.
        high: events/PB-year at the range's worst end.
        leverage_orders: log10(high / low) — how many orders of magnitude
            the parameter moves the reliability across its range.
    """

    parameter: str
    config: Configuration
    low: float
    high: float

    @property
    def leverage_orders(self) -> float:
        if self.low <= 0:
            return math.inf
        return math.log10(self.high / self.low)


def tornado(
    configs: Sequence[Configuration],
    base_params: Parameters,
    parameter_ranges: Dict[str, Tuple[Sequence[Any], ParamsTransform]],
    method: str = "exact",
    engine: Optional["SweepEngine"] = None,
) -> List[TornadoEntry]:
    """Rank parameters by reliability leverage.

    Args:
        configs: configurations to evaluate.
        base_params: the shared baseline.
        parameter_ranges: name -> (x_values, transform) as for
            :func:`sweep`.
        engine: optional :class:`~repro.engine.SweepEngine` for the
            underlying sweeps.

    Returns:
        Entries sorted by descending leverage.
    """
    entries = []
    for name, (x_values, transform) in parameter_ranges.items():
        points = sweep(configs, base_params, x_values, transform, method, engine)
        for config in configs:
            mine = [p.events_per_pb_year for p in points if p.config == config]
            entries.append(
                TornadoEntry(
                    parameter=name, config=config, low=min(mine), high=max(mine)
                )
            )
    entries.sort(key=lambda e: e.leverage_orders, reverse=True)
    return entries

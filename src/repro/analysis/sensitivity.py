"""One-at-a-time sensitivity analysis (Section 7).

The paper varies one parameter at a time, holding the others at the
baseline, and plots events/PB-year per configuration.
:func:`sweep` is the generic engine behind every sensitivity figure;
:func:`tornado` summarizes each parameter's leverage (max/min ratio over
its range), which is how the paper concludes the rebuild block size is
"the controllable parameter with the most significant impact".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..models.configurations import Configuration
from ..models.metrics import PAPER_TARGET_EVENTS_PER_PB_YEAR
from ..models.parameters import Parameters
from .report import FigureData, Series

__all__ = ["sweep", "SweepPoint", "tornado", "TornadoEntry"]

ParamsTransform = Callable[[Parameters, Any], Parameters]


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated point of a sweep."""

    x: Any
    config: Configuration
    events_per_pb_year: float
    mttdl_hours: float

    @property
    def meets_target(self) -> bool:
        return self.events_per_pb_year < PAPER_TARGET_EVENTS_PER_PB_YEAR


def sweep(
    configs: Sequence[Configuration],
    base_params: Parameters,
    x_values: Sequence[Any],
    transform: ParamsTransform,
    method: str = "exact",
) -> List[SweepPoint]:
    """Evaluate configurations over a one-dimensional parameter sweep.

    Args:
        configs: configurations to evaluate at every point.
        base_params: the baseline every point starts from.
        x_values: swept values (passed to ``transform``).
        transform: maps (baseline, x) to the point's parameters.
        method: ``"exact"`` or ``"approx"`` MTTDL computation.

    Returns:
        Points in (x, config) iteration order.
    """
    points = []
    for x in x_values:
        params = transform(base_params, x)
        for config in configs:
            result = config.reliability(params, method)
            points.append(
                SweepPoint(
                    x=x,
                    config=config,
                    events_per_pb_year=result.events_per_pb_year,
                    mttdl_hours=result.mttdl_hours,
                )
            )
    return points


def sweep_to_figure(
    title: str,
    x_label: str,
    points: Sequence[SweepPoint],
    label_fn: Optional[Callable[[SweepPoint], str]] = None,
) -> FigureData:
    """Group sweep points into a :class:`FigureData` (one series per label)."""
    if label_fn is None:
        label_fn = lambda p: p.config.label
    x_values: List[Any] = []
    series_values: Dict[str, Dict[Any, float]] = {}
    for p in points:
        if p.x not in x_values:
            x_values.append(p.x)
        series_values.setdefault(label_fn(p), {})[p.x] = p.events_per_pb_year
    series = tuple(
        Series(label, tuple(values[x] for x in x_values))
        for label, values in series_values.items()
    )
    return FigureData(
        title=title,
        x_label=x_label,
        x_values=tuple(float(x) for x in x_values),
        series=series,
        target=PAPER_TARGET_EVENTS_PER_PB_YEAR,
    )


@dataclass(frozen=True)
class TornadoEntry:
    """Leverage of one parameter for one configuration.

    Attributes:
        parameter: swept parameter name.
        config: configuration evaluated.
        low: events/PB-year at the range's best end.
        high: events/PB-year at the range's worst end.
        leverage_orders: log10(high / low) — how many orders of magnitude
            the parameter moves the reliability across its range.
    """

    parameter: str
    config: Configuration
    low: float
    high: float

    @property
    def leverage_orders(self) -> float:
        if self.low <= 0:
            return math.inf
        return math.log10(self.high / self.low)


def tornado(
    configs: Sequence[Configuration],
    base_params: Parameters,
    parameter_ranges: Dict[str, Tuple[Sequence[Any], ParamsTransform]],
    method: str = "exact",
) -> List[TornadoEntry]:
    """Rank parameters by reliability leverage.

    Args:
        configs: configurations to evaluate.
        base_params: the shared baseline.
        parameter_ranges: name -> (x_values, transform) as for
            :func:`sweep`.

    Returns:
        Entries sorted by descending leverage.
    """
    entries = []
    for name, (x_values, transform) in parameter_ranges.items():
        points = sweep(configs, base_params, x_values, transform, method)
        for config in configs:
            mine = [p.events_per_pb_year for p in points if p.config == config]
            entries.append(
                TornadoEntry(
                    parameter=name, config=config, low=min(mine), high=max(mine)
                )
            )
    entries.sort(key=lambda e: e.leverage_orders, reverse=True)
    return entries

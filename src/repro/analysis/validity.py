"""Validity map: where do the paper's approximations hold?

The appendix theorem needs ``N (lambda_N + d lambda_d)`` at least an
order of magnitude below both rebuild rates, and every h-probability
well below 1.  This module quantifies the approximation error —
``|approx - exact| / exact`` between the closed forms and the numeric
chain solves — across a grid of rate separations, so users know when to
trust the formulas and when to solve the chain (the library always can,
thanks to the GTH solver).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..models.parameters import Parameters
from ..models.recursive import RecursiveNoRaidModel

__all__ = ["ValidityPoint", "validity_map", "separation_ratio"]


def separation_ratio(params: Parameters, fault_tolerance: int) -> float:
    """The theorem's hypothesis as a number: min(mu_N, mu_d) over
    ``N (lambda_N + d lambda_d)``.  >> 1 means the closed forms apply."""
    from ..models.rebuild import RebuildModel

    rebuild = RebuildModel(params)
    mu = min(
        rebuild.node_rebuild_rate(fault_tolerance),
        rebuild.drive_rebuild_rate(fault_tolerance),
    )
    total_failure = params.node_set_size * (
        params.node_failure_rate
        + params.drives_per_node * params.drive_failure_rate
    )
    return mu / total_failure


@dataclass(frozen=True)
class ValidityPoint:
    """Approximation quality at one operating point.

    Attributes:
        separation: min rebuild rate / total failure rate.
        max_h: largest h-probability in the model (clamping begins at 1).
        relative_error: |approx - exact| / exact for the MTTDL.
    """

    separation: float
    max_h: float
    relative_error: float

    @property
    def trustworthy(self) -> bool:
        """The rule of thumb the paper implies: rate separation of at
        least an order of magnitude, and no h-probability close to its
        clamping point at 1 (the baseline's largest, h_NN ~ 0.19, is
        fine; the NFT-1 case with h_N ~ 2 is exactly where the closed
        forms visibly diverge)."""
        return self.separation >= 10.0 and self.max_h <= 0.5


def validity_map(
    base: Optional[Parameters] = None,
    fault_tolerance: int = 2,
    mttf_scales: Sequence[float] = (0.003, 0.01, 0.03, 0.1, 0.3, 1.0),
) -> List[ValidityPoint]:
    """Approximation error of Figure A1 vs the exact solve as the failure
    rates are scaled toward the rebuild rates.

    Args:
        base: starting parameters (baseline by default).
        fault_tolerance: which no-RAID model to study.
        mttf_scales: multipliers on both MTTFs; 1.0 is the baseline,
            smaller values push toward the theorem's breakdown.

    Returns:
        One :class:`ValidityPoint` per scale, in input order.
    """
    if base is None:
        base = Parameters.baseline()
    points = []
    for scale in mttf_scales:
        params = base.replace(
            node_mttf_hours=base.node_mttf_hours * scale,
            drive_mttf_hours=base.drive_mttf_hours * scale,
        )
        model = RecursiveNoRaidModel(params, fault_tolerance)
        exact = model.mttdl_exact()
        approx = model.mttdl_approx()
        points.append(
            ValidityPoint(
                separation=separation_ratio(params, fault_tolerance),
                max_h=max(model.hard_error_parameters().values()),
                relative_error=abs(approx - exact) / exact,
            )
        )
    return points

"""Parameter-uncertainty propagation (beyond the paper).

Section 8 notes that "drive MTTF can vary significantly between batches
of drives and the same can be expected of nodes" — but the paper only
brackets the range with low/high point estimates.  This module treats
MTTFs (and optionally HER) as random across the fleet and propagates the
uncertainty through the reliability models by Latin-hypercube sampling,
yielding percentile bands instead of point estimates: the question a
manufacturer actually faces ("what's my 95th-percentile loss rate if a
bad batch ships?").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..models.configurations import Configuration
from ..models.metrics import PAPER_TARGET_EVENTS_PER_PB_YEAR
from ..models.parameters import Parameters

__all__ = ["LogUniform", "UncertaintyStudy", "UncertaintyResult"]


@dataclass(frozen=True)
class LogUniform:
    """Log-uniform distribution over [low, high] — the natural "somewhere
    between these two batches" prior for rate-like quantities."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ValueError("need 0 < low <= high")

    def sample(self, u: float) -> float:
        """Inverse-CDF transform of a uniform [0, 1) variate."""
        if not 0.0 <= u < 1.0:
            raise ValueError("u must be in [0, 1)")
        return float(self.low * (self.high / self.low) ** u)


@dataclass(frozen=True)
class UncertaintyResult:
    """Percentile summary of the propagated loss rate.

    Attributes:
        config: the configuration studied.
        samples: sorted events/PB-year samples.
    """

    config: Configuration
    samples: Tuple[float, ...]

    def percentile(self, q: float) -> float:
        """q-th percentile (0-100) of events/PB-year."""
        return float(np.percentile(self.samples, q))

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    def probability_meets_target(
        self, target: float = PAPER_TARGET_EVENTS_PER_PB_YEAR
    ) -> float:
        """Fraction of sampled parameter draws meeting the target."""
        return float(np.mean(np.asarray(self.samples) < target))


class UncertaintyStudy:
    """Latin-hypercube propagation of parameter uncertainty.

    Args:
        base: baseline parameters (non-varied fields come from here).
        distributions: mapping of Parameters field name to a
            :class:`LogUniform` marginal.

    Example:
        >>> from repro.models import Configuration, InternalRaid, Parameters
        >>> study = UncertaintyStudy(
        ...     Parameters.baseline(),
        ...     {"drive_mttf_hours": LogUniform(100_000, 750_000),
        ...      "node_mttf_hours": LogUniform(100_000, 1_000_000)},
        ... )
        >>> result = study.run(Configuration(InternalRaid.RAID5, 2),
        ...                    samples=16, seed=0)
        >>> 0.0 <= result.probability_meets_target() <= 1.0
        True
    """

    def __init__(
        self, base: Parameters, distributions: Dict[str, LogUniform]
    ) -> None:
        if not distributions:
            raise ValueError("need at least one varied parameter")
        valid_fields = set(base.to_dict())
        unknown = set(distributions) - valid_fields
        if unknown:
            raise ValueError(f"unknown parameter fields: {sorted(unknown)}")
        self._base = base
        self._distributions = dict(distributions)

    def sample_parameters(self, samples: int, seed: int = 0) -> List[Parameters]:
        """Latin-hypercube draws of the varied fields."""
        if samples < 1:
            raise ValueError("need at least one sample")
        rng = np.random.default_rng(seed)
        names = sorted(self._distributions)
        # LHS: one stratified uniform per dimension, shuffled independently.
        grid = np.empty((samples, len(names)))
        for j in range(len(names)):
            strata = (np.arange(samples) + rng.random(samples)) / samples
            rng.shuffle(strata)
            grid[:, j] = strata
        out = []
        for row in grid:
            changes = {
                name: self._distributions[name].sample(float(u))
                for name, u in zip(names, row)
            }
            out.append(self._base.replace(**changes))
        return out

    def run(
        self,
        config: Configuration,
        samples: int = 64,
        seed: int = 0,
        method: str = "exact",
    ) -> UncertaintyResult:
        """Propagate to events/PB-year for one configuration."""
        rates = []
        for params in self.sample_parameters(samples, seed):
            rates.append(config.reliability(params, method).events_per_pb_year)
        return UncertaintyResult(config=config, samples=tuple(sorted(rates)))

    def run_many(
        self,
        configs: Sequence[Configuration],
        samples: int = 64,
        seed: int = 0,
        method: str = "exact",
    ) -> List[UncertaintyResult]:
        """Propagate for several configurations over the *same* draws
        (common random numbers make the comparison fair)."""
        parameter_draws = self.sample_parameters(samples, seed)
        results = []
        for config in configs:
            rates = tuple(
                sorted(
                    config.reliability(p, method).events_per_pb_year
                    for p in parameter_draws
                )
            )
            results.append(UncertaintyResult(config=config, samples=rates))
        return results

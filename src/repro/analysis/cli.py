"""Command-line entry point: regenerate the paper's figures as tables.

Installed as ``repro-figures``::

    repro-figures                # everything (Figure 13 + sensitivity)
    repro-figures 13 17         # selected figures
    repro-figures --fig 13      # same, flag spelling (repeatable)
    repro-figures --approx      # use the paper's closed forms
    repro-figures --jobs 4      # fan sweeps out over 4 processes
    repro-figures --no-cache    # skip the on-disk result cache
    repro-figures --verbose     # report cache/compiled-spec hit rates

    repro-figures --fig 13 --trace run.jsonl --report
                                 # JSONL span trace + per-phase timing tree

The sensitivity figures run through :class:`repro.engine.SweepEngine`;
results are bitwise identical at any ``--jobs`` and cache setting, and
with tracing on or off.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from .. import obs
from ..cli_common import (
    add_observability_arguments,
    apply_param_overrides,
    observed_session,
)
from ..engine.sweep import SweepEngine
from ..models.parameters import Parameters
from .baseline import baseline_figure, run_baseline
from .figures import (
    figure14_drive_mttf,
    figure15_node_mttf,
    figure16_rebuild_block_size,
    figure17_link_speed,
    figure18_node_set_size,
    figure19_redundancy_set_size,
    figure20_drives_per_node,
)
from .report import format_figure

__all__ = ["main"]

_FIGURES = {
    14: figure14_drive_mttf,
    15: figure15_node_mttf,
    16: figure16_rebuild_block_size,
    17: figure17_link_speed,
    18: figure18_node_set_size,
    19: figure19_redundancy_set_size,
    20: figure20_drives_per_node,
}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description=(
            "Regenerate the evaluation figures of 'Reliability for "
            "Networked Storage Nodes' (DSN 2006) as tables."
        ),
    )
    parser.add_argument(
        "figures",
        nargs="*",
        type=int,
        help="figure numbers (13-20); default: all",
    )
    parser.add_argument(
        "--fig",
        action="append",
        type=int,
        default=[],
        metavar="N",
        help="figure number to regenerate (repeatable; merged with the "
        "positional list)",
    )
    parser.add_argument(
        "--approx",
        action="store_true",
        help="use the paper's closed-form approximations instead of the "
        "numeric chain solves",
    )
    parser.add_argument(
        "--format",
        choices=["table", "csv", "json"],
        default="table",
        help="output format (default: aligned tables)",
    )
    parser.add_argument(
        "--set",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override a baseline parameter, e.g. --set node_set_size=128 "
        "or --set drive_mttf_hours=750000 (repeatable)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="evaluation processes for the sensitivity sweeps "
        "(default: all CPUs)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the on-disk result cache (.repro_cache/)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="report cache and compiled-spec hit rates on stderr",
    )
    add_observability_arguments(parser)
    args = parser.parse_args(argv)

    method = "approx" if args.approx else "exact"
    wanted = list(args.figures) + list(args.fig)
    if not wanted:
        wanted = [13] + sorted(_FIGURES)
    unknown = [f for f in wanted if f != 13 and f not in _FIGURES]
    if unknown:
        parser.error(f"unknown figures: {unknown}; choose from 13-20")

    params = apply_param_overrides(Parameters.baseline(), args.set, parser.error)

    engine = SweepEngine(
        params,
        jobs=args.jobs,
        cache=not args.no_cache,
        method=method,
    )
    session = observed_session(args, root="repro-figures")
    with session if session is not None else contextlib.nullcontext():
        if session is not None:
            session.add_metrics_source(engine.metrics_snapshot)
        figures = []
        for number in wanted:
            with obs.span(f"figure.{number}", figure=number):
                if number == 13:
                    figures.append(baseline_figure(run_baseline(params, method)))
                else:
                    figures.append(
                        _FIGURES[number](params, method=method, engine=engine)
                    )

        with obs.span("figures.render", format=args.format):
            if args.format == "json":
                import json

                rendered = json.dumps([f.to_dict() for f in figures], indent=2)
            elif args.format == "csv":
                rendered = "\n".join(f.to_csv() for f in figures)
            else:
                rendered = "\n\n".join(format_figure(f) for f in figures)
        print(rendered)
        if args.verbose:
            obs.reporter().emit(
                "[repro.engine] " + engine.provenance(method).describe()
            )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Backward-compatible re-export of the reporting primitives.

The implementation moved to :mod:`repro.reporting` so the sweep engine
(:mod:`repro.engine`) can construct :class:`FigureData`-compatible results
without importing the analysis package; import from either location.
"""

from __future__ import annotations

from ..reporting import (  # noqa: F401
    FigureData,
    Series,
    _format_number,
    format_figure,
    format_table,
)

__all__ = ["Series", "FigureData", "format_table", "format_figure"]

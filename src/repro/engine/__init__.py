"""repro.engine — the parallel, memoized sweep engine.

The engine evaluates grids of (configuration, parameters) points with
process-pool fan-out, chain-topology memoization, batched GTH solves and
an optional on-disk result cache, while producing floats bitwise
identical to the plain point-by-point evaluation.  It also hosts the
unified :func:`repro.evaluate` facade.
"""

from . import faultpoints
from .cache import DEFAULT_CACHE_DIR, DiskCache
from .facade import evaluate
from .keys import CACHE_SCHEMA_VERSION, point_key, stable_digest
from ..runtime import default_jobs, should_pool, split_chunks
from .result import EngineProvenance, SweepResult
from .solver import (
    SolveContext,
    closed_form_mttdl,
    evaluate_chunk,
    mttdl_batched,
    normalize_method,
    prepare_point,
    solve_grouped,
)
from .sweep import Axis, GridPoint, SweepEngine, point_payload_valid

__all__ = [
    "Axis",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "DiskCache",
    "EngineProvenance",
    "GridPoint",
    "SolveContext",
    "SweepEngine",
    "SweepResult",
    "closed_form_mttdl",
    "default_jobs",
    "evaluate",
    "evaluate_chunk",
    "faultpoints",
    "mttdl_batched",
    "normalize_method",
    "point_key",
    "point_payload_valid",
    "prepare_point",
    "should_pool",
    "solve_grouped",
    "split_chunks",
    "stable_digest",
]

"""Compatibility shim: the faultpoint registry lives in :mod:`repro.runtime`.

The registry started life here when only the engine had failure paths
worth sabotaging; with serve's shard workers joining the same substrate
it moved to :mod:`repro.runtime.faultpoints`.  This module re-exports the
*same* function objects, so ``repro.engine.faultpoints.install`` and
``repro.runtime.faultpoints.install`` mutate one shared registry —
actions installed through either name fire everywhere.
"""

from __future__ import annotations

from ..runtime.faultpoints import (
    CACHE_READ,
    POOL_WORKER_START,
    SERVE_WORKER_CRASH,
    active,
    clear,
    fire,
    injected,
    install,
    uninstall,
)

__all__ = [
    "CACHE_READ",
    "POOL_WORKER_START",
    "SERVE_WORKER_CRASH",
    "active",
    "clear",
    "fire",
    "injected",
    "install",
    "uninstall",
]

"""The unified single-point evaluation API.

:func:`evaluate` is the one front door for "how reliable is this
configuration under these parameters?", dispatching to the analytic
chain solve, the paper's closed forms, or the Monte-Carlo simulator.  It
is re-exported as :func:`repro.evaluate`.
"""

from __future__ import annotations

from typing import Optional

from .. import obs
from ..models.configurations import Configuration
from ..models.metrics import ReliabilityResult
from ..models.parameters import Parameters
from ..models.rebuild import RebuildModel
from .solver import normalize_method

__all__ = ["evaluate"]

#: Canonical method name -> Configuration.mttdl_hours spelling.
_CONFIG_METHOD = {"analytic": "exact", "closed_form": "approx"}


def evaluate(
    config: Configuration,
    params: Optional[Parameters] = None,
    *,
    method: str = "analytic",
    rebuild: Optional[RebuildModel] = None,
    replicas: int = 200,
    seed: int = 0,
    jobs: int = 1,
) -> ReliabilityResult:
    """Evaluate one configuration's reliability, by any method.

    Args:
        config: the redundancy configuration.
        params: system parameters (the paper's baseline when omitted).
        method: ``"analytic"`` (numeric chain solve, the default),
            ``"closed_form"`` (the paper's approximations) or
            ``"monte_carlo"`` (simulation to first loss).  The pre-1.x
            spellings ``"exact"``/``"approx"`` are accepted as aliases.
        rebuild: optional rebuild-time model override (analytic and
            closed-form methods only).
        replicas: Monte-Carlo replica count (``monte_carlo`` only).
        seed: Monte-Carlo master seed (``monte_carlo`` only).
        jobs: Monte-Carlo replica fan-out width (``monte_carlo`` only).

    Returns:
        A :class:`ReliabilityResult`; for Monte Carlo it is built from the
        sample-mean MTTDL (use :func:`repro.sim.estimate_mttdl` directly
        when the error bars matter).

    Note:
        For ``monte_carlo``, pass parameters derived with
        :func:`repro.sim.accelerated_parameters` — at the unaccelerated
        baseline a loss event is so rare that every replica grinds to the
        event-count safety cap instead of finishing.
    """
    method = normalize_method(method)
    if params is None:
        params = Parameters.baseline()
    with obs.span("repro.evaluate", method=method, config=config.key):
        if method == "monte_carlo":
            if rebuild is not None:
                raise ValueError(
                    "rebuild overrides are not supported with method="
                    "'monte_carlo'; the simulator derives repair rates from "
                    "params"
                )
            from ..sim.monte_carlo import estimate_mttdl

            mc = estimate_mttdl(
                config, params, replicas=replicas, seed=seed, jobs=jobs
            )
            return ReliabilityResult.from_mttdl(mc.mean_hours, params)
        return config.reliability(
            params, _CONFIG_METHOD[method], rebuild=rebuild
        )

"""The unified single-point evaluation API.

:func:`evaluate` is the one front door for "how reliable is this
configuration under these parameters?", dispatching through the
solver-strategy interface (:mod:`repro.core.solvers`) to the analytic
chain solve (dense or sparse backend), the paper's closed forms, or the
Monte-Carlo simulator.  It is re-exported as :func:`repro.evaluate`.

Solve-shaping knobs travel in a single frozen
:class:`~repro.core.solvers.SolveOptions` value.  The pre-API ``method=``
kwarg (and its ``"exact"``/``"approx"`` alias spellings) keeps working
as a deprecation shim for one release — it maps onto the equivalent
options and warns.
"""

from __future__ import annotations

import warnings
from typing import Optional

from .. import obs
from ..core.solvers import (
    DEFAULT_SOLVE_OPTIONS,
    SolveOptions,
    SolveRequest,
)
from ..core.solvers import solve as _core_solve
from ..models.configurations import Configuration
from ..models.internal_raid import InternalRaidNodeModel
from ..models.metrics import ReliabilityResult
from ..models.parameters import Parameters
from ..models.raid import InternalRaid
from ..models.rebuild import RebuildModel
from .solver import normalize_method

__all__ = ["evaluate"]

#: Canonical method name -> the SolveOptions backend it shims onto.
_METHOD_BACKEND = {
    "analytic": "auto",
    "closed_form": "closed_form",
    "monte_carlo": "monte_carlo",
}


def _merge_method_shim(
    method: str, options: Optional[SolveOptions]
) -> SolveOptions:
    """Fold the deprecated ``method=`` kwarg into the options."""
    canonical = normalize_method(method)
    warnings.warn(
        "evaluate(method=...) is deprecated; pass "
        "options=SolveOptions(backend=...) instead "
        "('analytic' -> 'auto'/'dense_gth', 'closed_form' -> "
        "'closed_form', 'monte_carlo' -> 'monte_carlo')",
        DeprecationWarning,
        stacklevel=3,
    )
    shimmed = _METHOD_BACKEND[canonical]
    if options is None:
        if shimmed == "auto":
            return DEFAULT_SOLVE_OPTIONS
        return DEFAULT_SOLVE_OPTIONS.replace(backend=shimmed)
    compatible = {
        "auto": ("auto", "dense_gth", "sparse_iterative"),
        "closed_form": ("auto", "closed_form"),
        "monte_carlo": ("auto", "monte_carlo"),
    }[shimmed]
    if options.backend not in compatible:
        raise ValueError(
            f"method={method!r} conflicts with "
            f"options.backend={options.backend!r}; drop the deprecated "
            "method= kwarg and express the choice in options alone"
        )
    if options.backend == "auto" and shimmed != "auto":
        return options.replace(backend=shimmed)
    return options


def evaluate(
    config: Configuration,
    params: Optional[Parameters] = None,
    *,
    options: Optional[SolveOptions] = None,
    method: Optional[str] = None,
    rebuild: Optional[RebuildModel] = None,
    replicas: int = 200,
    seed: int = 0,
    jobs: int = 1,
) -> ReliabilityResult:
    """Evaluate one configuration's reliability, by any method.

    Args:
        config: the redundancy configuration.
        params: system parameters (the paper's baseline when omitted).
        options: a :class:`~repro.core.solvers.SolveOptions` selecting
            the solver backend (``"auto"``/``"dense_gth"``/
            ``"sparse_iterative"`` for the numeric chain solve,
            ``"closed_form"`` for the paper's approximations,
            ``"monte_carlo"`` for simulation to first loss), the
            internal array-rates derivation and the iterative
            tolerances.  Defaults solve the chain with auto backend
            selection.
        method: deprecated — the pre-options spelling (``"analytic"``,
            ``"closed_form"``, ``"monte_carlo"``; pre-1.x
            ``"exact"``/``"approx"`` aliases accepted).  Maps onto the
            equivalent ``options`` and emits a ``DeprecationWarning``;
            removed one release after the options API landed.
        rebuild: optional rebuild-time model override (chain and
            closed-form solves only).
        replicas: Monte-Carlo replica count (``monte_carlo`` only).
        seed: Monte-Carlo master seed (``monte_carlo`` only).
        jobs: Monte-Carlo replica fan-out width (``monte_carlo`` only).

    Returns:
        A :class:`ReliabilityResult`; for Monte Carlo it is built from the
        sample-mean MTTDL (use :func:`repro.sim.estimate_mttdl` directly
        when the error bars matter).

    Note:
        For ``monte_carlo``, pass parameters derived with
        :func:`repro.sim.accelerated_parameters` — at the unaccelerated
        baseline a loss event is so rare that every replica grinds to the
        event-count safety cap instead of finishing.
    """
    if method is not None:
        options = _merge_method_shim(method, options)
    elif options is None:
        options = DEFAULT_SOLVE_OPTIONS
    if params is None:
        params = Parameters.baseline()
    backend = options.backend
    family = (
        backend
        if backend in ("monte_carlo", "closed_form")
        else "analytic"
    )
    with obs.span(
        "repro.evaluate", method=family, config=config.key, backend=backend
    ):
        if family == "monte_carlo":
            if rebuild is not None:
                raise ValueError(
                    "rebuild overrides are not supported with the "
                    "monte_carlo backend; the simulator derives repair "
                    "rates from params"
                )
            from ..sim.monte_carlo import estimate_mttdl

            mc = estimate_mttdl(
                config, params, replicas=replicas, seed=seed, jobs=jobs
            )
            return ReliabilityResult.from_mttdl(mc.mean_hours, params)
        if family == "closed_form":
            request = SolveRequest(
                closed_form=lambda: (
                    config.mttdl_hours(params, "approx", rebuild=rebuild),
                ),
                query="mttdl",
                options=options,
            )
            return ReliabilityResult.from_mttdl(
                _core_solve(request).values[0], params
            )
        if backend == "auto" and options.rates_method == "approx":
            # The legacy fast path: the model's own exact solve, whose
            # chain routes through the dense backend internally.  Kept
            # as-is so default answers stay bitwise identical.
            return config.reliability(params, "exact", rebuild=rebuild)
        # Explicit backend (or non-default array rates): build the chain
        # and put it through the strategy interface directly.
        if config.internal is InternalRaid.NONE:
            model = config.model(params, rebuild)
        else:
            model = InternalRaidNodeModel(
                params,
                config.internal,
                config.node_fault_tolerance,
                rebuild,
                rates_method=options.rates_method,
            )
        result = _core_solve(
            SolveRequest(
                chains=(model.chain(),), query="mttdl", options=options
            )
        )
        return ReliabilityResult.from_mttdl(result.values[0], params)

"""Batched evaluation of (configuration, parameters) points.

Three optimizations over calling :meth:`Configuration.reliability` in a
loop, none of which changes a single output bit:

* **Compiled specs** — each chain family is compiled once from its
  declarative :class:`~repro.core.spec.ModelSpec` and re-bound with fresh
  rates per point; compiled chains are keyed by content (spec hash) in a
  :class:`~repro.core.spec.CompiledSpecCache`, and the hashes are
  recorded in sweep provenance.
* **Stacked binding** — points sharing a spec hash are bound in one
  vectorized pass: their environments stack into per-parameter arrays,
  :meth:`CompiledChain.bind_batch` evaluates every edge expression once
  over all points and assembles the whole generator tensor feeding
  :meth:`CTMC.stacked_absorption_system`.
* **Array-rates memo** — the internal-RAID drive-level rates ``lambda_D``
  / ``lambda_S`` (and the embedded array MTTDL solve) depend on only a
  handful of scalars, which whole sweeps share; they are computed once per
  distinct operating point.
* **Strategy-routed solves** — bound chains go through the solver
  strategy interface (:func:`repro.core.solvers.solve`); the default
  dense backend stacks structurally-identical chains into one batched
  GTH elimination whose per-slice arithmetic is bit-identical to the
  scalar solver, and an explicit :class:`~repro.core.solvers.SolveOptions`
  can reroute the same points to the sparse backend.

The bitwise guarantee is what lets the sweep engine mix serial, pooled
and cached execution freely: every path yields the exact floats of the
pre-engine point-by-point code.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core import CTMC
from ..core.solvers import (
    DEFAULT_SOLVE_OPTIONS,
    SolveOptions,
    SolveRequest,
)
from ..core.solvers import solve as _core_solve
from ..core.spec import CompiledChain, CompiledSpecCache, ModelSpec
from ..models.configurations import Configuration
from ..models.internal_raid import InternalRaidNodeModel
from ..models.parameters import Parameters
from ..models.raid import ArrayRates, InternalRaid, array_model

__all__ = [
    "SolveContext",
    "normalize_method",
    "closed_form_mttdl",
    "evaluate_chunk",
    "mttdl_batched",
    "prepare_point",
    "solve_grouped",
]

#: Public method names of the unified API mapped to their canonical form;
#: the pre-engine "exact"/"approx" spellings are accepted as aliases.
_METHOD_ALIASES = {
    "analytic": "analytic",
    "exact": "analytic",
    "closed_form": "closed_form",
    "approx": "closed_form",
    "monte_carlo": "monte_carlo",
}


def normalize_method(method: str) -> str:
    """Canonical method name; raises ValueError for unknown spellings."""
    try:
        return _METHOD_ALIASES[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; use 'analytic', 'closed_form' or "
            "'monte_carlo' ('exact'/'approx' accepted as aliases)"
        ) from None


class SolveContext:
    """Per-process compiled-spec cache and counters for chunk evaluation.

    The array-memo counters live in :attr:`metrics` (as
    ``engine.array_memo.hits`` / ``engine.array_memo.misses``) alongside
    the spec cache's own registry; ``array_hits`` / ``array_misses``
    remain as read-through properties for provenance snapshots.
    """

    def __init__(self) -> None:
        self.metrics = obs.Metrics()
        self.specs = CompiledSpecCache(metrics=self.metrics)
        self.array_rates: Dict[Hashable, ArrayRates] = {}
        self._array_hits = self.metrics.counter("engine.array_memo.hits")
        self._array_misses = self.metrics.counter("engine.array_memo.misses")

    @property
    def array_hits(self) -> int:
        return self._array_hits.value

    @array_hits.setter
    def array_hits(self, value: int) -> None:
        self._array_hits.value = value

    @property
    def array_misses(self) -> int:
        return self._array_misses.value

    @array_misses.setter
    def array_misses(self, value: int) -> None:
        self._array_misses.value = value

    def stats(self) -> Dict[str, int]:
        return {
            "spec_hits": self.specs.hits,
            "spec_misses": self.specs.misses,
            "array_hits": self.array_hits,
            "array_misses": self.array_misses,
        }

    def spec_hashes(self) -> Tuple[str, ...]:
        """Hashes of every spec compiled in this context (provenance)."""
        return self.specs.hashes()


def _array_rates_for(
    config: Configuration,
    params: Parameters,
    ctx: SolveContext,
    rates_method: str = "approx",
) -> ArrayRates:
    """Memoized ``rates(rates_method)`` of the internal array model.

    The rates (and the array MTTDL they carry) are functions of exactly
    ``(level, d, lambda_d, mu_d, C*HER)``; keying on those scalars plus
    the derivation method makes the memo exact — identical inputs give
    identical outputs, so a hit returns the same floats a fresh
    computation would.
    """
    arr = array_model(params, config.internal)
    key = (
        config.internal,
        params.drives_per_node,
        params.drive_failure_rate,
        arr.restripe_rate,
        params.hard_error_per_drive_read,
        rates_method,
    )
    rates = ctx.array_rates.get(key)
    if rates is None:
        rates = arr.rates(rates_method)
        ctx.array_rates[key] = rates
        ctx.array_misses += 1
    else:
        ctx.array_hits += 1
    return rates


def _spec_and_env(
    config: Configuration,
    params: Parameters,
    ctx: SolveContext,
    rates_method: str = "approx",
) -> Tuple[ModelSpec, Dict[str, float]]:
    """The (spec, binding environment) for one point, via the array memo."""
    if config.internal is InternalRaid.NONE:
        model = config.model(params)
    else:
        model = InternalRaidNodeModel(
            params,
            config.internal,
            config.node_fault_tolerance,
            array_rates=_array_rates_for(config, params, ctx, rates_method),
        )
    return model.spec(), model.chain_env()


def prepare_point(
    config: Configuration,
    params: Parameters,
    ctx: SolveContext,
    rates_method: str = "approx",
) -> Tuple[CompiledChain, Dict[str, float]]:
    """The (compiled chain, binding environment) for one analytic point.

    Model construction, the array-rates memo and spec compilation all
    happen here; the returned pair feeds :func:`solve_grouped` (points
    sharing a :attr:`~repro.core.spec.CompiledChain.spec_hash` can be
    solved as one group).
    """
    spec, env = _spec_and_env(config, params, ctx, rates_method)
    return ctx.specs.get_or_compile(spec), env


def closed_form_mttdl(
    config: Configuration, params: Parameters, ctx: SolveContext
) -> float:
    """MTTDL (hours) by the paper's closed forms, through the array memo."""
    if config.internal is InternalRaid.NONE:
        return config.mttdl_hours(params, "approx")
    model = InternalRaidNodeModel(
        params,
        config.internal,
        config.node_fault_tolerance,
        array_rates=_array_rates_for(config, params, ctx),
    )
    return model.mttdl_approx()


def _bind_group(
    compiled: CompiledChain, envs: Sequence[Dict[str, float]]
) -> List[CTMC]:
    """Bind one pre-grouped batch (every env shares ``compiled``'s spec).

    A single point binds scalar; two or more stack into per-parameter
    arrays and go through one :meth:`CompiledChain.bind_batch` pass,
    bitwise identical to point-by-point :meth:`CompiledChain.bind`.
    """
    with obs.span(
        "solve.bind", spec=compiled.spec_hash[:12], points=len(envs)
    ):
        if len(envs) == 1:
            return [compiled.bind(envs[0])]
        stacked = {
            name: np.array([env[name] for env in envs])
            for name in compiled.spec.param_names
        }
        return compiled.bind_batch(stacked)


def solve_grouped(
    compiled: CompiledChain,
    envs: Sequence[Dict[str, float]],
    options: Optional[SolveOptions] = None,
) -> List[float]:
    """MTTDL (hours) for a pre-grouped batch sharing one spec hash.

    The batch-solve entry point for callers that have already coalesced
    their points by :attr:`~repro.core.spec.CompiledChain.spec_hash`
    (the serving layer's request batcher): the whole group is bound in
    one :meth:`CompiledChain.bind_batch` pass and handed to the solver
    strategy interface in one request — under the default (dense)
    backend, one stacked GTH elimination.  Every returned float is
    bitwise equal to the point's own scalar bind-and-solve (and
    therefore to ``config.reliability(params)``).
    """
    return mttdl_batched(_bind_group(compiled, envs), options)


def _bind_all(
    compiled_chains: Sequence[CompiledChain],
    envs: Sequence[Dict[str, float]],
) -> List[CTMC]:
    """Bind every (compiled chain, environment) pair, stacking shared shapes.

    Points with the same spec hash are bound in one
    :meth:`CompiledChain.bind_batch` pass — per-parameter scalar
    environments stack into arrays and the rate tensor for the whole
    group is evaluated at once, bitwise identical to point-by-point
    :meth:`CompiledChain.bind`.
    """
    chains: List[Optional[CTMC]] = [None] * len(envs)
    groups: Dict[str, List[int]] = {}
    by_hash: Dict[str, CompiledChain] = {}
    for i, compiled in enumerate(compiled_chains):
        groups.setdefault(compiled.spec_hash, []).append(i)
        by_hash[compiled.spec_hash] = compiled
    for spec_hash, members in groups.items():
        compiled = by_hash[spec_hash]
        for i, chain in zip(
            members, _bind_group(compiled, [envs[i] for i in members])
        ):
            chains[i] = chain
    return chains  # type: ignore[return-value]


def mttdl_batched(
    chains: Sequence[CTMC], options: Optional[SolveOptions] = None
) -> List[float]:
    """Mean time to absorption of many chains, via the solver strategy API.

    A thin routing layer over :func:`repro.core.solvers.solve`: the whole
    batch travels in one :class:`~repro.core.solvers.SolveRequest` and the
    selected backend decides how to execute it.  Under the default dense
    backend, chains are grouped by (state order, transient/absorbing
    partition, initial state) and each group is stacked into one batched
    GTH elimination — every returned float is bitwise equal to the
    chain's own :meth:`~repro.core.ctmc.CTMC.mean_time_to_absorption`.
    """
    if not chains:
        return []
    request = SolveRequest(
        chains=tuple(chains),
        query="mttdl",
        options=DEFAULT_SOLVE_OPTIONS if options is None else options,
    )
    return list(_core_solve(request).values)


def evaluate_chunk(
    tasks: Sequence[Tuple[Configuration, Parameters, str]],
    ctx: Optional[SolveContext] = None,
    options: Optional[SolveOptions] = None,
) -> List[float]:
    """MTTDL (hours) for each ``(config, params, method)`` task.

    ``method`` must already be normalized ("analytic" or "closed_form");
    Monte-Carlo evaluation lives in :mod:`repro.sim` and is dispatched by
    the facade, not here.  Order is preserved.  Both task families route
    through the solver strategy interface: analytic points are bound and
    shipped as one chain batch, closed-form points as one
    ``closed_form`` request whose thunk runs them through the array memo.
    """
    if ctx is None:
        ctx = SolveContext()
    if options is None:
        options = DEFAULT_SOLVE_OPTIONS
    mttdls: List[Optional[float]] = [None] * len(tasks)
    bind_compiled: List[CompiledChain] = []
    bind_envs: List[Dict[str, float]] = []
    chain_slots: List[int] = []
    cf_slots: List[int] = []
    with obs.span("solve.prepare", tasks=len(tasks)):
        # "prepare" covers per-task model construction and the
        # array-rates memo; closed-form values are computed later inside
        # their backend's solve span.
        for i, (config, params, method) in enumerate(tasks):
            if method == "closed_form":
                cf_slots.append(i)
            elif method == "analytic":
                compiled, env = prepare_point(
                    config, params, ctx, options.rates_method
                )
                bind_compiled.append(compiled)
                bind_envs.append(env)
                chain_slots.append(i)
            else:
                raise ValueError(
                    f"evaluate_chunk cannot handle method {method!r}"
                )
    if cf_slots:
        cf_tasks = [tasks[i] for i in cf_slots]
        cf_options = (
            options
            if options.backend == "closed_form"
            else options.replace(backend="closed_form")
        )
        result = _core_solve(
            SolveRequest(
                closed_form=lambda: [
                    closed_form_mttdl(config, params, ctx)
                    for config, params, _ in cf_tasks
                ],
                query="mttdl",
                options=cf_options,
            )
        )
        for i, mttdl in zip(cf_slots, result.values):
            mttdls[i] = mttdl
    if chain_slots:
        chains = _bind_all(bind_compiled, bind_envs)
        for i, mttdl in zip(chain_slots, mttdl_batched(chains, options)):
            mttdls[i] = mttdl
    return mttdls  # type: ignore[return-value]


def _worker_evaluate(
    tasks: Sequence[Tuple[Configuration, Parameters, str]],
    options: Optional[SolveOptions] = None,
) -> Tuple[List[float], Dict[str, object]]:
    """Pool-worker entry point: evaluate a chunk with a fresh context and
    report the counters (and compiled spec hashes) back for aggregation.

    Span shipping is the runtime's job now: when the parent submits a
    traced task, :class:`repro.runtime.ProcessTopology` wraps the worker
    call in :func:`obs.capture_spans` and adopts the finished spans under
    the parent's dispatch span, so a pooled sweep's span tree matches the
    in-process one worker-for-chunk.  The span opened here is a free
    no-op when tracing is off.
    """
    ctx = SolveContext()
    with obs.span("engine.worker", tasks=len(tasks)):
        results = evaluate_chunk(tasks, ctx, options)
    stats: Dict[str, object] = dict(ctx.stats())
    stats["spec_hashes"] = ctx.spec_hashes()
    return results, stats

"""Result containers for engine-evaluated sweeps.

:class:`SweepResult` is the common return type of every sweep/figure
function: a :class:`~repro.reporting.FigureData` (so every existing
renderer — ``format_figure``, ``to_csv``, ``to_dict`` — consumes it
unchanged) extended with the swept axis, the raw per-config points and
the :class:`EngineProvenance` describing how it was computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from ..reporting import FigureData

__all__ = ["EngineProvenance", "SweepResult"]


@dataclass(frozen=True)
class EngineProvenance:
    """How a result set was produced — recorded for reproducibility.

    Attributes:
        method: normalized evaluation method ("analytic", "closed_form",
            "monte_carlo").
        jobs: process-pool width used (1 = serial).
        cache_enabled: whether the on-disk result cache participated.
        cache_hits / cache_misses: disk-cache counters for this run.
        spec_hits / spec_misses: compiled-spec cache counters (a hit
            re-binds an already-compiled chain; a miss compiles a spec).
        array_hits / array_misses: internal-array rates memo counters.
        spec_hashes: content hashes of every :class:`~repro.core.spec.
            ModelSpec` compiled for this result — the exact chain
            structures the numbers came from.
        engine: engine identifier, e.g. ``"repro.engine/1.0.0"``.
    """

    method: str = "analytic"
    jobs: int = 1
    cache_enabled: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    spec_hits: int = 0
    spec_misses: int = 0
    array_hits: int = 0
    array_misses: int = 0
    spec_hashes: Tuple[str, ...] = ()
    engine: str = "repro.engine"

    def describe(self) -> str:
        """One-line summary (the ``--verbose`` cache/spec report)."""
        parts = [f"method={self.method}", f"jobs={self.jobs}"]
        if self.cache_enabled:
            parts.append(
                f"disk cache {self.cache_hits} hits / "
                f"{self.cache_misses} misses"
            )
        else:
            parts.append("disk cache off")
        parts.append(
            f"compiled specs {self.spec_hits} binds / "
            f"{self.spec_misses} compiles ({len(self.spec_hashes)} shapes)"
        )
        parts.append(
            f"array-rates memo {self.array_hits} hits / "
            f"{self.array_misses} misses"
        )
        return "; ".join(parts)


@dataclass(frozen=True)
class SweepResult(FigureData):
    """A sweep's outcome: FigureData plus axis, points and provenance.

    Attributes (beyond :class:`~repro.reporting.FigureData`):
        axis_name: the swept :class:`Parameters` field or axis label.
        axis_values: the raw swept values (uncast — ``x_values`` holds the
            float form used for plotting).
        points: the evaluated per-(x, config) points, in sweep order
            (:class:`repro.analysis.sensitivity.SweepPoint` instances when
            produced by the analysis layer).
        provenance: engine settings and counters, None for the plain
            serial path.
    """

    axis_name: str = ""
    axis_values: Tuple[Any, ...] = ()
    points: Tuple[Any, ...] = ()
    provenance: Optional[EngineProvenance] = None

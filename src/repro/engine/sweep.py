"""The parallel sweep engine.

:class:`SweepEngine` evaluates grids of (configuration, parameters)
points with three accelerators — process-pool fan-out, compiled-spec
binding (plus the array-rates memo), and an optional on-disk result
cache — while
guaranteeing the exact floats of the pre-engine point-by-point code (see
:mod:`repro.engine.solver` for why every path is bitwise-deterministic).

Typical use::

    engine = SweepEngine(jobs=4, cache=True)
    result = engine.sweep(
        sensitivity_configurations(),
        Axis("drive_mttf_hours", (100_000, 300_000, 750_000)),
    )
    print(format_figure(result))
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from ..core.solvers import DEFAULT_SOLVE_OPTIONS, SolveOptions
from ..models.configurations import Configuration
from ..models.metrics import PAPER_TARGET_EVENTS_PER_PB_YEAR, ReliabilityResult
from ..models.parameters import Parameters
from ..models.space import SearchSpace
from .. import __version__, obs
from ..reporting import Series
from .cache import DEFAULT_CACHE_DIR, DiskCache
from .keys import point_key
from ..runtime import default_jobs, run_chunks, should_pool, split_chunks
from .result import EngineProvenance, SweepResult
from .solver import SolveContext, _worker_evaluate, evaluate_chunk, normalize_method

__all__ = ["Axis", "GridPoint", "SweepEngine", "point_payload_valid"]


def point_payload_valid(payload: dict) -> bool:
    """Schema check for cached sweep-point payloads.

    A stored entry must carry a finite numeric ``mttdl_hours``; anything
    else (an old layout, a truncated write that still parses, a foreign
    file) is treated as a cache miss and overwritten.
    """
    mttdl = payload.get("mttdl_hours")
    return isinstance(mttdl, (int, float)) and not isinstance(mttdl, bool)


@dataclass(frozen=True)
class Axis:
    """One swept dimension of a parameter grid.

    Attributes:
        name: the :class:`Parameters` field to vary (or a descriptive name
            when ``transform`` is given).
        values: the swept values.
        transform: optional ``(params, x) -> params`` mapping; defaults to
            replacing ``name`` with ``x`` cast to the field's type.
        label: axis label for figures (defaults to ``name``).
    """

    name: str
    values: Sequence[Any]
    transform: Optional[Callable[[Parameters, Any], Parameters]] = None
    label: Optional[str] = None

    @property
    def x_label(self) -> str:
        return self.label if self.label is not None else self.name

    def apply(self, params: Parameters, x: Any) -> Parameters:
        """The parameter set at swept value ``x``."""
        if self.transform is not None:
            return self.transform(params, x)
        current = getattr(params, self.name)
        value = type(current)(x) if isinstance(current, (int, float)) else x
        return params.replace(**{self.name: value})


@dataclass(frozen=True)
class GridPoint:
    """One evaluated point of a multi-axis grid."""

    config: Configuration
    coords: Tuple[Tuple[str, Any], ...]
    params: Parameters
    result: ReliabilityResult


class SweepEngine:
    """Evaluates configuration/parameter grids fast and reproducibly.

    Args:
        base_params: default baseline for :meth:`sweep` / :meth:`grid`
            (the paper's Section 6 baseline when omitted).
        jobs: process-pool width; ``None`` means ``os.cpu_count()``.  The
            pool engages only when a batch is large enough to amortize
            process startup — results are identical either way.
        cache: on-disk result cache: ``False`` (off), ``True`` (default
            directory ``.repro_cache/``), a directory path, or a
            :class:`DiskCache` instance.
        method: default evaluation method ("analytic" or "closed_form";
            "exact"/"approx" accepted as aliases).
        options: default :class:`~repro.core.solvers.SolveOptions` for
            every evaluation — solver backend, array-rates derivation
            and iterative tolerances.  Non-default options participate
            in disk-cache keys, so switching backends never reads a
            stale entry.
    """

    #: Worker-side counter names folded into provenance snapshots.
    _WORKER_COUNTERS = ("spec_hits", "spec_misses", "array_hits", "array_misses")

    def __init__(
        self,
        base_params: Optional[Parameters] = None,
        *,
        jobs: Optional[int] = None,
        cache: Union[bool, str, Path, DiskCache] = False,
        method: str = "analytic",
        options: Optional[SolveOptions] = None,
    ) -> None:
        self._base = base_params if base_params is not None else Parameters.baseline()
        self._jobs = default_jobs() if jobs is None else max(1, int(jobs))
        self._method = normalize_method(method)
        self._options = DEFAULT_SOLVE_OPTIONS if options is None else options
        if isinstance(cache, DiskCache):
            self._cache: Optional[DiskCache] = cache
        elif cache is True:
            self._cache = DiskCache(DEFAULT_CACHE_DIR, validator=point_payload_valid)
        elif cache:
            self._cache = DiskCache(cache, validator=point_payload_valid)
        else:
            self._cache = None
        self._ctx = SolveContext()
        # Engine-level metrics: batch tallies plus the counters shipped
        # back by pooled workers (folded into provenance snapshots).
        self.metrics = obs.Metrics()
        self._points_counter = self.metrics.counter("engine.points")
        self._batches_counter = self.metrics.counter("engine.batches")
        self._worker_stats = {
            name: self.metrics.counter(f"engine.pool.{name}")
            for name in self._WORKER_COUNTERS
        }
        # Spec hashes compiled by pooled workers (the in-process hashes
        # live in self._ctx.specs).
        self._worker_spec_hashes: set = set()

    # ------------------------------------------------------------------ #
    # properties / stats
    # ------------------------------------------------------------------ #

    @property
    def base_params(self) -> Parameters:
        return self._base

    @property
    def jobs(self) -> int:
        return self._jobs

    @property
    def cache(self) -> Optional[DiskCache]:
        return self._cache

    def provenance(self, method: Optional[str] = None) -> EngineProvenance:
        """A snapshot of the engine's settings and cumulative counters."""
        local = self._ctx.stats()
        pool = {name: c.value for name, c in self._worker_stats.items()}
        hashes = set(self._ctx.spec_hashes()) | self._worker_spec_hashes
        return EngineProvenance(
            method=normalize_method(method) if method else self._method,
            jobs=self._jobs,
            cache_enabled=self._cache is not None,
            cache_hits=self._cache.hits if self._cache else 0,
            cache_misses=self._cache.misses if self._cache else 0,
            spec_hits=local["spec_hits"] + pool["spec_hits"],
            spec_misses=local["spec_misses"] + pool["spec_misses"],
            array_hits=local["array_hits"] + pool["array_hits"],
            array_misses=local["array_misses"] + pool["array_misses"],
            spec_hashes=tuple(sorted(hashes)),
            engine=f"repro.engine/{__version__}",
        )

    def metrics_snapshot(self) -> obs.Metrics:
        """Every counter this engine touched, merged into one registry.

        Folds the engine's own tallies (batches, points, pooled-worker
        counters), the disk cache's registry and the in-process solve
        context's registry (compiled-spec cache + array memo) — the
        ``metrics.json`` payload for a sweep run.
        """
        merged = obs.Metrics()
        merged.merge(self.metrics)
        merged.merge(self._ctx.metrics)
        if self._cache is not None:
            merged.merge(self._cache.metrics)
        return merged

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        config: Configuration,
        params: Optional[Parameters] = None,
        *,
        method: Optional[str] = None,
        options: Optional[SolveOptions] = None,
    ) -> ReliabilityResult:
        """Evaluate a single point (engine-accelerated, cacheable)."""
        return self.evaluate_many(
            [(config, params if params is not None else self._base)],
            method=method,
            options=options,
        )[0]

    def evaluate_many(
        self,
        pairs: Sequence[Tuple[Configuration, Parameters]],
        *,
        method: Optional[str] = None,
        options: Optional[SolveOptions] = None,
    ) -> List[ReliabilityResult]:
        """Evaluate many (configuration, parameters) points, in order.

        The disk cache is consulted first; remaining points are chunked
        across the process pool (or evaluated in-process with the
        engine's persistent memos when the batch is small).  Under the
        default options, outputs are bitwise identical to
        ``config.reliability(params, method)`` for every point;
        non-default options reroute the solve through the selected
        backend and contribute to the cache key.
        """
        method = normalize_method(method) if method else self._method
        options = self._options if options is None else options
        if method == "monte_carlo":
            raise ValueError(
                "SweepEngine evaluates analytic/closed-form points; use "
                "repro.evaluate(..., method='monte_carlo') or "
                "repro.sim.estimate_mttdl for simulation"
            )
        pairs = list(pairs)
        with obs.span(
            "engine.evaluate_many", points=len(pairs), method=method
        ) as batch_span:
            self._batches_counter.inc()
            self._points_counter.inc(len(pairs))
            mttdls: List[Optional[float]] = [None] * len(pairs)

            # Default options add no key material, so pre-options cache
            # entries (and every default-path run) keep their keys.
            key_extra = (
                None
                if options.is_default()
                else {"solve_options": options.cache_key()}
            )

            miss_indices: List[int] = []
            miss_keys: List[Optional[str]] = []
            if self._cache is not None:
                with obs.span("engine.cache.lookup", points=len(pairs)):
                    for i, (config, params) in enumerate(pairs):
                        key = point_key(config, params, method, key_extra)
                        payload = self._cache.get(key)
                        if payload is not None and point_payload_valid(payload):
                            mttdls[i] = float(payload["mttdl_hours"])
                        else:
                            miss_indices.append(i)
                            miss_keys.append(key)
            else:
                miss_indices = list(range(len(pairs)))
                miss_keys = [None] * len(pairs)

            tasks = [
                (pairs[i][0], pairs[i][1], method) for i in miss_indices
            ]
            if tasks:
                # When the pool cannot help (one job, a tiny batch, or a
                # single-CPU host) stay in-process so the engine's persistent
                # memos keep paying off across batches.
                pooled = should_pool(self._jobs, len(tasks))
                with obs.span(
                    "engine.dispatch", tasks=len(tasks), pooled=pooled
                ):
                    if pooled:
                        # Worker spans re-parent under this dispatch span
                        # automatically (the runtime adopts them), so
                        # pooled and in-process runs grow the same tree
                        # shape.
                        worker = functools.partial(
                            _worker_evaluate, options=options
                        )
                        chunks = split_chunks(tasks, self._jobs)
                        outputs = run_chunks(worker, chunks, self._jobs)
                        computed = [m for out in outputs for m in out[0]]
                        for _, stats in outputs:
                            stats = dict(stats)
                            self._worker_spec_hashes.update(
                                stats.pop("spec_hashes", ())
                            )
                            for name, value in stats.items():
                                self._worker_stats[name].inc(value)
                    else:
                        with obs.span("engine.worker", tasks=len(tasks)):
                            computed = evaluate_chunk(tasks, self._ctx, options)
                for slot, key, mttdl in zip(miss_indices, miss_keys, computed):
                    mttdls[slot] = mttdl
                if self._cache is not None:
                    with obs.span(
                        "engine.cache.store", points=len(miss_indices)
                    ):
                        for key, mttdl in zip(miss_keys, computed):
                            if key is not None:
                                self._cache.put(key, {"mttdl_hours": mttdl})

            results = [
                ReliabilityResult.from_mttdl(mttdl, params)
                for mttdl, (_, params) in zip(mttdls, pairs)
            ]
            batch_span.set("cache_hits", len(pairs) - len(miss_indices))
        return results

    # ------------------------------------------------------------------ #
    # sweeps and grids
    # ------------------------------------------------------------------ #

    def sweep(
        self,
        configs: Sequence[Configuration],
        axis: Axis,
        *,
        base_params: Optional[Parameters] = None,
        method: Optional[str] = None,
        options: Optional[SolveOptions] = None,
        title: Optional[str] = None,
        label_fn: Optional[Callable[[Any], str]] = None,
    ) -> SweepResult:
        """Evaluate ``configs`` along one axis; returns a :class:`SweepResult`.

        Point order matches :func:`repro.analysis.sensitivity.sweep`
        (x-major, then configuration).
        """
        from ..analysis.sensitivity import SweepPoint

        base = base_params if base_params is not None else self._base
        xs = list(axis.values)
        pairs = [
            (config, axis.apply(base, x)) for x in xs for config in configs
        ]
        results = self.evaluate_many(pairs, method=method, options=options)
        points = tuple(
            SweepPoint(
                x=x,
                config=config,
                events_per_pb_year=result.events_per_pb_year,
                mttdl_hours=result.mttdl_hours,
            )
            for (x, config), result in zip(
                ((x, c) for x in xs for c in configs), results
            )
        )
        if label_fn is None:
            label_fn = lambda p: p.config.label
        labels: List[str] = []
        values: dict = {}
        for p in points:
            label = label_fn(p)
            if label not in values:
                labels.append(label)
                values[label] = {}
            values[label][p.x] = p.events_per_pb_year
        series = tuple(
            Series(label, tuple(values[label][x] for x in xs))
            for label in labels
        )
        return SweepResult(
            title=title if title is not None else f"Sweep over {axis.x_label}",
            x_label=axis.x_label,
            x_values=tuple(float(x) for x in xs),
            series=series,
            target=PAPER_TARGET_EVENTS_PER_PB_YEAR,
            axis_name=axis.name,
            axis_values=tuple(xs),
            points=points,
            provenance=self.provenance(method),
        )

    def grid(
        self,
        configs: Sequence[Configuration],
        axes: Sequence[Axis],
        *,
        base_params: Optional[Parameters] = None,
        method: Optional[str] = None,
        options: Optional[SolveOptions] = None,
    ) -> List[GridPoint]:
        """Evaluate the full cartesian product of ``axes`` for every
        configuration; returns points in (axes-major, config-minor) order."""
        if not axes:
            raise ValueError("grid needs at least one axis")
        base = base_params if base_params is not None else self._base
        combos = list(itertools.product(*(list(a.values) for a in axes)))
        entries = []
        for combo in combos:
            params = base
            for axis, x in zip(axes, combo):
                params = axis.apply(params, x)
            coords = tuple((axis.name, x) for axis, x in zip(axes, combo))
            for config in configs:
                entries.append((config, coords, params))
        results = self.evaluate_many(
            [(config, params) for config, _, params in entries],
            method=method,
            options=options,
        )
        return [
            GridPoint(config=config, coords=coords, params=params, result=result)
            for (config, coords, params), result in zip(entries, results)
        ]

    def evaluate_space(
        self,
        space: "SearchSpace",
        *,
        base_params: Optional[Parameters] = None,
        method: Optional[str] = None,
        options: Optional[SolveOptions] = None,
    ) -> Tuple[List[GridPoint], int]:
        """Evaluate every feasible point of a declarative
        :class:`repro.models.SearchSpace` in one batch.

        Enumeration order is the space's own (config-major, axes in
        declared order) rather than :meth:`grid`'s axes-major order.
        Returns the evaluated points plus the number of infeasible
        combinations the space skipped.  Results are bitwise identical
        to ``config.reliability(params, method)`` per point.
        """
        base = base_params if base_params is not None else self._base
        points, skipped = space.grid(base)
        results = self.evaluate_many(
            [(p.config, p.params) for p in points],
            method=method,
            options=options,
        )
        return (
            [
                GridPoint(
                    config=p.config,
                    coords=p.coords,
                    params=p.params,
                    result=result,
                )
                for p, result in zip(points, results)
            ],
            skipped,
        )

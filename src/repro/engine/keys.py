"""Stable cache keys for evaluated (configuration, parameters) points.

The on-disk result cache must key on *values*, not object identities, and
must survive interpreter restarts (``PYTHONHASHSEED`` randomizes ``hash``
for strings, so the built-in hash is useless here).  :func:`point_key`
canonicalizes the configuration, the full parameter set, the evaluation
method and the cache schema version into JSON and hashes it with SHA-256.

Python's ``json`` serializes floats with ``repr``, which round-trips
float64 exactly, so two parameter sets produce the same key if and only
if every field is bitwise equal.

Parameter identity is :meth:`Parameters.cache_key` — the one canonical
derivation shared by the engine, the serving layer and the verification
report.  Hashing ``params.to_dict()`` directly (the pre-1.1 private
path) is deprecated; go through ``cache_key()`` so every component
agrees on what "the same parameters" means.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping, Optional

from .. import __version__
from ..models.configurations import Configuration
from ..models.parameters import Parameters

__all__ = ["CACHE_SCHEMA_VERSION", "point_key", "stable_digest"]

#: Bump when the cached payload layout or the meaning of a key changes;
#: old entries then miss instead of deserializing garbage.
#: v2: parameter identity goes through :meth:`Parameters.cache_key`
#: (one canonical derivation) instead of embedding the raw field dict.
CACHE_SCHEMA_VERSION = 2


def stable_digest(payload: Any) -> str:
    """SHA-256 hex digest of a JSON-canonicalized payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def point_key(
    config: Configuration,
    params: Parameters,
    method: str,
    extra: Optional[Mapping[str, Any]] = None,
) -> str:
    """The disk-cache key for one evaluated point.

    Args:
        config: configuration evaluated.
        params: full parameter set (every field participates, so any
            parameter change invalidates the entry).
        method: normalized evaluation method name.
        extra: additional key material (e.g. Monte-Carlo replica count and
            seed).
    """
    payload = {
        "schema": CACHE_SCHEMA_VERSION,
        "repro": __version__,
        "config": config.key,
        "method": method,
        "params": params.cache_key(),
        "extra": dict(extra) if extra else None,
    }
    return stable_digest(payload)

"""On-disk JSON result cache for evaluated sweep points.

One file per key under the cache directory (default ``.repro_cache/``),
written atomically (temp file + ``os.replace``) so concurrent workers and
interrupted runs never leave a torn entry.  Corrupt or unreadable entries
are treated as misses and overwritten.  Values are plain JSON dicts;
floats round-trip bitwise through ``json`` (repr-based serialization), so
a cache hit reproduces the computed result exactly.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

__all__ = ["DiskCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro_cache"


class DiskCache:
    """A tiny key-value store of JSON dicts with hit/miss counters.

    Args:
        directory: cache root; created lazily on the first write.
    """

    def __init__(self, directory: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self._dir = Path(directory)
        self.hits = 0
        self.misses = 0

    @property
    def directory(self) -> Path:
        return self._dir

    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys must be hex digests, got {key!r}")
        return self._dir / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None (counted as hit/miss)."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key``."""
        path = self._path(key)
        self._dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self._dir), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self._dir.is_dir():
            for entry in self._dir.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self._dir.is_dir():
            return 0
        return sum(1 for _ in self._dir.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiskCache({str(self._dir)!r}, hits={self.hits}, "
            f"misses={self.misses})"
        )

"""On-disk JSON result cache for evaluated sweep points.

One file per key under the cache directory (default ``.repro_cache/``),
written atomically (temp file + ``os.replace``) so concurrent workers and
interrupted runs never leave a torn entry.  Values are plain JSON dicts;
floats round-trip bitwise through ``json`` (repr-based serialization), so
a cache hit reproduces the computed result exactly.

Corrupted, truncated or schema-mismatched entries can still appear — a
crashed writer on another filesystem, a partial copy, an old cache
layout, a stray editor.  Every such entry is treated as a **miss**: the
damage is logged, the entry is deleted so the recomputed value overwrites
it, and the caller recomputes.  A bad cache can cost time, never
correctness.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from ..obs import Metrics
from . import faultpoints

__all__ = ["DiskCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".repro_cache"

logger = logging.getLogger("repro.engine.cache")


class DiskCache:
    """A tiny key-value store of JSON dicts with hit/miss counters.

    Args:
        directory: cache root; created lazily on the first write.
        validator: optional payload schema check.  A stored entry for
            which ``validator(payload)`` is falsy is handled like any
            other corruption: miss, log, delete.
        metrics: the :class:`~repro.obs.Metrics` registry the counters
            live in (a private one per cache when omitted, so two caches
            never share tallies).

    Attributes:
        hits / misses: lookup counters — read-through views of the
            ``engine.disk_cache.*`` counters in :attr:`metrics`.
        rejected: how many stored entries were discarded as corrupt,
            truncated or schema-mismatched (a subset of ``misses``).
    """

    def __init__(
        self,
        directory: Union[str, Path] = DEFAULT_CACHE_DIR,
        validator: Optional[Callable[[Dict[str, Any]], bool]] = None,
        metrics: Optional[Metrics] = None,
    ) -> None:
        self._dir = Path(directory)
        self._validator = validator
        self.metrics = metrics if metrics is not None else Metrics()
        self._hits = self.metrics.counter("engine.disk_cache.hits")
        self._misses = self.metrics.counter("engine.disk_cache.misses")
        self._rejected = self.metrics.counter("engine.disk_cache.rejected")

    # Counter attributes kept as read-through properties so provenance
    # snapshots and existing callers see exactly the pre-obs integers.

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.value = value

    @property
    def rejected(self) -> int:
        return self._rejected.value

    @rejected.setter
    def rejected(self, value: int) -> None:
        self._rejected.value = value

    @property
    def directory(self) -> Path:
        return self._dir

    def _path(self, key: str) -> Path:
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys must be hex digests, got {key!r}")
        return self._dir / f"{key}.json"

    def _reject(
        self, path: Path, reason: str, stamp: Optional[os.stat_result] = None
    ) -> None:
        """Discard a damaged entry: log it and delete the file so the next
        :meth:`put` overwrites it with a freshly computed value.

        ``stamp`` is the ``fstat`` of the file descriptor the damaged
        bytes were read from.  Writers are atomic (temp file +
        ``os.replace``), so a concurrent :meth:`put` may have already
        replaced the path with a fresh, valid entry by the time the
        reader decides to reject — deleting blindly would destroy good
        data.  The unlink only fires while the path still resolves to the
        same inode that was read.
        """
        self.rejected += 1
        logger.warning("discarding cache entry %s: %s", path, reason)
        try:
            if stamp is not None:
                current = os.stat(path)
                if (current.st_ino, current.st_dev) != (
                    stamp.st_ino,
                    stamp.st_dev,
                ):
                    return  # a concurrent writer already replaced it
            path.unlink()
        except OSError:
            pass  # already gone or unremovable; put() will overwrite anyway

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or None (counted as hit/miss).

        Never raises on a damaged entry — corruption degrades to a miss.
        """
        path = self._path(key)
        faultpoints.fire(faultpoints.CACHE_READ, path)
        stamp: Optional[os.stat_result] = None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                stamp = os.fstat(fh.fileno())
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            self.misses += 1
            logger.warning("unreadable cache entry %s: %s", path, exc)
            return None
        except ValueError as exc:  # json.JSONDecodeError, bad unicode, ...
            self.misses += 1
            self._reject(path, f"invalid JSON ({exc})", stamp)
            return None
        if not isinstance(payload, dict):
            self.misses += 1
            self._reject(
                path, f"payload is {type(payload).__name__}, not a dict", stamp
            )
            return None
        if self._validator is not None and not self._validator(payload):
            self.misses += 1
            self._reject(path, "schema mismatch", stamp)
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist ``payload`` under ``key``."""
        path = self._path(key)
        self._dir.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=str(self._dir), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self._dir.is_dir():
            for entry in self._dir.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self._dir.is_dir():
            return 0
        return sum(1 for _ in self._dir.glob("*.json"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiskCache({str(self._dir)!r}, hits={self.hits}, "
            f"misses={self.misses}, rejected={self.rejected})"
        )

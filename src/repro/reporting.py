"""ASCII reporting primitives shared by the analysis and engine layers.

The benchmarks "regenerate" the paper's figures as tables of series —
x-values against events/PB-year per configuration — which these helpers
render in a stable, diff-friendly format.  They live at the package root
(rather than under :mod:`repro.analysis`) so the sweep engine can build
:class:`FigureData`-compatible results without importing the analysis
package; :mod:`repro.analysis.report` re-exports everything for backward
compatibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Series", "FigureData", "format_table", "format_figure"]


@dataclass(frozen=True)
class Series:
    """One line of a figure: a label and y-values over the shared x-axis."""

    label: str
    values: Tuple[float, ...]


@dataclass(frozen=True)
class FigureData:
    """A reproduced figure: shared x-axis plus one series per configuration.

    Attributes:
        title: e.g. ``"Figure 14: Sensitivity to Drive MTTF"``.
        x_label: axis label, e.g. ``"drive MTTF (hours)"``.
        x_values: shared x-axis points.
        series: the lines.
        y_label: metric name (defaults to the paper's events/PB-year).
        target: horizontal reference line (the reliability target).
    """

    title: str
    x_label: str
    x_values: Tuple[float, ...]
    series: Tuple[Series, ...]
    y_label: str = "data loss events / PB-year"
    target: Optional[float] = None

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r}")

    def to_rows(self) -> List[List[str]]:
        """Table rows: header then one row per x-value."""
        header = [self.x_label] + [s.label for s in self.series]
        rows = [header]
        for i, x in enumerate(self.x_values):
            rows.append(
                [_format_number(x)] + [_format_number(s.values[i]) for s in self.series]
            )
        return rows

    def to_csv(self) -> str:
        """The figure as RFC-4180 CSV (full float precision)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow([self.x_label] + [s.label for s in self.series])
        for i, x in enumerate(self.x_values):
            writer.writerow([repr(float(x))] + [repr(float(s.values[i])) for s in self.series])
        return buffer.getvalue()

    def to_dict(self) -> dict:
        """JSON-ready representation of the figure."""
        return {
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "target": self.target,
            "x_values": list(self.x_values),
            "series": [
                {"label": s.label, "values": list(s.values)} for s in self.series
            ],
        }


def _format_number(value: float) -> str:
    if value == 0:
        return "0"
    magnitude = abs(value)
    if 0.01 <= magnitude < 100_000 and float(value).is_integer():
        return str(int(value))
    if 0.01 <= magnitude < 1000:
        return f"{value:.4g}"
    return f"{value:.3e}"


def format_table(rows: Sequence[Sequence[str]]) -> str:
    """Align a list of rows into a fixed-width table."""
    if not rows:
        return ""
    widths = [0] * max(len(r) for r in rows)
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    for idx, row in enumerate(rows):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        lines.append(line)
        if idx == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(row))).rstrip())
    return "\n".join(lines)


def format_figure(figure: FigureData) -> str:
    """Render a reproduced figure as a titled table, with the target line."""
    parts = [figure.title, "=" * len(figure.title)]
    if figure.target is not None:
        parts.append(f"reliability target: {figure.target:.1e} {figure.y_label}")
    parts.append(format_table(figure.to_rows()))
    return "\n".join(parts)

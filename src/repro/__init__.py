"""repro — reliability models for networked storage nodes.

A production-quality reproduction of *"Reliability for Networked Storage
Nodes"* (KK Rao, James L. Hafner, Richard A. Golding; IBM Research /
DSN 2006): absorbing-CTMC reliability models for brick-based distributed
storage, the rebuild-time model, the recursive chain construction for
arbitrary fault tolerance, plus the substrates needed to exercise them —
an erasure-coding library, a simulated brick cluster and a Monte-Carlo
failure injector.

Quickstart::

    from repro import Configuration, InternalRaid, Parameters

    params = Parameters.baseline()
    config = Configuration(InternalRaid.RAID5, node_fault_tolerance=2)
    result = config.reliability(params)
    print(result.events_per_pb_year, result.meets_target)
"""

from .models import (
    ALL_CONFIGURATIONS,
    Configuration,
    InternalRaid,
    PAPER_TARGET_EVENTS_PER_PB_YEAR,
    Parameters,
    RebuildModel,
    ReliabilityResult,
    all_configurations,
    evaluate,
    evaluate_all,
    sensitivity_configurations,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_CONFIGURATIONS",
    "Configuration",
    "InternalRaid",
    "PAPER_TARGET_EVENTS_PER_PB_YEAR",
    "Parameters",
    "RebuildModel",
    "ReliabilityResult",
    "all_configurations",
    "evaluate",
    "evaluate_all",
    "sensitivity_configurations",
    "__version__",
]

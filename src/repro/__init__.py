"""repro — reliability models for networked storage nodes.

A production-quality reproduction of *"Reliability for Networked Storage
Nodes"* (KK Rao, James L. Hafner, Richard A. Golding; IBM Research /
DSN 2006): absorbing-CTMC reliability models for brick-based distributed
storage, the rebuild-time model, the recursive chain construction for
arbitrary fault tolerance, plus the substrates needed to exercise them —
an erasure-coding library, a simulated brick cluster, a Monte-Carlo
failure injector and a parallel, memoized sweep engine.

Quickstart::

    import repro

    params = repro.Parameters.baseline()
    config = repro.Configuration(repro.InternalRaid.RAID5, node_fault_tolerance=2)
    result = repro.evaluate(config, params)           # analytic chain solve
    approx = repro.evaluate(
        config, params, options=repro.core.SolveOptions(backend="closed_form")
    )
    print(result.events_per_pb_year, result.meets_target)

Sweeps run through the engine::

    engine = repro.SweepEngine(jobs=4, cache=True)
    results = engine.evaluate_many(
        [(c, params) for c in repro.ALL_CONFIGURATIONS]
    )
"""

from . import obs
from .models import (
    ALL_CONFIGURATIONS,
    Configuration,
    InternalRaid,
    PAPER_TARGET_EVENTS_PER_PB_YEAR,
    Parameters,
    RebuildModel,
    ReliabilityResult,
    all_configurations,
    evaluate_all,
    sensitivity_configurations,
)

__version__ = "1.0.0"

# The engine imports repro.__version__ for cache keys, so it must come
# after the __version__ assignment above.
from .engine import (  # noqa: E402
    Axis,
    DiskCache,
    EngineProvenance,
    SweepEngine,
    SweepResult,
    evaluate,
)
from .advise import (  # noqa: E402
    AdviseRequest,
    AdviseResult,
    CostModel,
    advise,
)
from .models import (  # noqa: E402
    ConfigSpace,
    ParamAxis,
    SearchSpace,
)

__all__ = [
    "ALL_CONFIGURATIONS",
    "AdviseRequest",
    "AdviseResult",
    "Axis",
    "ConfigSpace",
    "Configuration",
    "CostModel",
    "DiskCache",
    "EngineProvenance",
    "InternalRaid",
    "PAPER_TARGET_EVENTS_PER_PB_YEAR",
    "ParamAxis",
    "Parameters",
    "RebuildModel",
    "ReliabilityResult",
    "SearchSpace",
    "SweepEngine",
    "SweepResult",
    "advise",
    "all_configurations",
    "evaluate",
    "evaluate_all",
    "obs",
    "sensitivity_configurations",
    "__version__",
]

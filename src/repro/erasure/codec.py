"""Common codec interface.

All three byte-level codecs (Reed-Solomon, RAID 5, RAID 6) expose the
same core surface: encode ``k`` equal-length blocks into ``k + m``
shards and reconstruct from any sufficient subset.  :class:`ErasureCodec`
captures that surface as a runtime-checkable protocol so higher layers
(the stores, benchmarks, tests) can be written against the interface,
and :func:`codec_for` maps the paper's configuration vocabulary to a
concrete codec.
"""

from __future__ import annotations

from typing import Dict, List, Protocol, Sequence, Union, runtime_checkable

from ..models.raid import InternalRaid
from .raid import Raid5Codec, Raid6Codec
from .reed_solomon import CodecError, ReedSolomonCodec

__all__ = ["ErasureCodec", "codec_for", "internal_codec_for"]

Block = Union[bytes, bytearray]


@runtime_checkable
class ErasureCodec(Protocol):
    """Structural interface every codec in :mod:`repro.erasure` satisfies."""

    @property
    def fault_tolerance(self) -> int:
        """Erasures the code survives."""
        ...

    def encode(self, data: Sequence[Block]) -> List[bytes]:
        """Data blocks -> full shard/strip list (systematic prefix)."""
        ...

    def reconstruct(self, shards: Dict[int, Block]) -> List[bytes]:
        """Any sufficient subset -> the full shard/strip list."""
        ...


def codec_for(redundancy_set_size: int, fault_tolerance: int) -> ReedSolomonCodec:
    """The cross-node code for a (R, t) pair: systematic RS with
    ``k = R - t`` data and ``t`` parity shards."""
    if not 1 <= fault_tolerance < redundancy_set_size:
        raise CodecError("need 1 <= fault_tolerance < redundancy_set_size")
    return ReedSolomonCodec(
        redundancy_set_size - fault_tolerance, fault_tolerance
    )


def internal_codec_for(level: InternalRaid, data_strips: int):
    """The node-internal codec for a RAID level (None for no RAID)."""
    if level is InternalRaid.RAID5:
        return Raid5Codec(data_strips)
    if level is InternalRaid.RAID6:
        return Raid6Codec(data_strips)
    return None

"""Node-internal RAID codecs: RAID 5 (XOR parity) and RAID 6 (P + Q).

These implement the "redundancy within nodes" dimension of Section 3 at
the byte level, so the cluster substrate can actually lose a drive and
re-stripe.  RAID 5 uses plain XOR parity; RAID 6 uses the classical
P (XOR) + Q (Reed-Solomon with generator powers) construction, recovering
any two missing strips.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import gf256
from .reed_solomon import CodecError

__all__ = ["Raid5Codec", "Raid6Codec"]

Block = Union[bytes, bytearray, np.ndarray]


def _as_arrays(blocks: Sequence[Block], expected: int) -> List[np.ndarray]:
    if len(blocks) != expected:
        raise CodecError(f"expected {expected} strips, got {len(blocks)}")
    arrays: List[np.ndarray] = []
    length: Optional[int] = None
    for b in blocks:
        arr = (
            np.asarray(b, dtype=np.uint8)
            if isinstance(b, np.ndarray)
            else np.frombuffer(bytes(b), dtype=np.uint8)
        )
        if length is None:
            length = len(arr)
            if length == 0:
                raise CodecError("strips must be non-empty")
        elif len(arr) != length:
            raise CodecError("all strips must have equal length")
        arrays.append(arr)
    return arrays


class Raid5Codec:
    """XOR-parity codec over ``data_strips`` data strips + 1 parity strip.

    Tolerates any single missing strip.
    """

    def __init__(self, data_strips: int) -> None:
        if data_strips < 2:
            raise CodecError("RAID 5 needs at least 2 data strips")
        self._k = data_strips

    @property
    def data_strips(self) -> int:
        return self._k

    @property
    def total_strips(self) -> int:
        return self._k + 1

    @property
    def fault_tolerance(self) -> int:
        return 1

    def encode(self, data: Sequence[Block]) -> List[bytes]:
        """Data strips followed by the XOR parity strip."""
        arrays = _as_arrays(data, self._k)
        parity = np.zeros_like(arrays[0])
        for a in arrays:
            parity ^= a
        return [a.tobytes() for a in arrays] + [parity.tobytes()]

    def update_parity(
        self, parity: Block, data_index: int, old_block: Block, new_block: Block
    ) -> bytes:
        """Read-modify-write: patch the XOR parity for one changed strip.

        ``P' = P ^ old ^ new`` — no other strip needs to be read.
        """
        if not 0 <= data_index < self._k:
            raise CodecError(f"data index {data_index} out of range")
        arrays = _as_arrays([parity, old_block, new_block], 3)
        return (arrays[0] ^ arrays[1] ^ arrays[2]).tobytes()

    def reconstruct(self, strips: Dict[int, Block]) -> List[bytes]:
        """Recover the full stripe from all-but-one strips.

        Args:
            strips: mapping of strip index (0..k, parity last) to bytes.
        """
        missing = [i for i in range(self.total_strips) if i not in strips]
        if len(missing) > 1:
            raise CodecError(f"RAID 5 cannot recover {len(missing)} missing strips")
        arrays = {
            i: (
                np.asarray(b, dtype=np.uint8)
                if isinstance(b, np.ndarray)
                else np.frombuffer(bytes(b), dtype=np.uint8)
            )
            for i, b in strips.items()
        }
        if missing:
            rebuilt = np.zeros_like(next(iter(arrays.values())))
            for a in arrays.values():
                rebuilt ^= a
            arrays[missing[0]] = rebuilt
        return [arrays[i].tobytes() for i in range(self.total_strips)]


class Raid6Codec:
    """P + Q codec over ``data_strips`` data strips + 2 parity strips.

    P is the XOR of the data strips; Q is
    ``sum_i g^i * D_i`` with ``g`` the field generator.  Any two missing
    strips (data and/or parity) are recoverable.
    """

    def __init__(self, data_strips: int) -> None:
        if data_strips < 2:
            raise CodecError("RAID 6 needs at least 2 data strips")
        if data_strips > 255:
            raise CodecError("RAID 6 over GF(256) supports at most 255 data strips")
        self._k = data_strips

    @property
    def data_strips(self) -> int:
        return self._k

    @property
    def total_strips(self) -> int:
        return self._k + 2

    @property
    def fault_tolerance(self) -> int:
        return 2

    def encode(self, data: Sequence[Block]) -> List[bytes]:
        """Data strips followed by P then Q."""
        arrays = _as_arrays(data, self._k)
        p = np.zeros_like(arrays[0])
        q = np.zeros_like(arrays[0])
        for i, a in enumerate(arrays):
            p ^= a
            gf256.addmul_array(q, gf256.exp(i), a)
        return [a.tobytes() for a in arrays] + [p.tobytes(), q.tobytes()]

    def update_parity(
        self,
        p_strip: Block,
        q_strip: Block,
        data_index: int,
        old_block: Block,
        new_block: Block,
    ) -> Tuple[bytes, bytes]:
        """Read-modify-write for P + Q: ``P' = P ^ delta`` and
        ``Q' = Q ^ g^i * delta`` with ``delta = old ^ new``."""
        if not 0 <= data_index < self._k:
            raise CodecError(f"data index {data_index} out of range")
        arrays = _as_arrays([p_strip, q_strip, old_block, new_block], 4)
        delta = arrays[2] ^ arrays[3]
        new_p = arrays[0] ^ delta
        new_q = arrays[1] ^ gf256.mul_array(gf256.exp(data_index), delta)
        return new_p.tobytes(), new_q.tobytes()

    def reconstruct(self, strips: Dict[int, Block]) -> List[bytes]:
        """Recover the full stripe from all-but-two strips.

        Handles every failure combination: one or two data strips, P, Q,
        data+P, data+Q, P+Q.
        """
        k = self._k
        p_idx, q_idx = k, k + 1
        missing = [i for i in range(self.total_strips) if i not in strips]
        if len(missing) > 2:
            raise CodecError(f"RAID 6 cannot recover {len(missing)} missing strips")
        arrays = {
            i: (
                np.asarray(b, dtype=np.uint8).copy()
                if isinstance(b, np.ndarray)
                else np.frombuffer(bytes(b), dtype=np.uint8).copy()
            )
            for i, b in strips.items()
        }
        length = len(next(iter(arrays.values())))

        missing_data = [i for i in missing if i < k]
        p_missing = p_idx in missing
        q_missing = q_idx in missing

        if len(missing_data) == 2:
            # Classic two-data-erasure recovery from P and Q.
            x, y = missing_data
            p_partial = arrays[p_idx].copy()
            q_partial = arrays[q_idx].copy()
            for i in range(k):
                if i in (x, y):
                    continue
                p_partial ^= arrays[i]
                gf256.addmul_array(q_partial, gf256.exp(i), arrays[i])
            # Solve: Dx ^ Dy = p_partial;  g^x Dx ^ g^y Dy = q_partial.
            gx, gy = gf256.exp(x), gf256.exp(y)
            denom = gf256.add(gx, gy)
            coeff = gf256.inv(denom)
            # Dx = coeff * (q_partial ^ gy * p_partial)
            dx = gf256.mul_array(
                coeff, q_partial ^ gf256.mul_array(gy, p_partial)
            )
            dy = p_partial ^ dx
            arrays[x], arrays[y] = dx, dy
        elif len(missing_data) == 1:
            x = missing_data[0]
            if not p_missing:
                # XOR recovery via P.
                rebuilt = arrays[p_idx].copy()
                for i in range(k):
                    if i != x:
                        rebuilt ^= arrays[i]
                arrays[x] = rebuilt
            elif not q_missing:
                # Recover via Q: g^x Dx = Q ^ sum_{i != x} g^i Di.
                q_partial = arrays[q_idx].copy()
                for i in range(k):
                    if i != x:
                        gf256.addmul_array(q_partial, gf256.exp(i), arrays[i])
                arrays[x] = gf256.mul_array(gf256.inv(gf256.exp(x)), q_partial)
            else:  # pragma: no cover - excluded by len(missing) <= 2
                raise CodecError("data strip plus both parities missing")

        # Regenerate any missing parity from the (now complete) data.
        if p_missing or q_missing or not missing_data:
            p = np.zeros(length, dtype=np.uint8)
            q = np.zeros(length, dtype=np.uint8)
            for i in range(k):
                p ^= arrays[i]
                gf256.addmul_array(q, gf256.exp(i), arrays[i])
            if p_missing:
                arrays[p_idx] = p
            if q_missing:
                arrays[q_idx] = q

        return [arrays[i].tobytes() for i in range(self.total_strips)]

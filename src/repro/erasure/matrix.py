"""Matrix algebra over GF(256).

Small dense matrices are all the codecs need: encoding matrices are
``(k + m) x k`` and decoding inverts a ``k x k`` submatrix.  Everything is
numpy ``uint8`` with explicit Gauss-Jordan elimination in the field.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import gf256
from .gf256 import FieldError

__all__ = [
    "identity",
    "vandermonde",
    "cauchy",
    "matmul",
    "matvec_blocks",
    "invert",
    "submatrix_rows",
]


def identity(k: int) -> np.ndarray:
    """k x k identity over GF(256)."""
    return np.eye(k, dtype=np.uint8)


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """Vandermonde matrix ``V[i, j] = (i+1)^j`` over GF(256).

    Using ``i + 1`` (not ``i``) keeps every row nonzero so any ``cols``
    rows chosen from a systematic extension remain invertible in the
    ranges used here (rows + cols <= 256).
    """
    if rows <= 0 or cols <= 0:
        raise FieldError("matrix dimensions must be positive")
    if rows + cols > gf256.GF_SIZE:
        raise FieldError("Vandermonde construction needs rows + cols <= 256")
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = gf256.pow_(i + 1, j)
    return out


def cauchy(rows: int, cols: int) -> np.ndarray:
    """Cauchy matrix ``C[i, j] = 1 / (x_i + y_j)`` with disjoint x/y sets.

    Any square submatrix of a Cauchy matrix is invertible, which makes it
    a convenient alternative encoding matrix; exposed for completeness and
    for tests that the codecs are construction-agnostic.
    """
    if rows <= 0 or cols <= 0:
        raise FieldError("matrix dimensions must be positive")
    if rows + cols > gf256.GF_SIZE:
        raise FieldError("Cauchy construction needs rows + cols <= 256")
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = gf256.inv(gf256.add(i, rows + j))
    return out


def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(256)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape[1] != b.shape[0]:
        raise FieldError(f"shape mismatch: {a.shape} x {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        for j in range(b.shape[1]):
            acc = 0
            for l in range(a.shape[1]):
                acc ^= gf256.mul(int(a[i, l]), int(b[l, j]))
            out[i, j] = acc
    return out


def matvec_blocks(matrix: np.ndarray, blocks: Sequence[np.ndarray]) -> list:
    """Apply ``matrix`` to a vector of equal-length byte blocks.

    This is the encoder/decoder data path: each "element" of the vector is
    a whole block of bytes, and scalar multiplication acts byte-wise.

    Args:
        matrix: (rows x k) uint8 coefficients.
        blocks: k byte blocks, all the same length.

    Returns:
        List of ``rows`` output blocks.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.shape[1] != len(blocks):
        raise FieldError(
            f"matrix expects {matrix.shape[1]} blocks, got {len(blocks)}"
        )
    if not blocks:
        raise FieldError("need at least one block")
    length = len(blocks[0])
    arrays = []
    for b in blocks:
        arr = np.frombuffer(bytes(b), dtype=np.uint8) if not isinstance(b, np.ndarray) else b
        if len(arr) != length:
            raise FieldError("all blocks must have equal length")
        arrays.append(np.asarray(arr, dtype=np.uint8))
    out = []
    for i in range(matrix.shape[0]):
        acc = np.zeros(length, dtype=np.uint8)
        for j in range(matrix.shape[1]):
            coeff = int(matrix[i, j])
            if coeff:
                gf256.addmul_array(acc, coeff, arrays[j])
        out.append(acc)
    return out


def invert(matrix: np.ndarray) -> np.ndarray:
    """Inverse of a square matrix over GF(256) by Gauss-Jordan elimination.

    Raises:
        FieldError: if the matrix is singular.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise FieldError("inversion needs a square matrix")
    k = matrix.shape[0]
    work = matrix.astype(np.uint8).copy()
    inverse = identity(k)
    for col in range(k):
        # Find a pivot.
        pivot = None
        for row in range(col, k):
            if work[row, col] != 0:
                pivot = row
                break
        if pivot is None:
            raise FieldError("singular matrix over GF(256)")
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inverse[[col, pivot]] = inverse[[pivot, col]]
        # Normalize the pivot row.
        scale = gf256.inv(int(work[col, col]))
        work[col] = gf256.mul_array(scale, work[col])
        inverse[col] = gf256.mul_array(scale, inverse[col])
        # Eliminate the column everywhere else.
        for row in range(k):
            if row != col and work[row, col] != 0:
                factor = int(work[row, col])
                work[row] ^= gf256.mul_array(factor, work[col])
                inverse[row] ^= gf256.mul_array(factor, inverse[col])
    return inverse


def submatrix_rows(matrix: np.ndarray, rows: Sequence[int]) -> np.ndarray:
    """Select rows (with validation) — used to build decode matrices."""
    matrix = np.asarray(matrix, dtype=np.uint8)
    for r in rows:
        if not 0 <= r < matrix.shape[0]:
            raise FieldError(f"row index {r} out of range")
    return matrix[list(rows)].copy()

"""Systematic Reed-Solomon erasure coding over GF(256).

This is the "erasure code between nodes" of the paper's Section 3: an MDS
code storing ``k`` data blocks plus ``m`` parity blocks across ``k + m``
nodes, tolerating any ``m`` erasures.  The paper's three cross-node
schemes are ``m = 1, 2, 3``.

Two encoding-matrix constructions are provided:

* ``"vandermonde"`` (default) — an ``n x k`` Vandermonde matrix
  right-multiplied by the inverse of its top ``k x k`` block, giving a
  systematic matrix any ``k`` rows of which are invertible;
* ``"cauchy"`` — identity stacked on a Cauchy matrix, MDS because every
  minor of a Cauchy matrix is nonsingular.

The data path works on equal-length byte blocks (``bytes`` or uint8
arrays); reconstruction takes any ``k`` surviving blocks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from . import matrix as gfmat
from .gf256 import FieldError

__all__ = ["ReedSolomonCodec", "CodecError"]

Block = Union[bytes, bytearray, np.ndarray]


class CodecError(ValueError):
    """Raised on invalid codec configuration or unrecoverable erasures."""


class ReedSolomonCodec:
    """Systematic MDS erasure codec with ``k`` data and ``m`` parity blocks.

    Args:
        data_blocks: k >= 1.
        parity_blocks: m >= 1 (the fault tolerance).
        construction: ``"vandermonde"`` or ``"cauchy"``.

    Example:
        >>> codec = ReedSolomonCodec(data_blocks=4, parity_blocks=2)
        >>> shards = codec.encode([b"abcd", b"efgh", b"ijkl", b"mnop"])
        >>> len(shards)
        6
        >>> survivors = {i: s for i, s in enumerate(shards) if i not in (1, 4)}
        >>> codec.decode_data(survivors)[1]
        b'efgh'
    """

    def __init__(
        self,
        data_blocks: int,
        parity_blocks: int,
        construction: str = "vandermonde",
    ) -> None:
        if data_blocks < 1:
            raise CodecError("need at least one data block")
        if parity_blocks < 1:
            raise CodecError("need at least one parity block")
        if data_blocks + parity_blocks > 255:
            raise CodecError("GF(256) supports at most 255 total blocks")
        self._k = data_blocks
        self._m = parity_blocks
        self._construction = construction
        self._matrix = self._build_matrix(construction)

    def _build_matrix(self, construction: str) -> np.ndarray:
        n, k = self._k + self._m, self._k
        if construction == "vandermonde":
            v = gfmat.vandermonde(n, k)
            top_inv = gfmat.invert(v[:k])
            return gfmat.matmul(v, top_inv)
        if construction == "cauchy":
            return np.vstack([gfmat.identity(k), gfmat.cauchy(self._m, k)])
        raise CodecError(f"unknown construction {construction!r}")

    # ------------------------------------------------------------------ #

    @property
    def data_blocks(self) -> int:
        return self._k

    @property
    def parity_blocks(self) -> int:
        """The code's fault tolerance (erasures survivable)."""
        return self._m

    @property
    def fault_tolerance(self) -> int:
        """Alias of :attr:`parity_blocks` (the common codec interface)."""
        return self._m

    @property
    def total_blocks(self) -> int:
        return self._k + self._m

    @property
    def encoding_matrix(self) -> np.ndarray:
        """The (k+m) x k systematic encoding matrix (copy)."""
        return self._matrix.copy()

    # ------------------------------------------------------------------ #

    def encode(self, data: Sequence[Block]) -> List[bytes]:
        """Encode ``k`` equal-length data blocks into ``k + m`` shards.

        The first ``k`` shards are the data verbatim (systematic code).
        """
        blocks = self._as_arrays(data, expected=self._k)
        parity_rows = self._matrix[self._k :]
        parity = gfmat.matvec_blocks(parity_rows, blocks)
        return [b.tobytes() for b in blocks] + [p.tobytes() for p in parity]

    def decode_data(self, shards: Dict[int, Block]) -> List[bytes]:
        """Recover the ``k`` data blocks from any ``k`` surviving shards.

        Args:
            shards: mapping of shard index (0-based over all k+m) to its
                bytes.  Extra shards beyond k are allowed and the k
                lowest-indexed are used.

        Raises:
            CodecError: if fewer than ``k`` shards survive, or indices are
                invalid.
        """
        if len(shards) < self._k:
            raise CodecError(
                f"unrecoverable: {len(shards)} shards < k = {self._k}"
            )
        indices = sorted(shards)
        for i in indices:
            if not 0 <= i < self.total_blocks:
                raise CodecError(f"shard index {i} out of range")
        use = indices[: self._k]
        blocks = self._as_arrays([shards[i] for i in use], expected=self._k)
        decode_matrix = gfmat.invert(gfmat.submatrix_rows(self._matrix, use))
        data = gfmat.matvec_blocks(decode_matrix, blocks)
        return [d.tobytes() for d in data]

    def reconstruct(self, shards: Dict[int, Block]) -> List[bytes]:
        """Recover *all* ``k + m`` shards from any ``k`` survivors."""
        data = self.decode_data(shards)
        return self.encode(data)

    def reconstruct_shard(self, shards: Dict[int, Block], index: int) -> bytes:
        """Recover a single missing shard (what a node rebuild does)."""
        if not 0 <= index < self.total_blocks:
            raise CodecError(f"shard index {index} out of range")
        if index in shards:
            block = shards[index]
            return bytes(block.tobytes() if isinstance(block, np.ndarray) else block)
        return self.reconstruct(shards)[index]

    def update_parity(
        self,
        parity: Sequence[Block],
        data_index: int,
        old_block: Block,
        new_block: Block,
    ) -> List[bytes]:
        """Incrementally update the parity shards for one changed data block.

        A small write to a wide stripe should not re-read the whole
        stripe: because the code is linear, each parity shard changes by
        ``coeff * (old XOR new)``.  This is the read-modify-write path a
        real storage engine uses.

        Args:
            parity: the current m parity shards.
            data_index: which data block changed (0-based).
            old_block: previous contents of that block.
            new_block: new contents (same length).

        Returns:
            The m updated parity shards.
        """
        if not 0 <= data_index < self._k:
            raise CodecError(f"data index {data_index} out of range")
        if len(parity) != self._m:
            raise CodecError(f"expected {self._m} parity shards, got {len(parity)}")
        old, new = self._as_arrays([old_block, new_block], expected=2)
        delta = old ^ new
        updated = []
        for j, p in enumerate(parity):
            arr = (
                np.asarray(p, dtype=np.uint8).copy()
                if isinstance(p, np.ndarray)
                else np.frombuffer(bytes(p), dtype=np.uint8).copy()
            )
            if len(arr) != len(delta):
                raise CodecError("parity/data block length mismatch")
            coeff = int(self._matrix[self._k + j, data_index])
            if coeff:
                arr ^= gfmat.matvec_blocks(
                    np.array([[coeff]], dtype=np.uint8), [delta]
                )[0]
            updated.append(arr.tobytes())
        return updated

    def verify(self, shards: Sequence[Block]) -> bool:
        """Check that a full shard set is consistent with the code."""
        if len(shards) != self.total_blocks:
            raise CodecError(
                f"verify needs all {self.total_blocks} shards, got {len(shards)}"
            )
        data = shards[: self._k]
        return self.encode(data) == [
            bytes(s.tobytes() if isinstance(s, np.ndarray) else s) for s in shards
        ]

    # ------------------------------------------------------------------ #

    @staticmethod
    def _as_arrays(blocks: Sequence[Block], expected: int) -> List[np.ndarray]:
        if len(blocks) != expected:
            raise CodecError(f"expected {expected} blocks, got {len(blocks)}")
        arrays = []
        length: Optional[int] = None
        for b in blocks:
            arr = (
                np.asarray(b, dtype=np.uint8)
                if isinstance(b, np.ndarray)
                else np.frombuffer(bytes(b), dtype=np.uint8)
            )
            if length is None:
                length = len(arr)
                if length == 0:
                    raise CodecError("blocks must be non-empty")
            elif len(arr) != length:
                raise CodecError("all blocks must have equal length")
            arrays.append(arr)
        return arrays

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ReedSolomonCodec(k={self._k}, m={self._m}, "
            f"construction={self._construction!r})"
        )

"""Erasure-coding substrate.

GF(256) arithmetic, field matrix algebra, a systematic Reed-Solomon codec
(the paper's cross-node erasure codes with fault tolerance 1-3), and
byte-level RAID 5 / RAID 6 codecs (the paper's node-internal redundancy).
"""

from . import gf256
from .codec import ErasureCodec, codec_for, internal_codec_for
from .gf256 import FieldError
from .matrix import cauchy, identity, invert, matmul, matvec_blocks, vandermonde
from .raid import Raid5Codec, Raid6Codec
from .reed_solomon import CodecError, ReedSolomonCodec

__all__ = [
    "CodecError",
    "ErasureCodec",
    "FieldError",
    "codec_for",
    "internal_codec_for",
    "Raid5Codec",
    "Raid6Codec",
    "ReedSolomonCodec",
    "cauchy",
    "gf256",
    "identity",
    "invert",
    "matmul",
    "matvec_blocks",
    "vandermonde",
]

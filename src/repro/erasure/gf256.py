"""Arithmetic in GF(2^8).

The Galois field underlying the Reed-Solomon codes used for cross-node
redundancy and for RAID 6's Q parity.  We use the standard polynomial
representation modulo ``x^8 + x^4 + x^3 + x^2 + 1`` (0x11D), the same
primitive polynomial as most storage erasure-code implementations, with
generator element 2.

Log/antilog tables are precomputed once at import; all operations are
available both element-wise (ints) and vectorized over numpy ``uint8``
arrays, which the codecs use for data-path operations.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = [
    "GF_SIZE",
    "PRIMITIVE_POLY",
    "GENERATOR",
    "add",
    "sub",
    "mul",
    "div",
    "inv",
    "pow_",
    "exp",
    "log",
    "mul_array",
    "addmul_array",
    "FieldError",
]

GF_SIZE = 256
PRIMITIVE_POLY = 0x11D
GENERATOR = 2


class FieldError(ValueError):
    """Raised on invalid field operations (division by zero, bad element)."""


def _build_tables() -> tuple:
    exp_table = np.zeros(512, dtype=np.uint8)
    log_table = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp_table[i] = x
        log_table[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    # Duplicate so exp lookups never need an explicit mod 255.
    exp_table[255:510] = exp_table[0:255]
    log_table[0] = -1  # log(0) is undefined; sentinel for fast checks
    return exp_table, log_table


_EXP, _LOG = _build_tables()


def _check(a: int) -> int:
    if not 0 <= a < GF_SIZE:
        raise FieldError(f"element out of range [0, 255]: {a}")
    return a


def add(a: int, b: int) -> int:
    """Field addition (XOR)."""
    return _check(a) ^ _check(b)


def sub(a: int, b: int) -> int:
    """Field subtraction — identical to addition in characteristic 2."""
    return add(a, b)


def mul(a: int, b: int) -> int:
    """Field multiplication via log/antilog tables."""
    _check(a), _check(b)
    if a == 0 or b == 0:
        return 0
    return int(_EXP[_LOG[a] + _LOG[b]])


def div(a: int, b: int) -> int:
    """Field division; raises :class:`FieldError` on division by zero."""
    _check(a), _check(b)
    if b == 0:
        raise FieldError("division by zero in GF(256)")
    if a == 0:
        return 0
    return int(_EXP[(_LOG[a] - _LOG[b]) % 255])


def inv(a: int) -> int:
    """Multiplicative inverse; raises on zero."""
    _check(a)
    if a == 0:
        raise FieldError("zero has no inverse in GF(256)")
    return int(_EXP[255 - _LOG[a]])


def pow_(a: int, n: int) -> int:
    """``a ** n`` in the field (n may be any integer for nonzero a)."""
    _check(a)
    if a == 0:
        if n == 0:
            return 1
        if n < 0:
            raise FieldError("zero has no inverse in GF(256)")
        return 0
    return int(_EXP[(_LOG[a] * n) % 255])


def exp(n: int) -> int:
    """The generator raised to ``n`` (antilog)."""
    return int(_EXP[n % 255])


def log(a: int) -> int:
    """Discrete log base the generator; raises on zero."""
    _check(a)
    if a == 0:
        raise FieldError("log(0) is undefined")
    return int(_LOG[a])


def mul_array(scalar: int, data: np.ndarray) -> np.ndarray:
    """Multiply every byte of ``data`` by ``scalar`` (vectorized).

    Args:
        scalar: field element.
        data: uint8 array.

    Returns:
        New uint8 array of the same shape.
    """
    _check(scalar)
    data = np.asarray(data, dtype=np.uint8)
    if scalar == 0:
        return np.zeros_like(data)
    if scalar == 1:
        return data.copy()
    log_s = int(_LOG[scalar])
    nz = data != 0
    out = np.zeros_like(data)
    out[nz] = _EXP[_LOG[data[nz]] + log_s]
    return out


def addmul_array(accumulator: np.ndarray, scalar: int, data: np.ndarray) -> None:
    """In-place ``accumulator ^= scalar * data`` (the codec inner loop)."""
    if accumulator.shape != np.shape(data):
        raise FieldError("accumulator/data shape mismatch")
    accumulator ^= mul_array(scalar, data)

"""The pre-spec imperative chain builders, kept as equivalence oracles.

Every chain family is built from its declarative
:class:`~repro.core.spec.ModelSpec` (see :mod:`repro.models.specs`); the
original hand-written builders below are retained solely so the test
suite can assert generator-for-generator equality between the two
constructions.  They are not part of the supported modeling API — new
code should go through :class:`~repro.models.configurations.Configuration`
or the spec layer.

Importing them from their defining modules
(``repro.models.no_raid`` etc.) still works, but this module is their
documented home.
"""

from .internal_raid import legacy_build_internal_raid_chain
from .no_raid import (
    legacy_build_no_raid_chain_ft1,
    legacy_build_no_raid_chain_ft2,
    legacy_build_no_raid_chain_ft3,
)
from .raid import legacy_build_raid5_chain, legacy_build_raid6_chain
from .recursive import legacy_build_recursive_chain

__all__ = [
    "legacy_build_internal_raid_chain",
    "legacy_build_no_raid_chain_ft1",
    "legacy_build_no_raid_chain_ft2",
    "legacy_build_no_raid_chain_ft3",
    "legacy_build_raid5_chain",
    "legacy_build_raid6_chain",
    "legacy_build_recursive_chain",
]

"""Failure-detection latency extension (beyond the paper).

The paper's chains start the rebuild the instant a node fails.  In a
real distributed system there is a detection window — missed heartbeats,
suspicion timeouts, rebuild scheduling — during which the system is
degraded but *nothing is being repaired*.  This module adds that window
to the internal-RAID node-level chain: every degraded level splits into
an *undetected* sub-state (no repair edge, left at rate ``delta`` =
1/detection time) and a *repairing* sub-state (the paper's state).

States: ``(j, "u")`` — j nodes down, latest failure not yet detected;
``(j, "r")`` — j nodes down, rebuild running.  Failures keep arriving in
both; loss still requires ``t + 1`` concurrent failures (or the critical
sector-error term, active in either critical sub-state).
"""

from __future__ import annotations

from typing import Optional

from ..core import CTMC, ChainBuilder
from .critical_sets import critical_fraction
from .internal_raid import InternalRaidNodeModel
from .parameters import Parameters
from .raid import InternalRaid

__all__ = ["build_detection_chain", "DetectionLatencyModel"]

LOSS = "loss"


def build_detection_chain(
    fault_tolerance: int,
    n: int,
    node_failure_rate: float,
    array_failure_rate: float,
    restripe_sector_loss_rate: float,
    node_rebuild_rate: float,
    critical_sector_fraction: float,
    detection_rate: float,
) -> CTMC:
    """The Figure 5/6/7 chain with an explicit detection stage.

    Args:
        detection_rate: ``delta`` = 1 / mean detection latency (per hour).
            As ``delta -> inf`` the chain converges to the paper's.

    Other arguments as in
    :func:`repro.models.internal_raid.build_internal_raid_chain`.
    """
    if fault_tolerance < 1:
        raise ValueError("fault_tolerance must be >= 1")
    if n <= fault_tolerance:
        raise ValueError("node set must be larger than the fault tolerance")
    if detection_rate <= 0:
        raise ValueError("detection rate must be positive")
    lam = node_failure_rate + array_failure_rate
    t = fault_tolerance
    builder = ChainBuilder().add_state((0, "r"))  # zero-down; tag irrelevant

    # Failure arrivals from every state; detection converts u -> r; repair
    # only from r states.
    for j in range(t + 1):
        arrivals = (n - j) * lam
        if j < t:
            sources = [(j, "r")] if j == 0 else [(j, "u"), (j, "r")]
            for source in sources:
                builder.add_rate(source, (j + 1, "u"), arrivals)
        else:
            # Critical level: one more failure (or critical sector error)
            # loses data, from either sub-state.
            final = lam + critical_sector_fraction * restripe_sector_loss_rate
            for tag in ("u", "r"):
                builder.add_rate((j, tag), LOSS, (n - j) * final)
        if j >= 1:
            builder.add_rate((j, "u"), (j, "r"), detection_rate)
            target = (0, "r") if j == 1 else (j - 1, "r")
            builder.add_rate((j, "r"), target, node_rebuild_rate)
    return builder.build(initial_state=(0, "r"))


class DetectionLatencyModel:
    """Internal-RAID reliability with non-zero failure-detection latency.

    Args:
        params: system parameters.
        raid_level: internal RAID 5 or 6.
        fault_tolerance: cross-node tolerance.
        detection_hours: mean time from failure to rebuild start.
    """

    def __init__(
        self,
        params: Parameters,
        raid_level: InternalRaid,
        fault_tolerance: int,
        detection_hours: float,
    ) -> None:
        if detection_hours <= 0:
            raise ValueError("detection_hours must be positive")
        self._inner = InternalRaidNodeModel(params, raid_level, fault_tolerance)
        self._params = params
        self._t = fault_tolerance
        self._detection_rate = 1.0 / detection_hours

    @property
    def detection_hours(self) -> float:
        return 1.0 / self._detection_rate

    def chain(self) -> CTMC:
        rates = self._inner.array_rates
        return build_detection_chain(
            self._t,
            self._params.node_set_size,
            self._params.node_failure_rate,
            rates.array_failure_rate,
            rates.restripe_sector_loss_rate,
            self._inner.node_rebuild_rate,
            self._inner.critical_sector_fraction,
            self._detection_rate,
        )

    def mttdl_exact(self) -> float:
        """MTTDL in hours."""
        return self.chain().mean_time_to_absorption()

    def mttdl_penalty(self) -> float:
        """Ratio of the zero-latency (paper) MTTDL to this model's —
        how much the detection window costs."""
        return self._inner.mttdl_exact() / self.mttdl_exact()

"""Disk-scrubbing extension (beyond the paper).

The paper folds all uncorrectable reads into a single rate "HER, hard
errors per bits read".  Part of that rate comes from *latent* sector
errors — corruption that sits undetected until something reads the
sector.  Periodic scrubbing (background verify of every sector) bounds
the age of latent errors and therefore the chance a rebuild trips over
one; related work the paper cites (Xin et al.) relies on exactly this
effect.

Model: latent errors arrive per sector at rate ``latent_rate`` and are
removed by a scrub sweep every ``scrub_interval_hours``; in steady state
a random instant sits ``interval / 2`` hours after the last sweep on
average, so the expected density of standing latent errors is
``latent_rate * interval / 2`` per sector.  A rebuild that reads a
sector then sees the transient (media/read-channel) error probability
plus the standing latent density:

    HER_effective = HER_transient + latent_rate * scrub_interval / 2
                    (converted to a per-bit-read equivalent)

With ``scrub_interval -> 0`` only transient errors remain; with no
scrubbing the interval is the system's operational life so far.
"""

from __future__ import annotations

from dataclasses import dataclass

from .parameters import Parameters

__all__ = ["ScrubbingModel", "SECTOR_BYTES"]

SECTOR_BYTES = 512


@dataclass(frozen=True)
class ScrubbingModel:
    """Effective hard-error rate under periodic scrubbing.

    Attributes:
        transient_fraction: share of the paper's baseline HER that is
            transient (re-read/media noise, unaffected by scrubbing); the
            remainder is attributed to standing latent errors under the
            paper's implicit "no scrubbing over the exposure window"
            assumption.
        latent_error_rate_per_sector_hour: arrival rate of latent sector
            errors.  The default is calibrated so that *without* scrubbing
            (exposure = ``calibration_exposure_hours``) the latent part
            reproduces the paper's baseline HER.
        calibration_exposure_hours: the no-scrub exposure window used for
            that calibration (default: one year).
    """

    transient_fraction: float = 0.5
    calibration_exposure_hours: float = 8766.0
    _latent_override: float = -1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.transient_fraction <= 1.0:
            raise ValueError("transient_fraction must be in [0, 1]")
        if self.calibration_exposure_hours <= 0:
            raise ValueError("calibration exposure must be positive")

    # ------------------------------------------------------------------ #

    def latent_rate_per_sector_hour(self, params: Parameters) -> float:
        """Latent arrival rate calibrated to the baseline HER.

        Without scrubbing, standing density = rate x exposure / 2 must
        equal the latent share of the per-sector read-error probability:
        ``(1 - transient) * HER_bits * 8 * SECTOR_BYTES``.
        """
        if self._latent_override >= 0:
            return self._latent_override
        latent_per_sector_read = (
            (1.0 - self.transient_fraction)
            * params.hard_error_rate_per_bit
            * 8
            * SECTOR_BYTES
        )
        return 2.0 * latent_per_sector_read / self.calibration_exposure_hours

    def effective_her_per_bit(
        self, params: Parameters, scrub_interval_hours: float
    ) -> float:
        """Effective per-bit hard-error rate at a scrub cadence.

        Args:
            params: baseline parameters (supplies the uncalibrated HER).
            scrub_interval_hours: time between scrub sweeps of a given
                sector; pass ``float("inf")``-like large values for
                "never" (capped at the calibration exposure).
        """
        if scrub_interval_hours < 0:
            raise ValueError("scrub interval must be non-negative")
        interval = min(scrub_interval_hours, self.calibration_exposure_hours)
        transient = self.transient_fraction * params.hard_error_rate_per_bit
        standing_per_sector = (
            self.latent_rate_per_sector_hour(params) * interval / 2.0
        )
        latent = standing_per_sector / (8 * SECTOR_BYTES)
        return transient + latent

    def scrubbed_parameters(
        self, params: Parameters, scrub_interval_hours: float
    ) -> Parameters:
        """A parameter set whose HER reflects the scrub cadence —
        plug straight into any reliability model."""
        return params.replace(
            hard_error_rate_per_bit=self.effective_her_per_bit(
                params, scrub_interval_hours
            )
        )

    def scrub_bandwidth_fraction(
        self, params: Parameters, scrub_interval_hours: float
    ) -> float:
        """Fraction of a drive's sustained bandwidth one sweep consumes.

        The operational cost side of the trade-off: reading the full drive
        every ``interval`` at the sustained rate.
        """
        if scrub_interval_hours <= 0:
            raise ValueError("scrub interval must be positive")
        read_seconds = params.drive_capacity_bytes / params.drive_sustained_bps
        return read_seconds / (scrub_interval_hours * 3600.0)

"""The paper's closed-form MTTDL approximations, verbatim.

Every approximation printed in the paper is transcribed here as a plain
function of the basic rates, so they can be checked independently against
the numeric chain solves:

* RAID 5 / RAID 6 arrays (Section 4, also exposed via
  :mod:`repro.models.raid`),
* internal RAID x node fault tolerance 1/2/3 (Sections 4.2, 5.2.1),
* no internal RAID x node fault tolerance 1/2/3 (Section 4.3 and
  Figure 12) — with the paper's ``lambda_D`` typo corrected to
  ``lambda_d`` (see DESIGN.md), and
* the general Figure A1 formula re-exported from
  :mod:`repro.models.recursive`.
"""

from __future__ import annotations

from .recursive import mttdl_general_approx

__all__ = [
    "mttdl_internal_raid_nft1",
    "mttdl_internal_raid_nft2",
    "mttdl_internal_raid_nft3",
    "mttdl_no_raid_nft1",
    "mttdl_no_raid_nft2",
    "mttdl_no_raid_nft3",
    "mttdl_general_approx",
]


# --------------------------------------------------------------------- #
# internal RAID (Sections 4.2 / 5.2.1)
# --------------------------------------------------------------------- #


def mttdl_internal_raid_nft1(
    n: int,
    node_failure_rate: float,
    array_failure_rate: float,
    sector_loss_rate: float,
    node_rebuild_rate: float,
    exact: bool = False,
) -> float:
    """MTTDL for [internal RAID, node fault tolerance 1].

    With ``exact=True`` returns the paper's full expression
    ``(mu_N + (2N-1)(lam_N+lam_D) + (N-1)lam_S) /
    (N(N-1)(lam_N+lam_D)(lam_N+lam_D+lam_S))``; otherwise the leading-term
    approximation (drop the numerator's failure-rate terms).
    """
    _check_n(n, 1)
    lam = node_failure_rate + array_failure_rate
    lam_s = sector_loss_rate
    mu = node_rebuild_rate
    denominator = n * (n - 1) * lam * (lam + lam_s)
    if exact:
        return (mu + (2 * n - 1) * lam + (n - 1) * lam_s) / denominator
    return mu / denominator


def mttdl_internal_raid_nft2(
    n: int,
    node_failure_rate: float,
    array_failure_rate: float,
    sector_loss_rate: float,
    node_rebuild_rate: float,
    k2: float,
) -> float:
    """MTTDL for [internal RAID, node fault tolerance 2]:

    ``mu_N^2 / (N(N-1)(N-2)(lam_N+lam_D)^2 (lam_N+lam_D+k2 lam_S))``.
    """
    _check_n(n, 2)
    lam = node_failure_rate + array_failure_rate
    mu = node_rebuild_rate
    return mu**2 / (
        n * (n - 1) * (n - 2) * lam**2 * (lam + k2 * sector_loss_rate)
    )


def mttdl_internal_raid_nft3(
    n: int,
    node_failure_rate: float,
    array_failure_rate: float,
    sector_loss_rate: float,
    node_rebuild_rate: float,
    k3: float,
) -> float:
    """MTTDL for [internal RAID, node fault tolerance 3]:

    ``mu_N^3 / (N(N-1)(N-2)(N-3)(lam_N+lam_D)^3 (lam_N+lam_D+k3 lam_S))``.
    """
    _check_n(n, 3)
    lam = node_failure_rate + array_failure_rate
    mu = node_rebuild_rate
    return mu**3 / (
        n * (n - 1) * (n - 2) * (n - 3) * lam**3 * (lam + k3 * sector_loss_rate)
    )


# --------------------------------------------------------------------- #
# no internal RAID (Section 4.3 and Figure 12)
# --------------------------------------------------------------------- #


def mttdl_no_raid_nft1(
    n: int,
    d: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    h: float,
) -> float:
    """MTTDL for [no internal RAID, node fault tolerance 1]:

    ``mu_d mu_N / (N(N-1)(lam_N + d lam_d)(mu_d lam_N + d mu_N lam_d)
    + N d h mu_d mu_N (lam_d + lam_N))``

    where ``h = (R-1) C HER`` is the per-drive hard-error probability.
    """
    _check_n(n, 1)
    lam_n, lam_d = node_failure_rate, drive_failure_rate
    mu_n, mu_d = node_rebuild_rate, drive_rebuild_rate
    denominator = n * (n - 1) * (lam_n + d * lam_d) * (
        mu_d * lam_n + d * mu_n * lam_d
    ) + n * d * h * mu_d * mu_n * (lam_d + lam_n)
    return mu_d * mu_n / denominator


def mttdl_no_raid_nft2(
    n: int,
    d: int,
    r: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    hard_error_per_drive_read: float,
) -> float:
    """MTTDL for [no internal RAID, node fault tolerance 2] (Figure 12):

    ``mu_d^2 mu_N^2 / (N(N-1)(N-2)(lam_N + d lam_d)(mu_d lam_N + d mu_N lam_d)^2
    + N(R-1)(R-2) C HER d mu_d mu_N (lam_d + lam_N)(mu_d lam_N + mu_N lam_d))``.
    """
    _check_n(n, 2)
    lam_n, lam_d = node_failure_rate, drive_failure_rate
    mu_n, mu_d = node_rebuild_rate, drive_rebuild_rate
    che = hard_error_per_drive_read
    term1 = (
        n
        * (n - 1)
        * (n - 2)
        * (lam_n + d * lam_d)
        * (mu_d * lam_n + d * mu_n * lam_d) ** 2
    )
    term2 = (
        n
        * (r - 1)
        * (r - 2)
        * che
        * d
        * mu_d
        * mu_n
        * (lam_d + lam_n)
        * (mu_d * lam_n + mu_n * lam_d)
    )
    return (mu_d**2 * mu_n**2) / (term1 + term2)


def mttdl_no_raid_nft3(
    n: int,
    d: int,
    r: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    hard_error_per_drive_read: float,
) -> float:
    """MTTDL for [no internal RAID, node fault tolerance 3] (Figure 12):

    ``mu_d^3 mu_N^3 / (N(N-1)(N-2)(N-3)(lam_N + d lam_d)(mu_d lam_N + d mu_N lam_d)^3
    + N(R-1)(R-2)(R-3) C HER d mu_d mu_N (lam_d + lam_N)(mu_d lam_N + mu_N lam_d)^2)``.

    The second term is the appendix theorem's ``N(N-1)(N-2) mu_N mu_d
    L_3(h^(3))`` after substituting the Section 5.2.2 h-values.
    """
    _check_n(n, 3)
    lam_n, lam_d = node_failure_rate, drive_failure_rate
    mu_n, mu_d = node_rebuild_rate, drive_rebuild_rate
    che = hard_error_per_drive_read
    term1 = (
        n
        * (n - 1)
        * (n - 2)
        * (n - 3)
        * (lam_n + d * lam_d)
        * (mu_d * lam_n + d * mu_n * lam_d) ** 3
    )
    term2 = (
        n
        * (r - 1)
        * (r - 2)
        * (r - 3)
        * che
        * d
        * mu_d
        * mu_n
        * (lam_d + lam_n)
        * (mu_d * lam_n + mu_n * lam_d) ** 2
    )
    return (mu_d**3 * mu_n**3) / (term1 + term2)


def _check_n(n: int, fault_tolerance: int) -> None:
    if n <= fault_tolerance:
        raise ValueError("node set must be larger than the fault tolerance")

"""Monolithic-array comparator (the introduction's 'big iron' baseline).

The paper motivates brick storage against traditional monolithic systems:
dual controllers, redundant paths, serviced hardware.  To make that
comparison quantitative, this module models a monolithic system the way
its vendors do: a pool of independent RAID-6 groups on enterprise drives
with hot-spare rebuilds (drives are *replaced*, not failed-in-place) and
no single point of failure above the arrays (controller failures cause
downtime, not data loss, and are excluded from the loss metric like
switch/link failures are in the paper's brick model).

The brick system trades per-array robustness for cross-node redundancy;
the comparison in events/PB-year at equal logical capacity is the fair
scoreboard, and :mod:`examples.quickstart`'s FT2+RAID5 configuration is
the natural opponent.
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import ReliabilityResult
from .parameters import GB, HOURS_PER_YEAR, MB, Parameters
from .raid import build_raid6_chain

__all__ = ["MonolithicSystem"]


@dataclass(frozen=True)
class MonolithicSystem:
    """A monolithic enterprise array: independent RAID-6 groups + spares.

    Attributes:
        array_groups: number of RAID-6 groups in the frame.
        drives_per_group: group width (data + 2 parity).
        drive_mttf_hours: enterprise-class drive MTTF.
        drive_capacity_bytes: per-drive capacity.
        hard_error_rate_per_bit: uncorrectable read error rate.
        rebuild_hours: hot-spare rebuild time (dedicated spare, full
            sequential bandwidth — typically hours, not the brick model's
            re-stripe).
        capacity_utilization: user data over raw group capacity (parity
            overhead is accounted separately by the group geometry).
    """

    array_groups: int = 96
    drives_per_group: int = 14
    drive_mttf_hours: float = 1_000_000.0  # enterprise FC/SAS class
    drive_capacity_bytes: float = 300 * GB
    hard_error_rate_per_bit: float = 1e-15  # enterprise media
    rebuild_hours: float = 8.0
    capacity_utilization: float = 1.0

    def __post_init__(self) -> None:
        if self.array_groups < 1:
            raise ValueError("need at least one array group")
        if self.drives_per_group < 4:
            raise ValueError("RAID 6 groups need at least 4 drives")
        if self.rebuild_hours <= 0:
            raise ValueError("rebuild_hours must be positive")

    # ------------------------------------------------------------------ #

    @property
    def hard_error_per_drive_read(self) -> float:
        return self.drive_capacity_bytes * 8 * self.hard_error_rate_per_bit

    @property
    def logical_bytes(self) -> float:
        data_drives = self.drives_per_group - 2
        return (
            self.array_groups
            * data_drives
            * self.drive_capacity_bytes
            * self.capacity_utilization
        )

    @property
    def logical_pb(self) -> float:
        return self.logical_bytes / 1e15

    def group_mttdl_hours(self) -> float:
        """MTTDL of one RAID-6 group (Figure 4 chain with hot-spare
        rebuild rather than re-stripe)."""
        chain = build_raid6_chain(
            self.drives_per_group,
            1.0 / self.drive_mttf_hours,
            1.0 / self.rebuild_hours,
            (self.drives_per_group - 2) * self.hard_error_per_drive_read,
        )
        return chain.mean_time_to_absorption()

    def system_mttdl_hours(self) -> float:
        """Independent groups: the system loses data when any group does,
        so the system rate is the sum of group rates."""
        return self.group_mttdl_hours() / self.array_groups

    def events_per_pb_year(self) -> float:
        return HOURS_PER_YEAR / self.system_mttdl_hours() / self.logical_pb

    def reliability(self) -> ReliabilityResult:
        """In the same representation as the brick configurations (note:
        normalized by *this* system's logical capacity)."""
        return ReliabilityResult(
            mttdl_hours=self.system_mttdl_hours(),
            events_per_pb_year=self.events_per_pb_year(),
        )

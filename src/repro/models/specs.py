"""Spec forms of the paper's chain families (Figures 1-10 + appendix).

This module is the declarative layer of the compile--bind--solve
pipeline: each of the nine configuration families is expressed once as a
:class:`~repro.core.spec.ModelSpec` whose edge rates are symbolic
expressions over the paper's parameters (``lambda_N``, ``lambda_d``,
``mu_N``, ``mu_d``, the ``h``-with-subscript probabilities, ``k_t``,
...), and the companion ``*_env`` functions turn the legacy builder
arguments into binding environments — scalars for a single chain, numpy
arrays for a whole lattice in one :meth:`CompiledChain.bind_batch` pass.

Bit-exactness: every spec below is a line-for-line transcription of the
corresponding hand-written builder in :mod:`repro.models.no_raid`,
:mod:`repro.models.internal_raid`, :mod:`repro.models.raid` and
:mod:`repro.models.recursive` — same state registration order (which
fixes the generator layout and the GTH elimination order), same rate
formulas in the same operation order, same clamping.  The legacy
builders are kept as ``legacy_build_*`` oracles and the test suite
asserts bitwise generator equality between both paths for every family.

Specs are memoized per structural signature (family + fault tolerance +
flags) and their compiled forms live in a module-level
:class:`~repro.core.spec.CompiledSpecCache`, so a figure sweep compiles
each shape exactly once no matter how many points it binds.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Mapping, Union

import numpy as np

from ..core.spec import (
    CompiledChain,
    CompiledSpecCache,
    ModelSpec,
    SpecBuilder,
    param,
)

__all__ = [
    "LOSS",
    "LOSS_DRIVES",
    "LOSS_SECTOR",
    "no_raid_spec",
    "no_raid_env",
    "recursive_spec",
    "recursive_env",
    "internal_raid_spec",
    "internal_raid_env",
    "raid5_spec",
    "raid6_spec",
    "raid_env",
    "compiled",
    "compiled_cache",
    "all_family_specs",
    "spec_for_key",
    "spec_hash_index",
]

# Absorbing-state labels; textual duplicates of the constants in
# repro.models.raid / no_raid (importing them would be circular — those
# modules wrap the specs defined here).
LOSS = "loss"
LOSS_DRIVES = "loss-drives"
LOSS_SECTOR = "loss-sector"

Value = Union[int, float, np.ndarray]


# --------------------------------------------------------------------- #
# the compiled-spec cache shared by the thin builder wrappers
# --------------------------------------------------------------------- #

_COMPILED = CompiledSpecCache()


def compiled(spec: ModelSpec) -> CompiledChain:
    """The compiled form of ``spec`` from the module-level cache."""
    return _COMPILED.get_or_compile(spec)


def compiled_cache() -> CompiledSpecCache:
    """The module-level :class:`CompiledSpecCache` (counters included)."""
    return _COMPILED


# --------------------------------------------------------------------- #
# no internal RAID, fault tolerance 1-3 (Figures 8, 9, 10)
# --------------------------------------------------------------------- #


@lru_cache(maxsize=None)
def no_raid_spec(fault_tolerance: int) -> ModelSpec:
    """Figure 8/9/10 as a spec; parameters ``n, d, lambda_N, lambda_d,
    mu_N, mu_d`` plus one ``h_<word>`` per failure word of the tolerance.
    """
    if fault_tolerance not in (1, 2, 3):
        raise ValueError(
            "explicit chains exist for fault tolerance 1-3 only; use "
            "recursive_spec for higher tolerance"
        )
    n, d = param("n"), param("d")
    lam_n, lam_d = param("lambda_N"), param("lambda_d")
    mu_n, mu_d = param("mu_N"), param("mu_d")
    b = SpecBuilder()

    if fault_tolerance == 1:
        h_n, h_d = param("h_N"), param("h_d")
        b.add_states("0", "N", "d", LOSS)
        b.add_rate("0", "N", n * lam_n * (1.0 - h_n))
        b.add_rate("0", "d", n * d * lam_d * (1.0 - h_d))
        b.add_rate("0", LOSS, n * (lam_n * h_n + d * lam_d * h_d))
        b.add_rate("N", "0", mu_n)
        b.add_rate("d", "0", mu_d)
        second = (n - 1) * (lam_n + d * lam_d)
        b.add_rate("N", LOSS, second)
        b.add_rate("d", LOSS, second)
        return b.build("no_raid_ft1", initial_state="0")

    if fault_tolerance == 2:
        b.add_states("00", "N0", "d0", "NN", "Nd", "dN", "dd", LOSS)
        b.add_rate("00", "N0", n * lam_n)
        b.add_rate("00", "d0", n * d * lam_d)
        b.add_rate("N0", "00", mu_n)
        b.add_rate("d0", "00", mu_d)
        for first in ("N", "d"):
            root = first + "0"
            h_to_n = param("h_" + first + "N")
            h_to_d = param("h_" + first + "d")
            b.add_rate(root, first + "N", (n - 1) * lam_n * (1.0 - h_to_n))
            b.add_rate(root, first + "d", (n - 1) * d * lam_d * (1.0 - h_to_d))
            b.add_rate(root, LOSS, (n - 1) * (lam_n * h_to_n + d * lam_d * h_to_d))
            b.add_rate(first + "N", root, mu_n)
            b.add_rate(first + "d", root, mu_d)
        third = (n - 2) * (lam_n + d * lam_d)
        for leaf in ("NN", "Nd", "dN", "dd"):
            b.add_rate(leaf, LOSS, third)
        return b.build("no_raid_ft2", initial_state="00")

    mu = {"N": mu_n, "d": mu_d}
    b.add_state("000")
    b.add_rate("000", "N00", n * lam_n)
    b.add_rate("000", "d00", n * d * lam_d)
    b.add_rate("N00", "000", mu_n)
    b.add_rate("d00", "000", mu_d)
    for first in "Nd":
        for second_letter in "Nd":
            state = first + second_letter + "0"
            b.add_rate(
                first + "00",
                state,
                (n - 1) * (lam_n if second_letter == "N" else d * lam_d),
            )
            b.add_rate(state, first + "00", mu[second_letter])
    for prefix in ("NN", "Nd", "dN", "dd"):
        root = prefix + "0"
        h_to_n = param("h_" + prefix + "N")
        h_to_d = param("h_" + prefix + "d")
        b.add_rate(root, prefix + "N", (n - 2) * lam_n * (1.0 - h_to_n))
        b.add_rate(root, prefix + "d", (n - 2) * d * lam_d * (1.0 - h_to_d))
        b.add_rate(root, LOSS, (n - 2) * (lam_n * h_to_n + d * lam_d * h_to_d))
        b.add_rate(prefix + "N", root, mu_n)
        b.add_rate(prefix + "d", root, mu_d)
    fourth = (n - 3) * (lam_n + d * lam_d)
    for first in "Nd":
        for second_letter in "Nd":
            for third_letter in "Nd":
                b.add_rate(first + second_letter + third_letter, LOSS, fourth)
    return b.build("no_raid_ft3", initial_state="000")


def no_raid_env(
    fault_tolerance: int,
    n: Value,
    d: Value,
    node_failure_rate: Value,
    drive_failure_rate: Value,
    node_rebuild_rate: Value,
    drive_rebuild_rate: Value,
    h: Mapping[str, Value],
) -> Dict[str, Value]:
    """Binding environment for :func:`no_raid_spec`.

    Mirrors the legacy builders' validation: the node set must exceed the
    fault tolerance, every ``h``-word must be present, and each ``h`` is
    checked non-negative and clamped to 1.  Values may be scalars or
    per-point arrays.
    """
    _check_nodes(n, d, fault_tolerance)
    _check_words(h, fault_tolerance)
    env: Dict[str, Value] = {
        "n": n,
        "d": d,
        "lambda_N": node_failure_rate,
        "lambda_d": drive_failure_rate,
        "mu_N": node_rebuild_rate,
        "mu_d": drive_rebuild_rate,
    }
    for word in _words(fault_tolerance):
        env["h_" + word] = _clamp_h(h[word])
    return env


# --------------------------------------------------------------------- #
# no internal RAID, arbitrary fault tolerance (appendix recursion)
# --------------------------------------------------------------------- #


def _spec_level(
    b: SpecBuilder,
    prefix: str,
    k: int,
    remaining: int,
    depth: int,
) -> None:
    """Transcription of ``recursive._build_level`` with symbolic rates.

    ``depth`` replaces the legacy ``n_eff`` (= n - depth); everything
    else — recursion order, h-splits, the accumulated duplicate loss
    edge at the critical level — matches line for line.
    """
    n, d = param("n"), param("d")
    lam_n, lam_d = param("lambda_N"), param("lambda_d")
    root = prefix + "0" * remaining
    n_eff = n - depth if depth else n
    if remaining == 0:
        b.add_rate(root, LOSS, (n - k) * (lam_n + d * lam_d))
        return
    mu = {"N": param("mu_N"), "d": param("mu_d")}
    for letter, rate in (("N", lam_n), ("d", d * lam_d)):
        child_prefix = prefix + letter
        child = child_prefix + "0" * (remaining - 1)
        if remaining == 1:
            h_split = param("h_" + child_prefix)
            b.add_rate(root, child, n_eff * rate * (1.0 - h_split))
            b.add_rate(root, LOSS, n_eff * rate * h_split)
        else:
            b.add_rate(root, child, n_eff * rate)
        b.add_rate(child, root, mu[letter])
        _spec_level(b, child_prefix, k, remaining - 1, depth + 1)


@lru_cache(maxsize=None)
def recursive_spec(fault_tolerance: int) -> ModelSpec:
    """The appendix's recursively-doubled chain for arbitrary ``k``."""
    k = fault_tolerance
    if k < 1:
        raise ValueError("fault_tolerance must be >= 1")
    b = SpecBuilder()
    b.add_state("0" * k)
    _spec_level(b, prefix="", k=k, remaining=k, depth=0)
    return b.build(f"recursive_ft{k}", initial_state="0" * k)


def recursive_env(
    fault_tolerance: int,
    n: Value,
    d: Value,
    node_failure_rate: Value,
    drive_failure_rate: Value,
    node_rebuild_rate: Value,
    drive_rebuild_rate: Value,
    h: Mapping[str, Value],
) -> Dict[str, Value]:
    """Binding environment for :func:`recursive_spec`.

    The legacy recursion clamps each h-split into [0, 1] silently
    (``min(max(h, 0), 1)``) rather than rejecting negatives — preserved
    here exactly.
    """
    k = fault_tolerance
    if k < 1:
        raise ValueError("fault_tolerance must be >= 1")
    _check_nodes(n, d, k)
    missing = [w for w in _words(k) if w not in h]
    if missing:
        raise ValueError(f"missing h-parameters for words: {missing[:4]}...")
    env: Dict[str, Value] = {
        "n": n,
        "d": d,
        "lambda_N": node_failure_rate,
        "lambda_d": drive_failure_rate,
        "mu_N": node_rebuild_rate,
        "mu_d": drive_rebuild_rate,
    }
    for word in _words(k):
        value = h[word]
        if isinstance(value, np.ndarray):
            env["h_" + word] = np.minimum(np.maximum(value, 0.0), 1.0)
        else:
            env["h_" + word] = min(max(value, 0.0), 1.0)
    return env


# --------------------------------------------------------------------- #
# internal RAID node-level chains (Figures 5-7)
# --------------------------------------------------------------------- #


@lru_cache(maxsize=None)
def internal_raid_spec(
    fault_tolerance: int, parallel_repair: bool = False
) -> ModelSpec:
    """Figure 5/6/7 as a spec; parameters ``n, lambda_N, lambda_D,
    lambda_S, mu_N, k_t``.

    ``parallel_repair`` reproduces the scheduling ablation of the legacy
    builder: repair out of state ``j+1`` runs at ``(j+1) mu_N`` instead
    of ``mu_N``.
    """
    if fault_tolerance < 1:
        raise ValueError("fault_tolerance must be >= 1")
    n, mu_n = param("n"), param("mu_N")
    lam = param("lambda_N") + param("lambda_D")
    b = SpecBuilder()
    for j in range(fault_tolerance):
        b.add_rate(j, j + 1, (n - j) * lam if j else n * lam)
        b.add_rate(j + 1, j, mu_n * (j + 1) if parallel_repair else mu_n)
    final_rate = lam + param("k_t") * param("lambda_S")
    b.add_rate(fault_tolerance, LOSS, (n - fault_tolerance) * final_rate)
    suffix = "_parallel" if parallel_repair else ""
    return b.build(f"internal_raid_t{fault_tolerance}{suffix}", initial_state=0)


def internal_raid_env(
    fault_tolerance: int,
    n: Value,
    node_failure_rate: Value,
    array_failure_rate: Value,
    restripe_sector_loss_rate: Value,
    node_rebuild_rate: Value,
    critical_sector_fraction: Value,
) -> Dict[str, Value]:
    """Binding environment for :func:`internal_raid_spec`."""
    if fault_tolerance < 1:
        raise ValueError("fault_tolerance must be >= 1")
    if np.any(np.asarray(n) <= fault_tolerance):
        raise ValueError("node set must be larger than the fault tolerance")
    return {
        "n": n,
        "lambda_N": node_failure_rate,
        "lambda_D": array_failure_rate,
        "lambda_S": restripe_sector_loss_rate,
        "mu_N": node_rebuild_rate,
        "k_t": critical_sector_fraction,
    }


# --------------------------------------------------------------------- #
# drive-level RAID 5 / RAID 6 array chains (Figures 1 and 4)
# --------------------------------------------------------------------- #


@lru_cache(maxsize=None)
def raid5_spec(split_loss: bool = False) -> ModelSpec:
    """Figure 1 (RAID 5 array) as a spec; parameters ``d, lambda_d,
    mu_d, h``."""
    d, lam, mu, h = param("d"), param("lambda_d"), param("mu_d"), param("h")
    sector, drives = (LOSS_SECTOR, LOSS_DRIVES) if split_loss else (LOSS, LOSS)
    b = SpecBuilder().add_states(0, 1)
    b.add_rate(0, 1, d * lam * (1.0 - h))
    b.add_rate(0, sector, d * lam * h)
    b.add_rate(1, 0, mu)
    b.add_rate(1, drives, (d - 1) * lam)
    suffix = "_split" if split_loss else ""
    return b.build(f"raid5{suffix}", initial_state=0)


@lru_cache(maxsize=None)
def raid6_spec(split_loss: bool = False) -> ModelSpec:
    """Figure 4 (RAID 6 array) as a spec; parameters as RAID 5."""
    d, lam, mu, h = param("d"), param("lambda_d"), param("mu_d"), param("h")
    sector, drives = (LOSS_SECTOR, LOSS_DRIVES) if split_loss else (LOSS, LOSS)
    b = SpecBuilder().add_states(0, 1, 2)
    b.add_rate(0, 1, d * lam)
    b.add_rate(1, 0, mu)
    b.add_rate(1, 2, (d - 1) * lam * (1.0 - h))
    b.add_rate(1, sector, (d - 1) * lam * h)
    b.add_rate(2, 1, mu)
    b.add_rate(2, drives, (d - 2) * lam)
    suffix = "_split" if split_loss else ""
    return b.build(f"raid6{suffix}", initial_state=0)


def raid_env(
    d: Value,
    drive_failure_rate: Value,
    restripe_rate: Value,
    hard_error_probability: Value,
    *,
    minimum_drives: int,
) -> Dict[str, Value]:
    """Binding environment for :func:`raid5_spec` / :func:`raid6_spec`."""
    if np.any(np.asarray(d) < minimum_drives):
        raise ValueError(f"array needs at least {minimum_drives} drives, got {d}")
    return {
        "d": d,
        "lambda_d": drive_failure_rate,
        "mu_d": restripe_rate,
        "h": _clamp_h(hard_error_probability),
    }


# --------------------------------------------------------------------- #


def all_family_specs() -> Dict[str, ModelSpec]:
    """Every distinct spec shape the nine configurations use, by name.

    The drive-level RAID specs appear in both plain and split-loss form
    (the latter backs the ``rates_method="exact"`` path and the
    monolithic model's array solves).
    """
    specs = [
        no_raid_spec(1),
        no_raid_spec(2),
        no_raid_spec(3),
        internal_raid_spec(1),
        internal_raid_spec(2),
        internal_raid_spec(3),
        raid5_spec(),
        raid5_spec(split_loss=True),
        raid6_spec(),
        raid6_spec(split_loss=True),
        recursive_spec(4),
    ]
    return {spec.name: spec for spec in specs}


@lru_cache(maxsize=None)
def spec_for_key(config_key: str) -> ModelSpec:
    """The node-level spec for a configuration key (e.g. ``"ft2_raid5"``).

    The spec's *structure* depends only on the configuration family and
    fault tolerance, never on the operating point, so a configuration key
    alone pins the spec — and therefore the
    :attr:`~repro.core.spec.ModelSpec.spec_hash` that
    batched solves group on.  The serving layer uses this to coalesce
    concurrent requests into per-spec-hash solve groups *before* building
    any models or binding environments.

    Raises :class:`ValueError` for a malformed key (via
    :meth:`Configuration.from_key`).
    """
    from .configurations import Configuration
    from .raid import InternalRaid

    config = Configuration.from_key(config_key)
    if config.internal is InternalRaid.NONE:
        if config.node_fault_tolerance <= 3:
            return no_raid_spec(config.node_fault_tolerance)
        return recursive_spec(config.node_fault_tolerance)
    return internal_raid_spec(config.node_fault_tolerance)


def spec_hash_index(max_fault_tolerance: int = 3) -> Dict[str, str]:
    """Configuration key -> spec hash, for the standard configuration grid.

    Nine configurations share six distinct spec shapes (the internal-RAID
    chain's structure does not depend on the RAID level — only its bound
    rates do), so the index maps nine keys onto six hashes at the default
    grid.
    """
    from .configurations import all_configurations

    return {
        config.key: spec_for_key(config.key).spec_hash
        for config in all_configurations(max_fault_tolerance)
    }


# --------------------------------------------------------------------- #
# shared validation helpers (mirroring the legacy builders')
# --------------------------------------------------------------------- #


def _check_nodes(n: Value, d: Value, t: int) -> None:
    # Scalar fast path: the serving hot loop binds one point at a time,
    # and ndarray coercion is ~10x the cost of the comparison itself.
    if isinstance(n, (int, float)) and isinstance(d, (int, float)):
        if n <= t:
            raise ValueError("node set must be larger than the fault tolerance")
        if d < 1:
            raise ValueError("need at least one drive per node")
        return
    if np.any(np.asarray(n) <= t):
        raise ValueError("node set must be larger than the fault tolerance")
    if np.any(np.asarray(d) < 1):
        raise ValueError("need at least one drive per node")


def _check_words(h: Mapping[str, Value], k: int) -> None:
    expected = 2**k
    if len(h) < expected:
        raise ValueError(f"need all {expected} h-parameters for fault tolerance {k}")


def _clamp_h(h: Value) -> Value:
    if isinstance(h, (int, float)):  # scalar fast path (np.float64 included)
        if h < 0:
            raise ValueError(f"hard error probability must be >= 0, got {h}")
        return min(h, 1.0)
    if np.any(np.asarray(h) < 0):
        raise ValueError(f"hard error probability must be >= 0, got {h}")
    if isinstance(h, np.ndarray):
        return np.minimum(h, 1.0)
    return min(h, 1.0)


def _words(k: int):
    words = [""]
    for _ in range(k):
        words = [w + letter for w in words for letter in "Nd"]
    return words

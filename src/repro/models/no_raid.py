"""Markov models for nodes *without* internal RAID (Figures 8, 9, 10).

Without internal RAID, individual drives participate directly in the
cross-node erasure code (at most one drive of a node per redundancy set),
so a drive failure and a node failure are *distinct* degraded states with
different repair rates (``mu_d`` vs ``mu_N``).  The state space therefore
doubles with each additional tolerated failure.

The chains here are hand-transcribed from the paper's figures; the
appendix's recursive construction (:mod:`repro.models.recursive`) must
produce exactly the same chains — the test suite checks generator-matrix
equality for k = 1, 2, 3.

State labels are failure words: ``"0"*k`` is fully operational; a word
like ``"Nd0"`` means a node failure followed by a drive failure, one more
failure tolerated.  Hard-error splits ride the transitions into the
*innermost* (critical) states, weighted by the ``h_alpha`` probabilities
of Section 5.2.2.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core import CTMC, ChainBuilder, ChainStructureMemo
from .critical_sets import h_parameters
from .parameters import Parameters
from .rebuild import RebuildModel

__all__ = [
    "build_no_raid_chain_ft1",
    "build_no_raid_chain_ft2",
    "build_no_raid_chain_ft3",
    "NoRaidNodeModel",
]

LOSS = "loss"


def build_no_raid_chain_ft1(
    n: int,
    d: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    h_n: float,
    h_d: float,
    memo: Optional["ChainStructureMemo"] = None,
    memo_key=None,
) -> CTMC:
    """Figure 8: fault tolerance 1, no internal RAID.

    Args:
        n: node set size.
        d: drives per node.
        node_failure_rate: lambda_N.
        drive_failure_rate: lambda_d.
        node_rebuild_rate: mu_N.
        drive_rebuild_rate: mu_d.
        h_n: probability of a hard error during a node rebuild,
            ``d (R-1) C HER``.
        h_d: probability of a hard error during a drive rebuild,
            ``(R-1) C HER``.
    """
    _check(n, d, 1)
    lam_n, lam_d = node_failure_rate, drive_failure_rate
    h_n, h_d = _clamp(h_n), _clamp(h_d)
    b = ChainBuilder().add_states("0", "N", "d", LOSS)
    b.add_rate("0", "N", n * lam_n * (1.0 - h_n))
    b.add_rate("0", "d", n * d * lam_d * (1.0 - h_d))
    b.add_rate("0", LOSS, n * (lam_n * h_n + d * lam_d * h_d))
    b.add_rate("N", "0", node_rebuild_rate)
    b.add_rate("d", "0", drive_rebuild_rate)
    second = (n - 1) * (lam_n + d * lam_d)
    b.add_rate("N", LOSS, second)
    b.add_rate("d", LOSS, second)
    return b.build(initial_state="0", memo=memo, memo_key=memo_key)


def build_no_raid_chain_ft2(
    n: int,
    d: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    h: Dict[str, float],
    memo: Optional["ChainStructureMemo"] = None,
    memo_key=None,
) -> CTMC:
    """Figure 9: fault tolerance 2, no internal RAID.

    ``h`` maps the four failure words {"NN", "Nd", "dN", "dd"} to the
    probabilities of a hard error during the second rebuild (Section
    5.2.2).
    """
    _check(n, d, 2)
    _check_words(h, 2)
    lam_n, lam_d = node_failure_rate, drive_failure_rate
    mu_n, mu_d = node_rebuild_rate, drive_rebuild_rate
    b = ChainBuilder().add_states("00", "N0", "d0", "NN", "Nd", "dN", "dd", LOSS)

    b.add_rate("00", "N0", n * lam_n)
    b.add_rate("00", "d0", n * d * lam_d)
    b.add_rate("N0", "00", mu_n)
    b.add_rate("d0", "00", mu_d)

    for first, mu_back in (("N", mu_n), ("d", mu_d)):
        root = first + "0"
        h_to_n = _clamp(h[first + "N"])
        h_to_d = _clamp(h[first + "d"])
        b.add_rate(root, first + "N", (n - 1) * lam_n * (1.0 - h_to_n))
        b.add_rate(root, first + "d", (n - 1) * d * lam_d * (1.0 - h_to_d))
        b.add_rate(root, LOSS, (n - 1) * (lam_n * h_to_n + d * lam_d * h_to_d))
        b.add_rate(first + "N", root, mu_n)
        b.add_rate(first + "d", root, mu_d)

    third = (n - 2) * (lam_n + d * lam_d)
    for leaf in ("NN", "Nd", "dN", "dd"):
        b.add_rate(leaf, LOSS, third)
    return b.build(initial_state="00", memo=memo, memo_key=memo_key)


def build_no_raid_chain_ft3(
    n: int,
    d: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    h: Dict[str, float],
    memo: Optional["ChainStructureMemo"] = None,
    memo_key=None,
) -> CTMC:
    """Figure 10: fault tolerance 3, no internal RAID.

    ``h`` maps the eight failure words of length 3 over {N, d} to hard-
    error probabilities during the third rebuild.
    """
    _check(n, d, 3)
    _check_words(h, 3)
    lam_n, lam_d = node_failure_rate, drive_failure_rate
    mu_n, mu_d = node_rebuild_rate, drive_rebuild_rate
    mu = {"N": mu_n, "d": mu_d}
    b = ChainBuilder().add_state("000")

    b.add_rate("000", "N00", n * lam_n)
    b.add_rate("000", "d00", n * d * lam_d)
    b.add_rate("N00", "000", mu_n)
    b.add_rate("d00", "000", mu_d)

    for first in "Nd":
        for second in "Nd":
            state = first + second + "0"
            b.add_rate(first + "00", state, (n - 1) * (lam_n if second == "N" else d * lam_d))
            b.add_rate(state, first + "00", mu[second])

    for prefix in ("NN", "Nd", "dN", "dd"):
        root = prefix + "0"
        h_to_n = _clamp(h[prefix + "N"])
        h_to_d = _clamp(h[prefix + "d"])
        b.add_rate(root, prefix + "N", (n - 2) * lam_n * (1.0 - h_to_n))
        b.add_rate(root, prefix + "d", (n - 2) * d * lam_d * (1.0 - h_to_d))
        b.add_rate(root, LOSS, (n - 2) * (lam_n * h_to_n + d * lam_d * h_to_d))
        b.add_rate(prefix + "N", root, mu_n)
        b.add_rate(prefix + "d", root, mu_d)

    fourth = (n - 3) * (lam_n + d * lam_d)
    for first in "Nd":
        for second in "Nd":
            for third_letter in "Nd":
                b.add_rate(first + second + third_letter, LOSS, fourth)
    return b.build(initial_state="000", memo=memo, memo_key=memo_key)


class NoRaidNodeModel:
    """MTTDL model for [no internal RAID x node fault tolerance t], t <= 3.

    For arbitrary ``t`` use :class:`repro.models.recursive.RecursiveNoRaidModel`;
    this class transcribes the figures directly and is the ground truth the
    recursion is tested against.
    """

    def __init__(
        self,
        params: Parameters,
        fault_tolerance: int,
        rebuild: Optional[RebuildModel] = None,
    ) -> None:
        if fault_tolerance not in (1, 2, 3):
            raise ValueError(
                "explicit chains exist for fault tolerance 1-3 only; use "
                "RecursiveNoRaidModel for higher tolerance"
            )
        self._params = params
        self._t = fault_tolerance
        self._rebuild = rebuild if rebuild is not None else RebuildModel(params)

    @property
    def params(self) -> Parameters:
        return self._params

    @property
    def fault_tolerance(self) -> int:
        return self._t

    @property
    def node_rebuild_rate(self) -> float:
        return self._rebuild.node_rebuild_rate(self._t)

    @property
    def drive_rebuild_rate(self) -> float:
        return self._rebuild.drive_rebuild_rate(self._t)

    def hard_error_parameters(self) -> Dict[str, float]:
        """The ``h_alpha`` probabilities for this configuration."""
        return h_parameters(self._params, self._t)

    def chain(
        self,
        memo: Optional[ChainStructureMemo] = None,
        memo_key=None,
    ) -> CTMC:
        """The Figure 8/9/10 chain.

        ``memo``/``memo_key`` optionally reuse a cached topology (see
        :class:`repro.core.template.ChainStructureMemo`).
        """
        p = self._params
        common = (
            p.node_set_size,
            p.drives_per_node,
            p.node_failure_rate,
            p.drive_failure_rate,
            self.node_rebuild_rate,
            self.drive_rebuild_rate,
        )
        h = self.hard_error_parameters()
        if self._t == 1:
            return build_no_raid_chain_ft1(
                *common, h_n=h["N"], h_d=h["d"], memo=memo, memo_key=memo_key
            )
        if self._t == 2:
            return build_no_raid_chain_ft2(*common, h=h, memo=memo, memo_key=memo_key)
        return build_no_raid_chain_ft3(*common, h=h, memo=memo, memo_key=memo_key)

    def mttdl_exact(self) -> float:
        """MTTDL in hours from the numeric CTMC solve."""
        return self.chain().mean_time_to_absorption()


def _check(n: int, d: int, t: int) -> None:
    if n <= t:
        raise ValueError("node set must be larger than the fault tolerance")
    if d < 1:
        raise ValueError("need at least one drive per node")


def _check_words(h: Dict[str, float], k: int) -> None:
    expected = 2**k
    if len(h) < expected:
        raise ValueError(f"need all {expected} h-parameters for fault tolerance {k}")


def _clamp(h: float) -> float:
    if h < 0:
        raise ValueError(f"hard error probability must be >= 0, got {h}")
    return min(h, 1.0)

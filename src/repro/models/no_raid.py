"""Markov models for nodes *without* internal RAID (Figures 8, 9, 10).

Without internal RAID, individual drives participate directly in the
cross-node erasure code (at most one drive of a node per redundancy set),
so a drive failure and a node failure are *distinct* degraded states with
different repair rates (``mu_d`` vs ``mu_N``).  The state space therefore
doubles with each additional tolerated failure.

The chains are declared once in :mod:`repro.models.specs` (states plus
symbolic rates over the paper's parameters) and bound here per operating
point; the original hand-transcribed builders are kept as
``legacy_build_no_raid_chain_ft*`` oracles, and the test suite asserts
bitwise generator equality between the two paths.  The appendix's
recursive construction (:mod:`repro.models.recursive`) must also produce
exactly these chains — the suite checks that for k = 1, 2, 3.

State labels are failure words: ``"0"*k`` is fully operational; a word
like ``"Nd0"`` means a node failure followed by a drive failure, one more
failure tolerated.  Hard-error splits ride the transitions into the
*innermost* (critical) states, weighted by the ``h_alpha`` probabilities
of Section 5.2.2.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core import CTMC, ChainBuilder
from ..core.spec import ModelSpec
from .critical_sets import h_parameters
from .parameters import Parameters
from .rebuild import RebuildModel
from .specs import compiled, no_raid_env, no_raid_spec

__all__ = [
    "build_no_raid_chain_ft1",
    "build_no_raid_chain_ft2",
    "build_no_raid_chain_ft3",
    "NoRaidNodeModel",
]

LOSS = "loss"


def build_no_raid_chain_ft1(
    n: int,
    d: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    h_n: float,
    h_d: float,
) -> CTMC:
    """Figure 8: fault tolerance 1, no internal RAID.

    Args:
        n: node set size.
        d: drives per node.
        node_failure_rate: lambda_N.
        drive_failure_rate: lambda_d.
        node_rebuild_rate: mu_N.
        drive_rebuild_rate: mu_d.
        h_n: probability of a hard error during a node rebuild,
            ``d (R-1) C HER``.
        h_d: probability of a hard error during a drive rebuild,
            ``(R-1) C HER``.
    """
    env = no_raid_env(
        1,
        n,
        d,
        node_failure_rate,
        drive_failure_rate,
        node_rebuild_rate,
        drive_rebuild_rate,
        {"N": h_n, "d": h_d},
    )
    return compiled(no_raid_spec(1)).bind(env)


def build_no_raid_chain_ft2(
    n: int,
    d: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    h: Dict[str, float],
) -> CTMC:
    """Figure 9: fault tolerance 2, no internal RAID.

    ``h`` maps the four failure words {"NN", "Nd", "dN", "dd"} to the
    probabilities of a hard error during the second rebuild (Section
    5.2.2).
    """
    env = no_raid_env(
        2,
        n,
        d,
        node_failure_rate,
        drive_failure_rate,
        node_rebuild_rate,
        drive_rebuild_rate,
        h,
    )
    return compiled(no_raid_spec(2)).bind(env)


def build_no_raid_chain_ft3(
    n: int,
    d: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    h: Dict[str, float],
) -> CTMC:
    """Figure 10: fault tolerance 3, no internal RAID.

    ``h`` maps the eight failure words of length 3 over {N, d} to hard-
    error probabilities during the third rebuild.
    """
    env = no_raid_env(
        3,
        n,
        d,
        node_failure_rate,
        drive_failure_rate,
        node_rebuild_rate,
        drive_rebuild_rate,
        h,
    )
    return compiled(no_raid_spec(3)).bind(env)


# --------------------------------------------------------------------- #
# legacy hand-transcribed builders (oracles for spec equivalence tests)
# --------------------------------------------------------------------- #


def legacy_build_no_raid_chain_ft1(
    n: int,
    d: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    h_n: float,
    h_d: float,
) -> CTMC:
    """The original imperative Figure 8 construction (equivalence oracle)."""
    _check(n, d, 1)
    lam_n, lam_d = node_failure_rate, drive_failure_rate
    h_n, h_d = _clamp(h_n), _clamp(h_d)
    b = ChainBuilder().add_states("0", "N", "d", LOSS)
    b.add_rate("0", "N", n * lam_n * (1.0 - h_n))
    b.add_rate("0", "d", n * d * lam_d * (1.0 - h_d))
    b.add_rate("0", LOSS, n * (lam_n * h_n + d * lam_d * h_d))
    b.add_rate("N", "0", node_rebuild_rate)
    b.add_rate("d", "0", drive_rebuild_rate)
    second = (n - 1) * (lam_n + d * lam_d)
    b.add_rate("N", LOSS, second)
    b.add_rate("d", LOSS, second)
    return b.build(initial_state="0")


def legacy_build_no_raid_chain_ft2(
    n: int,
    d: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    h: Dict[str, float],
) -> CTMC:
    """The original imperative Figure 9 construction (equivalence oracle)."""
    _check(n, d, 2)
    _check_words(h, 2)
    lam_n, lam_d = node_failure_rate, drive_failure_rate
    mu_n, mu_d = node_rebuild_rate, drive_rebuild_rate
    b = ChainBuilder().add_states("00", "N0", "d0", "NN", "Nd", "dN", "dd", LOSS)

    b.add_rate("00", "N0", n * lam_n)
    b.add_rate("00", "d0", n * d * lam_d)
    b.add_rate("N0", "00", mu_n)
    b.add_rate("d0", "00", mu_d)

    for first, _mu_back in (("N", mu_n), ("d", mu_d)):
        root = first + "0"
        h_to_n = _clamp(h[first + "N"])
        h_to_d = _clamp(h[first + "d"])
        b.add_rate(root, first + "N", (n - 1) * lam_n * (1.0 - h_to_n))
        b.add_rate(root, first + "d", (n - 1) * d * lam_d * (1.0 - h_to_d))
        b.add_rate(root, LOSS, (n - 1) * (lam_n * h_to_n + d * lam_d * h_to_d))
        b.add_rate(first + "N", root, mu_n)
        b.add_rate(first + "d", root, mu_d)

    third = (n - 2) * (lam_n + d * lam_d)
    for leaf in ("NN", "Nd", "dN", "dd"):
        b.add_rate(leaf, LOSS, third)
    return b.build(initial_state="00")


def legacy_build_no_raid_chain_ft3(
    n: int,
    d: int,
    node_failure_rate: float,
    drive_failure_rate: float,
    node_rebuild_rate: float,
    drive_rebuild_rate: float,
    h: Dict[str, float],
) -> CTMC:
    """The original imperative Figure 10 construction (equivalence oracle)."""
    _check(n, d, 3)
    _check_words(h, 3)
    lam_n, lam_d = node_failure_rate, drive_failure_rate
    mu_n, mu_d = node_rebuild_rate, drive_rebuild_rate
    mu = {"N": mu_n, "d": mu_d}
    b = ChainBuilder().add_state("000")

    b.add_rate("000", "N00", n * lam_n)
    b.add_rate("000", "d00", n * d * lam_d)
    b.add_rate("N00", "000", mu_n)
    b.add_rate("d00", "000", mu_d)

    for first in "Nd":
        for second in "Nd":
            state = first + second + "0"
            b.add_rate(first + "00", state, (n - 1) * (lam_n if second == "N" else d * lam_d))
            b.add_rate(state, first + "00", mu[second])

    for prefix in ("NN", "Nd", "dN", "dd"):
        root = prefix + "0"
        h_to_n = _clamp(h[prefix + "N"])
        h_to_d = _clamp(h[prefix + "d"])
        b.add_rate(root, prefix + "N", (n - 2) * lam_n * (1.0 - h_to_n))
        b.add_rate(root, prefix + "d", (n - 2) * d * lam_d * (1.0 - h_to_d))
        b.add_rate(root, LOSS, (n - 2) * (lam_n * h_to_n + d * lam_d * h_to_d))
        b.add_rate(prefix + "N", root, mu_n)
        b.add_rate(prefix + "d", root, mu_d)

    fourth = (n - 3) * (lam_n + d * lam_d)
    for first in "Nd":
        for second in "Nd":
            for third_letter in "Nd":
                b.add_rate(first + second + third_letter, LOSS, fourth)
    return b.build(initial_state="000")


class NoRaidNodeModel:
    """MTTDL model for [no internal RAID x node fault tolerance t], t <= 3.

    For arbitrary ``t`` use :class:`repro.models.recursive.RecursiveNoRaidModel`;
    this class transcribes the figures directly and is the ground truth the
    recursion is tested against.
    """

    def __init__(
        self,
        params: Parameters,
        fault_tolerance: int,
        rebuild: Optional[RebuildModel] = None,
    ) -> None:
        if fault_tolerance not in (1, 2, 3):
            raise ValueError(
                "explicit chains exist for fault tolerance 1-3 only; use "
                "RecursiveNoRaidModel for higher tolerance"
            )
        self._params = params
        self._t = fault_tolerance
        self._rebuild = rebuild if rebuild is not None else RebuildModel(params)

    @property
    def params(self) -> Parameters:
        return self._params

    @property
    def fault_tolerance(self) -> int:
        return self._t

    @property
    def node_rebuild_rate(self) -> float:
        return self._rebuild.node_rebuild_rate(self._t)

    @property
    def drive_rebuild_rate(self) -> float:
        return self._rebuild.drive_rebuild_rate(self._t)

    def hard_error_parameters(self) -> Dict[str, float]:
        """The ``h_alpha`` probabilities for this configuration."""
        return h_parameters(self._params, self._t)

    def spec(self) -> ModelSpec:
        """The declarative form of the Figure 8/9/10 chain."""
        return no_raid_spec(self._t)

    def chain_env(self) -> Dict[str, float]:
        """The binding environment for :meth:`spec` at this operating point."""
        p = self._params
        return no_raid_env(
            self._t,
            p.node_set_size,
            p.drives_per_node,
            p.node_failure_rate,
            p.drive_failure_rate,
            self.node_rebuild_rate,
            self.drive_rebuild_rate,
            self.hard_error_parameters(),
        )

    def chain(self) -> CTMC:
        """The Figure 8/9/10 chain, bound through the compiled spec."""
        return compiled(self.spec()).bind(self.chain_env())

    def legacy_chain(self) -> CTMC:
        """The same chain through the original imperative builder — the
        oracle the spec path is checked against (bitwise)."""
        p = self._params
        h = self.hard_error_parameters()
        args = (
            p.node_set_size,
            p.drives_per_node,
            p.node_failure_rate,
            p.drive_failure_rate,
            self.node_rebuild_rate,
            self.drive_rebuild_rate,
        )
        if self._t == 1:
            return legacy_build_no_raid_chain_ft1(*args, h["N"], h["d"])
        if self._t == 2:
            return legacy_build_no_raid_chain_ft2(*args, h)
        return legacy_build_no_raid_chain_ft3(*args, h)

    def mttdl_exact(self) -> float:
        """MTTDL in hours from the numeric CTMC solve."""
        return self.chain().mean_time_to_absorption()


def _check(n: int, d: int, t: int) -> None:
    if n <= t:
        raise ValueError("node set must be larger than the fault tolerance")
    if d < 1:
        raise ValueError("need at least one drive per node")


def _check_words(h: Dict[str, float], k: int) -> None:
    expected = 2**k
    if len(h) < expected:
        raise ValueError(f"need all {expected} h-parameters for fault tolerance {k}")


def _clamp(h: float) -> float:
    if h < 0:
        raise ValueError(f"hard error probability must be >= 0, got {h}")
    return min(h, 1.0)

"""Declarative search spaces over configurations and parameters.

One helper owns the "enumerate a grid of candidate designs" job that
used to be spelled as ad-hoc nested loops in three places (the paper's
nine-configuration grid, the analysis layer's design enumeration, the
fleet scenario generator's config choices).  A space is data:

* :class:`ConfigSpace` — which internal RAID levels crossed with which
  cross-node fault tolerances;
* :class:`ParamAxis` — one swept :class:`Parameters` field (or a
  *derived* axis such as ``scrub_interval_hours``, which folds through a
  physical model into the plain parameter fields);
* :class:`SearchSpace` — the cartesian product of both, enumerated
  config-major into plain ``(Configuration, Parameters)`` points.

Because every enumerated point reduces to a plain configuration and
parameter set, anything downstream (the sweep engine, the optimizer,
the serving layer) keeps the bitwise-identity contract with
:func:`repro.evaluate` — a search space changes *which* points are
evaluated, never *how*.

Validation failures raise :class:`SpaceError`, which always names the
offending axis, so a malformed request can be answered with "axis
'redundancy_set_size': ..." rather than a bare traceback.  Physically
infeasible combinations inside a valid space (``R <= t``, ``R > N``)
are skipped and counted, matching the analysis layer's long-standing
silent-skip semantics.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Tuple,
)

from .parameters import ParameterError, Parameters
from .raid import InternalRaid
from .scrubbing import ScrubbingModel

if TYPE_CHECKING:  # pragma: no cover
    from .configurations import Configuration

__all__ = [
    "DERIVED_AXES",
    "ConfigSpace",
    "ParamAxis",
    "SearchSpace",
    "SpaceError",
    "SpacePoint",
    "storage_overhead",
]

#: JSON spellings of the internal RAID levels (``"noraid"`` accepted as
#: an alias so configuration keys like ``ft2_noraid`` round-trip).
INTERNAL_BY_NAME: Dict[str, InternalRaid] = {
    "none": InternalRaid.NONE,
    "noraid": InternalRaid.NONE,
    "raid5": InternalRaid.RAID5,
    "raid6": InternalRaid.RAID6,
}

_INTERNAL_NAMES: Dict[InternalRaid, str] = {
    InternalRaid.NONE: "none",
    InternalRaid.RAID5: "raid5",
    InternalRaid.RAID6: "raid6",
}


class SpaceError(ValueError):
    """A malformed search space; the message names the offending axis."""

    def __init__(self, axis: str, message: str) -> None:
        super().__init__(f"axis {axis!r}: {message}")
        self.axis = axis


def storage_overhead(config: "Configuration", r: int, d: int) -> float:
    """Raw-to-user byte ratio for a design (cross-node code x internal RAID)."""
    t = config.node_fault_tolerance
    if r <= t:
        raise ValueError("redundancy set must exceed the fault tolerance")
    cross = r / (r - t)
    if config.internal is InternalRaid.RAID5:
        return cross * d / (d - 1)
    if config.internal is InternalRaid.RAID6:
        return cross * d / (d - 2)
    return cross


# --------------------------------------------------------------------- #
# derived axes
# --------------------------------------------------------------------- #


def _apply_scrub_interval(params: Parameters, value: Any) -> Parameters:
    """Fold a scrub cadence into the effective hard-error rate."""
    return ScrubbingModel().scrubbed_parameters(params, float(value))


#: Axes that are not plain :class:`Parameters` fields but fold through a
#: physical model into one.  Each entry maps an axis name to a
#: ``(params, value) -> params`` transform; the resulting parameter set
#: is an ordinary one, so the bitwise contract with ``repro.evaluate``
#: holds for every derived point.  (Detection latency is deliberately
#: absent: it changes the chain *family*, not a parameter, so it cannot
#: be expressed as a plain ``(Configuration, Parameters)`` point.)
DERIVED_AXES: Dict[str, Callable[[Parameters, Any], Parameters]] = {
    "scrub_interval_hours": _apply_scrub_interval,
}


# --------------------------------------------------------------------- #
# configuration spaces
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ConfigSpace:
    """A grid of redundancy configurations: RAID levels x tolerances.

    Attributes:
        internal_levels: the node-internal RAID levels to cross.
        fault_tolerances: the cross-node erasure tolerances to cross.
    """

    internal_levels: Tuple[InternalRaid, ...] = (
        InternalRaid.NONE,
        InternalRaid.RAID5,
        InternalRaid.RAID6,
    )
    fault_tolerances: Tuple[int, ...] = (1, 2, 3)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "internal_levels", tuple(self.internal_levels)
        )
        object.__setattr__(
            self, "fault_tolerances", tuple(self.fault_tolerances)
        )
        if not self.internal_levels:
            raise SpaceError("internal", "needs at least one RAID level")
        for level in self.internal_levels:
            if not isinstance(level, InternalRaid):
                raise SpaceError(
                    "internal", f"{level!r} is not an InternalRaid level"
                )
        if len(set(self.internal_levels)) != len(self.internal_levels):
            raise SpaceError("internal", "duplicate RAID levels")
        if not self.fault_tolerances:
            raise SpaceError(
                "fault_tolerance", "needs at least one tolerance"
            )
        for t in self.fault_tolerances:
            if not isinstance(t, int) or isinstance(t, bool) or t < 1:
                raise SpaceError(
                    "fault_tolerance",
                    f"tolerances must be integers >= 1, got {t!r}",
                )
        if len(set(self.fault_tolerances)) != len(self.fault_tolerances):
            raise SpaceError("fault_tolerance", "duplicate tolerances")

    @property
    def size(self) -> int:
        return len(self.internal_levels) * len(self.fault_tolerances)

    def configurations(
        self, major: str = "fault_tolerance"
    ) -> List["Configuration"]:
        """The configuration grid, in a declared nesting order.

        ``major="fault_tolerance"`` (default) iterates tolerances in the
        outer loop — the paper's Figure 13 order used by
        :func:`repro.models.all_configurations`.  ``major="internal"``
        iterates RAID levels outermost — the analysis layer's
        design-enumeration order.
        """
        from .configurations import Configuration

        if major == "fault_tolerance":
            return [
                Configuration(internal, t)
                for t in self.fault_tolerances
                for internal in self.internal_levels
            ]
        if major == "internal":
            return [
                Configuration(internal, t)
                for internal in self.internal_levels
                for t in self.fault_tolerances
            ]
        raise ValueError(
            f"major must be 'fault_tolerance' or 'internal', got {major!r}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "internal": [
                _INTERNAL_NAMES[level] for level in self.internal_levels
            ],
            "fault_tolerance": list(self.fault_tolerances),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ConfigSpace":
        """Parse the JSON form; unknown RAID names raise :class:`SpaceError`."""
        if not isinstance(payload, Mapping):
            raise SpaceError("space", "configuration space must be an object")
        unknown = set(payload) - {"internal", "fault_tolerance"}
        if unknown:
            raise SpaceError(
                sorted(unknown)[0], "unknown configuration-space field"
            )
        raw_internal = payload.get("internal", ["none", "raid5", "raid6"])
        if not isinstance(raw_internal, (list, tuple)):
            raise SpaceError("internal", "must be an array of RAID levels")
        levels = []
        for name in raw_internal:
            if not isinstance(name, str) or name not in INTERNAL_BY_NAME:
                raise SpaceError(
                    "internal",
                    f"unknown RAID level {name!r}; "
                    "known: none, raid5, raid6",
                )
            levels.append(INTERNAL_BY_NAME[name])
        raw_ft = payload.get("fault_tolerance", [1, 2, 3])
        if not isinstance(raw_ft, (list, tuple)):
            raise SpaceError(
                "fault_tolerance", "must be an array of integers"
            )
        return cls(
            internal_levels=tuple(levels), fault_tolerances=tuple(raw_ft)
        )


# --------------------------------------------------------------------- #
# parameter axes
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class ParamAxis:
    """One swept dimension of a search space.

    ``name`` is a numeric :class:`Parameters` field, or a derived axis
    from :data:`DERIVED_AXES`.  Values must be numbers; duplicates are
    rejected (they would enumerate indistinguishable candidates).
    """

    name: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise SpaceError(str(self.name), "axis name must be a string")
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise SpaceError(self.name, "needs at least one value")
        for v in self.values:
            if not isinstance(v, (int, float)) or isinstance(v, bool):
                raise SpaceError(
                    self.name, f"values must be numbers, got {v!r}"
                )
        if len(set(self.values)) != len(self.values):
            raise SpaceError(self.name, "duplicate values")

    def apply(self, params: Parameters, value: Any) -> Parameters:
        """``params`` with this axis set to ``value``.

        Derived axes fold through their transform; plain fields coerce
        to the field's current type (ints stay ints), matching
        :class:`repro.engine.sweep.Axis` semantics.
        """
        derived = DERIVED_AXES.get(self.name)
        if derived is not None:
            return derived(params, value)
        current = getattr(params, self.name)
        return params.replace(**{self.name: type(current)(value)})

    def validate(self, base: Parameters) -> None:
        """Check the axis resolves against ``base`` (name + value types)."""
        if self.name in DERIVED_AXES:
            for v in self.values:
                try:
                    DERIVED_AXES[self.name](base, v)
                except (ParameterError, ValueError) as exc:
                    raise SpaceError(self.name, str(exc)) from None
            return
        current = getattr(base, self.name, None)
        if not isinstance(current, (int, float)) or isinstance(current, bool):
            raise SpaceError(
                self.name,
                "not a numeric Parameters field or derived axis "
                f"(derived: {', '.join(sorted(DERIVED_AXES))})",
            )


# --------------------------------------------------------------------- #
# search spaces
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class SpacePoint:
    """One feasible enumerated point: a config, its grid coordinates
    (axis name, value pairs in declaration order) and the fully-applied
    parameter set."""

    config: "Configuration"
    coords: Tuple[Tuple[str, Any], ...]
    params: Parameters


@dataclass(frozen=True)
class SearchSpace:
    """A full design search space: configurations x parameter axes.

    Attributes:
        configs: the configuration grid.
        axes: swept parameter axes (cartesian product, declared order;
            the first axis is outermost).
        major: configuration nesting order passed through to
            :meth:`ConfigSpace.configurations`.
    """

    configs: ConfigSpace = field(default_factory=ConfigSpace)
    axes: Tuple[ParamAxis, ...] = ()
    major: str = "fault_tolerance"

    def __post_init__(self) -> None:
        object.__setattr__(self, "axes", tuple(self.axes))
        seen = set()
        for axis in self.axes:
            if not isinstance(axis, ParamAxis):
                raise SpaceError(str(axis), "axes must be ParamAxis instances")
            if axis.name in seen:
                raise SpaceError(axis.name, "axis declared twice")
            seen.add(axis.name)
        if self.major not in ("fault_tolerance", "internal"):
            raise ValueError(
                "major must be 'fault_tolerance' or 'internal', "
                f"got {self.major!r}"
            )

    def size(self) -> int:
        """Grid cardinality before feasibility skips."""
        n = self.configs.size
        for axis in self.axes:
            n *= len(axis.values)
        return n

    def validate(self, base: Parameters) -> None:
        """Check every axis resolves against ``base``; raises
        :class:`SpaceError` naming the offending axis."""
        for axis in self.axes:
            axis.validate(base)

    def enumerate(self, base: Parameters) -> Iterator[SpacePoint]:
        """Yield every *feasible* point, config-major then axes in
        declared order.  Infeasible combinations (``R <= t`` or values
        the parameter model rejects, e.g. ``R > N``) are skipped; use
        :meth:`grid` to also get the skip count."""
        points, _ = self.grid(base)
        return iter(points)

    def grid(self, base: Parameters) -> Tuple[List[SpacePoint], int]:
        """Every feasible point plus the number of skipped combinations."""
        self.validate(base)
        combos = list(
            itertools.product(*(axis.values for axis in self.axes))
        )
        points: List[SpacePoint] = []
        skipped = 0
        for config in self.configs.configurations(major=self.major):
            for combo in combos:
                params = base
                try:
                    for axis, value in zip(self.axes, combo):
                        params = axis.apply(params, value)
                except (ParameterError, ValueError):
                    skipped += 1
                    continue
                if (
                    params.redundancy_set_size
                    <= config.node_fault_tolerance
                ):
                    skipped += 1
                    continue
                coords = tuple(
                    (axis.name, value)
                    for axis, value in zip(self.axes, combo)
                )
                points.append(
                    SpacePoint(config=config, coords=coords, params=params)
                )
        return points, skipped

    def to_dict(self) -> Dict[str, Any]:
        payload = self.configs.to_dict()
        payload["axes"] = {
            axis.name: list(axis.values) for axis in self.axes
        }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SearchSpace":
        """Parse the JSON form used by ``POST /v1/advise``::

            {"internal": ["none", "raid5"], "fault_tolerance": [1, 2],
             "axes": {"redundancy_set_size": [6, 8, 12]}}

        Every validation failure raises :class:`SpaceError` naming the
        offending axis.
        """
        if not isinstance(payload, Mapping):
            raise SpaceError("space", "search space must be an object")
        unknown = set(payload) - {"internal", "fault_tolerance", "axes"}
        if unknown:
            raise SpaceError(
                sorted(unknown)[0], "unknown search-space field"
            )
        configs = ConfigSpace.from_dict(
            {
                k: v
                for k, v in payload.items()
                if k in ("internal", "fault_tolerance")
            }
        )
        raw_axes = payload.get("axes", {})
        if not isinstance(raw_axes, Mapping):
            raise SpaceError("axes", "must be an object of name -> values")
        axes = []
        for name, values in raw_axes.items():
            if not isinstance(values, (list, tuple)):
                raise SpaceError(str(name), "values must be an array")
            axes.append(ParamAxis(str(name), tuple(values)))
        return cls(configs=configs, axes=tuple(axes))

"""The paper's nine redundancy configurations (Section 3).

Three internal-redundancy choices (none / RAID 5 / RAID 6) crossed with
three cross-node erasure-code fault tolerances (1 / 2 / 3) give nine
configurations.  :class:`Configuration` names them, builds the right model
for each, and evaluates reliability in the paper's metric.

The three configurations the paper carries into the sensitivity analyses
(Section 6's conclusion) are exposed as :func:`sensitivity_configurations`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple, Union

from ..core import CTMC
from .internal_raid import InternalRaidNodeModel
from .metrics import ReliabilityResult
from .no_raid import NoRaidNodeModel
from .parameters import Parameters
from .raid import InternalRaid
from .rebuild import RebuildModel
from .recursive import RecursiveNoRaidModel

__all__ = [
    "Configuration",
    "ALL_CONFIGURATIONS",
    "all_configurations",
    "sensitivity_configurations",
    "evaluate",
    "evaluate_all",
]

NodeModel = Union[InternalRaidNodeModel, NoRaidNodeModel, RecursiveNoRaidModel]


@dataclass(frozen=True)
class Configuration:
    """One of the paper's redundancy configurations.

    Attributes:
        internal: the node-internal RAID level.
        node_fault_tolerance: cross-node erasure-code tolerance (>= 1).
    """

    internal: InternalRaid
    node_fault_tolerance: int

    def __post_init__(self) -> None:
        if self.node_fault_tolerance < 1:
            raise ValueError("node_fault_tolerance must be >= 1")

    @property
    def label(self) -> str:
        """Human-readable name matching the paper's figure legends."""
        internal = {
            InternalRaid.NONE: "No Internal RAID",
            InternalRaid.RAID5: "Internal RAID 5",
            InternalRaid.RAID6: "Internal RAID 6",
        }[self.internal]
        return f"FT {self.node_fault_tolerance}, {internal}"

    @property
    def key(self) -> str:
        """Short machine-friendly identifier, e.g. ``"ft2_raid5"``."""
        internal = {
            InternalRaid.NONE: "noraid",
            InternalRaid.RAID5: "raid5",
            InternalRaid.RAID6: "raid6",
        }[self.internal]
        return f"ft{self.node_fault_tolerance}_{internal}"

    @classmethod
    def from_key(cls, key: str) -> "Configuration":
        """Inverse of :attr:`key`: parse e.g. ``"ft2_raid5"``.

        Raises :class:`ValueError` on anything that is not a well-formed
        configuration key.
        """
        by_name = {
            "noraid": InternalRaid.NONE,
            "raid5": InternalRaid.RAID5,
            "raid6": InternalRaid.RAID6,
        }
        prefix, _, internal_name = key.partition("_")
        if (
            prefix.startswith("ft")
            and prefix[2:].isdigit()
            and internal_name in by_name
        ):
            return cls(by_name[internal_name], int(prefix[2:]))
        raise ValueError(f"not a configuration key: {key!r}")

    # ------------------------------------------------------------------ #

    def model(
        self, params: Parameters, rebuild: Optional[RebuildModel] = None
    ) -> NodeModel:
        """Instantiate the reliability model for this configuration.

        Uses the hand-transcribed figure chains for no-internal-RAID at
        t <= 3 and the recursive construction beyond.
        """
        if self.internal is InternalRaid.NONE:
            if self.node_fault_tolerance <= 3:
                return NoRaidNodeModel(params, self.node_fault_tolerance, rebuild)
            return RecursiveNoRaidModel(params, self.node_fault_tolerance, rebuild)
        return InternalRaidNodeModel(
            params, self.internal, self.node_fault_tolerance, rebuild
        )

    def chain(self, params: Parameters) -> CTMC:
        """The node-level CTMC for this configuration."""
        return self.model(params).chain()

    def mttdl_hours(
        self,
        params: Parameters,
        method: str = "exact",
        *,
        rebuild: Optional[RebuildModel] = None,
    ) -> float:
        """MTTDL in hours.

        Args:
            params: system parameters.
            method: ``"exact"`` (numeric chain solve) or ``"approx"``
                (the paper's closed form).
            rebuild: optional rebuild-time model override.
        """
        model = self.model(params, rebuild)
        if method == "exact":
            return model.mttdl_exact()
        if method == "approx":
            if isinstance(model, NoRaidNodeModel):
                # The explicit figures have no own approximation; Figure A1
                # covers them.
                return RecursiveNoRaidModel(
                    params, self.node_fault_tolerance, rebuild
                ).mttdl_approx()
            return model.mttdl_approx()
        raise ValueError(f"unknown method {method!r}; use 'exact' or 'approx'")

    def reliability(
        self,
        params: Parameters,
        method: str = "exact",
        *,
        rebuild: Optional[RebuildModel] = None,
    ) -> ReliabilityResult:
        """Reliability in the paper's events/PB-year metric."""
        return ReliabilityResult.from_mttdl(
            self.mttdl_hours(params, method, rebuild=rebuild), params
        )


def all_configurations(max_fault_tolerance: int = 3) -> List[Configuration]:
    """The 3 x ``max_fault_tolerance`` configuration grid of Section 3."""
    from .space import ConfigSpace

    space = ConfigSpace(
        fault_tolerances=tuple(range(1, max_fault_tolerance + 1))
    )
    return space.configurations(major="fault_tolerance")


#: The paper's nine configurations, in Figure 13 order.
ALL_CONFIGURATIONS: Tuple[Configuration, ...] = tuple(all_configurations())


def sensitivity_configurations() -> List[Configuration]:
    """The three configurations Section 6 carries into the sensitivity
    analyses: [FT2, no internal RAID], [FT2, internal RAID 5] and
    [FT3, no internal RAID]."""
    return [
        Configuration(InternalRaid.NONE, 2),
        Configuration(InternalRaid.RAID5, 2),
        Configuration(InternalRaid.NONE, 3),
    ]


def evaluate(
    config: Configuration, params: Parameters, method: str = "exact"
) -> ReliabilityResult:
    """Convenience wrapper around :meth:`Configuration.reliability`."""
    return config.reliability(params, method)


def evaluate_all(
    params: Parameters,
    configs: Optional[Iterable[Configuration]] = None,
    method: str = "exact",
) -> List[Tuple[Configuration, ReliabilityResult]]:
    """Evaluate many configurations under one parameter set."""
    if configs is None:
        configs = ALL_CONFIGURATIONS
    return [(c, evaluate(c, params, method)) for c in configs]

"""Drive-level Markov models for internal RAID arrays (Figures 1 and 4).

A node's internal array is modeled as a small absorbing CTMC over the
number of concurrently failed drives.  Because the nodes are sealed
(fail-in-place), the repair transition is a *re-stripe* — the array is
rewritten without the failed drive — so the repair rate ``mu_d`` is the
re-stripe rate, not a hot-spare rebuild rate.

Uncorrectable (hard) read errors are folded in the paper's way: a hard
error only causes loss when the array is critical, and the chance of
hitting one is attached to the transition *into* the critical state — a
fraction ``h`` of entries into the critical state instead go straight to
the data-loss state, where ``h`` is the expected number of hard errors in
the surviving data that the re-stripe must read.

Besides the MTTDL, each model exposes the two rates the node-level models
consume (Section 4.2):

* ``lambda_D`` — array failure rate (drive failures beyond the RAID
  tolerance), and
* ``lambda_S`` — rate of hard-error-induced loss during a re-stripe.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from ..core import CTMC, ChainBuilder
from .parameters import Parameters
from .rebuild import RebuildModel
from .specs import compiled, raid5_spec, raid6_spec, raid_env

__all__ = [
    "InternalRaid",
    "ArrayRates",
    "Raid5Model",
    "Raid6Model",
    "array_model",
    "build_raid5_chain",
    "build_raid6_chain",
    "raid5_mttdl_exact_formula",
    "raid5_mttdl_approx",
    "raid6_mttdl_approx",
]

LOSS = "loss"


class InternalRaid(Enum):
    """Internal redundancy level of a node."""

    NONE = "none"
    RAID5 = "raid5"
    RAID6 = "raid6"

    @property
    def drive_fault_tolerance(self) -> int:
        """Concurrent drive failures the array survives."""
        return {"none": 0, "raid5": 1, "raid6": 2}[self.value]


@dataclass(frozen=True)
class ArrayRates:
    """Rates exported by a drive-level model to the node-level models.

    Attributes:
        array_failure_rate: lambda_D, array (data-losing) failures per hour.
        restripe_sector_loss_rate: lambda_S, hard-error losses during
            re-stripes per hour.
        mttdl_hours: the array's own mean time to data loss.
    """

    array_failure_rate: float
    restripe_sector_loss_rate: float
    mttdl_hours: float


# --------------------------------------------------------------------- #
# chain construction
# --------------------------------------------------------------------- #


def build_raid5_chain(
    d: int,
    drive_failure_rate: float,
    restripe_rate: float,
    hard_error_probability: float,
    split_loss: bool = False,
) -> CTMC:
    """Figure 1: RAID 5 array chain.

    States: ``0`` fully operational, ``1`` one drive failed (re-striping,
    no hard error will occur), ``loss`` absorbing.

    Args:
        d: drives in the array.
        drive_failure_rate: lambda_d per drive.
        restripe_rate: mu_d, the re-stripe completion rate.
        hard_error_probability: ``h = (d-1) * C * HER``, the chance a
            re-stripe hits a hard error.  Clamped into [0, 1].
        split_loss: when True, use separate absorbing states for
            drive-failure losses (``"loss-drives"``) and hard-error losses
            (``"loss-sector"``) so exact lambda_D / lambda_S can be read
            off the absorption probabilities.
    """
    env = raid_env(
        d, drive_failure_rate, restripe_rate, hard_error_probability,
        minimum_drives=2,
    )
    return compiled(raid5_spec(split_loss)).bind(env)


def build_raid6_chain(
    d: int,
    drive_failure_rate: float,
    restripe_rate: float,
    hard_error_probability: float,
    split_loss: bool = False,
) -> CTMC:
    """Figure 4: RAID 6 array chain.

    States: ``0`` operational, ``1`` one drive failed, ``2`` two drives
    failed (critical; no hard error will occur), ``loss`` absorbing.  The
    hard-error split rides the ``1 -> 2`` transition since state 2 is the
    critical one; ``h = (d-2) * C * HER``.  ``split_loss`` as in
    :func:`build_raid5_chain`.
    """
    env = raid_env(
        d, drive_failure_rate, restripe_rate, hard_error_probability,
        minimum_drives=3,
    )
    return compiled(raid6_spec(split_loss)).bind(env)


def legacy_build_raid5_chain(
    d: int,
    drive_failure_rate: float,
    restripe_rate: float,
    hard_error_probability: float,
    split_loss: bool = False,
) -> CTMC:
    """The original imperative Figure 1 construction (equivalence oracle)."""
    _check_array(d, minimum=2)
    h = _clamp_probability(hard_error_probability)
    lam, mu = drive_failure_rate, restripe_rate
    sector, drives = (LOSS_SECTOR, LOSS_DRIVES) if split_loss else (LOSS, LOSS)
    builder = ChainBuilder().add_states(0, 1)
    builder.add_rate(0, 1, d * lam * (1.0 - h))
    builder.add_rate(0, sector, d * lam * h)
    builder.add_rate(1, 0, mu)
    builder.add_rate(1, drives, (d - 1) * lam)
    return builder.build(initial_state=0)


def legacy_build_raid6_chain(
    d: int,
    drive_failure_rate: float,
    restripe_rate: float,
    hard_error_probability: float,
    split_loss: bool = False,
) -> CTMC:
    """The original imperative Figure 4 construction (equivalence oracle)."""
    _check_array(d, minimum=3)
    h = _clamp_probability(hard_error_probability)
    lam, mu = drive_failure_rate, restripe_rate
    sector, drives = (LOSS_SECTOR, LOSS_DRIVES) if split_loss else (LOSS, LOSS)
    builder = ChainBuilder().add_states(0, 1, 2)
    builder.add_rate(0, 1, d * lam)
    builder.add_rate(1, 0, mu)
    builder.add_rate(1, 2, (d - 1) * lam * (1.0 - h))
    builder.add_rate(1, sector, (d - 1) * lam * h)
    builder.add_rate(2, 1, mu)
    builder.add_rate(2, drives, (d - 2) * lam)
    return builder.build(initial_state=0)


# --------------------------------------------------------------------- #
# paper closed forms
# --------------------------------------------------------------------- #


def raid5_mttdl_exact_formula(
    d: int, drive_failure_rate: float, restripe_rate: float, hard_error_probability: float
) -> float:
    """The paper's exact RAID 5 MTTDL:

    ``((2d - 1 - d h) lambda + mu) / (d (d-1) lambda^2 + d lambda mu h)``.
    """
    _check_array(d, minimum=2)
    lam, mu = drive_failure_rate, restripe_rate
    h = _clamp_probability(hard_error_probability)
    numerator = (2 * d - 1 - d * h) * lam + mu
    denominator = d * (d - 1) * lam**2 + d * lam * mu * h
    return numerator / denominator


def raid5_mttdl_approx(
    d: int, drive_failure_rate: float, restripe_rate: float, hard_error_per_drive_read: float
) -> float:
    """The paper's RAID 5 approximation:

    ``mu / (d(d-1) lambda^2 + d(d-1) lambda mu C HER)``.
    """
    _check_array(d, minimum=2)
    lam, mu = drive_failure_rate, restripe_rate
    che = hard_error_per_drive_read
    return mu / (d * (d - 1) * lam**2 + d * (d - 1) * lam * mu * che)


def raid6_mttdl_approx(
    d: int, drive_failure_rate: float, restripe_rate: float, hard_error_per_drive_read: float
) -> float:
    """The paper's RAID 6 approximation:

    ``mu^2 / (d(d-1)(d-2) lambda^3 + d(d-1)(d-2) lambda^2 mu C HER)``.
    """
    _check_array(d, minimum=3)
    lam, mu = drive_failure_rate, restripe_rate
    che = hard_error_per_drive_read
    denominator = d * (d - 1) * (d - 2) * lam**3 + d * (d - 1) * (d - 2) * lam**2 * mu * che
    return mu**2 / denominator


# --------------------------------------------------------------------- #
# model classes
# --------------------------------------------------------------------- #


class _BaseArrayModel:
    """Shared plumbing for the RAID 5/6 array models."""

    def __init__(self, params: Parameters, rebuild: Optional[RebuildModel] = None) -> None:
        self._params = params
        self._rebuild = rebuild if rebuild is not None else RebuildModel(params)

    @property
    def params(self) -> Parameters:
        return self._params

    @property
    def restripe_rate(self) -> float:
        """mu_d: the array re-stripe rate, from the transfer model."""
        return self._rebuild.restripe_rate()

    def chain(self) -> CTMC:
        raise NotImplementedError

    def mttdl_exact(self) -> float:
        """MTTDL from the numeric CTMC solve."""
        return self.chain().mean_time_to_absorption()

    def mttdl_approx(self) -> float:
        raise NotImplementedError

    def rates(self, method: str = "approx") -> ArrayRates:
        raise NotImplementedError


def _exact_rates(chain_builder, restripe_rate: float) -> "ArrayRates":
    """Exact lambda_D / lambda_S from a chain with split absorbing states.

    The chain must have absorbing states ``"loss-drives"`` and
    ``"loss-sector"``.  Treating the array as a renewal process (after a
    loss the node is rebuilt from cross-node redundancy and re-enters
    service fresh), the long-run rate of each loss cause is the absorption
    probability over the MTTDL.  As ``mu >> lambda`` these converge to the
    paper's approximations; unlike them they stay correct when failure
    rates are artificially accelerated (the Monte-Carlo validation regime).
    """
    chain = chain_builder
    result = chain.absorb()
    mttdl = result.mttdl
    p_drives = result.absorption_probabilities.get(LOSS_DRIVES, 0.0)
    p_sector = result.absorption_probabilities.get(LOSS_SECTOR, 0.0)
    return ArrayRates(
        array_failure_rate=p_drives / mttdl,
        restripe_sector_loss_rate=p_sector / mttdl,
        mttdl_hours=mttdl,
    )


LOSS_DRIVES = "loss-drives"
LOSS_SECTOR = "loss-sector"


class Raid5Model(_BaseArrayModel):
    """RAID 5 internal array (Figure 1) parameterized from :class:`Parameters`."""

    @property
    def hard_error_probability(self) -> float:
        """``h = (d - 1) * C * HER``: expected hard errors while reading
        the surviving ``d - 1`` drives during a re-stripe."""
        p = self._params
        return (p.drives_per_node - 1) * p.hard_error_per_drive_read

    def chain(self) -> CTMC:
        p = self._params
        return build_raid5_chain(
            p.drives_per_node,
            p.drive_failure_rate,
            self.restripe_rate,
            self.hard_error_probability,
        )

    def mttdl_exact_formula(self) -> float:
        """The paper's exact closed form (matches :meth:`mttdl_exact`)."""
        p = self._params
        return raid5_mttdl_exact_formula(
            p.drives_per_node,
            p.drive_failure_rate,
            self.restripe_rate,
            self.hard_error_probability,
        )

    def mttdl_approx(self) -> float:
        p = self._params
        return raid5_mttdl_approx(
            p.drives_per_node,
            p.drive_failure_rate,
            self.restripe_rate,
            p.hard_error_per_drive_read,
        )

    def rates(self, method: str = "approx") -> ArrayRates:
        """lambda_D and lambda_S exported to the node-level model.

        ``method="approx"`` gives the paper's Section 4.2 expressions
        ``lambda_D = d(d-1) lambda^2 / mu`` and
        ``lambda_S = d(d-1) lambda C HER``; ``method="exact"`` reads the
        rates off the split-absorbing-state chain (needed when failure
        rates are accelerated and ``mu >> lambda`` no longer holds).
        """
        p = self._params
        if method == "exact":
            chain = build_raid5_chain(
                p.drives_per_node,
                p.drive_failure_rate,
                self.restripe_rate,
                self.hard_error_probability,
                split_loss=True,
            )
            return _exact_rates(chain, self.restripe_rate)
        if method != "approx":
            raise ValueError(f"unknown method {method!r}; use 'approx' or 'exact'")
        d, lam, mu = p.drives_per_node, p.drive_failure_rate, self.restripe_rate
        lambda_d_arr = d * (d - 1) * lam**2 / mu
        lambda_s = d * (d - 1) * lam * p.hard_error_per_drive_read
        return ArrayRates(lambda_d_arr, lambda_s, self.mttdl_exact())


class Raid6Model(_BaseArrayModel):
    """RAID 6 internal array (Figure 4) parameterized from :class:`Parameters`."""

    @property
    def hard_error_probability(self) -> float:
        """``h = (d - 2) * C * HER`` for the critical (two-failure) rebuild."""
        p = self._params
        return (p.drives_per_node - 2) * p.hard_error_per_drive_read

    def chain(self) -> CTMC:
        p = self._params
        return build_raid6_chain(
            p.drives_per_node,
            p.drive_failure_rate,
            self.restripe_rate,
            self.hard_error_probability,
        )

    def mttdl_approx(self) -> float:
        p = self._params
        return raid6_mttdl_approx(
            p.drives_per_node,
            p.drive_failure_rate,
            self.restripe_rate,
            p.hard_error_per_drive_read,
        )

    def rates(self, method: str = "approx") -> ArrayRates:
        """lambda_D and lambda_S exported to the node-level model.

        ``method="approx"`` gives the paper's Section 4.2 expressions
        ``lambda_D = d(d-1)(d-2) lambda^3 / mu^2`` and
        ``lambda_S = d(d-1)(d-2) lambda^2 C HER / mu``; ``method="exact"``
        reads them off the split-absorbing-state chain.
        """
        p = self._params
        if method == "exact":
            chain = build_raid6_chain(
                p.drives_per_node,
                p.drive_failure_rate,
                self.restripe_rate,
                self.hard_error_probability,
                split_loss=True,
            )
            return _exact_rates(chain, self.restripe_rate)
        if method != "approx":
            raise ValueError(f"unknown method {method!r}; use 'approx' or 'exact'")
        d, lam, mu = p.drives_per_node, p.drive_failure_rate, self.restripe_rate
        lambda_d_arr = d * (d - 1) * (d - 2) * lam**3 / mu**2
        lambda_s = d * (d - 1) * (d - 2) * lam**2 * p.hard_error_per_drive_read / mu
        return ArrayRates(lambda_d_arr, lambda_s, self.mttdl_exact())


def array_model(params: Parameters, level: InternalRaid) -> _BaseArrayModel:
    """Factory: the drive-level model for an internal RAID level.

    Raises:
        ValueError: for :attr:`InternalRaid.NONE` (there is no array model;
            use the no-internal-RAID node chains instead).
    """
    if level is InternalRaid.RAID5:
        return Raid5Model(params)
    if level is InternalRaid.RAID6:
        return Raid6Model(params)
    raise ValueError("no array model for nodes without internal RAID")


# --------------------------------------------------------------------- #


def _check_array(d: int, minimum: int) -> None:
    if d < minimum:
        raise ValueError(f"array needs at least {minimum} drives, got {d}")


def _clamp_probability(h: float) -> float:
    if h < 0:
        raise ValueError(f"hard error probability must be >= 0, got {h}")
    return min(h, 1.0)

"""Rebuild- and re-stripe-time model (Section 5.1).

The MTTDL expressions are driven by the node rebuild rate ``mu_N`` and the
drive rebuild (or array re-stripe) rate ``mu_d``.  The paper derives these
from first principles — the amount of data each surviving node moves and
the slower of the two transports involved (disk arms vs. network links) —
rather than assuming them.  This module reproduces that accounting.

Data accounting for a *node* rebuild with node set size ``N``, redundancy
set size ``R`` and cross-node fault tolerance ``t`` (all quantities in
units of one node's worth of user data):

* each surviving node rebuilds ``1/(N-1)``,
* each surviving node receives ``(R-t)/(N-1)`` from its peers,
* each surviving node also sources ``(R-t)/(N-1)`` to its peers,
* so per-node network traffic (in + out) is ``2(R-t)/(N-1)`` and
* per-node disk traffic (reads it sources + writes it lands) is
  ``(R-t+1)/(N-1)``.

The rebuild finishes when the slowest of the two transports finishes; the
rate of each transport is derated by the rebuild-bandwidth fraction (the
rest of the bandwidth keeps serving foreground I/O).

A *drive* rebuild (configurations without internal RAID) follows the same
pattern at drive granularity: one drive's worth of data is reconstructed
onto the spare space of the whole node set.

An internal-RAID *re-stripe* is node-local: the array is rewritten onto
the surviving ``d-1`` drives, so it reads and writes the node's data once
each through the node's own disks using the (larger) re-stripe command
size.
"""

from __future__ import annotations

from dataclasses import dataclass

from .parameters import Parameters

__all__ = ["RebuildModel", "TransferBreakdown"]

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class TransferBreakdown:
    """Time components of one recovery operation.

    Attributes:
        disk_seconds: time for the disk-side traffic at the disk transport
            rate.
        network_seconds: time for the network-side traffic at the link
            transport rate.
        total_seconds: the governing (maximum) time.
    """

    disk_seconds: float
    network_seconds: float

    @property
    def total_seconds(self) -> float:
        return max(self.disk_seconds, self.network_seconds)

    @property
    def total_hours(self) -> float:
        return self.total_seconds / SECONDS_PER_HOUR

    @property
    def bottleneck(self) -> str:
        """``"disk"`` or ``"network"``, whichever governs."""
        return "disk" if self.disk_seconds >= self.network_seconds else "network"


class RebuildModel:
    """Computes rebuild/re-stripe rates from basic transport parameters.

    Args:
        params: the system parameters.

    The model exposes per-operation :class:`TransferBreakdown` objects so
    callers (and the link-speed sensitivity analysis) can see which
    transport governs.
    """

    def __init__(self, params: Parameters) -> None:
        self._p = params

    @property
    def params(self) -> Parameters:
        return self._p

    # ------------------------------------------------------------------ #
    # transport bandwidths
    # ------------------------------------------------------------------ #

    def drive_rebuild_bandwidth(self) -> float:
        """Bytes/second one drive contributes to a rebuild.

        Small-command rebuild I/O is IOPS-bound: ``IOPS x command size``,
        capped by the drive's sustained streaming rate, then derated by the
        rebuild bandwidth fraction.  This is exactly the mechanism that
        makes the rebuild block size the paper's most powerful knob
        (Figure 16): at 128 KB commands a 150-IOPS drive moves ~19.7 MB/s,
        less than half its 40 MB/s streaming rate.
        """
        p = self._p
        raw = min(p.drive_max_iops * p.rebuild_command_bytes, p.drive_sustained_bps)
        return raw * p.rebuild_bandwidth_fraction

    def drive_restripe_bandwidth(self) -> float:
        """Bytes/second one drive contributes to an internal re-stripe
        (uses the re-stripe command size)."""
        p = self._p
        raw = min(p.drive_max_iops * p.restripe_command_bytes, p.drive_sustained_bps)
        return raw * p.rebuild_bandwidth_fraction

    def node_disk_bandwidth(self, command_bytes: float) -> float:
        """Aggregate derated disk bandwidth of one node at a command size."""
        p = self._p
        per_drive = min(p.drive_max_iops * command_bytes, p.drive_sustained_bps)
        return p.drives_per_node * per_drive * p.rebuild_bandwidth_fraction

    def node_network_bandwidth(self) -> float:
        """Derated sustained network bandwidth of one node, per direction.

        The 2x in the per-node network traffic ``2(R-t)/(N-1)`` counts
        inbound and outbound bytes; links are full duplex, so each
        direction is served at the sustained link rate independently and
        the governing time is traffic-per-direction over this bandwidth.
        """
        p = self._p
        return p.link_sustained_bytes_per_sec * p.rebuild_bandwidth_fraction

    # ------------------------------------------------------------------ #
    # recovery operations
    # ------------------------------------------------------------------ #

    def node_rebuild(self, fault_tolerance: int) -> TransferBreakdown:
        """Distributed rebuild of one failed node's data.

        Args:
            fault_tolerance: ``t`` of the cross-node erasure code; the
                surviving ``R - t`` elements of each stripe are read.
        """
        self._check_ft(fault_tolerance)
        p = self._p
        share = self._surviving_share()
        read_elements = max(p.redundancy_set_size - fault_tolerance, 1)
        disk_bytes = (read_elements + 1) * share * p.node_data_bytes
        network_bytes_per_direction = read_elements * share * p.node_data_bytes
        disk_bw = p.drives_per_node * self.drive_rebuild_bandwidth()
        return TransferBreakdown(
            disk_seconds=disk_bytes / disk_bw,
            network_seconds=network_bytes_per_direction / self.node_network_bandwidth(),
        )

    def drive_rebuild(self, fault_tolerance: int) -> TransferBreakdown:
        """Distributed rebuild of one failed drive's data (no internal RAID).

        Same flow accounting as :meth:`node_rebuild` with one drive's worth
        of data spread over the same set of surviving nodes.
        """
        self._check_ft(fault_tolerance)
        p = self._p
        share = self._surviving_share()
        read_elements = max(p.redundancy_set_size - fault_tolerance, 1)
        disk_bytes = (read_elements + 1) * share * p.drive_data_bytes
        network_bytes_per_direction = read_elements * share * p.drive_data_bytes
        disk_bw = p.drives_per_node * self.drive_rebuild_bandwidth()
        return TransferBreakdown(
            disk_seconds=disk_bytes / disk_bw,
            network_seconds=network_bytes_per_direction / self.node_network_bandwidth(),
        )

    def array_restripe(self) -> TransferBreakdown:
        """Node-internal re-stripe after an internal-RAID drive failure.

        Fail-in-place: the array's data is read once and rewritten across
        the surviving drives (no network traffic), using the re-stripe
        command size.
        """
        p = self._p
        data = p.node_data_bytes
        disk_bytes = 2.0 * data  # read everything once, write everything once
        disk_bw = p.drives_per_node * self.drive_restripe_bandwidth()
        return TransferBreakdown(disk_seconds=disk_bytes / disk_bw, network_seconds=0.0)

    # ------------------------------------------------------------------ #
    # rates (what the Markov models consume)
    # ------------------------------------------------------------------ #

    def node_rebuild_rate(self, fault_tolerance: int) -> float:
        """``mu_N`` in 1/hours."""
        return 1.0 / self.node_rebuild(fault_tolerance).total_hours

    def drive_rebuild_rate(self, fault_tolerance: int) -> float:
        """``mu_d`` in 1/hours for configurations without internal RAID."""
        return 1.0 / self.drive_rebuild(fault_tolerance).total_hours

    def restripe_rate(self) -> float:
        """``mu_d`` in 1/hours for configurations with internal RAID
        (the re-stripe rate, per the paper's Section 4.2 note)."""
        return 1.0 / self.array_restripe().total_hours

    def network_bound_below_gbps(self, fault_tolerance: int) -> float:
        """Link speed (Gb/s) at which the node rebuild's disk and network
        times are equal; below this the rebuild is network-bound.

        Used by the Figure 17 analysis ("constrained by the link speed up
        to around 3 Gb/s").
        """
        p = self._p
        breakdown = self.node_rebuild(fault_tolerance)
        if breakdown.network_seconds == 0:
            return 0.0
        # network_seconds scales as 1/link_speed; find speed equating them.
        current_gbps = p.link_speed_bps / 1e9
        return current_gbps * breakdown.network_seconds / breakdown.disk_seconds

    # ------------------------------------------------------------------ #

    def _surviving_share(self) -> float:
        return 1.0 / (self._p.node_set_size - 1)

    @staticmethod
    def _check_ft(fault_tolerance: int) -> None:
        if fault_tolerance < 1:
            raise ValueError("fault_tolerance must be >= 1")

"""Foreground-performance impact of rebuilds (extension beyond the paper).

The paper reserves 10% of disk and network bandwidth for rebuilds and
never revisits what the customer notices.  This model quantifies it: how
often the system is rebuilding (from the renewal-closed chain's
stationary distribution), what fraction of foreground throughput those
windows consume, and the resulting long-run average throughput
efficiency — the performance face of the reliability/performance
trade-off behind the rebuild-bandwidth-fraction knob.

Raising the rebuild fraction shortens rebuilds (better reliability) but
deepens the degradation while they run; this model plus the reliability
models bound both sides so the knob can be chosen deliberately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .availability import AvailabilityModel
from .configurations import Configuration
from .parameters import HOURS_PER_YEAR, Parameters

__all__ = ["PerformanceImpact", "PerformanceImpactModel"]


@dataclass(frozen=True)
class PerformanceImpact:
    """Foreground-throughput picture of one configuration.

    Attributes:
        rebuild_time_fraction: long-run fraction of time with at least one
            rebuild in flight.
        throughput_during_rebuild: foreground throughput while rebuilding,
            as a fraction of peak (1 - rebuild bandwidth fraction).
        average_throughput: long-run average foreground throughput
            fraction.
        degraded_hours_per_year: annual hours below peak.
    """

    rebuild_time_fraction: float
    throughput_during_rebuild: float

    @property
    def average_throughput(self) -> float:
        return (
            1.0 - self.rebuild_time_fraction
        ) + self.rebuild_time_fraction * self.throughput_during_rebuild

    @property
    def degraded_hours_per_year(self) -> float:
        return self.rebuild_time_fraction * HOURS_PER_YEAR


class PerformanceImpactModel:
    """Evaluate the rebuild-bandwidth trade-off for a configuration.

    Args:
        config: redundancy configuration.
        params: system parameters (``rebuild_bandwidth_fraction`` is the
            knob under study).
    """

    def __init__(self, config: Configuration, params: Parameters) -> None:
        self._config = config
        self._params = params

    def evaluate(self) -> PerformanceImpact:
        availability = AvailabilityModel(self._config, self._params).evaluate()
        return PerformanceImpact(
            rebuild_time_fraction=availability.degraded_fraction,
            throughput_during_rebuild=1.0 - self._params.rebuild_bandwidth_fraction,
        )

    def sweep_rebuild_fraction(
        self, fractions=(0.05, 0.10, 0.20, 0.40)
    ) -> list:
        """(fraction, events/PB-year, average throughput) triples — the
        two sides of the knob, side by side."""
        rows = []
        for fraction in fractions:
            params = self._params.replace(rebuild_bandwidth_fraction=fraction)
            reliability = self._config.reliability(params)
            impact = PerformanceImpactModel(self._config, params).evaluate()
            rows.append(
                (fraction, reliability.events_per_pb_year, impact.average_throughput)
            )
        return rows
